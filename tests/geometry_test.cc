#include <gtest/gtest.h>

#include <cmath>

#include "geometry/convex_hull.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/predicates.h"
#include "geometry/rect.h"
#include "geometry/segment.h"
#include "util/rng.h"

namespace innet::geometry {
namespace {

TEST(PointTest, Arithmetic) {
  Point a(1, 2);
  Point b(3, -1);
  EXPECT_EQ(a + b, Point(4, 1));
  EXPECT_EQ(a - b, Point(-2, 3));
  EXPECT_EQ(a * 2.0, Point(2, 4));
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), -7.0);
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_EQ(Midpoint(a, b), Point(2, 0.5));
}

TEST(PredicatesTest, Orientation) {
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(0, 1)),
            Orient::kCounterClockwise);
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(0, -1)),
            Orient::kClockwise);
  EXPECT_EQ(Orientation(Point(0, 0), Point(1, 0), Point(2, 0)),
            Orient::kCollinear);
}

TEST(PredicatesTest, InCircle) {
  // Unit circle through (1,0), (0,1), (-1,0) (counter-clockwise).
  Point a(1, 0), b(0, 1), c(-1, 0);
  EXPECT_TRUE(InCircle(a, b, c, Point(0, 0)));
  EXPECT_FALSE(InCircle(a, b, c, Point(2, 2)));
  EXPECT_FALSE(InCircle(a, b, c, Point(0, -1.0001)));
}

TEST(PredicatesTest, Circumcenter) {
  Point center = Circumcenter(Point(1, 0), Point(0, 1), Point(-1, 0));
  EXPECT_NEAR(center.x, 0.0, 1e-12);
  EXPECT_NEAR(center.y, 0.0, 1e-12);
}

TEST(SegmentTest, ProperCrossing) {
  Segment s(Point(0, 0), Point(2, 2));
  Segment t(Point(0, 2), Point(2, 0));
  EXPECT_TRUE(SegmentsIntersect(s, t));
  EXPECT_TRUE(SegmentsProperlyCross(s, t));
  auto p = CrossingPoint(s, t);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
}

TEST(SegmentTest, SharedEndpointIsNotProper) {
  Segment s(Point(0, 0), Point(1, 1));
  Segment t(Point(1, 1), Point(2, 0));
  EXPECT_TRUE(SegmentsIntersect(s, t));
  EXPECT_FALSE(SegmentsProperlyCross(s, t));
  EXPECT_FALSE(CrossingPoint(s, t).has_value());
}

TEST(SegmentTest, DisjointSegments) {
  Segment s(Point(0, 0), Point(1, 0));
  Segment t(Point(0, 1), Point(1, 1));
  EXPECT_FALSE(SegmentsIntersect(s, t));
  EXPECT_FALSE(SegmentsProperlyCross(s, t));
}

TEST(SegmentTest, CollinearOverlapIntersects) {
  Segment s(Point(0, 0), Point(2, 0));
  Segment t(Point(1, 0), Point(3, 0));
  EXPECT_TRUE(SegmentsIntersect(s, t));
  EXPECT_FALSE(SegmentsProperlyCross(s, t));
}

TEST(SegmentTest, PointDistance) {
  Segment s(Point(0, 0), Point(10, 0));
  EXPECT_DOUBLE_EQ(PointSegmentDistanceSquared(Point(5, 3), s), 9.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistanceSquared(Point(-3, 4), s), 25.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistanceSquared(Point(12, 0), s), 4.0);
}

// Property sweep: a segment pair built to cross at a known interior point is
// always reported as properly crossing, and the computed point matches.
class SegmentCrossProperty : public ::testing::TestWithParam<int> {};

TEST_P(SegmentCrossProperty, RandomCrossingsRecovered) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    Point x(rng.Uniform(-10, 10), rng.Uniform(-10, 10));
    double angle1 = rng.Uniform(0, 3.141592653589793);
    double angle2 = angle1 + rng.Uniform(0.3, 2.5);
    Point d1(std::cos(angle1), std::sin(angle1));
    Point d2(std::cos(angle2), std::sin(angle2));
    double a1 = rng.Uniform(0.1, 5.0), b1 = rng.Uniform(0.1, 5.0);
    double a2 = rng.Uniform(0.1, 5.0), b2 = rng.Uniform(0.1, 5.0);
    Segment s(x - d1 * a1, x + d1 * b1);
    Segment t(x - d2 * a2, x + d2 * b2);
    ASSERT_TRUE(SegmentsProperlyCross(s, t));
    auto p = CrossingPoint(s, t);
    ASSERT_TRUE(p.has_value());
    EXPECT_NEAR(p->x, x.x, 1e-6);
    EXPECT_NEAR(p->y, x.y, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegmentCrossProperty,
                         ::testing::Values(1, 2, 3, 4));

TEST(PolygonTest, SquareAreaCentroid) {
  Polygon square({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  EXPECT_DOUBLE_EQ(square.SignedArea(), 4.0);
  EXPECT_TRUE(square.IsCounterClockwise());
  EXPECT_DOUBLE_EQ(square.Perimeter(), 8.0);
  Point c = square.Centroid();
  EXPECT_NEAR(c.x, 1.0, 1e-12);
  EXPECT_NEAR(c.y, 1.0, 1e-12);
}

TEST(PolygonTest, ClockwiseNegativeArea) {
  Polygon square({{0, 0}, {0, 2}, {2, 2}, {2, 0}});
  EXPECT_DOUBLE_EQ(square.SignedArea(), -4.0);
  square.Reverse();
  EXPECT_DOUBLE_EQ(square.SignedArea(), 4.0);
}

TEST(PolygonTest, ContainsPoints) {
  Polygon tri({{0, 0}, {4, 0}, {0, 4}});
  EXPECT_TRUE(tri.Contains(Point(1, 1)));
  EXPECT_FALSE(tri.Contains(Point(3, 3)));
  EXPECT_TRUE(tri.Contains(Point(2, 0)));  // Boundary counts as inside.
  EXPECT_TRUE(tri.Contains(Point(0, 0)));  // Vertex counts as inside.
}

TEST(PolygonTest, NonConvexContains) {
  // L-shape.
  Polygon ell({{0, 0}, {3, 0}, {3, 1}, {1, 1}, {1, 3}, {0, 3}});
  EXPECT_TRUE(ell.Contains(Point(0.5, 2.5)));
  EXPECT_TRUE(ell.Contains(Point(2.5, 0.5)));
  EXPECT_FALSE(ell.Contains(Point(2.0, 2.0)));
}

TEST(PolygonTest, Bounds) {
  Polygon tri({{0, -1}, {4, 0}, {0, 4}});
  Rect b = tri.Bounds();
  EXPECT_DOUBLE_EQ(b.min_x, 0.0);
  EXPECT_DOUBLE_EQ(b.min_y, -1.0);
  EXPECT_DOUBLE_EQ(b.max_x, 4.0);
  EXPECT_DOUBLE_EQ(b.max_y, 4.0);
}

TEST(RectTest, ContainsAndIntersects) {
  Rect r(0, 0, 10, 5);
  EXPECT_TRUE(r.Contains(Point(5, 2)));
  EXPECT_TRUE(r.Contains(Point(0, 0)));
  EXPECT_FALSE(r.Contains(Point(11, 2)));
  EXPECT_TRUE(r.Intersects(Rect(9, 4, 12, 8)));
  EXPECT_FALSE(r.Intersects(Rect(11, 0, 12, 1)));
  EXPECT_TRUE(r.Contains(Rect(1, 1, 2, 2)));
  EXPECT_FALSE(r.Contains(Rect(1, 1, 11, 2)));
  EXPECT_DOUBLE_EQ(r.Area(), 50.0);
}

TEST(RectTest, FromCornersNormalizes) {
  Rect r = Rect::FromCorners(Point(5, 1), Point(2, 7));
  EXPECT_DOUBLE_EQ(r.min_x, 2.0);
  EXPECT_DOUBLE_EQ(r.max_x, 5.0);
  EXPECT_DOUBLE_EQ(r.min_y, 1.0);
  EXPECT_DOUBLE_EQ(r.max_y, 7.0);
}

TEST(ConvexHullTest, Square) {
  std::vector<Point> points = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  std::vector<Point> hull = ConvexHull(points);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_GT(Polygon(hull).SignedArea(), 0.0);  // CCW.
}

TEST(ConvexHullTest, SmallInputs) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_EQ(ConvexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{1, 1}, {2, 2}}).size(), 2u);
  EXPECT_EQ(ConvexHull({{1, 1}, {1, 1}, {1, 1}}).size(), 1u);
}

TEST(PointTest, AngleOf) {
  EXPECT_NEAR(AngleOf(Point(0, 0), Point(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(AngleOf(Point(0, 0), Point(0, 1)), 1.5707963267948966, 1e-12);
  EXPECT_NEAR(AngleOf(Point(0, 0), Point(-1, 0)), 3.141592653589793, 1e-12);
  EXPECT_NEAR(AngleOf(Point(1, 1), Point(2, 2)), 0.7853981633974483, 1e-12);
}

TEST(PointTest, NormAndDistanceConsistency) {
  Point v(3, 4);
  EXPECT_DOUBLE_EQ(Norm(v), 5.0);
  EXPECT_DOUBLE_EQ(DistanceSquared(Point(0, 0), v), 25.0);
}

TEST(RectTest, InflatedAndExpand) {
  Rect r(1, 1, 2, 2);
  Rect big = r.Inflated(0.5);
  EXPECT_DOUBLE_EQ(big.min_x, 0.5);
  EXPECT_DOUBLE_EQ(big.max_y, 2.5);
  r.ExpandToInclude(Point(5, -1));
  EXPECT_DOUBLE_EQ(r.max_x, 5.0);
  EXPECT_DOUBLE_EQ(r.min_y, -1.0);
  EXPECT_TRUE(r.Contains(Point(5, -1)));
}

TEST(RectTest, BoundingBoxOfRange) {
  std::vector<Point> points = {{1, 5}, {-2, 3}, {4, -1}};
  Rect box = BoundingBox(points.begin(), points.end());
  EXPECT_DOUBLE_EQ(box.min_x, -2.0);
  EXPECT_DOUBLE_EQ(box.min_y, -1.0);
  EXPECT_DOUBLE_EQ(box.max_x, 4.0);
  EXPECT_DOUBLE_EQ(box.max_y, 5.0);
}

TEST(PolygonTest, DegenerateSizes) {
  Polygon empty;
  EXPECT_TRUE(empty.empty());
  Polygon line({{0, 0}, {2, 0}});
  EXPECT_DOUBLE_EQ(line.Area(), 0.0);
  EXPECT_FALSE(line.Contains(Point(1, 0)));  // < 3 vertices: never inside.
  EXPECT_FALSE(PolygonContainsRect(line, Rect(0, 0, 1, 1)));
}

TEST(PredicatesTest, NearCollinearBand) {
  // Points nearly on a line: the relative-epsilon band calls it collinear.
  Point a(0, 0), b(1000, 0);
  EXPECT_EQ(Orientation(a, b, Point(500, 1e-11)), Orient::kCollinear);
  EXPECT_EQ(Orientation(a, b, Point(500, 1e-3)), Orient::kCounterClockwise);
}

TEST(ConvexHullTest, AllPointsInsideHullProperty) {
  util::Rng rng(21);
  std::vector<Point> points;
  for (int i = 0; i < 300; ++i) {
    points.emplace_back(rng.Uniform(-5, 5), rng.Uniform(-5, 5));
  }
  std::vector<Point> hull = ConvexHull(points);
  Polygon hull_poly(hull);
  ASSERT_GE(hull.size(), 3u);
  for (const Point& p : points) {
    EXPECT_TRUE(hull_poly.Contains(p));
  }
  // Hull is convex: every consecutive triple turns left.
  for (size_t i = 0; i < hull.size(); ++i) {
    const Point& a = hull[i];
    const Point& b = hull[(i + 1) % hull.size()];
    const Point& c = hull[(i + 2) % hull.size()];
    EXPECT_GT(SignedArea2(a, b, c), 0.0);
  }
}

}  // namespace
}  // namespace innet::geometry
