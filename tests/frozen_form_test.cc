// Golden identity suite: FrozenTrackingForm must be bit-for-bit equal to
// the TrackingForm it was built from — per-slot counts, region evaluations,
// batch kernels, and end-to-end processor answers alike.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/framework.h"
#include "core/workload.h"
#include "forms/frozen_tracking_form.h"
#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "sampling/samplers.h"
#include "util/rng.h"
#include "util/simd.h"

namespace innet::forms {
namespace {

using graph::EdgeId;

// Random store with a mix of dense, sparse, duplicate-laden, and EMPTY
// slots; timestamps drawn from [0, 1000) with repeats.
TrackingForm RandomForm(uint64_t seed, size_t num_edges, size_t max_events) {
  util::Rng rng(seed);
  TrackingForm form(num_edges);
  for (EdgeId e = 0; e < num_edges; ++e) {
    for (int dir = 0; dir < 2; ++dir) {
      if (rng.Bernoulli(0.2)) continue;  // Leave ~20% of slots empty.
      size_t n = rng.UniformIndex(max_events + 1);
      std::vector<double> ts(n);
      for (double& t : ts) {
        t = rng.Uniform(0.0, 1000.0);
        if (rng.Bernoulli(0.1)) t = std::floor(t);  // Encourage duplicates.
      }
      std::sort(ts.begin(), ts.end());
      for (double t : ts) form.RecordTraversal(e, dir == 0, t);
    }
  }
  return form;
}

TEST(FrozenTrackingFormTest, CountUpToMatchesEverywhere) {
  TrackingForm tracking = RandomForm(7, 40, 200);
  FrozenTrackingForm frozen = tracking.Freeze();
  ASSERT_EQ(frozen.num_edges(), tracking.num_edges());
  ASSERT_EQ(frozen.TotalEvents(), tracking.TotalEvents());

  util::Rng rng(8);
  for (EdgeId e = 0; e < tracking.num_edges(); ++e) {
    for (int dir = 0; dir < 2; ++dir) {
      bool forward = dir == 0;
      ASSERT_EQ(frozen.EventCount(e, forward),
                tracking.EventCount(e, forward));
      const std::vector<double>& seq = tracking.Sequence(e, forward);
      // Out-of-range probes on both sides.
      EXPECT_EQ(frozen.CountUpTo(e, forward, -1e9),
                tracking.CountUpTo(e, forward, -1e9));
      EXPECT_EQ(frozen.CountUpTo(e, forward, 1e9),
                tracking.CountUpTo(e, forward, 1e9));
      // Every stored timestamp, plus a nudge on each side — the adversarial
      // probes for the bucket index (exact boundaries, duplicates).
      for (double t : seq) {
        for (double probe : {t, std::nextafter(t, -1e30),
                             std::nextafter(t, 1e30)}) {
          ASSERT_EQ(frozen.CountUpTo(e, forward, probe),
                    tracking.CountUpTo(e, forward, probe))
              << "edge " << e << " fwd " << forward << " t " << probe;
        }
      }
      // Random probes.
      for (int i = 0; i < 50; ++i) {
        double t = rng.Uniform(-50.0, 1050.0);
        ASSERT_EQ(frozen.CountUpTo(e, forward, t),
                  tracking.CountUpTo(e, forward, t));
      }
    }
  }
}

TEST(FrozenTrackingFormTest, CountInRangeMatches) {
  TrackingForm tracking = RandomForm(11, 25, 120);
  FrozenTrackingForm frozen = tracking.Freeze();
  util::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    EdgeId e = static_cast<EdgeId>(rng.UniformIndex(tracking.num_edges()));
    bool forward = rng.Bernoulli(0.5);
    double a = rng.Uniform(-50.0, 1050.0);
    double b = rng.Uniform(-50.0, 1050.0);
    if (a > b) std::swap(a, b);
    EXPECT_EQ(frozen.CountInRange(e, forward, a, b),
              tracking.CountInRange(e, forward, a, b));
  }
}

TEST(FrozenTrackingFormTest, ProvenanceAndStorageMirrorSource) {
  TrackingForm tracking = RandomForm(13, 10, 60);
  FrozenTrackingForm frozen = tracking.Freeze();
  StoreProvenance a = tracking.Provenance();
  StoreProvenance b = frozen.Provenance();
  EXPECT_STREQ(a.kind, b.kind);
  EXPECT_EQ(a.modeled_events, b.modeled_events);
  EXPECT_EQ(a.raw_events, b.raw_events);
  EXPECT_EQ(frozen.StorageBytes(), tracking.StorageBytes());
  for (EdgeId e = 0; e < tracking.num_edges(); ++e) {
    EXPECT_EQ(frozen.StorageBytesForEdge(e), tracking.StorageBytesForEdge(e));
  }
  EXPECT_GT(frozen.IndexBytes(), 0u);
}

// Random boundary over the store's edges (some repeated, both senses).
std::vector<BoundaryEdge> RandomBoundary(util::Rng& rng, size_t num_edges,
                                         size_t size) {
  std::vector<BoundaryEdge> boundary;
  boundary.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    boundary.push_back({static_cast<EdgeId>(rng.UniformIndex(num_edges)),
                        rng.Bernoulli(0.5)});
  }
  return boundary;
}

TEST(FrozenTrackingFormTest, FusedRegionEvaluationsMatchVirtualPath) {
  TrackingForm tracking = RandomForm(17, 30, 150);
  FrozenTrackingForm frozen = tracking.Freeze();
  util::Rng rng(18);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<BoundaryEdge> boundary =
        RandomBoundary(rng, tracking.num_edges(), 1 + rng.UniformIndex(20));
    double t = rng.Uniform(-10.0, 1010.0);
    double t0 = rng.Uniform(-10.0, 1010.0);
    double t1 = rng.Uniform(-10.0, 1010.0);
    if (t0 > t1) std::swap(t0, t1);
    // Same arithmetic, same order: bit-identical, so EXPECT_EQ not NEAR.
    EXPECT_EQ(EvaluateStaticCount(frozen, boundary, t),
              EvaluateStaticCount(
                  static_cast<const EdgeCountStore&>(tracking), boundary, t));
    EXPECT_EQ(EvaluateTransientCount(frozen, boundary, t0, t1),
              EvaluateTransientCount(
                  static_cast<const EdgeCountStore&>(tracking), boundary, t0,
                  t1));
    // The fused overload on the frozen store itself must agree with its
    // virtual dispatch too.
    EXPECT_EQ(EvaluateStaticCount(frozen, boundary, t),
              EvaluateStaticCount(static_cast<const EdgeCountStore&>(frozen),
                                  boundary, t));
  }
}

TEST(FrozenTrackingFormTest, BatchKernelsMatchScalarLoops) {
  TrackingForm tracking = RandomForm(19, 30, 150);
  FrozenTrackingForm frozen = tracking.Freeze();
  util::Rng rng(20);
  for (size_t count : {size_t{1}, size_t{2}, size_t{7}, size_t{256}}) {
    std::vector<BoundaryEdge> boundary =
        RandomBoundary(rng, tracking.num_edges(), 12);
    std::vector<double> times(count);
    for (double& t : times) t = rng.Uniform(-10.0, 1010.0);
    std::sort(times.begin(), times.end());

    std::vector<double> batch(count, -1.0);
    EvaluateStaticCountBatch(frozen, boundary, times.data(), count,
                             batch.data());
    for (size_t k = 0; k < count; ++k) {
      EXPECT_EQ(batch[k], EvaluateStaticCount(
                              static_cast<const EdgeCountStore&>(tracking),
                              boundary, times[k]))
          << "static k=" << k;
    }

    double t0 = times.front() - rng.Uniform(0.0, 100.0);
    EvaluateTransientCountBatch(frozen, boundary, t0, times.data(), count,
                                batch.data());
    for (size_t k = 0; k < count; ++k) {
      EXPECT_EQ(batch[k], EvaluateTransientCount(
                              static_cast<const EdgeCountStore&>(tracking),
                              boundary, t0, times[k]))
          << "transient k=" << k;
    }
  }
}

// The golden identity must hold at EVERY dispatch level, not just the
// machine's default: rerun the fused/batch identity checks with the kernel
// dispatch forced to scalar and to the detected best in turn.
TEST(FrozenTrackingFormTest, IdentityHoldsAtEveryDispatchLevel) {
  TrackingForm tracking = RandomForm(23, 30, 150);
  FrozenTrackingForm frozen = tracking.Freeze();
  const auto& virtual_store = static_cast<const EdgeCountStore&>(tracking);
  for (util::simd::SimdLevel level :
       {util::simd::SimdLevel::kScalar, util::simd::DetectedSimdLevel()}) {
    util::simd::ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    util::Rng rng(24);  // Same seed per level: identical trial sequences.
    for (int trial = 0; trial < 25; ++trial) {
      std::vector<BoundaryEdge> boundary =
          RandomBoundary(rng, tracking.num_edges(), 1 + rng.UniformIndex(20));
      double t = rng.Uniform(-10.0, 1010.0);
      double t0 = rng.Uniform(-10.0, 1010.0);
      double t1 = rng.Uniform(-10.0, 1010.0);
      if (t0 > t1) std::swap(t0, t1);
      ASSERT_EQ(EvaluateStaticCount(frozen, boundary, t),
                EvaluateStaticCount(virtual_store, boundary, t))
          << "level=" << util::simd::SimdLevelName(level);
      ASSERT_EQ(EvaluateTransientCount(frozen, boundary, t0, t1),
                EvaluateTransientCount(virtual_store, boundary, t0, t1))
          << "level=" << util::simd::SimdLevelName(level);

      std::vector<double> times = {t0, (t0 + t1) / 2, t1};
      std::vector<double> batch(times.size(), -1.0);
      EvaluateStaticCountBatch(frozen, boundary, times.data(), times.size(),
                               batch.data());
      for (size_t k = 0; k < times.size(); ++k) {
        ASSERT_EQ(batch[k], EvaluateStaticCount(virtual_store, boundary,
                                                times[k]))
            << "level=" << util::simd::SimdLevelName(level) << " k=" << k;
      }
      EvaluateTransientCountBatch(frozen, boundary, t0 - 5.0, times.data(),
                                  times.size(), batch.data());
      for (size_t k = 0; k < times.size(); ++k) {
        ASSERT_EQ(batch[k], EvaluateTransientCount(virtual_store, boundary,
                                                   t0 - 5.0, times[k]))
            << "level=" << util::simd::SimdLevelName(level) << " k=" << k;
      }
    }
  }
}

TEST(FrozenTrackingFormTest, EmptyStoreAndEmptyBoundary) {
  TrackingForm tracking(5);
  FrozenTrackingForm frozen = tracking.Freeze();
  EXPECT_EQ(frozen.TotalEvents(), 0u);
  EXPECT_EQ(frozen.CountUpTo(3, true, 10.0), 0.0);
  std::vector<BoundaryEdge> empty;
  EXPECT_EQ(EvaluateStaticCount(frozen, empty, 1.0), 0.0);
  std::vector<BoundaryEdge> boundary = {{0, true}, {4, false}};
  EXPECT_EQ(EvaluateStaticCount(frozen, boundary, 1.0), 0.0);
  double out[3] = {-1, -1, -1};
  double times[3] = {0.0, 1.0, 2.0};
  EvaluateStaticCountBatch(frozen, boundary, times, 3, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[2], 0.0);
}

// End-to-end: a processor over the frozen store answers every query —
// static, transient, and series — bit-identically to the tracking-form
// processor it shadows.
class FrozenDeploymentFixture : public ::testing::Test {
 protected:
  FrozenDeploymentFixture() : framework_(Options()) {}

  void SetUp() override {
    sampling::KdTreeSampler sampler;
    util::Rng rng = framework_.ForkRng();
    deployment_ = std::make_unique<core::Deployment>(
        framework_.DeployWithSampler(
            sampler, framework_.network().NumSensors() / 5,
            core::DeploymentOptions{}, rng));
    const TrackingForm* tracking = deployment_->tracking_store();
    ASSERT_NE(tracking, nullptr);
    frozen_ = std::make_unique<FrozenTrackingForm>(tracking->Freeze());

    core::WorkloadOptions wo;
    wo.area_fraction = 0.05;
    wo.horizon = framework_.Horizon();
    queries_ = core::GenerateWorkload(framework_.network(), wo, 20, rng);
  }

  static core::FrameworkOptions Options() {
    core::FrameworkOptions options;
    options.road.num_junctions = 250;
    options.traffic.num_trajectories = 300;
    options.seed = 21;
    return options;
  }

  core::Framework framework_;
  std::unique_ptr<core::Deployment> deployment_;
  std::unique_ptr<FrozenTrackingForm> frozen_;
  std::vector<core::RangeQuery> queries_;
};

TEST_F(FrozenDeploymentFixture, ProcessorAnswersAreBitIdentical) {
  core::SampledQueryProcessor reference = deployment_->processor();
  core::SampledQueryProcessor fast(deployment_->graph(), *frozen_);
  ASSERT_FALSE(queries_.empty());
  for (const core::RangeQuery& q : queries_) {
    for (core::BoundMode bound :
         {core::BoundMode::kLower, core::BoundMode::kUpper}) {
      for (core::CountKind kind :
           {core::CountKind::kStatic, core::CountKind::kTransient}) {
        core::QueryAnswer a = reference.Answer(q, kind, bound);
        core::QueryAnswer b = fast.Answer(q, kind, bound);
        EXPECT_EQ(a.estimate, b.estimate);
        EXPECT_EQ(a.missed, b.missed);
        EXPECT_EQ(a.nodes_accessed, b.nodes_accessed);
        EXPECT_EQ(a.edges_accessed, b.edges_accessed);
      }
    }
  }
}

TEST_F(FrozenDeploymentFixture, AnswerSeriesIsBitIdenticalAtAllStepCounts) {
  core::SampledQueryProcessor reference = deployment_->processor();
  core::SampledQueryProcessor fast(deployment_->graph(), *frozen_);
  for (const core::RangeQuery& q : queries_) {
    for (size_t steps : {size_t{0}, size_t{1}, size_t{2}, size_t{1000}}) {
      std::vector<double> a =
          reference.AnswerSeries(q, core::BoundMode::kLower, steps);
      std::vector<double> b =
          fast.AnswerSeries(q, core::BoundMode::kLower, steps);
      ASSERT_EQ(a.size(), b.size()) << "steps=" << steps;
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "steps=" << steps << " i=" << i;
      }
    }
  }
}

TEST_F(FrozenDeploymentFixture, ExplainRecordsAreIdentical) {
  core::SampledQueryProcessor reference = deployment_->processor();
  core::SampledQueryProcessor fast(deployment_->graph(), *frozen_);
  for (const core::RangeQuery& q : queries_) {
    obs::ExplainRecord a;
    obs::ExplainRecord b;
    reference.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower,
                     nullptr, &a);
    fast.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower, nullptr,
                &b);
    EXPECT_EQ(a.faces, b.faces);
    EXPECT_EQ(a.answer, b.answer);
    EXPECT_EQ(a.resolved_cells, b.resolved_cells);
    EXPECT_EQ(a.deadspace_fraction, b.deadspace_fraction);
    EXPECT_STREQ(a.store.c_str(), b.store.c_str());
    EXPECT_EQ(a.store_raw_events, b.store_raw_events);
    EXPECT_EQ(a.boundary_edges, b.boundary_edges);
    EXPECT_EQ(a.boundary_sensors, b.boundary_sensors);
  }
}

}  // namespace
}  // namespace innet::forms
