#!/usr/bin/env bash
# Fixture test: innet_query must reject non-positive --trace-sample and
# --shadow-sample values with a clear error BEFORE touching any input file,
# and keep accepting positive values.
set -u

dataset_bin=$1
query_bin=$2

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Invalid 1-in-N values must fail fast (exit nonzero, diagnostic naming the
# flag) even with bogus input paths — validation runs before file I/O.
for flag in trace-sample shadow-sample; do
  for value in 0 -3; do
    if "$query_bin" --graph /nonexistent.bin --trips /nonexistent.bin \
        --batch /nonexistent.txt --sample-fraction 0.3 \
        --$flag $value >"$tmp/out.txt" 2>"$tmp/err.txt"; then
      echo "--$flag $value was accepted (expected rejection)" >&2
      exit 1
    fi
    grep -q -- "--$flag must be a positive integer" "$tmp/err.txt" || {
      echo "--$flag $value: missing/unclear diagnostic:" >&2
      cat "$tmp/err.txt" >&2
      exit 1
    }
    # Rejection happened during validation, not on the missing files.
    grep -qi "nonexistent" "$tmp/err.txt" && {
      echo "--$flag $value: tool touched input files before validating" >&2
      exit 1
    }
  done
done

# Positive values keep working end to end.
"$dataset_bin" generate --junctions 120 --trips 40 --horizon 600 --seed 3 \
  --graph-out "$tmp/g.bin" --trips-out "$tmp/t.bin" >/dev/null || {
  echo "dataset generation failed" >&2
  exit 1
}
cat >"$tmp/batch.txt" <<'EOF'
0,0,15000,15000,0,600
0,0,8000,8000,0,300
EOF
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 \
  --trace-sample 2 --trace-out "$tmp/traces.jsonl" \
  --shadow-sample 1 >/dev/null 2>"$tmp/err.txt" || {
  echo "valid --trace-sample/--shadow-sample run failed:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}

# The shadow report line surfaces the measured error on stderr.
grep -q "shadow: " "$tmp/err.txt" || {
  echo "missing shadow accuracy line on stderr:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}
# 2 queries x 2 bounds, shadowing 1-in-1 => 4 checks.
grep -q "shadow: 4 checks (1-in-1)" "$tmp/err.txt" || {
  echo "unexpected shadow check count (want 4 at 1-in-1):" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}

# Durability flag combinations must also fail during validation, before any
# file I/O (bogus paths stay untouched).
check_rejected() {
  local label=$1 needle=$2
  shift 2
  if "$query_bin" "$@" >"$tmp/out.txt" 2>"$tmp/err.txt"; then
    echo "$label was accepted (expected rejection)" >&2
    exit 1
  fi
  grep -q -- "$needle" "$tmp/err.txt" || {
    echo "$label: missing/unclear diagnostic:" >&2
    cat "$tmp/err.txt" >&2
    exit 1
  }
  grep -qi "nonexistent" "$tmp/err.txt" && {
    echo "$label: tool touched input files before validating" >&2
    exit 1
  }
}

# --ingest-epochs is batch-only.
check_rejected "--ingest-epochs without --batch" \
  "requires --batch" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --rect 0,0,100,100 --ingest-epochs 3

# --recover needs a WAL directory to recover from.
check_rejected "--recover without --wal-dir" \
  "requires --wal-dir" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --recover

# --snapshot-every without a WAL has nowhere to put snapshots.
check_rejected "--snapshot-every without --wal-dir" \
  "requires --wal-dir" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 \
  --ingest-epochs 3 --snapshot-every 2

# --recover and --ingest-epochs cannot both drive the serving store.
check_rejected "--recover with --ingest-epochs" \
  "mutually exclusive" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 \
  --wal-dir /nonexistent-wal --recover --ingest-epochs 3

# Telemetry flags: the endpoint is batch-only and its dependent knobs need
# the endpoint; all rejections must fire before any file I/O.
check_rejected "--serve-telemetry with a bad port" \
  "--serve-telemetry wants a TCP port in 0..65535" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --serve-telemetry 70000

check_rejected "--serve-telemetry without --batch" \
  "requires --batch" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --rect 0,0,100,100 --serve-telemetry 0

check_rejected "--slo-config without --serve-telemetry" \
  "requires --serve-telemetry" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 \
  --slo-config /nonexistent-slo.conf

check_rejected "--telemetry-linger without --serve-telemetry" \
  "requires --serve-telemetry" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --telemetry-linger 5

check_rejected "negative --telemetry-linger" \
  "--telemetry-linger must be >= 0" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 \
  --serve-telemetry 0 --telemetry-linger -1

check_rejected "--flight-dir without --serve-telemetry" \
  "requires --serve-telemetry" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --flight-dir "$tmp"

check_rejected "--readyz-staleness without --serve-telemetry" \
  "requires --serve-telemetry" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --readyz-staleness 10

# Cost-accounting flags (docs/OBSERVABILITY.md §9): the slow-query log and
# the Chrome trace export are batch-only, and their dependent knobs need
# their parent flag; rejections fire before any file I/O.
check_rejected "--slowlog-out without --batch" \
  "requires --batch" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --rect 0,0,100,100 --slowlog-out "$tmp/slow.jsonl"

check_rejected "empty --slowlog-out path" \
  "--slowlog-out wants a file path" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --slowlog-out ""

check_rejected "--slowlog-threshold-ms without --slowlog-out" \
  "requires --slowlog-out" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 \
  --slowlog-threshold-ms 5

check_rejected "non-positive --slowlog-threshold-ms" \
  "--slowlog-threshold-ms must be > 0" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 \
  --slowlog-out "$tmp/slow.jsonl" --slowlog-threshold-ms 0

check_rejected "--trace-chrome without --batch" \
  "requires --batch" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --rect 0,0,100,100 --trace-chrome "$tmp/trace.json"

check_rejected "empty --trace-chrome path" \
  "--trace-chrome wants a file path" \
  --graph /nonexistent.bin --trips /nonexistent.bin \
  --batch /nonexistent.txt --sample-fraction 0.3 --trace-chrome ""

# Valid cost-accounting flags work end to end: a ~0ms threshold makes every
# query slow, so the log must fill and the summary line must land on
# stderr; the Chrome export must produce a JSON array.
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 \
  --slowlog-out "$tmp/slow.jsonl" --slowlog-threshold-ms 0.0001 \
  --trace-chrome "$tmp/chrome.json" \
  >/dev/null 2>"$tmp/err.txt" || {
  echo "valid --slowlog-out/--trace-chrome run failed:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}
grep -q "slowlog: " "$tmp/err.txt" || {
  echo "missing slowlog summary line on stderr:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}
[ -s "$tmp/slow.jsonl" ] || {
  echo "--slowlog-out produced no records at a ~0ms threshold" >&2
  exit 1
}
head -c1 "$tmp/chrome.json" | grep -q '\[' || {
  echo "--trace-chrome output is not a JSON array:" >&2
  head -c200 "$tmp/chrome.json" >&2
  exit 1
}

# A missing SLO config must fail even with the endpoint requested.
if "$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
    --batch "$tmp/batch.txt" --sample-fraction 0.3 \
    --serve-telemetry 0 --slo-config "$tmp/does-not-exist.conf" \
    >"$tmp/out.txt" 2>"$tmp/err.txt"; then
  echo "missing --slo-config file was accepted (expected failure)" >&2
  exit 1
fi

# Valid telemetry flags serve the batch normally (ephemeral port, no
# linger) and announce the endpoint on stderr.
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 \
  --serve-telemetry 0 --flight-dir "$tmp" \
  >"$tmp/telemetry.out" 2>"$tmp/telemetry.err" || {
  echo "valid --serve-telemetry run failed:" >&2
  cat "$tmp/telemetry.err" >&2
  exit 1
}
grep -q "telemetry: serving on 127.0.0.1:" "$tmp/telemetry.err" || {
  echo "missing telemetry endpoint announcement on stderr:" >&2
  cat "$tmp/telemetry.err" >&2
  exit 1
}

# Durable ingest + recovery serve identical answers over a real dataset:
# write a WAL while serving, then recover from it and diff.
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 \
  --ingest-epochs 4 --wal-dir "$tmp/wal" --snapshot-every 2 \
  >"$tmp/durable.out" 2>"$tmp/durable.err" || {
  echo "durable ingest run failed:" >&2
  cat "$tmp/durable.err" >&2
  exit 1
}
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 \
  --recover --wal-dir "$tmp/wal" \
  >"$tmp/recover.out" 2>"$tmp/recover.err" || {
  echo "recovery run failed:" >&2
  cat "$tmp/recover.err" >&2
  exit 1
}
grep -q "recover: " "$tmp/recover.err" || {
  echo "missing recover summary line on stderr:" >&2
  cat "$tmp/recover.err" >&2
  exit 1
}
diff "$tmp/durable.out" "$tmp/recover.out" || {
  echo "recovered answers differ from the durable serve" >&2
  exit 1
}
