#!/usr/bin/env bash
# Fixture test: innet_query must reject non-positive --trace-sample and
# --shadow-sample values with a clear error BEFORE touching any input file,
# and keep accepting positive values.
set -u

dataset_bin=$1
query_bin=$2

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Invalid 1-in-N values must fail fast (exit nonzero, diagnostic naming the
# flag) even with bogus input paths — validation runs before file I/O.
for flag in trace-sample shadow-sample; do
  for value in 0 -3; do
    if "$query_bin" --graph /nonexistent.bin --trips /nonexistent.bin \
        --batch /nonexistent.txt --sample-fraction 0.3 \
        --$flag $value >"$tmp/out.txt" 2>"$tmp/err.txt"; then
      echo "--$flag $value was accepted (expected rejection)" >&2
      exit 1
    fi
    grep -q -- "--$flag must be a positive integer" "$tmp/err.txt" || {
      echo "--$flag $value: missing/unclear diagnostic:" >&2
      cat "$tmp/err.txt" >&2
      exit 1
    }
    # Rejection happened during validation, not on the missing files.
    grep -qi "nonexistent" "$tmp/err.txt" && {
      echo "--$flag $value: tool touched input files before validating" >&2
      exit 1
    }
  done
done

# Positive values keep working end to end.
"$dataset_bin" generate --junctions 120 --trips 40 --horizon 600 --seed 3 \
  --graph-out "$tmp/g.bin" --trips-out "$tmp/t.bin" >/dev/null || {
  echo "dataset generation failed" >&2
  exit 1
}
cat >"$tmp/batch.txt" <<'EOF'
0,0,15000,15000,0,600
0,0,8000,8000,0,300
EOF
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 \
  --trace-sample 2 --trace-out "$tmp/traces.jsonl" \
  --shadow-sample 1 >/dev/null 2>"$tmp/err.txt" || {
  echo "valid --trace-sample/--shadow-sample run failed:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}

# The shadow report line surfaces the measured error on stderr.
grep -q "shadow: " "$tmp/err.txt" || {
  echo "missing shadow accuracy line on stderr:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}
# 2 queries x 2 bounds, shadowing 1-in-1 => 4 checks.
grep -q "shadow: 4 checks (1-in-1)" "$tmp/err.txt" || {
  echo "unexpected shadow check count (want 4 at 1-in-1):" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}
