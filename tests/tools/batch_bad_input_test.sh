#!/usr/bin/env bash
# Fixture test: innet_query --batch must reject a malformed query file with
# a line-numbered error on stderr and a nonzero exit, and must keep
# answering well-formed files.
set -u

dataset_bin=$1
query_bin=$2
fixture=$3

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$dataset_bin" generate --junctions 120 --trips 40 --horizon 600 --seed 3 \
  --graph-out "$tmp/g.bin" --trips-out "$tmp/t.bin" >/dev/null || {
  echo "dataset generation failed" >&2
  exit 1
}

if "$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$fixture" --sample-fraction 0.3 >/dev/null 2>"$tmp/err.txt"; then
  echo "expected nonzero exit for malformed batch file" >&2
  cat "$tmp/err.txt" >&2
  exit 1
fi

grep -q ":4:" "$tmp/err.txt" || {
  echo "error message lacks the offending line number:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}

printf '# comment\n0,0,15000,15000,0,600\n' >"$tmp/ok.txt"
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/ok.txt" --sample-fraction 0.3 >/dev/null || {
  echo "well-formed batch file should succeed" >&2
  exit 1
}
