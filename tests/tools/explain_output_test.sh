#!/usr/bin/env bash
# Fixture test: innet_query --explain emits one JSON provenance object per
# answered configuration with the schema CI validates (faces,
# boundary_edges, deadspace_fraction, answer, interval), byte-identical
# across runs; --explain-svg writes a non-empty SVG overlay.
set -u

dataset_bin=$1
query_bin=$2

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$dataset_bin" generate --junctions 120 --trips 40 --horizon 600 --seed 3 \
  --graph-out "$tmp/g.bin" --trips-out "$tmp/t.bin" >/dev/null || {
  echo "dataset generation failed" >&2
  exit 1
}

run_explain() {
  "$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
    --rect 0,0,12000,12000 --t1 0 --t2 600 --sample-fraction 0.3 \
    --bound lower --explain --explain-svg "$2" >"$1" 2>"$tmp/err.txt" || {
    echo "explain run failed:" >&2
    cat "$tmp/err.txt" >&2
    exit 1
  }
}

run_explain "$tmp/explain1.json" "$tmp/overlay1.svg"
run_explain "$tmp/explain2.json" "$tmp/overlay2.svg"

# Determinism: two identical invocations produce byte-identical provenance.
cmp -s "$tmp/explain1.json" "$tmp/explain2.json" || {
  echo "explain output differs between identical runs:" >&2
  diff "$tmp/explain1.json" "$tmp/explain2.json" >&2
  exit 1
}

# Schema: exactly one JSON object (single bound), required keys present.
python3 - "$tmp/explain1.json" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 1, f"expected 1 explain object, got {len(lines)}"
record = json.loads(lines[0])
for key in ("faces", "boundary_edges", "deadspace_fraction", "answer",
            "interval"):
    assert key in record, f"missing key {key}: {record}"
assert isinstance(record["faces"], list), record["faces"]
assert record["faces"] == sorted(record["faces"]), "faces not sorted"
interval = record["interval"]
assert isinstance(interval, list) and len(interval) == 2, interval
assert interval[0] <= record["answer"] <= interval[1], record
assert 0.0 <= record["deadspace_fraction"], record
assert record["bound"] == "lower" and record["path"] in (
    "sampled", "degraded"), record
EOF
[ $? -eq 0 ] || exit 1

# The SVG overlay exists and is a real SVG document.
[ -s "$tmp/overlay1.svg" ] || {
  echo "--explain-svg wrote no overlay" >&2
  exit 1
}
grep -q "<svg" "$tmp/overlay1.svg" || {
  echo "overlay is not an SVG document" >&2
  exit 1
}

# The exact (unsampled) path explains too.
"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --rect 0,0,12000,12000 --t1 0 --t2 600 --explain \
  >"$tmp/exact.json" 2>/dev/null || {
  echo "exact explain run failed" >&2
  exit 1
}
python3 - "$tmp/exact.json" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 1, lines
record = json.loads(lines[0])
assert record["path"] == "unsampled" and record["bound"] == "exact", record
assert record["faces"] == [] and record["deadspace_fraction"] == 0.0, record
EOF
