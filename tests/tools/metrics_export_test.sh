#!/usr/bin/env bash
# Fixture test: innet_query --metrics-out must dump the process metrics
# registry in Prometheus text format, with counter values consistent with
# the engine snapshot the tool prints on stderr, and --trace-out must write
# one JSON object per sampled query with a stage breakdown.
set -u

dataset_bin=$1
query_bin=$2

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$dataset_bin" generate --junctions 120 --trips 40 --horizon 600 --seed 3 \
  --graph-out "$tmp/g.bin" --trips-out "$tmp/t.bin" >/dev/null || {
  echo "dataset generation failed" >&2
  exit 1
}

cat >"$tmp/batch.txt" <<'EOF'
# three regions, the first repeated so the boundary cache gets hits
0,0,15000,15000,0,600
0,0,15000,15000,0,600
0,0,8000,8000,0,300
2000,2000,12000,12000,100,500
0,0,15000,15000,0,600
EOF

"$query_bin" --graph "$tmp/g.bin" --trips "$tmp/t.bin" \
  --batch "$tmp/batch.txt" --sample-fraction 0.3 --threads 2 \
  --metrics-out "$tmp/metrics.prom" --trace-out "$tmp/traces.jsonl" \
  >/dev/null 2>"$tmp/err.txt" || {
  echo "batch query run failed:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}

# The engine answers each query under both bounds; stderr reports the
# snapshot as "batch: N queries ... | cache H hits / M misses | ...".
snapshot_hits=$(sed -n 's/.*cache \([0-9]*\) hits.*/\1/p' "$tmp/err.txt")
snapshot_misses=$(sed -n 's/.*hits \/ \([0-9]*\) misses.*/\1/p' "$tmp/err.txt")
[ -n "$snapshot_hits" ] && [ -n "$snapshot_misses" ] || {
  echo "stderr snapshot line missing cache counters:" >&2
  cat "$tmp/err.txt" >&2
  exit 1
}

prom_value() {
  sed -n "s/^$1 \([0-9.]*\)\$/\1/p" "$tmp/metrics.prom"
}

exported_hits=$(prom_value innet_cache_hits)
exported_misses=$(prom_value innet_cache_misses)
[ "$exported_hits" = "$snapshot_hits" ] || {
  echo "innet_cache_hits=$exported_hits != snapshot hits=$snapshot_hits" >&2
  cat "$tmp/metrics.prom" >&2
  exit 1
}
[ "$exported_misses" = "$snapshot_misses" ] || {
  echo "innet_cache_misses=$exported_misses != snapshot misses=$snapshot_misses" >&2
  exit 1
}

# The repeated region must actually hit the cache.
[ "$exported_hits" -gt 0 ] || {
  echo "expected nonzero cache hits for the repeated region" >&2
  exit 1
}

# Registered engine metrics are exported even while zero.
grep -q '^innet_degraded_answers ' "$tmp/metrics.prom" || {
  echo "innet_degraded_answers missing from metrics dump" >&2
  cat "$tmp/metrics.prom" >&2
  exit 1
}
grep -q '^# TYPE innet_query_latency_micros histogram$' "$tmp/metrics.prom" || {
  echo "latency histogram missing from metrics dump" >&2
  exit 1
}

# Traces: 5 queries x 2 bounds = 10 sampled lines, each valid JSON with a
# stage breakdown starting at the cache lookup.
python3 - "$tmp/traces.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert len(lines) == 10, f"expected 10 traces, got {len(lines)}"
for line in lines:
    trace = json.loads(line)
    assert "total_micros" in trace, trace
    stages = [s["name"] for s in trace["stages"]]
    assert stages and stages[0] == "cache_lookup", stages
    assert "estimate" in trace, trace
EOF
