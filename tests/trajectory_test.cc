#include <gtest/gtest.h>

#include "mobility/road_network.h"
#include "mobility/trajectory.h"
#include "mobility/trajectory_generator.h"
#include "util/rng.h"

namespace innet::mobility {
namespace {

graph::PlanarGraph SmallNetwork(uint64_t seed) {
  util::Rng rng(seed);
  RoadNetworkOptions options;
  options.num_junctions = 150;
  return GenerateRoadNetwork(options, rng);
}

TEST(TrajectoryTest, ValidChecksAdjacencyAndTimes) {
  graph::PlanarGraph g = SmallNetwork(1);
  // Walk two hops from node 0.
  graph::NodeId a = 0;
  graph::NodeId b = g.NeighborsOf(a)[0].node;
  graph::NodeId c = g.NeighborsOf(b)[0].node;
  Trajectory ok{{a, b, c}, {0.0, 1.0, 2.0}};
  EXPECT_TRUE(ok.Valid(g));
  Trajectory bad_time{{a, b}, {1.0, 1.0}};
  EXPECT_FALSE(bad_time.Valid(g));
  Trajectory mismatched{{a, b}, {0.0}};
  EXPECT_FALSE(mismatched.Valid(g));
}

TEST(TrajectoryTest, CrossingEventsFollowPath) {
  graph::PlanarGraph g = SmallNetwork(2);
  graph::NodeId a = 5;
  graph::NodeId b = g.NeighborsOf(a)[0].node;
  graph::NodeId c = g.NeighborsOf(b).back().node;
  Trajectory t{{a, b, c}, {0.0, 2.0, 5.0}};
  ASSERT_TRUE(t.Valid(g));
  std::vector<CrossingEvent> events = ExtractCrossingEvents(g, t);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].edge, g.EdgeBetween(a, b));
  EXPECT_DOUBLE_EQ(events[0].time, 2.0);
  EXPECT_EQ(events[0].forward, g.Edge(events[0].edge).u == a);
  EXPECT_EQ(events[1].edge, g.EdgeBetween(b, c));
  EXPECT_DOUBLE_EQ(events[1].time, 5.0);
}

TEST(TrajectoryTest, AllEventsSortedByTime) {
  graph::PlanarGraph g = SmallNetwork(3);
  util::Rng rng(3);
  TrajectoryOptions options;
  options.num_trajectories = 50;
  std::vector<Trajectory> trajectories = GenerateTrajectories(g, options, rng);
  std::vector<CrossingEvent> events = ExtractAllCrossingEvents(g, trajectories);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

class GeneratorProperty : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorProperty, TrajectoriesValidAndGatewayStarted) {
  graph::PlanarGraph g = SmallNetwork(GetParam());
  util::Rng rng(GetParam() + 500);
  TrajectoryOptions options;
  options.num_trajectories = 80;
  std::vector<Trajectory> trajectories = GenerateTrajectories(g, options, rng);
  EXPECT_EQ(trajectories.size(), 80u);
  std::vector<bool> gateway = GatewayMask(g);
  for (const Trajectory& t : trajectories) {
    EXPECT_TRUE(t.Valid(g));
    EXPECT_GE(t.nodes.size(), 2u);
    EXPECT_TRUE(gateway[t.nodes.front()])
        << "trajectory must enter via a gateway";
    EXPECT_GE(t.times.front(), 0.0);
  }
}

TEST_P(GeneratorProperty, InteriorStartsWhenDisabled) {
  graph::PlanarGraph g = SmallNetwork(GetParam());
  util::Rng rng(GetParam() + 900);
  TrajectoryOptions options;
  options.num_trajectories = 60;
  options.enter_from_boundary = false;
  std::vector<Trajectory> trajectories = GenerateTrajectories(g, options, rng);
  std::vector<bool> gateway = GatewayMask(g);
  size_t interior_starts = 0;
  for (const Trajectory& t : trajectories) {
    EXPECT_TRUE(t.Valid(g));
    if (!gateway[t.nodes.front()]) ++interior_starts;
  }
  EXPECT_GT(interior_starts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorProperty, ::testing::Values(4, 5));

TEST(OracleTest, TracksOccupancyThroughCells) {
  graph::PlanarGraph g = SmallNetwork(6);
  graph::NodeId a = 3;
  graph::NodeId b = g.NeighborsOf(a)[0].node;
  graph::NodeId c = g.NeighborsOf(b).back().node;
  ASSERT_NE(a, c);
  Trajectory t{{a, b, c}, {1.0, 2.0, 3.0}};
  ASSERT_TRUE(t.Valid(g));
  OccupancyOracle oracle(g, {t});

  std::vector<bool> cell_b(g.NumNodes(), false);
  cell_b[b] = true;
  // Interior start: visible from arrival at b (t=2), leaves at t=3.
  EXPECT_EQ(oracle.OccupancyAt(cell_b, 1.5), 0);
  EXPECT_EQ(oracle.OccupancyAt(cell_b, 2.0), 1);
  EXPECT_EQ(oracle.OccupancyAt(cell_b, 2.9), 1);
  EXPECT_EQ(oracle.OccupancyAt(cell_b, 3.0), 0);

  std::vector<bool> cell_c(g.NumNodes(), false);
  cell_c[c] = true;
  // Final cell is occupied forever.
  EXPECT_EQ(oracle.OccupancyAt(cell_c, 3.0), 1);
  EXPECT_EQ(oracle.OccupancyAt(cell_c, 1e9), 1);
  EXPECT_EQ(oracle.NetChange(cell_c, 0.0, 10.0), 1);
  EXPECT_EQ(oracle.NetChange(cell_b, 2.5, 10.0), -1);
}

TEST(OracleTest, GatewayStartVisibleFromStart) {
  graph::PlanarGraph g = SmallNetwork(7);
  std::vector<graph::NodeId> gateways = GatewayJunctions(g);
  graph::NodeId a = gateways[0];
  graph::NodeId b = g.NeighborsOf(a)[0].node;
  Trajectory t{{a, b}, {1.0, 2.0}};
  std::vector<bool> mask = GatewayMask(g);
  OccupancyOracle oracle(g, {t}, &mask);
  std::vector<bool> cell_a(g.NumNodes(), false);
  cell_a[a] = true;
  EXPECT_EQ(oracle.OccupancyAt(cell_a, 0.5), 0);  // Before entry.
  EXPECT_EQ(oracle.OccupancyAt(cell_a, 1.0), 1);  // Entered via ⋆v_ext.
  EXPECT_EQ(oracle.OccupancyAt(cell_a, 2.0), 0);  // Moved on to b.
}

TEST(OracleTest, DistinctVisitors) {
  graph::PlanarGraph g = SmallNetwork(8);
  graph::NodeId a = 10;
  graph::NodeId b = g.NeighborsOf(a)[0].node;
  graph::NodeId c = g.NeighborsOf(b).back().node;
  ASSERT_NE(a, c);
  // Object visits b during [2, 3).
  Trajectory t{{a, b, c}, {1.0, 2.0, 3.0}};
  OccupancyOracle oracle(g, {t});
  std::vector<bool> cell_b(g.NumNodes(), false);
  cell_b[b] = true;
  EXPECT_EQ(oracle.DistinctVisitors(cell_b, 0.0, 1.5), 0);
  EXPECT_EQ(oracle.DistinctVisitors(cell_b, 0.0, 2.0), 1);
  EXPECT_EQ(oracle.DistinctVisitors(cell_b, 2.5, 2.7), 1);
  EXPECT_EQ(oracle.DistinctVisitors(cell_b, 3.5, 9.0), 0);
}

}  // namespace
}  // namespace innet::mobility
