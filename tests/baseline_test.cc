#include <gtest/gtest.h>

#include "baseline/euler_histogram.h"
#include "baseline/face_occupancy.h"
#include "baseline/face_sampling.h"
#include "core/framework.h"
#include "core/workload.h"
#include "mobility/trajectory.h"
#include "util/stats.h"

namespace innet::baseline {
namespace {

core::FrameworkOptions SmallOptions(uint64_t seed) {
  core::FrameworkOptions options;
  options.road.num_junctions = 220;
  options.traffic.num_trajectories = 300;
  options.seed = seed;
  return options;
}

class BaselineFixture : public ::testing::Test {
 protected:
  BaselineFixture() : framework_(SmallOptions(11)) {
    core::WorkloadOptions wo;
    wo.area_fraction = 0.08;
    wo.horizon = framework_.Horizon();
    util::Rng rng = framework_.ForkRng();
    queries_ = core::GenerateWorkload(framework_.network(), wo, 20, rng);
  }
  core::Framework framework_;
  std::vector<core::RangeQuery> queries_;
};

TEST_F(BaselineFixture, FaceOccupancyMatchesOracle) {
  const core::SensorNetwork& net = framework_.network();
  FaceOccupancyIndex index(net.mobility(), framework_.trajectories(),
                           &net.gateway_mask());
  mobility::OccupancyOracle oracle(net.mobility(), framework_.trajectories(),
                                   &net.gateway_mask());
  util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    graph::NodeId n = static_cast<graph::NodeId>(
        rng.UniformIndex(net.mobility().NumNodes()));
    std::vector<bool> cell(net.mobility().NumNodes(), false);
    cell[n] = true;
    for (double t : {1000.0, 5000.0, 15000.0}) {
      EXPECT_EQ(index.OccupancyAt(n, t), oracle.OccupancyAt(cell, t));
    }
  }
}

TEST_F(BaselineFixture, EulerOccupancyMatchesGroundTruth) {
  const core::SensorNetwork& net = framework_.network();
  EulerHistogram euler(net.mobility(), framework_.trajectories(),
                       &net.gateway_mask());
  for (const core::RangeQuery& q : queries_) {
    std::vector<bool> mask = net.JunctionMask(q.junctions);
    EXPECT_DOUBLE_EQ(static_cast<double>(euler.OccupancyAt(mask, q.t2)),
                     net.GroundTruthStatic(q.junctions, q.t2));
  }
}

TEST_F(BaselineFixture, EulerConnectedVisitsGEDistinctVisitors) {
  // The Euler identity counts connected visit stretches, which upper-bounds
  // distinct visitors (the classic Euler-histogram overcount) and never
  // undercounts them.
  const core::SensorNetwork& net = framework_.network();
  EulerHistogram euler(net.mobility(), framework_.trajectories(),
                       &net.gateway_mask());
  mobility::OccupancyOracle oracle(net.mobility(), framework_.trajectories(),
                                   &net.gateway_mask());
  for (const core::RangeQuery& q : queries_) {
    std::vector<bool> mask = net.JunctionMask(q.junctions);
    int64_t euler_count = euler.ConnectedVisits(mask, q.t1, q.t2);
    int64_t distinct = oracle.DistinctVisitors(mask, q.t1, q.t2);
    EXPECT_GE(euler_count, distinct);
    // The overcount stays moderate: every re-entry adds at most one.
    EXPECT_LE(euler_count, 3 * distinct + 5);
  }
}

TEST(EulerHistogramTest, SingleObjectIdentityExact) {
  // Hand-built line graph: 4 junctions in a row, object walks across.
  std::vector<geometry::Point> positions = {{0, 0}, {1, 0.1}, {2, 0}, {3, 0.1}};
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 3}};
  graph::PlanarGraph g(std::move(positions), std::move(edges));
  mobility::Trajectory t{{0, 1, 2, 3}, {0.0, 1.0, 2.0, 3.0}};
  EulerHistogram euler(g, {t});
  // Region {1, 2}: the object is one connected visit during [1, 3).
  std::vector<bool> region = {false, true, true, false};
  EXPECT_EQ(euler.ConnectedVisits(region, 0.0, 10.0), 1);
  EXPECT_EQ(euler.ConnectedVisits(region, 3.5, 10.0), 0);
  // Region {1} and {3}: disjoint visits counted separately.
  std::vector<bool> split = {false, true, false, true};
  EXPECT_EQ(euler.ConnectedVisits(split, 0.0, 10.0), 2);
}

TEST_F(BaselineFixture, FullySampledBaselineIsExactForStatic) {
  const core::SensorNetwork& net = framework_.network();
  util::Rng rng = framework_.ForkRng();
  FaceSamplingBaseline baseline(net, framework_.trajectories(),
                                net.mobility().NumNodes(), rng);
  EXPECT_EQ(baseline.NumSampledFaces(), net.mobility().NumNodes());
  for (const core::RangeQuery& q : queries_) {
    core::QueryAnswer a = baseline.Answer(q, core::CountKind::kStatic);
    EXPECT_FALSE(a.missed);
    EXPECT_DOUBLE_EQ(a.estimate, net.GroundTruthStatic(q.junctions, q.t2));
    EXPECT_EQ(a.nodes_accessed, q.junctions.size());
  }
}

TEST_F(BaselineFixture, PartialSamplingIsUnbiasedOnAverage) {
  const core::SensorNetwork& net = framework_.network();
  // Average the Horvitz-Thompson estimate over many sampling draws: it
  // should approach the truth.
  util::Accumulator ratio;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    util::Rng rng(seed);
    FaceSamplingBaseline baseline(net, framework_.trajectories(),
                                  net.mobility().NumNodes() / 3, rng,
                                  /*horvitz_thompson=*/true);
    for (const core::RangeQuery& q : queries_) {
      double truth = net.GroundTruthStatic(q.junctions, q.t2);
      if (truth < 10.0) continue;  // Skip tiny counts for stability.
      core::QueryAnswer a = baseline.Answer(q, core::CountKind::kStatic);
      if (a.missed) continue;
      ratio.Add(a.estimate / truth);
    }
  }
  ASSERT_GT(ratio.count(), 50u);
  EXPECT_NEAR(ratio.Summarize().mean, 1.0, 0.25);
}

TEST_F(BaselineFixture, SparseSamplingMissesSmallQueries) {
  const core::SensorNetwork& net = framework_.network();
  util::Rng rng = framework_.ForkRng();
  FaceSamplingBaseline baseline(net, framework_.trajectories(), 3, rng);
  size_t missed = 0;
  for (const core::RangeQuery& q : queries_) {
    if (baseline.Answer(q, core::CountKind::kStatic).missed) ++missed;
  }
  EXPECT_GT(missed, 0u);
}

TEST_F(BaselineFixture, StorageScalesWithSampledFaces) {
  const core::SensorNetwork& net = framework_.network();
  util::Rng rng1 = framework_.ForkRng();
  util::Rng rng2 = framework_.ForkRng();
  FaceSamplingBaseline small(net, framework_.trajectories(), 20, rng1);
  FaceSamplingBaseline large(net, framework_.trajectories(),
                             net.mobility().NumNodes(), rng2);
  EXPECT_LT(small.StorageBytes(), large.StorageBytes());
  EXPECT_GT(large.StorageBytes(), 0u);
}

}  // namespace
}  // namespace innet::baseline
