// Tests for per-query cost accounting (docs/OBSERVABILITY.md §9): the
// shared region-size decile bucketing, the lock-free digest table (exact
// totals under concurrent writers — run under TSan in CI), and the
// rate-limited slow-query log.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/query_cost.h"
#include "obs/query_digest.h"
#include "obs/slowlog.h"

namespace innet::obs {
namespace {

TEST(RegionDecileTest, BucketsMatchDivisionFormExhaustively) {
  // RegionDecileBuckets must agree with RegionSizeDecile for every region
  // size, including past the total (clamped to 9) — the digest key and the
  // accuracy histograms share this bucketing.
  for (size_t total = 0; total <= 137; ++total) {
    RegionDecileBuckets buckets(total);
    for (size_t r = 0; r <= 2 * total + 5; ++r) {
      ASSERT_EQ(buckets.Decile(r), RegionSizeDecile(r, total))
          << "total=" << total << " r=" << r;
    }
  }
  // Large totals: the threshold arithmetic must not overflow-drift.
  for (size_t total : {size_t{1000003}, size_t{1} << 40}) {
    RegionDecileBuckets buckets(total);
    for (size_t r : {size_t{0}, total / 10, total / 3, total / 2,
                     total - 1, total, total + 7}) {
      ASSERT_EQ(buckets.Decile(r), RegionSizeDecile(r, total))
          << "total=" << total << " r=" << r;
    }
  }
}

TEST(RegionDecileTest, DefaultAndZeroTotalPinDecileZero) {
  RegionDecileBuckets unset;
  EXPECT_EQ(unset.Decile(0), 0u);
  EXPECT_EQ(unset.Decile(12345), 0u);
  RegionDecileBuckets zero(0);
  EXPECT_EQ(zero.Decile(99), 0u);
}

TEST(QueryDigestTest, IndexAndDecodeAreInverse) {
  for (size_t index = 0; index < kDigestSlots; ++index) {
    DigestKey key = DecodeDigest(index);
    QueryCostProfile profile;
    profile.kind = key.kind;
    profile.bound = key.bound;
    profile.region_decile = key.decile;
    profile.store_kind = key.store_kind;
    profile.path = key.path;
    EXPECT_EQ(DigestIndex(profile), index);
  }
}

QueryCostProfile MakeProfile(uint8_t kind, uint8_t decile,
                             uint64_t total_nanos) {
  QueryCostProfile profile;
  profile.kind = kind;
  profile.bound = 0;
  profile.store_kind = 0;
  profile.path = QueryPathKind::kCacheHit;
  profile.region_decile = decile;
  profile.faces_resolved = 3;
  profile.region_junctions = 40;
  profile.boundary_edges = 11;
  profile.boundary_sensors = 7;
  profile.csr_timestamps = 100;
  profile.bucket_probes = 22;
  profile.resolve_nanos = total_nanos / 4;
  profile.total_nanos = total_nanos;
  profile.integrate_nanos = total_nanos - total_nanos / 4;
  return profile;
}

TEST(QueryDigestTest, MergesCountersAndDerivesIntegrateTime) {
  QueryDigestTable table;
  for (int i = 0; i < 10; ++i) {
    table.Record(MakeProfile(0, 3, 8000));  // 8us total, 2us resolve.
  }
  QueryCostProfile missed = MakeProfile(1, 9, 2000);
  missed.missed = true;
  table.Record(missed);

  EXPECT_EQ(table.TotalRecorded(), 11u);
  EXPECT_EQ(table.DistinctDigests(), 2u);

  std::vector<QueryDigestRow> top = table.TopK(10);
  ASSERT_EQ(top.size(), 2u);
  // Ranked by total accumulated time: the 10x8us digest first.
  EXPECT_EQ(top[0].count, 10u);
  EXPECT_EQ(top[0].key.kind, 0);
  EXPECT_EQ(top[0].key.decile, 3);
  EXPECT_EQ(top[0].missed, 0u);
  EXPECT_EQ(top[0].faces, 30u);
  EXPECT_EQ(top[0].boundary_edges, 110u);
  EXPECT_EQ(top[0].boundary_sensors, 70u);
  EXPECT_EQ(top[0].csr_timestamps, 1000u);
  EXPECT_EQ(top[0].bucket_probes, 220u);
  EXPECT_DOUBLE_EQ(top[0].total_micros, 80.0);
  EXPECT_DOUBLE_EQ(top[0].resolve_micros, 20.0);
  // integrate is derived as total - resolve at merge time.
  EXPECT_DOUBLE_EQ(top[0].integrate_micros, 60.0);
  EXPECT_EQ(top[0].Label(), "static/lower/d3/exact/cache_hit");

  EXPECT_EQ(top[1].count, 1u);
  EXPECT_EQ(top[1].missed, 1u);
  EXPECT_EQ(top[1].Label(), "transient/lower/d9/exact/cache_hit");

  std::string json = table.ToJson(10);
  EXPECT_NE(json.find("\"recorded\":11"), std::string::npos);
  EXPECT_NE(json.find("\"digests\":2"), std::string::npos);
  EXPECT_NE(json.find("\"digest\":\"static/lower/d3/exact/cache_hit\""),
            std::string::npos);
}

TEST(QueryDigestTest, ExactTotalsUnderEightConcurrentWriters) {
  // The ISSUE's exactness contract: per-thread cells (plain stores on the
  // first registrants, fetch_adds on the shared overflow cell) must sum
  // exactly — no lost updates — with 8 writers hammering the same two
  // digests. TSan runs this in CI.
  QueryDigestTable table;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&table, t] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Record(MakeProfile(static_cast<uint8_t>(t % 2),
                                 static_cast<uint8_t>(t % 2 == 0 ? 2 : 7),
                                 1000));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(table.TotalRecorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(table.DistinctDigests(), 2u);
  std::vector<QueryDigestRow> top = table.TopK(4);
  ASSERT_EQ(top.size(), 2u);
  uint64_t expected = static_cast<uint64_t>(kThreads / 2) * kPerThread;
  EXPECT_EQ(top[0].count, expected);
  EXPECT_EQ(top[1].count, expected);
  EXPECT_EQ(top[0].boundary_edges, expected * 11);
  EXPECT_EQ(top[1].boundary_edges, expected * 11);
}

TEST(QueryDigestTest, ExactTotalsWithMoreWritersThanCells) {
  // More recording threads than private cells: the late registrants all
  // share the overflow cell via fetch_adds, and the sum must stay exact.
  QueryDigestTable table;
  constexpr int kThreads = 24;  // > kMetricCells (16).
  constexpr int kPerThread = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&table] {
      for (int i = 0; i < kPerThread; ++i) {
        table.Record(MakeProfile(0, 5, 1000));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(table.TotalRecorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  std::vector<QueryDigestRow> top = table.TopK(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].count, static_cast<uint64_t>(kThreads) * kPerThread);
}

ExplainRecord MakeExplain() {
  ExplainRecord explain;
  explain.kind = "static";
  explain.bound = "lower";
  explain.path = "sampled";
  explain.region_cells = 40;
  explain.resolved_cells = 44;
  explain.boundary_edges = 11;
  explain.boundary_sensors = 7;
  return explain;
}

TEST(SlowLogTest, ThresholdGateUsesLatencyOrBoundaryCost) {
  SlowQueryLogOptions options;
  options.threshold_micros = 10.0;
  options.threshold_boundary_edges = 500;
  MetricsRegistry registry;
  options.registry = &registry;
  SlowQueryLog log(options);

  QueryCostProfile fast = MakeProfile(0, 1, 5000);  // 5us < 10us.
  EXPECT_FALSE(log.IsSlow(fast));
  QueryCostProfile slow = MakeProfile(0, 1, 50000);  // 50us.
  EXPECT_TRUE(log.IsSlow(slow));
  QueryCostProfile huge = MakeProfile(0, 1, 5000);
  huge.boundary_edges = 600;  // Fast but enormous: still slow.
  EXPECT_TRUE(log.IsSlow(huge));
}

TEST(SlowLogTest, BurstIsRateLimitedAndSuppressionCounted) {
  SlowQueryLogOptions options;
  options.threshold_micros = 1.0;
  options.max_records_per_sec = 0.001;  // Effectively no refill in-test.
  options.burst = 5;
  options.keep_last = 3;
  MetricsRegistry registry;
  options.registry = &registry;
  SlowQueryLog log(options);

  QueryCostProfile slow = MakeProfile(0, 1, 50000);
  ExplainRecord explain = MakeExplain();
  int admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (log.Admit()) {
      log.Record(slow, explain);
      ++admitted;
    }
  }
  // A 100-query burst emits at most the bucket's burst size...
  EXPECT_EQ(admitted, 5);
  EXPECT_EQ(log.Records(), 5u);
  // ...and the rest are counted, not silently dropped.
  EXPECT_EQ(log.Suppressed(), 95u);
  EXPECT_EQ(registry.GetCounter("innet_slowlog_records_total").Value(), 5u);
  EXPECT_EQ(registry.GetCounter("innet_slowlog_suppressed_total").Value(),
            95u);
  // The in-memory ring keeps only the last keep_last records.
  EXPECT_EQ(log.RecentRecords().size(), 3u);
}

TEST(SlowLogTest, RecordCarriesCostProfileAndExplainJson) {
  SlowQueryLogOptions options;
  options.threshold_micros = 1.0;
  MetricsRegistry registry;
  options.registry = &registry;
  SlowQueryLog log(options);

  QueryCostProfile slow = MakeProfile(0, 3, 50000);
  ASSERT_TRUE(log.IsSlow(slow));
  ASSERT_TRUE(log.Admit());
  log.Record(slow, MakeExplain());

  std::vector<std::string> records = log.RecentRecords();
  ASSERT_EQ(records.size(), 1u);
  const std::string& line = records[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_unix\":"), std::string::npos);
  EXPECT_NE(line.find("\"total_micros\":50"), std::string::npos);
  EXPECT_NE(line.find("\"digest\":{\"kind\":\"static\""),
            std::string::npos);
  EXPECT_NE(line.find("\"decile\":3"), std::string::npos);
  EXPECT_NE(line.find("\"cost\":{\"faces\":3"), std::string::npos);
  EXPECT_NE(line.find("\"boundary_edges\":11"), std::string::npos);
  EXPECT_NE(line.find("\"explain\":{"), std::string::npos);
}

TEST(SlowLogTest, AppendsJsonLinesToConfiguredFile) {
  std::string path =
      ::testing::TempDir() + "/slowlog_test_records.jsonl";
  std::remove(path.c_str());
  {
    SlowQueryLogOptions options;
    options.threshold_micros = 1.0;
    options.path = path;
    MetricsRegistry registry;
    options.registry = &registry;
    SlowQueryLog log(options);
    ExplainRecord explain = MakeExplain();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(log.Admit());
      log.Record(MakeProfile(0, 1, 20000 + 1000 * i), explain);
    }
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace innet::obs
