#include <gtest/gtest.h>

#include <algorithm>

#include "forms/tracking_form.h"
#include "learned/rolling_store.h"
#include "util/rng.h"

namespace innet::learned {
namespace {

RollingOptions TightOptions() {
  RollingOptions options;
  options.window_seconds = 100.0;
  options.retained_windows = 5;
  options.model_type = ModelType::kPiecewiseLinear;
  options.model.epsilon = 1.0;
  options.model.time_scale = 1000.0;
  return options;
}

TEST(RollingStoreTest, ExactWithinRetention) {
  RollingWindowStore store(2, TightOptions());
  forms::TrackingForm exact(2);
  util::Rng rng(1);
  double t = 0.0;
  // 400 events over 4 windows: everything retained (5-window capacity).
  for (int i = 0; i < 400; ++i) {
    t += rng.Uniform(0.5, 1.5);
    store.RecordTraversal(0, true, t);
    exact.RecordTraversal(0, true, t);
  }
  EXPECT_DOUBLE_EQ(store.RetentionStart(0, true), 0.0);
  for (double q = 0.0; q <= t; q += 13.0) {
    // PLA guarantees +/- epsilon at training points; between events the
    // interpolated value can deviate by up to one extra count.
    EXPECT_NEAR(store.CountUpTo(0, true, q), exact.CountUpTo(0, true, q),
                2.0 + 1e-9);
  }
}

TEST(RollingStoreTest, EvictsOldWindows) {
  RollingOptions options = TightOptions();
  RollingWindowStore store(1, options);
  // 20 windows of 10 events each: only the last 5 stay modeled.
  for (int w = 0; w < 20; ++w) {
    for (int i = 0; i < 10; ++i) {
      store.RecordTraversal(0, true, w * 100.0 + i * 9.0);
    }
  }
  EXPECT_EQ(store.WindowCount(0, true), 5u);
  EXPECT_DOUBLE_EQ(store.RetentionStart(0, true), 15.0 * 100.0);
  // Total at the end accounts for evicted events exactly.
  EXPECT_NEAR(store.CountUpTo(0, true, 1e9), 200.0, 5.0);
}

TEST(RollingStoreTest, RecentRangeCountsAccurateAfterEviction) {
  RollingOptions options = TightOptions();
  RollingWindowStore store(1, options);
  forms::TrackingForm exact(1);
  util::Rng rng(2);
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += rng.Uniform(0.2, 0.8);
    store.RecordTraversal(0, true, t);
    exact.RecordTraversal(0, true, t);
  }
  double retention = store.RetentionStart(0, true);
  ASSERT_GT(retention, 0.0);  // Eviction happened.
  // Range queries fully inside the retained horizon stay tight.
  for (double a = retention + 10.0; a + 50.0 < t; a += 60.0) {
    double got = store.CountUpTo(0, true, a + 50.0) -
                 store.CountUpTo(0, true, a);
    double want = exact.CountInRange(0, true, a, a + 50.0);
    EXPECT_NEAR(got, want, 2.5);
  }
}

TEST(RollingStoreTest, OldQueriesLowerBoundTruth) {
  RollingWindowStore store(1, TightOptions());
  forms::TrackingForm exact(1);
  for (int i = 0; i < 2000; ++i) {
    double t = i * 0.7;
    store.RecordTraversal(0, true, t);
    exact.RecordTraversal(0, true, t);
  }
  double retention = store.RetentionStart(0, true);
  ASSERT_GT(retention, 0.0);
  for (double q = 0.0; q < retention; q += retention / 7.0) {
    EXPECT_LE(store.CountUpTo(0, true, q),
              exact.CountUpTo(0, true, q) + 1.0);
  }
}

TEST(RollingStoreTest, StorageBoundedRegardlessOfStreamLength) {
  RollingOptions options = TightOptions();
  RollingWindowStore store(1, options);
  size_t bytes_at_10k = 0;
  for (int i = 0; i < 100000; ++i) {
    // Uniform arrivals compress to few PLA segments per window.
    store.RecordTraversal(0, true, i * 0.31);
    if (i == 9999) bytes_at_10k = store.StorageBytes();
  }
  // Bounded: within 2x of the 10k-event snapshot despite 10x more data.
  EXPECT_LE(store.StorageBytes(), 2 * bytes_at_10k);
  // And far below exact storage.
  EXPECT_LT(store.StorageBytes(), 100000 * sizeof(double) / 50);
}

TEST(RollingStoreTest, DirectionsIndependent) {
  RollingWindowStore store(1, TightOptions());
  store.RecordTraversal(0, true, 5.0);
  store.RecordTraversal(0, false, 7.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(0, true, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(0, false, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(0, false, 6.0), 0.0);
  EXPECT_EQ(store.WindowCount(0, true), 1u);
  EXPECT_EQ(store.WindowCount(0, false), 1u);
}

TEST(RollingStoreTest, EmptyStoreAnswersZero) {
  RollingWindowStore store(3, TightOptions());
  EXPECT_DOUBLE_EQ(store.CountUpTo(1, true, 100.0), 0.0);
  EXPECT_EQ(store.WindowCount(1, true), 0u);
  EXPECT_DOUBLE_EQ(store.RetentionStart(1, true), 0.0);
}

}  // namespace
}  // namespace innet::learned
