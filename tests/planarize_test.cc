#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/planarize.h"
#include "io/serialize.h"
#include "mobility/road_network.h"
#include "util/rng.h"

namespace innet::graph {
namespace {

using geometry::Point;

TEST(PlanarizeTest, SimpleCrossBecomesFiveNodes) {
  // Two diagonals of a square crossing in the middle, plus the square's
  // sides for connectivity.
  std::vector<Point> positions = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0},  // Square.
      {0, 2}, {1, 3},                  // Crossing diagonals (flyover).
  };
  auto result = Planarize(std::move(positions), std::move(edges));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->inserted_nodes, 1u);
  EXPECT_EQ(result->split_edges, 2u);
  EXPECT_EQ(result->graph.NumNodes(), 5u);
  EXPECT_EQ(result->graph.NumEdges(), 8u);  // 4 sides + 4 half diagonals.
  // The new node sits at the center.
  EXPECT_NEAR(result->graph.Position(4).x, 1.0, 1e-9);
  EXPECT_NEAR(result->graph.Position(4).y, 1.0, 1e-9);
  // Euler holds (checked internally, but assert the face count: 4 triangles
  // + outer).
  EXPECT_EQ(result->graph.NumFaces(), 5u);
}

TEST(PlanarizeTest, AlreadyPlanarPassesThrough) {
  util::Rng rng(3);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 120;
  PlanarGraph g = mobility::GenerateRoadNetwork(options, rng);
  std::vector<Point> positions(g.positions());
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    edges.emplace_back(g.Edge(e).u, g.Edge(e).v);
  }
  auto result = Planarize(std::move(positions), std::move(edges));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->inserted_nodes, 0u);
  EXPECT_EQ(result->graph.NumNodes(), g.NumNodes());
  EXPECT_EQ(result->graph.NumEdges(), g.NumEdges());
}

TEST(PlanarizeTest, MultiWayCrossingSharedNode) {
  // Three concurrent segments through the origin: one crossing node only.
  std::vector<Point> positions = {{-2, 0},      {2, 0},  {0, -2}, {0, 2},
                                  {-1.5, -1.7}, {1.5, 1.7}};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {2, 3}, {4, 5},
      // Connect endpoints so the result is connected.
      {0, 2}, {2, 1}, {1, 3}, {3, 0}, {4, 0}, {5, 1}};
  auto result = Planarize(std::move(positions), std::move(edges));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The three main segments pairwise cross near the origin. They are not
  // exactly concurrent (the diagonal passes through (0,0) too), so at least
  // one and at most three crossing nodes appear there, plus crossings of
  // the diagonal with the frame edges are absent by construction.
  EXPECT_GE(result->inserted_nodes, 1u);
  EXPECT_LE(result->inserted_nodes, 3u);
}

TEST(PlanarizeTest, TJunctionReusesEndpoint) {
  // Edge (2,3) ends exactly on edge (0,1)'s interior.
  std::vector<Point> positions = {{0, 0}, {4, 0}, {2, 0}, {2, 3}};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {2, 3}, {3, 0}};  // Third edge for connectivity.
  auto result = Planarize(std::move(positions), std::move(edges));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->inserted_nodes, 0u);  // Reuses node 2.
  EXPECT_EQ(result->graph.NumNodes(), 4u);
  // Edge (0,1) split into (0,2) and (2,1).
  EXPECT_NE(result->graph.EdgeBetween(0, 2), kInvalidEdge);
  EXPECT_NE(result->graph.EdgeBetween(2, 1), kInvalidEdge);
  EXPECT_EQ(result->graph.EdgeBetween(0, 1), kInvalidEdge);
}

TEST(PlanarizeTest, CollinearOverlapMergesIntoPath) {
  // Segment (2,3) lies inside segment (0,1) on the x axis: the overlap
  // merges into the path 0-2-3-1 (unsplit OSM ways overlapping a detailed
  // segment).
  auto result = Planarize({{0, 0}, {4, 0}, {1, 0}, {3, 0}},
                          {{0, 1}, {2, 3}});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->inserted_nodes, 0u);
  EXPECT_EQ(result->graph.NumEdges(), 3u);
  EXPECT_NE(result->graph.EdgeBetween(0, 2), kInvalidEdge);
  EXPECT_NE(result->graph.EdgeBetween(2, 3), kInvalidEdge);
  EXPECT_NE(result->graph.EdgeBetween(3, 1), kInvalidEdge);
}

TEST(PlanarizeTest, RejectsBadInput) {
  EXPECT_FALSE(Planarize({{0, 0}, {1, 1}}, {{0, 0}}).ok());  // Self loop.
  EXPECT_FALSE(Planarize({{0, 0}, {1, 1}}, {{0, 2}}).ok());  // Bad id.
  EXPECT_FALSE(
      Planarize({{0, 0}, {1, 1}}, {{0, 1}, {1, 0}}).ok());  // Duplicate.
  EXPECT_FALSE(Planarize({{0, 0}, {0, 0}, {1, 1}},
                         {{0, 2}, {1, 2}})
                   .ok());  // Duplicate position.
  // Disconnected.
  EXPECT_FALSE(Planarize({{0, 0}, {1, 0}, {5, 5}, {6, 5}},
                         {{0, 1}, {2, 3}})
                   .ok());
}

TEST(CsvImportTest, RoundTripWithCrossings) {
  std::string path =
      (std::filesystem::temp_directory_path() / "innet_roads.csv").string();
  {
    std::ofstream out(path);
    out << "# tiny city with a flyover\n";
    out << "node,0,0,0\nnode,1,2,0\nnode,2,2,2\nnode,3,0,2\n";
    out << "edge,0,1\nedge,1,2\nedge,2,3\nedge,3,0\n";
    out << "edge,0,2\nedge,1,3\n";
  }
  auto imported = io::ImportRoadNetworkCsv(path);
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(imported->inserted_crossings, 1u);
  EXPECT_EQ(imported->graph.NumNodes(), 5u);

  // Export and re-import: stable.
  std::string path2 =
      (std::filesystem::temp_directory_path() / "innet_roads2.csv").string();
  ASSERT_TRUE(io::ExportRoadNetworkCsv(imported->graph, path2).ok());
  auto again = io::ImportRoadNetworkCsv(path2);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->inserted_crossings, 0u);  // Already planar.
  EXPECT_EQ(again->graph.NumNodes(), imported->graph.NumNodes());
  EXPECT_EQ(again->graph.NumEdges(), imported->graph.NumEdges());
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(CsvImportTest, RejectsMalformedFiles) {
  std::string path =
      (std::filesystem::temp_directory_path() / "innet_bad.csv").string();
  auto write_and_check = [&](const std::string& content) {
    {
      std::ofstream out(path);
      out << content;
    }
    auto imported = io::ImportRoadNetworkCsv(path);
    EXPECT_FALSE(imported.ok()) << content;
  };
  write_and_check("garbage,1,2\n");
  write_and_check("node,0,0\n");                   // Missing y.
  write_and_check("node,0,0,0\nnode,0,1,1\n");     // Repeated id.
  write_and_check("node,0,0,0\nnode,2,1,1\n");     // Sparse ids.
  write_and_check("node,0,0,0\nnode,1,1,1\nedge,0,5\n");  // Bad endpoint.
  write_and_check("node,0,0,0\nnode,1,1,1\nedge,0,x\n");  // Bad number.
  std::remove(path.c_str());
  EXPECT_FALSE(io::ImportRoadNetworkCsv("/nope/missing.csv").ok());
}

}  // namespace
}  // namespace innet::graph
