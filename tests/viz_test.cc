#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/framework.h"
#include "sampling/samplers.h"
#include "viz/network_render.h"
#include "viz/svg.h"

namespace innet::viz {
namespace {

TEST(SvgCanvasTest, DocumentStructure) {
  SvgCanvas canvas(geometry::Rect(0, 0, 100, 50), 400.0);
  canvas.DrawLine({0, 0}, {100, 50}, "#ff0000", 2.0);
  canvas.DrawCircle({50, 25}, 5.0, "#00ff00");
  canvas.DrawRect(geometry::Rect(10, 10, 30, 20), "#0000ff");
  canvas.DrawPolygon(geometry::Polygon({{1, 1}, {5, 1}, {3, 4}}), "#333");
  canvas.DrawText({50, 25}, "label");
  std::string doc = canvas.ToString();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("<line"), std::string::npos);
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<rect"), std::string::npos);
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find("label"), std::string::npos);
  // Aspect ratio preserved: 400 x 200 canvas.
  EXPECT_NE(doc.find("height=\"200.0\""), std::string::npos);
}

TEST(SvgCanvasTest, CoordinateMapping) {
  SvgCanvas canvas(geometry::Rect(0, 0, 10, 10), 100.0);
  // World (0, 0) is the bottom-left -> pixel (0, 100); world (10, 10) is
  // top-right -> pixel (100, 0).
  canvas.DrawCircle({0, 0}, 1.0, "#000");
  canvas.DrawCircle({10, 10}, 1.0, "#000");
  std::string doc = canvas.ToString();
  EXPECT_NE(doc.find("cx=\"0.0\" cy=\"100.0\""), std::string::npos);
  EXPECT_NE(doc.find("cx=\"100.0\" cy=\"0.0\""), std::string::npos);
}

TEST(SvgCanvasTest, WriteToFile) {
  SvgCanvas canvas(geometry::Rect(0, 0, 10, 10), 100.0);
  canvas.DrawCircle({5, 5}, 2.0, "#123456");
  std::string path =
      (std::filesystem::temp_directory_path() / "innet_viz_test.svg").string();
  ASSERT_TRUE(canvas.WriteToFile(path).ok());
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::remove(path.c_str());
  EXPECT_FALSE(canvas.WriteToFile("/nonexistent_dir_xyz/out.svg").ok());
}

TEST(NetworkRenderTest, RendersDeployment) {
  core::FrameworkOptions options;
  options.road.num_junctions = 200;
  options.traffic.num_trajectories = 50;
  options.seed = 12;
  core::Framework framework(options);
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, 30, core::DeploymentOptions{}, rng);

  RenderOptions render;
  render.draw_sensors = true;
  render.query_rect = geometry::Rect(2000, 2000, 6000, 6000);
  std::string path =
      (std::filesystem::temp_directory_path() / "innet_render_test.svg")
          .string();
  ASSERT_TRUE(RenderNetwork(framework.network(), &deployment.graph(), render,
                            path)
                  .ok());
  // The file should contain roads, monitored edges, comm sensors, and the
  // query rect: i.e., plenty of elements.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  EXPECT_GT(size, 10000);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace innet::viz
