#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "core/framework.h"
#include "core/workload.h"
#include "forms/frozen_tracking_form.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/batch_query_engine.h"
#include "runtime/boundary_cache.h"
#include "runtime/ingest_pipeline.h"
#include "sampling/samplers.h"
#include "util/thread_pool.h"

namespace innet::runtime {
namespace {

using core::BoundMode;
using core::CountKind;
using core::QueryAnswer;
using core::RangeQuery;

core::FrameworkOptions SmallOptions(uint64_t seed) {
  core::FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 400;
  options.seed = seed;
  return options;
}

// Everything except wall-clock time must match exactly.
void ExpectIdentical(const std::vector<QueryAnswer>& a,
                     const std::vector<QueryAnswer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].estimate, b[i].estimate) << "query " << i;
    EXPECT_EQ(a[i].missed, b[i].missed) << "query " << i;
    EXPECT_EQ(a[i].nodes_accessed, b[i].nodes_accessed) << "query " << i;
    EXPECT_EQ(a[i].edges_accessed, b[i].edges_accessed) << "query " << i;
  }
}

class BatchEngineFixture : public ::testing::Test {
 protected:
  BatchEngineFixture() : framework_(SmallOptions(11)) {
    core::WorkloadOptions wo;
    wo.area_fraction = 0.08;
    wo.horizon = framework_.Horizon();
    util::Rng rng = framework_.ForkRng();
    queries_ = GenerateWorkload(framework_.network(), wo, 40, rng);
    // Repeat the workload to give the boundary cache something to hit, the
    // access pattern of polling dashboards.
    std::vector<RangeQuery> repeated = queries_;
    for (int rep = 0; rep < 3; ++rep) {
      repeated.insert(repeated.end(), queries_.begin(), queries_.end());
    }
    queries_ = std::move(repeated);

    sampling::KdTreeSampler sampler;
    util::Rng drng = framework_.ForkRng();
    deployment_ = std::make_unique<core::Deployment>(
        framework_.DeployWithSampler(sampler,
                                     framework_.network().NumSensors() / 4,
                                     core::DeploymentOptions{}, drng));
  }

  std::vector<QueryAnswer> SerialReference(CountKind kind,
                                           BoundMode bound) const {
    core::SampledQueryProcessor processor = deployment_->processor();
    std::vector<QueryAnswer> answers;
    answers.reserve(queries_.size());
    for (const RangeQuery& q : queries_) {
      answers.push_back(processor.Answer(q, kind, bound));
    }
    return answers;
  }

  core::Framework framework_;
  std::vector<RangeQuery> queries_;
  std::unique_ptr<core::Deployment> deployment_;
};

TEST_F(BatchEngineFixture, MatchesSerialProcessorColdAndWarm) {
  for (BoundMode bound : {BoundMode::kLower, BoundMode::kUpper}) {
    for (CountKind kind : {CountKind::kStatic, CountKind::kTransient}) {
      std::vector<QueryAnswer> reference = SerialReference(kind, bound);

      BatchEngineOptions options;
      options.num_threads = 8;
      BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                              options);
      // Cache-cold pass.
      ExpectIdentical(engine.AnswerBatch(queries_, kind, bound), reference);
      // Cache-warm pass must reproduce the same answers from cached
      // boundaries.
      ExpectIdentical(engine.AnswerBatch(queries_, kind, bound), reference);
    }
  }
}

TEST_F(BatchEngineFixture, EightWorkersMatchSerialEngine) {
  // The ISSUE's stress shape: the same batch answered serially and with 8
  // workers must be identical, cache-cold and cache-warm.
  BatchEngineOptions serial_options;
  serial_options.num_threads = 0;
  BatchEngineOptions parallel_options;
  parallel_options.num_threads = 8;
  BatchQueryEngine serial(deployment_->graph(), deployment_->store(),
                          serial_options);
  BatchQueryEngine parallel(deployment_->graph(), deployment_->store(),
                            parallel_options);
  for (int pass = 0; pass < 2; ++pass) {  // Pass 0 cold, pass 1 warm.
    std::vector<QueryAnswer> s =
        serial.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
    std::vector<QueryAnswer> p =
        parallel.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
    ExpectIdentical(s, p);
  }
}

TEST_F(BatchEngineFixture, FrozenStoreMatchesTrackingFormUnderEightWorkers) {
  // The tentpole identity: a frozen (CSR + fused kernel) store must answer
  // every batch bit-identically to the TrackingForm it snapshots — under 8
  // workers, cache-cold and cache-warm (the TSan CI job runs this too, so
  // the frozen read path is also proven race-free).
  forms::FrozenTrackingForm frozen = deployment_->tracking_store()->Freeze();
  for (BoundMode bound : {BoundMode::kLower, BoundMode::kUpper}) {
    for (CountKind kind : {CountKind::kStatic, CountKind::kTransient}) {
      BatchEngineOptions options;
      options.num_threads = 8;
      BatchQueryEngine reference(deployment_->graph(), deployment_->store(),
                                 options);
      BatchQueryEngine fast(deployment_->graph(), frozen, options);
      for (int pass = 0; pass < 2; ++pass) {  // Pass 0 cold, pass 1 warm.
        std::vector<QueryAnswer> a = reference.AnswerBatch(queries_, kind,
                                                           bound);
        std::vector<QueryAnswer> b = fast.AnswerBatch(queries_, kind, bound);
        ExpectIdentical(a, b);
      }
    }
  }
}

TEST_F(BatchEngineFixture, FrozenStoreExplainRecordsAreIdentical) {
  forms::FrozenTrackingForm frozen = deployment_->tracking_store()->Freeze();
  BatchEngineOptions options;
  options.num_threads = 4;
  BatchQueryEngine reference(deployment_->graph(), deployment_->store(),
                             options);
  BatchQueryEngine fast(deployment_->graph(), frozen, options);
  std::vector<obs::ExplainRecord> ra;
  std::vector<obs::ExplainRecord> rb;
  std::vector<QueryAnswer> a = reference.AnswerBatchExplained(
      queries_, CountKind::kStatic, BoundMode::kLower, &ra);
  std::vector<QueryAnswer> b = fast.AnswerBatchExplained(
      queries_, CountKind::kStatic, BoundMode::kLower, &rb);
  ExpectIdentical(a, b);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].faces, rb[i].faces) << "query " << i;
    EXPECT_EQ(ra[i].answer, rb[i].answer) << "query " << i;
    EXPECT_EQ(ra[i].store, rb[i].store) << "query " << i;
    EXPECT_EQ(ra[i].store_raw_events, rb[i].store_raw_events) << "query " << i;
    EXPECT_EQ(ra[i].deadspace_fraction, rb[i].deadspace_fraction)
        << "query " << i;
  }
}

TEST_F(BatchEngineFixture, LearnedStoreReadsAreRaceFreeUnderWorkers) {
  // Learned deployment exercised concurrently — the TSan CI job runs this
  // to prove model Predict paths are pure reads (the polynomial models used
  // to refit lazily under const).
  core::DeploymentOptions learned_options;
  learned_options.store = core::StoreKind::kLearned;
  learned_options.model_type = learned::ModelType::kCubic;
  learned_options.buffer_capacity = 16;
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  core::Deployment learned = framework_.DeployWithSampler(
      sampler, framework_.network().NumSensors() / 4, learned_options, rng);

  BatchEngineOptions options;
  options.num_threads = 8;
  BatchQueryEngine engine(learned.graph(), learned.store(), options);
  core::SampledQueryProcessor processor = learned.processor();
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<QueryAnswer> batch =
        engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kUpper);
    ASSERT_EQ(batch.size(), queries_.size());
    for (size_t i = 0; i < queries_.size(); ++i) {
      QueryAnswer expect =
          processor.Answer(queries_[i], CountKind::kStatic, BoundMode::kUpper);
      EXPECT_DOUBLE_EQ(batch[i].estimate, expect.estimate);
    }
  }
}

TEST_F(BatchEngineFixture, SnapshotCountsCacheTraffic) {
  BatchEngineOptions options;
  options.num_threads = 4;
  options.cache_capacity = 4096;
  BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                          options);
  engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  BatchEngineSnapshot cold = engine.Snapshot();
  EXPECT_EQ(cold.queries_answered, queries_.size());
  EXPECT_GT(cold.cache_misses, 0u);
  // The workload repeats each distinct region 4x, so the cold pass already
  // hits on repetitions.
  EXPECT_GT(cold.cache_hits, 0u);
  EXPECT_GE(cold.latency_p95_micros, cold.latency_p50_micros);

  engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  BatchEngineSnapshot warm = engine.Snapshot();
  EXPECT_EQ(warm.queries_answered, 2 * queries_.size());
  // Second pass is all hits: misses stay where the cold pass left them.
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
}

TEST_F(BatchEngineFixture, SnapshotAgreesWithRegistryBitForBit) {
  // The snapshot is a compatibility view over the registry-backed metrics:
  // both read the SAME storage, so on a quiescent engine every exported
  // value must equal its snapshot counterpart exactly.
  obs::MetricsRegistry registry;
  BatchEngineOptions options;
  options.num_threads = 4;
  options.registry = &registry;
  BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                          options);
  engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  engine.AnswerBatch(queries_, CountKind::kTransient, BoundMode::kUpper);

  BatchEngineSnapshot snap = engine.Snapshot();
  auto counter = [&](const char* name) {
    return registry.GetCounter(name).Value();
  };
  EXPECT_EQ(snap.queries_answered, counter("innet_queries_answered"));
  EXPECT_EQ(snap.cache_hits, counter("innet_cache_hits"));
  EXPECT_EQ(snap.cache_misses, counter("innet_cache_misses"));
  EXPECT_EQ(snap.missed_lower, counter("innet_missed_lower"));
  EXPECT_EQ(snap.missed_upper, counter("innet_missed_upper"));
  EXPECT_EQ(snap.degraded_answers, counter("innet_degraded_answers"));
  EXPECT_EQ(snap.health_invalidations, counter("innet_health_invalidations"));
  obs::Histogram& latency = registry.GetHistogram(
      "innet_query_latency_micros", obs::Histogram::LatencyBoundsMicros());
  EXPECT_EQ(latency.Count(), 2 * queries_.size());
  EXPECT_EQ(snap.latency_p50_micros, latency.Percentile(0.50));
  EXPECT_EQ(snap.latency_p95_micros, latency.Percentile(0.95));

  // ResetStats zeroes the shared storage, so both views drop together.
  engine.ResetStats();
  EXPECT_EQ(engine.Snapshot().queries_answered, 0u);
  EXPECT_EQ(counter("innet_queries_answered"), 0u);
  EXPECT_EQ(counter("innet_cache_hits"), 0u);
}

TEST_F(BatchEngineFixture, TracerRecordsSampledStageBreakdowns) {
  obs::TracerOptions tracer_options;
  tracer_options.ring_capacity = 64;
  tracer_options.sample_every = 10;
  obs::Tracer tracer(tracer_options);
  BatchEngineOptions options;
  options.num_threads = 4;
  options.tracer = &tracer;
  BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                          options);
  engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  EXPECT_EQ(tracer.Started(), queries_.size());
  EXPECT_EQ(tracer.Sampled(), (queries_.size() + 9) / 10);

  std::vector<std::unique_ptr<obs::QueryTrace>> traces = tracer.Drain();
  EXPECT_EQ(traces.size(),
            std::min<size_t>(tracer.Sampled(), tracer_options.ring_capacity));
  for (const auto& trace : traces) {
    ASSERT_FALSE(trace->stages().empty());
    // Every sampled query starts with a cache lookup; non-missed ones then
    // either resolve the boundary (miss) or integrate straight away (hit).
    EXPECT_EQ(trace->stages().front().name, "cache_lookup");
    bool has_estimate = false;
    for (const auto& [key, value] : trace->annotations()) {
      if (key == "estimate") has_estimate = true;
    }
    EXPECT_TRUE(has_estimate);
    EXPECT_GE(trace->TotalMicros(), 0.0);
  }
  // Drain empties the ring.
  EXPECT_TRUE(tracer.Drain().empty());
}

TEST_F(BatchEngineFixture, DisabledCacheStillAnswersCorrectly) {
  BatchEngineOptions options;
  options.num_threads = 3;
  options.cache_capacity = 0;
  BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                          options);
  ExpectIdentical(
      engine.AnswerBatch(queries_, CountKind::kTransient, BoundMode::kLower),
      SerialReference(CountKind::kTransient, BoundMode::kLower));
  EXPECT_EQ(engine.Snapshot().cache_hits, 0u);
  EXPECT_EQ(engine.CacheSize(), 0u);
}

TEST_F(BatchEngineFixture, TinyCacheEvictsButStaysCorrect) {
  BatchEngineOptions options;
  options.num_threads = 2;
  options.cache_capacity = 4;  // Far fewer entries than distinct regions.
  options.cache_shards = 2;
  BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                          options);
  ExpectIdentical(
      engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower),
      SerialReference(CountKind::kStatic, BoundMode::kLower));
  EXPECT_LE(engine.CacheSize(), 4u);
}

TEST(RegionSignatureTest, DistinguishesRegionsAndBounds) {
  std::vector<graph::NodeId> a = {1, 2, 3};
  std::vector<graph::NodeId> b = {1, 2, 4};
  std::vector<graph::NodeId> prefix = {1, 2};
  EXPECT_TRUE(SignRegion(a, BoundMode::kLower) ==
              SignRegion(a, BoundMode::kLower));
  EXPECT_FALSE(SignRegion(a, BoundMode::kLower) ==
               SignRegion(b, BoundMode::kLower));
  EXPECT_FALSE(SignRegion(a, BoundMode::kLower) ==
               SignRegion(prefix, BoundMode::kLower));
  EXPECT_FALSE(SignRegion(a, BoundMode::kLower) ==
               SignRegion(a, BoundMode::kUpper));
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    util::ThreadPool pool(threads);
    constexpr size_t kCount = 997;
    std::vector<std::atomic<int>> touched(kCount);
    pool.ParallelFor(kCount, [&](size_t i) {
      touched[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "index " << i << " threads "
                                      << threads;
    }
  }
}

TEST(ThreadPoolTest, WaitDrainsSubmittedTasks) {
  util::ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), 50);
}

// Handle mode (live ingestion): cold/warm identity across a store swap.
// Boundary-cache entries resolved against generation N must not be served
// at N+1 — the swap flushes the cache (counted by store_invalidations) and
// both the cold and the warm pass after the swap answer bit-identically to
// a fresh engine built from scratch over the full stream.
TEST_F(BatchEngineFixture, HandleModeColdWarmIdentityAcrossStoreSwap) {
  std::vector<mobility::CrossingEvent> events;
  for (const mobility::CrossingEvent& e : framework_.network().events()) {
    if (deployment_->graph().IsMonitored(e.edge)) events.push_back(e);
  }
  ASSERT_GT(events.size(), 10u);
  size_t half = events.size() / 2;

  IngestPipeline pipeline(framework_.network().TotalEdgeSpace());
  for (size_t i = 0; i < half; ++i) pipeline.Push(events[i]);
  pipeline.CloseEpochAndWait();

  BatchEngineOptions options;
  options.num_threads = 4;
  BatchQueryEngine live(deployment_->graph(), pipeline.handle(), options);

  // Cold + warm over the half stream; the warm pass must hit the cache.
  std::vector<QueryAnswer> half_cold =
      live.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  std::vector<QueryAnswer> half_warm =
      live.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  ExpectIdentical(half_cold, half_warm);
  EXPECT_GT(live.Snapshot().cache_hits, 0u);
  EXPECT_EQ(live.Snapshot().store_invalidations, 0u);

  // Swap: ingest the second half and publish the next generation while the
  // engine's cache is warm with generation-N boundaries.
  for (size_t i = half; i < events.size(); ++i) pipeline.Push(events[i]);
  pipeline.CloseEpochAndWait();

  std::vector<QueryAnswer> full_cold =
      live.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  std::vector<QueryAnswer> full_warm =
      live.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  ExpectIdentical(full_cold, full_warm);
  EXPECT_EQ(live.Snapshot().store_invalidations, 1u);

  // The swap actually changed answers (the regression would otherwise pass
  // with a stale cache serving half-stream counts).
  size_t moved = 0;
  for (size_t i = 0; i < full_cold.size(); ++i) {
    if (full_cold[i].estimate != half_cold[i].estimate) ++moved;
  }
  EXPECT_GT(moved, 0u);

  // Fresh engine over a from-scratch freeze of the full stream: the
  // post-swap answers are bit-identical, cold and warm alike.
  const forms::TrackingForm* tracking = deployment_->tracking_store();
  ASSERT_NE(tracking, nullptr);
  forms::FrozenTrackingForm scratch = tracking->Freeze();
  BatchEngineOptions fresh_options;
  fresh_options.num_threads = 4;
  BatchQueryEngine fresh(deployment_->graph(), scratch, fresh_options);
  ExpectIdentical(full_cold, fresh.AnswerBatch(queries_, CountKind::kStatic,
                                               BoundMode::kLower));
}

}  // namespace
}  // namespace innet::runtime
