#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/stats.h"

namespace innet::core {
namespace {

FrameworkOptions SmallOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 300;
  options.traffic.num_trajectories = 600;
  options.seed = seed;
  return options;
}

TEST(FrameworkTest, BuildsConsistentWorld) {
  Framework fw(SmallOptions(21));
  const SensorNetwork& net = fw.network();
  EXPECT_GT(net.mobility().NumNodes(), 200u);
  EXPECT_EQ(net.NumSensors(), net.mobility().NumFaces() - 1);
  EXPECT_EQ(fw.trajectories().size(), 600u);
  EXPECT_FALSE(net.events().empty());
  // Events are time sorted and land in the extended edge space.
  for (size_t i = 1; i < net.events().size(); ++i) {
    EXPECT_LE(net.events()[i - 1].time, net.events()[i].time);
  }
  for (const auto& ev : net.events()) {
    EXPECT_LT(ev.edge, net.TotalEdgeSpace());
  }
  // Entry events exist (every trajectory starts at a gateway).
  size_t virtual_events = 0;
  for (const auto& ev : net.events()) {
    if (net.IsVirtualEdge(ev.edge)) ++virtual_events;
  }
  EXPECT_EQ(virtual_events, fw.trajectories().size());
}

TEST(FrameworkTest, DeterministicAcrossRuns) {
  Framework a(SmallOptions(22));
  Framework b(SmallOptions(22));
  ASSERT_EQ(a.network().events().size(), b.network().events().size());
  for (size_t i = 0; i < a.network().events().size(); i += 97) {
    EXPECT_EQ(a.network().events()[i].edge, b.network().events()[i].edge);
    EXPECT_EQ(a.network().events()[i].time, b.network().events()[i].time);
  }
}

TEST(FrameworkTest, QueriesContainOnlyInteriorJunctions) {
  Framework fw(SmallOptions(23));
  WorkloadOptions wo;
  wo.area_fraction = 0.1;
  wo.horizon = fw.Horizon();
  util::Rng rng = fw.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(fw.network(), wo, 20, rng);
  ASSERT_FALSE(queries.empty());
  for (const RangeQuery& q : queries) {
    EXPECT_FALSE(q.junctions.empty());
    EXPECT_LT(q.t1, q.t2);
    for (graph::NodeId n : q.junctions) {
      EXPECT_FALSE(fw.network().gateway_mask()[n]);
      EXPECT_TRUE(q.rect.Contains(fw.network().mobility().Position(n)));
    }
  }
}

TEST(FrameworkTest, LargerQueriesContainMoreJunctions) {
  Framework fw(SmallOptions(24));
  util::Rng rng = fw.ForkRng();
  double prev_mean = 0.0;
  for (double frac : {0.02, 0.08, 0.25}) {
    WorkloadOptions wo;
    wo.area_fraction = frac;
    wo.horizon = fw.Horizon();
    std::vector<RangeQuery> queries =
        GenerateWorkload(fw.network(), wo, 15, rng);
    double mean = 0.0;
    for (const RangeQuery& q : queries) {
      mean += static_cast<double>(q.junctions.size());
    }
    mean /= static_cast<double>(queries.size());
    EXPECT_GT(mean, prev_mean);
    prev_mean = mean;
  }
}

// End-to-end quality trend: more sensors -> (weakly) lower median
// lower-bound error. Uses a coarse comparison (smallest vs largest budget)
// to stay robust.
TEST(FrameworkTest, ErrorDecreasesWithMoreSensors) {
  Framework fw(SmallOptions(25));
  const SensorNetwork& net = fw.network();
  WorkloadOptions wo;
  wo.area_fraction = 0.08;
  wo.horizon = fw.Horizon();
  util::Rng qrng = fw.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 25, qrng);

  sampling::KdTreeSampler sampler;
  auto median_error = [&](size_t m) {
    util::Rng rng(12345);
    Deployment dep =
        fw.DeployWithSampler(sampler, m, DeploymentOptions{}, rng);
    SampledQueryProcessor processor = dep.processor();
    util::Accumulator err;
    for (const RangeQuery& q : queries) {
      double truth = net.GroundTruthStatic(q.junctions, q.t2);
      QueryAnswer a = processor.Answer(q, CountKind::kStatic,
                                       BoundMode::kLower);
      err.Add(util::RelativeError(truth, a.estimate));
    }
    return err.Summarize().median;
  };

  double coarse = median_error(net.NumSensors() / 32);
  double fine = median_error(net.NumSensors() / 2);
  EXPECT_LE(fine, coarse + 1e-9);
  EXPECT_LT(fine, 0.5);
}

TEST(FrameworkTest, AdaptiveBeatsObliviousOnHistoricalDistribution) {
  Framework fw(SmallOptions(26));
  const SensorNetwork& net = fw.network();
  WorkloadOptions wo;
  wo.area_fraction = 0.06;
  wo.horizon = fw.Horizon();
  util::Rng qrng = fw.ForkRng();
  // History and evaluation share the same distribution; the adaptive
  // placement monitors exactly those footprints.
  std::vector<RangeQuery> history = GenerateWorkload(net, wo, 30, qrng);
  size_t budget = net.NumSensors() / 3;

  Deployment adaptive = fw.DeployAdaptive(history, budget, DeploymentOptions{});
  sampling::UniformSampler uniform;
  util::Rng srng = fw.ForkRng();
  Deployment oblivious =
      fw.DeployWithSampler(uniform, budget, DeploymentOptions{}, srng);

  auto median_error = [&](Deployment& dep) {
    SampledQueryProcessor processor = dep.processor();
    util::Accumulator err;
    for (const RangeQuery& q : history) {
      double truth = net.GroundTruthStatic(q.junctions, q.t2);
      QueryAnswer a =
          processor.Answer(q, CountKind::kStatic, BoundMode::kLower);
      err.Add(util::RelativeError(truth, a.estimate));
    }
    return err.Summarize().median;
  };
  EXPECT_LE(median_error(adaptive), median_error(oblivious) + 1e-9);
}

TEST(FrameworkTest, LearnedStorageMuchSmallerThanExact) {
  Framework fw(SmallOptions(27));
  sampling::KdTreeSampler sampler;
  util::Rng rng = fw.ForkRng();
  std::vector<graph::NodeId> sensors = sampler.Select(
      fw.network().sensing(), fw.network().NumSensors() / 4, rng);
  DeploymentOptions exact;
  DeploymentOptions learned;
  learned.store = StoreKind::kLearned;
  learned.model_type = learned::ModelType::kLinear;
  learned.buffer_capacity = 8;
  Deployment de = fw.DeployFromSensors(sensors, exact);
  Deployment dl = fw.DeployFromSensors(sensors, learned);
  EXPECT_LT(dl.StorageBytes(), de.StorageBytes());
}

}  // namespace
}  // namespace innet::core
