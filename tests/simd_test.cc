// Property tests for the runtime SIMD dispatch layer (util/simd.h) and the
// vectorized frozen-store lookups built on it: every dispatch level this
// hardware supports must agree exactly with a scalar ground truth — and with
// std::upper_bound — over adversarial spans (duplicate-heavy, bucket-aligned,
// denormal, ±inf, NaN, empty, single-element).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

#include "forms/frozen_tracking_form.h"
#include "forms/tracking_form.h"
#include "util/rng.h"
#include "util/simd.h"

namespace innet::util::simd {
namespace {

using forms::FrozenTrackingForm;
using forms::TrackingForm;

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel l : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelSupported(l)) levels.push_back(l);
  }
  return levels;
}

size_t GroundTruthCount(const std::vector<double>& v, double t) {
  size_t count = 0;
  for (double x : v) count += x <= t ? 1 : 0;
  return count;
}

TEST(SimdLevelTest, ParseRoundTripsAndRejectsGarbage) {
  SimdLevel out;
  ASSERT_TRUE(ParseSimdLevel("scalar", &out));
  EXPECT_EQ(out, SimdLevel::kScalar);
  ASSERT_TRUE(ParseSimdLevel("avx2", &out));
  EXPECT_EQ(out, SimdLevel::kAvx2);
  ASSERT_TRUE(ParseSimdLevel("neon", &out));
  EXPECT_EQ(out, SimdLevel::kNeon);
  ASSERT_TRUE(ParseSimdLevel("native", &out));
  EXPECT_EQ(out, DetectedSimdLevel());
  EXPECT_FALSE(ParseSimdLevel("sse9", &out));
  EXPECT_FALSE(ParseSimdLevel("", &out));
  EXPECT_FALSE(ParseSimdLevel(nullptr, &out));
}

TEST(SimdLevelTest, ScalarAlwaysSupportedAndDetectedIsSupported) {
  EXPECT_TRUE(SimdLevelSupported(SimdLevel::kScalar));
  EXPECT_TRUE(SimdLevelSupported(DetectedSimdLevel()));
}

TEST(SimdLevelTest, ScopedOverrideForcesAndRestores) {
  SimdLevel before = ActiveSimdLevel();
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    ASSERT_TRUE(scoped.ok());
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
    EXPECT_STREQ(ActiveSimdName(), "scalar");
  }
  EXPECT_EQ(ActiveSimdLevel(), before);
}

TEST(SimdLevelTest, UnsupportedForceIsRefused) {
  // At most one of AVX2/NEON exists on any one machine, so the other must
  // be refused without disturbing the active level.
  SimdLevel before = ActiveSimdLevel();
  for (SimdLevel l : {SimdLevel::kAvx2, SimdLevel::kNeon}) {
    if (SimdLevelSupported(l)) continue;
    EXPECT_FALSE(SetActiveSimdLevel(l));
    EXPECT_EQ(ActiveSimdLevel(), before);
  }
}

// Adversarial spans: every length across the 8/4/scalar tail boundaries,
// duplicates, denormals, infinities, and NaN elements.
TEST(CountLessEqualTest, AllLevelsMatchGroundTruthOnAdversarialSpans) {
  util::Rng rng(31);
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double denorm = std::numeric_limits<double>::denorm_min();
  for (size_t n = 0; n <= 40; ++n) {
    for (int variant = 0; variant < 6; ++variant) {
      std::vector<double> v(n);
      for (double& x : v) {
        switch (variant) {
          case 0: x = rng.Uniform(-100.0, 100.0); break;
          case 1: x = std::floor(rng.Uniform(0.0, 4.0)); break;  // Dup-heavy.
          case 2: x = rng.Bernoulli(0.5) ? denorm : -denorm; break;
          case 3: x = rng.Bernoulli(0.5) ? inf : -inf; break;
          case 4: x = rng.Bernoulli(0.2) ? nan : rng.Uniform(-1.0, 1.0); break;
          default: x = 42.0; break;  // All-equal.
        }
      }
      for (double t : {-inf, -100.0, -denorm, 0.0, denorm, 1.5, 42.0, 100.0,
                       inf, nan}) {
        size_t want = GroundTruthCount(v, t);
        for (SimdLevel level : SupportedLevels()) {
          EXPECT_EQ(CountLessEqualAt(level, v.data(), n, t), want)
              << "level=" << SimdLevelName(level) << " n=" << n
              << " variant=" << variant << " t=" << t;
        }
      }
    }
  }
}

TEST(CountLeadingLessEqualSortedTest, MatchesUpperBoundOnSortedSpans) {
  util::Rng rng(37);
  const double inf = std::numeric_limits<double>::infinity();
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{7},
                     size_t{8}, size_t{9}, size_t{64}, size_t{257}}) {
      std::vector<double> v(n);
      for (double& x : v) {
        x = rng.Uniform(0.0, 50.0);
        if (rng.Bernoulli(0.3)) x = std::floor(x);  // Duplicate runs.
      }
      std::sort(v.begin(), v.end());
      std::vector<double> probes = {-inf, -1.0, 25.0, 100.0, inf,
                                    std::numeric_limits<double>::quiet_NaN()};
      for (double x : v) {
        probes.push_back(x);
        probes.push_back(std::nextafter(x, -1e30));
        probes.push_back(std::nextafter(x, 1e30));
      }
      for (double t : probes) {
        size_t want = static_cast<size_t>(
            std::upper_bound(v.begin(), v.end(), t) - v.begin());
        if (std::isnan(t)) want = 0;  // upper_bound is UB on NaN; we define 0.
        ASSERT_EQ(CountLeadingLessEqualSorted(v.data(), n, t), want)
            << "level=" << SimdLevelName(level) << " n=" << n << " t=" << t;
      }
    }
  }
}

// A frozen store with slots tuned to stress the bucket index: empty,
// single-event, duplicate-plateau (whole buckets of one value),
// bucket-boundary-aligned integers, and dense random slots.
TrackingForm AdversarialForm() {
  util::Rng rng(41);
  TrackingForm form(6);
  // Edge 0 forward: empty (never recorded). Edge 0 backward: one event.
  form.RecordTraversal(0, false, 5.0);
  // Edge 1: duplicate plateaus — long runs of equal timestamps spanning
  // multiple buckets, the worst case for a forward guard walk.
  for (int i = 0; i < 100; ++i) form.RecordTraversal(1, true, 10.0);
  for (int i = 0; i < 100; ++i) form.RecordTraversal(1, true, 20.0);
  for (int i = 0; i < 50; ++i) form.RecordTraversal(1, false, 7.0);
  // Edge 2: exact integers aligned with bucket boundaries.
  for (int i = 0; i < 64; ++i) form.RecordTraversal(2, true, double(i));
  // Edge 3: dense random.
  {
    std::vector<double> ts(500);
    for (double& t : ts) t = rng.Uniform(0.0, 1000.0);
    std::sort(ts.begin(), ts.end());
    for (double t : ts) form.RecordTraversal(3, true, t);
  }
  // Edge 4: tiny magnitudes including denormals.
  {
    std::vector<double> ts = {-std::numeric_limits<double>::denorm_min(), 0.0,
                              std::numeric_limits<double>::denorm_min(),
                              1e-300, 1e-100, 1.0};
    for (double t : ts) form.RecordTraversal(4, true, t);
  }
  // Edge 5: two events far apart (degenerate bucket width).
  form.RecordTraversal(5, true, 0.0);
  form.RecordTraversal(5, true, 1e12);
  return form;
}

std::vector<double> ProbesFor(const std::vector<double>& seq) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> probes = {-inf, -1e30, 1e30, inf,
                                std::numeric_limits<double>::quiet_NaN()};
  for (double t : seq) {
    probes.push_back(t);
    probes.push_back(std::nextafter(t, -1e300));
    probes.push_back(std::nextafter(t, 1e300));
  }
  return probes;
}

TEST(FrozenCountUpToSlotTest, MatchesUpperBoundAtEveryDispatchLevel) {
  TrackingForm tracking = AdversarialForm();
  FrozenTrackingForm frozen = tracking.Freeze();
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (graph::EdgeId e = 0; e < tracking.num_edges(); ++e) {
      for (bool forward : {true, false}) {
        const std::vector<double>& seq = tracking.Sequence(e, forward);
        size_t slot = FrozenTrackingForm::Slot(e, forward);
        for (double t : ProbesFor(seq)) {
          size_t want = static_cast<size_t>(
              std::upper_bound(seq.begin(), seq.end(), t) - seq.begin());
          if (std::isnan(t)) want = 0;
          ASSERT_EQ(frozen.CountUpToSlot(slot, t), want)
              << "level=" << SimdLevelName(level) << " edge=" << e
              << " fwd=" << forward << " t=" << t;
        }
      }
    }
  }
}

TEST(FrozenCountUpToSlotsTest, BatchedLookupMatchesSingleSlotLookups) {
  TrackingForm tracking = AdversarialForm();
  FrozenTrackingForm frozen = tracking.Freeze();
  util::Rng rng(43);
  size_t num_slots = 2 * tracking.num_edges();
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (size_t count : {size_t{0}, size_t{1}, size_t{2}, size_t{3},
                         size_t{17}, size_t{300}}) {
      std::vector<size_t> slots(count);
      for (size_t& s : slots) s = rng.UniformIndex(num_slots);
      for (double t : {-1.0, 9.99, 10.0, 20.0, 512.5, 1e13,
                       std::numeric_limits<double>::infinity()}) {
        std::vector<size_t> out(count, size_t{999});
        frozen.CountUpToSlots(slots.data(), count, t, out.data());
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out[i], frozen.CountUpToSlot(slots[i], t))
              << "level=" << SimdLevelName(level) << " i=" << i << " t=" << t;
        }
      }
    }
  }
}

// Random cross-level fuzz: large random stores, every supported level must
// agree with scalar on random and structured probes alike.
TEST(FrozenCountUpToSlotTest, CrossLevelFuzzAgreesWithScalar) {
  util::Rng rng(47);
  TrackingForm form(30);
  for (graph::EdgeId e = 0; e < form.num_edges(); ++e) {
    for (bool forward : {true, false}) {
      if (rng.Bernoulli(0.2)) continue;
      size_t n = rng.UniformIndex(400);
      std::vector<double> ts(n);
      for (double& t : ts) {
        t = rng.Uniform(0.0, 1000.0);
        if (rng.Bernoulli(0.2)) t = std::floor(t);
      }
      std::sort(ts.begin(), ts.end());
      for (double t : ts) form.RecordTraversal(e, forward, t);
    }
  }
  FrozenTrackingForm frozen = form.Freeze();
  std::vector<SimdLevel> levels = SupportedLevels();
  for (int trial = 0; trial < 4000; ++trial) {
    size_t slot = rng.UniformIndex(2 * form.num_edges());
    double t = rng.Uniform(-50.0, 1050.0);
    size_t want;
    {
      ScopedSimdLevel scalar(SimdLevel::kScalar);
      want = frozen.CountUpToSlot(slot, t);
    }
    for (SimdLevel level : levels) {
      ScopedSimdLevel scoped(level);
      ASSERT_EQ(frozen.CountUpToSlot(slot, t), want)
          << "level=" << SimdLevelName(level) << " slot=" << slot
          << " t=" << t;
    }
  }
}

}  // namespace
}  // namespace innet::util::simd
