#include <gtest/gtest.h>

#include <algorithm>

#include "core/cost_model.h"
#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/stats.h"

namespace innet::core {
namespace {

FrameworkOptions MidOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 600;
  options.traffic.num_trajectories = 300;
  options.seed = seed;
  return options;
}

TEST(CostModelTest, PredictionFormula) {
  CostModelParams params;
  params.area_fraction = 0.1;
  params.m = 100;
  params.k = 2.0;
  params.avg_path_hops = 5.0;
  EXPECT_DOUBLE_EQ(PredictRegionNodes(params), 100.0);
}

TEST(CostModelTest, EstimateParamsReflectsConnectivity) {
  Framework framework(MidOptions(41));
  SampledGraphOptions tri;
  SampledGraphOptions knn;
  knn.connectivity = Connectivity::kKnn;
  knn.knn_k = 8;
  CostModelParams p_tri =
      EstimateParams(framework.network(), tri, 100, 0.05);
  CostModelParams p_knn =
      EstimateParams(framework.network(), knn, 100, 0.05);
  // Triangulation: k = (3m-6)/m / 2 ≈ 1.5; k-NN(8): 4 after halving.
  EXPECT_NEAR(p_tri.k, 1.47, 0.05);
  EXPECT_DOUBLE_EQ(p_knn.k, 4.0);
  EXPECT_GT(p_tri.avg_path_hops, 1.0);
  EXPECT_EQ(p_tri.avg_path_hops, p_knn.avg_path_hops);
}

// §4.9 validation: the prediction tracks the measured in-network footprint
// within a constant factor, and both scale linearly with the query area.
TEST(CostModelTest, PredictionTracksMeasurementAcrossAreas) {
  Framework framework(MidOptions(42));
  const SensorNetwork& network = framework.network();
  sampling::KdTreeSampler sampler;
  size_t m = network.NumSensors() / 8;
  util::Rng rng(1);
  Deployment dep =
      framework.DeployWithSampler(sampler, m, DeploymentOptions{}, rng);

  util::Rng qrng(2);
  std::vector<double> ratios;
  double prev_measured = 0.0;
  for (double area : {0.04, 0.08, 0.16, 0.32}) {
    WorkloadOptions wo;
    wo.area_fraction = area;
    wo.horizon = framework.Horizon();
    std::vector<RangeQuery> queries =
        GenerateWorkload(network, wo, 12, qrng);
    util::Accumulator measured;
    for (const RangeQuery& q : queries) {
      measured.Add(static_cast<double>(
          MeasureRegionNodes(dep.graph(), q.junctions)));
    }
    double mean_measured = measured.Summarize().mean;
    CostModelParams params = EstimateParams(
        network, SampledGraphOptions{}, m, area, /*path_samples=*/32);
    double predicted = PredictRegionNodes(params);
    ASSERT_GT(predicted, 0.0);
    ratios.push_back(mean_measured / predicted);
    // Measured footprint grows with area.
    EXPECT_GT(mean_measured, prev_measured);
    prev_measured = mean_measured;
  }
  // Constant-factor agreement: all area points share a similar ratio
  // (within 3x of each other) and the ratio itself is O(1).
  double lo = *std::min_element(ratios.begin(), ratios.end());
  double hi = *std::max_element(ratios.begin(), ratios.end());
  EXPECT_LT(hi / lo, 3.0);
  EXPECT_GT(lo, 0.05);
  EXPECT_LT(hi, 20.0);
}

TEST(CostModelTest, MeasureCountsOnlyTouchingSensors) {
  Framework framework(MidOptions(43));
  const SensorNetwork& network = framework.network();
  sampling::UniformSampler sampler;
  util::Rng rng(3);
  Deployment dep = framework.DeployWithSampler(
      sampler, network.NumSensors() / 10, DeploymentOptions{}, rng);
  // Empty region -> zero footprint; full region -> all participants.
  EXPECT_EQ(MeasureRegionNodes(dep.graph(), {}), 0u);
  std::vector<graph::NodeId> all;
  for (graph::NodeId n = 0; n < network.mobility().NumNodes(); ++n) {
    all.push_back(n);
  }
  size_t everyone = MeasureRegionNodes(dep.graph(), all);
  // Participants = relays plus the comm sensors that actually carry a
  // monitored edge (a comm sensor whose links all failed to route is not a
  // participant).
  EXPECT_GE(everyone, dep.graph().stats().num_relay_sensors);
  EXPECT_LE(everyone, dep.graph().stats().num_relay_sensors +
                          dep.graph().stats().num_comm_sensors);
}

}  // namespace
}  // namespace innet::core
