// Live-ingest pipeline suite: incremental re-freeze must be bit-identical
// to a from-scratch Freeze() of the same stream, handle-mode readers must
// follow published generations (the frozen-store staleness regression),
// epoch-aligned deliveries must land in exactly one epoch, and one writer
// plus eight readers must be race-free (run under TSan in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <chrono>
#include <thread>
#include <tuple>
#include <vector>

#include "core/event_buffer.h"
#include "core/framework.h"
#include "core/query_processor.h"
#include "core/workload.h"
#include "forms/frozen_tracking_form.h"
#include "forms/store_handle.h"
#include "forms/tracking_form.h"
#include "runtime/ingest_pipeline.h"
#include "sampling/samplers.h"
#include "util/rng.h"

namespace innet::runtime {
namespace {

using forms::FrozenTrackingForm;
using forms::TrackingForm;
using graph::EdgeId;
using mobility::CrossingEvent;

// Random event stream in global time order (so per-slot order is
// non-decreasing and a reference TrackingForm can replay it directly),
// with duplicates and ~20% silent slots, as in frozen_form_test.cc.
std::vector<CrossingEvent> RandomStream(uint64_t seed, size_t num_edges,
                                        size_t num_events) {
  util::Rng rng(seed);
  std::vector<CrossingEvent> events;
  events.reserve(num_events);
  std::vector<bool> silent(2 * num_edges);
  for (size_t s = 0; s < silent.size(); ++s) silent[s] = rng.Bernoulli(0.2);
  while (events.size() < num_events) {
    EdgeId e = static_cast<EdgeId>(rng.UniformIndex(num_edges));
    bool forward = rng.Bernoulli(0.5);
    if (silent[FrozenTrackingForm::Slot(e, forward)]) continue;
    double t = rng.Uniform(0.0, 1000.0);
    if (rng.Bernoulli(0.1)) t = std::floor(t);  // Encourage duplicates.
    events.push_back({e, forward, t});
  }
  std::sort(events.begin(), events.end(),
            [](const CrossingEvent& a, const CrossingEvent& b) {
              return a.time < b.time;
            });
  return events;
}

// Asserts `frozen` is bit-identical to `reference` (a from-scratch
// TrackingForm over the same stream): per-slot counts plus CountUpTo at
// every stored timestamp and a nudge on each side.
void ExpectBitIdentical(const FrozenTrackingForm& frozen,
                        const TrackingForm& reference) {
  ASSERT_EQ(frozen.num_edges(), reference.num_edges());
  ASSERT_EQ(frozen.TotalEvents(), reference.TotalEvents());
  for (EdgeId e = 0; e < reference.num_edges(); ++e) {
    for (bool forward : {true, false}) {
      ASSERT_EQ(frozen.EventCount(e, forward),
                reference.EventCount(e, forward))
          << "edge " << e << " fwd " << forward;
      for (double t : reference.Sequence(e, forward)) {
        for (double probe :
             {t, std::nextafter(t, -1e30), std::nextafter(t, 1e30)}) {
          ASSERT_EQ(frozen.CountUpTo(e, forward, probe),
                    reference.CountUpTo(e, forward, probe))
              << "edge " << e << " fwd " << forward << " t " << probe;
        }
      }
    }
  }
}

TEST(IngestPipelineTest, IncrementalRefreezeMatchesScratchFreeze) {
  const size_t kNumEdges = 40;
  std::vector<CrossingEvent> stream = RandomStream(31, kNumEdges, 4000);

  TrackingForm reference(kNumEdges);
  for (const CrossingEvent& e : stream) {
    reference.RecordTraversal(e.edge, e.forward, e.time);
  }

  // Replay the same stream through the pipeline in irregular epochs; every
  // intermediate publish must also be exact for its prefix.
  IngestPipelineOptions options;
  options.registry = nullptr;  // Global registry is fine for a test.
  IngestPipeline pipeline(kNumEdges, options);
  util::Rng rng(32);
  TrackingForm prefix(kNumEdges);
  for (size_t i = 0; i < stream.size(); ++i) {
    pipeline.Push(stream[i]);
    prefix.RecordTraversal(stream[i].edge, stream[i].forward, stream[i].time);
    if (rng.Bernoulli(0.002) || i + 1 == stream.size()) {
      pipeline.CloseEpochAndWait();
      forms::FrozenStoreHandle::Snapshot snap = pipeline.handle().Acquire();
      ExpectBitIdentical(*snap.store, prefix);
    }
  }
  EXPECT_EQ(pipeline.EventsIngested(), stream.size());
  EXPECT_GE(pipeline.EpochsPublished(), 1u);

  forms::FrozenStoreHandle::Snapshot final_snap = pipeline.handle().Acquire();
  ExpectBitIdentical(*final_snap.store, reference);
  // Empty close: no new generation.
  pipeline.CloseEpochAndWait();
  EXPECT_EQ(pipeline.handle().Generation(), final_snap.generation);
}

TEST(IngestPipelineTest, OutOfOrderWithinEpochIsSorted) {
  // The pipeline accepts per-slot disorder inside one epoch (multi-source
  // sinks with skewed watermarks) and sorts during the scatter pass.
  IngestPipeline pipeline(4);
  pipeline.Push({0, true, 5.0});
  pipeline.Push({0, true, 2.0});
  pipeline.Push({0, true, 8.0});
  pipeline.CloseEpochAndWait();
  // The next epoch interleaves strictly before the stored history.
  pipeline.Push({0, true, 1.0});
  pipeline.Push({0, true, 6.0});
  pipeline.CloseEpochAndWait();
  forms::FrozenStoreHandle::Snapshot snap = pipeline.handle().Acquire();
  ASSERT_EQ(snap.store->EventCount(0, true), 5u);
  const double* begin = snap.store->SlotBegin(FrozenTrackingForm::Slot(0, true));
  std::vector<double> got(begin, begin + 5);
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 5.0, 6.0, 8.0}));
}

// Deployment-scale fixture: replay the network's monitored event stream
// through the pipeline and compare handle-mode processors against the
// one-shot frozen path.
class IngestDeploymentFixture : public ::testing::Test {
 protected:
  IngestDeploymentFixture() : framework_(Options()) {}

  void SetUp() override {
    sampling::KdTreeSampler sampler;
    util::Rng rng = framework_.ForkRng();
    deployment_ = std::make_unique<core::Deployment>(
        framework_.DeployWithSampler(
            sampler, framework_.network().NumSensors() / 5,
            core::DeploymentOptions{}, rng));
    core::WorkloadOptions wo;
    wo.area_fraction = 0.05;
    wo.horizon = framework_.Horizon();
    queries_ = core::GenerateWorkload(framework_.network(), wo, 12, rng);
  }

  static core::FrameworkOptions Options() {
    core::FrameworkOptions options;
    options.road.num_junctions = 250;
    options.traffic.num_trajectories = 300;
    options.seed = 21;
    return options;
  }

  // The monitored slice of the network stream — what Deployment replays
  // into its own store.
  std::vector<CrossingEvent> MonitoredEvents() const {
    std::vector<CrossingEvent> events;
    for (const CrossingEvent& e : framework_.network().events()) {
      if (deployment_->graph().IsMonitored(e.edge)) events.push_back(e);
    }
    return events;
  }

  core::Framework framework_;
  std::unique_ptr<core::Deployment> deployment_;
  std::vector<core::RangeQuery> queries_;
};

TEST_F(IngestDeploymentFixture, HandleModeAnswersMatchScratchFreeze) {
  std::vector<CrossingEvent> events = MonitoredEvents();
  ASSERT_FALSE(events.empty());

  IngestPipeline pipeline(framework_.network().TotalEdgeSpace());
  core::SampledQueryProcessor live(deployment_->graph(), pipeline.handle());
  // Ingest in 7 epochs, querying between them (the processor must follow
  // every swap; intermediate answers are exercised, final ones pinned).
  size_t chunk = events.size() / 7 + 1;
  for (size_t begin = 0; begin < events.size(); begin += chunk) {
    size_t end = std::min(begin + chunk, events.size());
    for (size_t i = begin; i < end; ++i) pipeline.Push(events[i]);
    pipeline.CloseEpochAndWait();
    live.Answer(queries_.front(), core::CountKind::kStatic,
                core::BoundMode::kLower);
  }

  const TrackingForm* tracking = deployment_->tracking_store();
  ASSERT_NE(tracking, nullptr);
  FrozenTrackingForm scratch = tracking->Freeze();
  core::SampledQueryProcessor reference(deployment_->graph(), scratch);
  for (const core::RangeQuery& q : queries_) {
    for (core::BoundMode bound :
         {core::BoundMode::kLower, core::BoundMode::kUpper}) {
      for (core::CountKind kind :
           {core::CountKind::kStatic, core::CountKind::kTransient}) {
        core::QueryAnswer a = reference.Answer(q, kind, bound);
        core::QueryAnswer b = live.Answer(q, kind, bound);
        EXPECT_EQ(a.estimate, b.estimate);
        EXPECT_EQ(a.missed, b.missed);
      }
      for (size_t steps : {size_t{0}, size_t{1}, size_t{2}, size_t{1000}}) {
        std::vector<double> a = reference.AnswerSeries(q, bound, steps);
        std::vector<double> b = live.AnswerSeries(q, bound, steps);
        ASSERT_EQ(a.size(), b.size()) << "steps=" << steps;
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i], b[i]) << "steps=" << steps << " i=" << i;
        }
      }
    }
  }
}

// THE staleness regression (observe → query → observe → query): a
// handle-mode processor must reflect events ingested after construction.
// Before the generation-stamped handle, processors latched the frozen
// store once and kept serving the stale snapshot forever.
TEST_F(IngestDeploymentFixture, ProcessorReflectsEventsIngestedAfterQuery) {
  std::vector<CrossingEvent> events = MonitoredEvents();
  ASSERT_GT(events.size(), 10u);
  size_t half = events.size() / 2;

  // Reference stores for each stage.
  TrackingForm first_half(framework_.network().TotalEdgeSpace());
  TrackingForm full(framework_.network().TotalEdgeSpace());
  for (size_t i = 0; i < events.size(); ++i) {
    if (i < half) {
      first_half.RecordTraversal(events[i].edge, events[i].forward,
                                 events[i].time);
    }
    full.RecordTraversal(events[i].edge, events[i].forward, events[i].time);
  }
  FrozenTrackingForm frozen_half = first_half.Freeze();
  FrozenTrackingForm frozen_full = full.Freeze();
  core::SampledQueryProcessor ref_half(deployment_->graph(), frozen_half);
  core::SampledQueryProcessor ref_full(deployment_->graph(), frozen_full);

  // A query whose answer the second half of the stream actually changes —
  // without one the regression could pass vacuously.
  const core::RangeQuery* sensitive = nullptr;
  for (const core::RangeQuery& q : queries_) {
    double a = ref_half
                   .Answer(q, core::CountKind::kStatic, core::BoundMode::kLower)
                   .estimate;
    double b = ref_full
                   .Answer(q, core::CountKind::kStatic, core::BoundMode::kLower)
                   .estimate;
    if (a != b) {
      sensitive = &q;
      break;
    }
  }
  ASSERT_NE(sensitive, nullptr)
      << "no query distinguishes the half-stream from the full stream";

  IngestPipeline pipeline(framework_.network().TotalEdgeSpace());
  core::SampledQueryProcessor live(deployment_->graph(), pipeline.handle());

  // Observe → query.
  for (size_t i = 0; i < half; ++i) pipeline.Push(events[i]);
  pipeline.CloseEpochAndWait();
  core::QueryAnswer after_half = live.Answer(
      *sensitive, core::CountKind::kStatic, core::BoundMode::kLower);
  EXPECT_EQ(after_half.estimate,
            ref_half
                .Answer(*sensitive, core::CountKind::kStatic,
                        core::BoundMode::kLower)
                .estimate);

  // Observe → query again: the answer must move with the new events.
  for (size_t i = half; i < events.size(); ++i) pipeline.Push(events[i]);
  pipeline.CloseEpochAndWait();
  core::QueryAnswer after_full = live.Answer(
      *sensitive, core::CountKind::kStatic, core::BoundMode::kLower);
  EXPECT_EQ(after_full.estimate,
            ref_full
                .Answer(*sensitive, core::CountKind::kStatic,
                        core::BoundMode::kLower)
                .estimate);
  EXPECT_NE(after_full.estimate, after_half.estimate);
}

// Satellite audit: events arriving exactly on an epoch-close boundary must
// land in exactly one epoch, through the reorder buffer AND the pipeline.
// Replays the same stream with adversarial epoch alignments (closes at
// exact event timestamps, duplicates redelivered across the boundary) and
// requires the identical final store every time.
TEST(IngestPipelineTest, EpochAlignedDeliveriesLandInExactlyOneEpoch) {
  const size_t kNumEdges = 12;
  std::vector<CrossingEvent> stream = RandomStream(41, kNumEdges, 600);
  // Force a cluster of events EXACTLY on the future epoch boundaries.
  std::vector<double> boundaries;
  for (size_t i = 100; i < stream.size(); i += 100) {
    boundaries.push_back(stream[i].time);
    stream[i - 1].time = stream[i].time;  // Same instant, earlier edge slot.
    stream[i - 1].edge = stream[i].edge;
    stream[i - 1].forward = !stream[i].forward;
  }
  // The reorder buffer suppresses exact duplicates; drop them from the
  // stream so the scratch reference sees the same admitted set.
  std::sort(stream.begin(), stream.end(),
            [](const CrossingEvent& a, const CrossingEvent& b) {
              return std::tie(a.time, a.edge, a.forward) <
                     std::tie(b.time, b.edge, b.forward);
            });
  stream.erase(std::unique(stream.begin(), stream.end(),
                           [](const CrossingEvent& a, const CrossingEvent& b) {
                             return a.time == b.time && a.edge == b.edge &&
                                    a.forward == b.forward;
                           }),
               stream.end());

  TrackingForm reference(kNumEdges);
  for (const CrossingEvent& e : stream) {
    reference.RecordTraversal(e.edge, e.forward, e.time);
  }

  // Alignment A: close exactly when the stream reaches each boundary
  // timestamp. Alignment B: one close at the end. Both must agree with the
  // scratch freeze — no drop, no double-delivery.
  for (int aligned : {1, 0}) {
    IngestPipeline pipeline(kNumEdges);
    core::EventReorderBuffer buffer(5.0, pipeline.MakeSink());
    size_t next_boundary = 0;
    for (const CrossingEvent& e : stream) {
      ASSERT_TRUE(buffer.Push(e));
      if (aligned != 0 && next_boundary < boundaries.size() &&
          e.time >= boundaries[next_boundary]) {
        // Adversarial close exactly at the boundary: flush the reorder
        // window into this epoch, seal it, then redeliver the boundary
        // event — the duplicate must be suppressed, not double-ingested.
        buffer.Flush();
        pipeline.CloseEpochAndWait();
        EXPECT_FALSE(buffer.Push(e));
        ++next_boundary;
      }
    }
    buffer.Flush();
    pipeline.CloseEpochAndWait();
    EXPECT_EQ(buffer.Dropped(), 0u);
    forms::FrozenStoreHandle::Snapshot snap = pipeline.handle().Acquire();
    ExpectBitIdentical(*snap.store, reference);
  }
}

// One writer ingesting while eight readers query through handle-mode
// processors. Run under TSan in CI: readers must never block on the swap
// and never race the freezer.
TEST_F(IngestDeploymentFixture, ConcurrentWriterAndEightReaders) {
  std::vector<CrossingEvent> events = MonitoredEvents();
  ASSERT_FALSE(events.empty());

  IngestPipelineOptions options;
  options.epoch_event_target = events.size() / 40 + 1;  // ~40 auto epochs.
  IngestPipeline pipeline(framework_.network().TotalEdgeSpace(), options);

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  std::atomic<uint64_t> answers{0};
  for (int r = 0; r < 8; ++r) {
    readers.emplace_back([&, r] {
      // One processor per reader thread; all share the handle.
      core::SampledQueryProcessor processor(deployment_->graph(),
                                            pipeline.handle());
      core::QueryWorkspace workspace;
      size_t i = static_cast<size_t>(r);
      while (!done.load(std::memory_order_relaxed)) {
        const core::RangeQuery& q = queries_[i++ % queries_.size()];
        core::QueryAnswer a =
            processor.Answer(q, core::CountKind::kStatic,
                             core::BoundMode::kLower, nullptr, nullptr,
                             &workspace);
        EXPECT_GE(a.estimate, 0.0);
        answers.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (const CrossingEvent& e : events) pipeline.Push(e);
  pipeline.CloseEpochAndWait();
  // On a loaded machine the writer can outrun reader-thread startup; keep
  // the readers alive until at least one query has finished so the "reads
  // proceed under ingest" assertion below is about the code, not the
  // scheduler.
  while (answers.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(answers.load(), 0u);

  // After the dust settles the published store is the full stream.
  const TrackingForm* tracking = deployment_->tracking_store();
  ASSERT_NE(tracking, nullptr);
  FrozenTrackingForm scratch = tracking->Freeze();
  core::SampledQueryProcessor reference(deployment_->graph(), scratch);
  core::SampledQueryProcessor live(deployment_->graph(), pipeline.handle());
  for (const core::RangeQuery& q : queries_) {
    EXPECT_EQ(
        reference.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower)
            .estimate,
        live.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower)
            .estimate);
  }
}

// Satellite fix: waiting on a ticket CloseEpoch() never issued used to
// block forever (the freezer can only publish up to `requested_`). It must
// CHECK-fail instead.
TEST(IngestPipelineTest, WaitForNeverIssuedTicketDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        IngestPipeline pipeline(4);
        pipeline.Push({0, true, 1.0});
        uint64_t ticket = pipeline.CloseEpoch();
        pipeline.WaitForTicket(ticket + 1);  // Never issued: deadlock bait.
      },
      "ticket");
}

// Satellite regression for the MakeSink() dangling-`this` hazard: the
// documented contract is "sink dies before pipeline". This test pins the
// CORRECT ordering under TSan — reorder buffers flushing concurrently from
// another thread, then joined, then the pipeline destroyed — so any future
// destructor change that lets the freezer tear down while a sink-held
// Push() can still run shows up as a TSan race or use-after-free here.
TEST(IngestPipelineTest, SinkOutlivedByPipelineUnderConcurrentFlush) {
  const size_t kNumEdges = 8;
  std::vector<CrossingEvent> stream = RandomStream(51, kNumEdges, 2000);
  TrackingForm reference(kNumEdges);

  auto pipeline = std::make_unique<IngestPipeline>(kNumEdges);
  {
    // Sink scope: strictly inside the pipeline's lifetime.
    core::EventReorderBuffer buffer(5.0, pipeline->MakeSink());
    std::thread closer([&] {
      // Concurrent epoch closes race the pushes — freezer snips while the
      // sink appends.
      for (int i = 0; i < 50; ++i) pipeline->CloseEpoch();
    });
    // The buffer suppresses exact duplicates (RandomStream manufactures
    // them), so the reference tracks what it actually admits.
    for (const CrossingEvent& e : stream) {
      if (buffer.Push(e)) reference.RecordTraversal(e.edge, e.forward, e.time);
    }
    closer.join();
    buffer.Flush();
    pipeline->CloseEpochAndWait();
    EXPECT_EQ(buffer.Dropped(), 0u);  // In-order stream: nothing late.
  }  // Buffer (and the captured sink) destroyed FIRST...
  forms::FrozenStoreHandle::Snapshot snap = pipeline->handle().Acquire();
  ExpectBitIdentical(*snap.store, reference);
  pipeline.reset();  // ...then the pipeline. The only safe order.
}

// ---- backpressure ---------------------------------------------------------

TEST(IngestPipelineTest, BlockPolicyLosesNothingAndBoundsTheBuffer) {
  const size_t kNumEdges = 8;
  std::vector<CrossingEvent> stream = RandomStream(52, kNumEdges, 3000);
  TrackingForm reference(kNumEdges);
  for (const CrossingEvent& e : stream) {
    reference.RecordTraversal(e.edge, e.forward, e.time);
  }
  IngestPipelineOptions options;
  options.max_buffered_events = 64;
  options.overload_policy = OverloadPolicy::kBlock;
  IngestPipeline pipeline(kNumEdges, options);
  for (const CrossingEvent& e : stream) {
    EXPECT_EQ(pipeline.Push(e), PushResult::kAccepted);
  }
  pipeline.CloseEpochAndWait();
  EXPECT_EQ(pipeline.overload().Lost(), 0u);
  EXPECT_EQ(pipeline.EventsIngested(), stream.size());
  forms::FrozenStoreHandle::Snapshot snap = pipeline.handle().Acquire();
  ExpectBitIdentical(*snap.store, reference);  // Backpressure, zero loss.
}

TEST(IngestPipelineTest, RejectPolicyRefusesAtCapacityAndAccounts) {
  IngestPipelineOptions options;
  options.shards = 1;
  options.max_buffered_events = 10;
  options.overload_policy = OverloadPolicy::kReject;
  IngestPipeline pipeline(4, options);
  size_t accepted = 0;
  size_t rejected = 0;
  for (int i = 0; i < 25; ++i) {
    PushResult r = pipeline.Push({0, true, static_cast<double>(i)});
    (r == PushResult::kAccepted ? accepted : rejected)++;
  }
  EXPECT_EQ(accepted, 10u);
  EXPECT_EQ(rejected, 15u);
  IngestOverloadReport report = pipeline.overload();
  EXPECT_EQ(report.rejected_events, 15u);
  EXPECT_EQ(report.shed_events, 0u);
  // Rejections start at t=10 (the first refused push) and run to t=24.
  EXPECT_EQ(report.lost_min_time, 10.0);
  EXPECT_EQ(report.lost_max_time, 24.0);
  EXPECT_EQ(pipeline.EventsIngested(), 10u);
  // After a drain the pipeline accepts again.
  pipeline.CloseEpochAndWait();
  EXPECT_EQ(pipeline.Push({0, true, 99.0}), PushResult::kAccepted);

  // Losses surface as a degraded-mode drop-rate bound: 15 lost out of 26
  // offered (10 + 15 + the post-drain accept).
  core::DegradedOptions degraded = pipeline.OverloadDegradedOptions();
  EXPECT_NEAR(degraded.drop_rate_bound, 15.0 / 26.0, 1e-12);
  // An existing (larger) bound is never weakened.
  core::DegradedOptions strict;
  strict.drop_rate_bound = 0.9;
  EXPECT_EQ(pipeline.OverloadDegradedOptions(strict).drop_rate_bound, 0.9);
}

TEST(IngestPipelineTest, ShedOldestDropsHistoryKeepsFreshest) {
  IngestPipelineOptions options;
  options.shards = 1;
  options.max_buffered_events = 8;
  options.overload_policy = OverloadPolicy::kShedOldest;
  IngestPipeline pipeline(4, options);
  for (int i = 0; i < 20; ++i) {
    PushResult r = pipeline.Push({0, true, static_cast<double>(i)});
    if (i < 8) {
      EXPECT_EQ(r, PushResult::kAccepted);
    } else {
      EXPECT_EQ(r, PushResult::kShedOldest);
    }
  }
  IngestOverloadReport report = pipeline.overload();
  EXPECT_EQ(report.shed_events, 12u);
  EXPECT_EQ(report.lost_min_time, 0.0);   // Oldest go first...
  EXPECT_EQ(report.lost_max_time, 11.0);  // ...newest survive.
  pipeline.CloseEpochAndWait();
  forms::FrozenStoreHandle::Snapshot snap = pipeline.handle().Acquire();
  ASSERT_EQ(snap.store->EventCount(0, true), 8u);
  // The buffer holds exactly the 8 freshest events: 12..19.
  EXPECT_EQ(snap.store->CountUpTo(0, true, 11.5), 0u);
  EXPECT_EQ(snap.store->CountUpTo(0, true, 19.5), 8u);
}

}  // namespace
}  // namespace innet::runtime
