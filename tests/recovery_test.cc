// Crash-recovery suite (runtime/recovery.h + faults/crash_points.h): a
// durable pipeline killed at ANY armed crash point — or by raw SIGKILL —
// must recover bit-identically to the last durable epoch, across a seed
// matrix; a resumed pipeline must continue the stream and stay durable;
// and deployment-scale query answers from a recovered store must match an
// uninterrupted run exactly (AnswerSeries identity).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/query_processor.h"
#include "core/workload.h"
#include "faults/crash_points.h"
#include "forms/frozen_tracking_form.h"
#include "forms/tracking_form.h"
#include "runtime/ingest_pipeline.h"
#include "runtime/recovery.h"
#include "sampling/samplers.h"
#include "util/rng.h"

namespace innet::runtime {
namespace {

using forms::FrozenTrackingForm;
using forms::TrackingForm;
using graph::EdgeId;
using mobility::CrossingEvent;

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/innet_recovery_test_XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Same stream generator as ingest_pipeline_test.cc: global time order,
// duplicates, silent slots.
std::vector<CrossingEvent> RandomStream(uint64_t seed, size_t num_edges,
                                        size_t num_events) {
  util::Rng rng(seed);
  std::vector<CrossingEvent> events;
  events.reserve(num_events);
  std::vector<bool> silent(2 * num_edges);
  for (size_t s = 0; s < silent.size(); ++s) silent[s] = rng.Bernoulli(0.2);
  while (events.size() < num_events) {
    EdgeId e = static_cast<EdgeId>(rng.UniformIndex(num_edges));
    bool forward = rng.Bernoulli(0.5);
    if (silent[FrozenTrackingForm::Slot(e, forward)]) continue;
    double t = rng.Uniform(0.0, 1000.0);
    if (rng.Bernoulli(0.1)) t = std::floor(t);
    events.push_back({e, forward, t});
  }
  std::sort(events.begin(), events.end(),
            [](const CrossingEvent& a, const CrossingEvent& b) {
              return a.time < b.time;
            });
  return events;
}

void ExpectBitIdentical(const FrozenTrackingForm& frozen,
                        const TrackingForm& reference) {
  ASSERT_EQ(frozen.num_edges(), reference.num_edges());
  ASSERT_EQ(frozen.TotalEvents(), reference.TotalEvents());
  for (EdgeId e = 0; e < reference.num_edges(); ++e) {
    for (bool forward : {true, false}) {
      ASSERT_EQ(frozen.EventCount(e, forward),
                reference.EventCount(e, forward))
          << "edge " << e << " fwd " << forward;
      for (double t : reference.Sequence(e, forward)) {
        for (double probe :
             {t, std::nextafter(t, -1e30), std::nextafter(t, 1e30)}) {
          ASSERT_EQ(frozen.CountUpTo(e, forward, probe),
                    reference.CountUpTo(e, forward, probe))
              << "edge " << e << " fwd " << forward << " t " << probe;
        }
      }
    }
  }
}

constexpr size_t kNumEdges = 16;
constexpr size_t kNumEvents = 1200;
constexpr size_t kEpochEvery = 100;

// The durable ingest run every crash-matrix child executes: deterministic
// epoch boundaries so the durable event count is always a push-order
// prefix cut at an epoch close the crash allowed to commit.
void DurableIngestRun(const std::string& wal_dir,
                      const std::vector<CrossingEvent>& stream,
                      size_t snapshot_every, size_t stop_after = SIZE_MAX) {
  IngestPipelineOptions options;
  options.durability.wal_dir = wal_dir;
  options.durability.snapshot_every_epochs = snapshot_every;
  IngestPipeline pipeline(kNumEdges, options);
  for (size_t i = 0; i < stream.size() && i < stop_after; ++i) {
    pipeline.Push(stream[i]);
    if ((i + 1) % kEpochEvery == 0) pipeline.CloseEpochAndWait();
  }
  pipeline.CloseEpochAndWait();
}

// Recovers `wal_dir` and asserts the store is exactly the push-order
// prefix of `stream` the log claims durable.
void ExpectRecoversDurablePrefix(const std::string& wal_dir,
                                 const std::vector<CrossingEvent>& stream,
                                 const std::string& context) {
  RecoveryOptions options;
  options.wal_dir = wal_dir;
  options.num_edges = kNumEdges;
  RecoveryManager manager(options);
  util::StatusOr<RecoveredState> state = manager.Recover();
  ASSERT_TRUE(state.ok()) << context << ": " << state.status().ToString();
  ASSERT_LE(state->durable_events, stream.size()) << context;
  TrackingForm prefix(kNumEdges);
  for (size_t i = 0; i < state->durable_events; ++i) {
    prefix.RecordTraversal(stream[i].edge, stream[i].forward, stream[i].time);
  }
  SCOPED_TRACE(context);
  ExpectBitIdentical(*state->store, prefix);
}

// ---- crash-point registry -------------------------------------------------

TEST(CrashPointRegistryTest, ArmDisarmAndCounting) {
  faults::CrashPointRegistry& registry = faults::CrashPointRegistry::Global();
  EXPECT_FALSE(registry.Armed());
  // Unreachable hit count: Reach() counts but never fires.
  registry.Arm("wal:pre-fsync", 1u << 30);
  EXPECT_TRUE(registry.Armed());
  EXPECT_EQ(registry.ArmedPoint(), "wal:pre-fsync");
  uint64_t before = registry.HitCount("wal:pre-fsync");
  INNET_CRASH_POINT("wal:pre-fsync");
  INNET_CRASH_POINT("wal:pre-fsync");
  INNET_CRASH_POINT("wal:mid-segment");  // Different point, also censused.
  EXPECT_EQ(registry.HitCount("wal:pre-fsync"), before + 2);
  EXPECT_GE(registry.HitCount("wal:mid-segment"), 1u);
  registry.Disarm();
  EXPECT_FALSE(registry.Armed());
  EXPECT_EQ(registry.ArmedPoint(), "");
}

TEST(CrashPointRegistryTest, SeedMatrixCoversEveryKnownPoint) {
  // ArmFromSeed must reach every known point across a modest seed range —
  // otherwise the CI matrix silently stops exercising some crash site.
  faults::CrashPointRegistry& registry = faults::CrashPointRegistry::Global();
  std::vector<bool> covered(faults::KnownCrashPoints().size(), false);
  for (uint64_t seed = 0; seed < 64; ++seed) {
    registry.ArmFromSeed(seed, 1u << 30);  // Huge hits: never fires.
    const std::string armed = registry.ArmedPoint();
    for (size_t i = 0; i < faults::KnownCrashPoints().size(); ++i) {
      if (faults::KnownCrashPoints()[i] == armed) covered[i] = true;
    }
  }
  registry.Disarm();
  for (size_t i = 0; i < covered.size(); ++i) {
    EXPECT_TRUE(covered[i]) << "seed matrix never arms "
                            << faults::KnownCrashPoints()[i];
  }
}

// ---- crash matrix ---------------------------------------------------------

// Forks a child that arms one deterministic crash point and runs the
// durable ingest; the parent recovers whatever hit the disk. Covers every
// known point × several hit counts across 20 seeds (CI re-runs the same
// binary, so the matrix is ≥16 seeds there too).
TEST(RecoveryTest, CrashMatrixRecoversDurablePrefixBitIdentically) {
  std::vector<CrossingEvent> stream = RandomStream(71, kNumEdges, kNumEvents);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    TempDir dir;
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: deterministic crash, no gtest machinery, no atexit.
      faults::CrashPointRegistry::Global().ArmFromSeed(seed);
      DurableIngestRun(dir.path, stream, /*snapshot_every=*/3);
      ::_exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus)) << "seed " << seed;
    int code = WEXITSTATUS(wstatus);
    ASSERT_TRUE(code == 0 ||
                code == faults::CrashPointRegistry::kCrashExitCode)
        << "seed " << seed << " exited " << code;
    ExpectRecoversDurablePrefix(dir.path, stream,
                                "seed " + std::to_string(seed) +
                                    (code == 0 ? " (ran to completion)"
                                               : " (crashed)"));
  }
}

// Raw SIGKILL — no crash point, no flush, the process just vanishes at an
// arbitrary stream position. The durable prefix must still recover.
TEST(RecoveryTest, SigkillMidIngestRecoversDurablePrefix) {
  std::vector<CrossingEvent> stream = RandomStream(72, kNumEdges, kNumEvents);
  for (size_t kill_after : {size_t{37}, size_t{250}, size_t{601},
                            size_t{1150}}) {
    TempDir dir;
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      IngestPipelineOptions options;
      options.durability.wal_dir = dir.path;
      options.durability.snapshot_every_epochs = 2;
      IngestPipeline pipeline(kNumEdges, options);
      for (size_t i = 0; i < stream.size(); ++i) {
        pipeline.Push(stream[i]);
        if ((i + 1) % kEpochEvery == 0) pipeline.CloseEpochAndWait();
        if (i + 1 == kill_after) ::kill(::getpid(), SIGKILL);
      }
      ::_exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL);
    ExpectRecoversDurablePrefix(dir.path, stream,
                                "kill after " + std::to_string(kill_after));
  }
}

// ---- recovery semantics ---------------------------------------------------

TEST(RecoveryTest, UninterruptedRunRecoversIdenticallyWithGeneration) {
  std::vector<CrossingEvent> stream = RandomStream(73, kNumEdges, 800);
  TempDir dir;
  uint64_t final_generation = 0;
  {
    IngestPipelineOptions options;
    options.durability.wal_dir = dir.path;
    options.durability.snapshot_every_epochs = 3;
    IngestPipeline pipeline(kNumEdges, options);
    for (size_t i = 0; i < stream.size(); ++i) {
      pipeline.Push(stream[i]);
      if ((i + 1) % kEpochEvery == 0) pipeline.CloseEpochAndWait();
    }
    pipeline.CloseEpochAndWait();
    final_generation = pipeline.handle().Generation();
  }

  RecoveryOptions options;
  options.wal_dir = dir.path;
  options.num_edges = kNumEdges;
  RecoveryManager manager(options);
  util::StatusOr<RecoveredState> state = manager.Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->durable_events, stream.size());
  EXPECT_EQ(state->generation, final_generation);
  EXPECT_TRUE(state->used_snapshot);  // snapshot_every=3 over 8 epochs.
  EXPECT_LT(state->replayed_events, stream.size())
      << "snapshot did not shorten the tail replay";
  TrackingForm reference(kNumEdges);
  for (const CrossingEvent& e : stream) {
    reference.RecordTraversal(e.edge, e.forward, e.time);
  }
  ExpectBitIdentical(*state->store, reference);
}

TEST(RecoveryTest, CorruptSnapshotFallsBackToFullReplay) {
  std::vector<CrossingEvent> stream = RandomStream(74, kNumEdges, 500);
  TempDir dir;
  DurableIngestRun(dir.path, stream, /*snapshot_every=*/2);

  // Flip a byte in the middle of every snapshot file.
  size_t damaged = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    std::FILE* f = std::fopen(entry.path().c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    long mid = static_cast<long>(std::filesystem::file_size(entry.path()) / 2);
    std::fseek(f, mid, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, mid, SEEK_SET);
    std::fputc(c ^ 0x10, f);
    std::fclose(f);
    ++damaged;
  }
  ASSERT_GT(damaged, 0u);

  RecoveryOptions options;
  options.wal_dir = dir.path;
  options.num_edges = kNumEdges;
  util::StatusOr<RecoveredState> state = RecoveryManager(options).Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_FALSE(state->used_snapshot);
  EXPECT_EQ(state->replayed_events, stream.size());  // Full-log replay.
  TrackingForm reference(kNumEdges);
  for (const CrossingEvent& e : stream) {
    reference.RecordTraversal(e.edge, e.forward, e.time);
  }
  ExpectBitIdentical(*state->store, reference);
}

TEST(RecoveryTest, EmptyOrMissingLogRecoversEmptyGenerationOne) {
  RecoveryOptions options;
  options.wal_dir = "/tmp/innet_recovery_test_definitely_missing_dir";
  options.num_edges = kNumEdges;
  util::StatusOr<RecoveredState> state = RecoveryManager(options).Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->generation, 1u);
  EXPECT_EQ(state->durable_events, 0u);
  EXPECT_EQ(state->store->TotalEvents(), 0u);
}

// Crash → Resume() → finish the stream → the final store and a second
// recovery both match the uninterrupted run. The full durability loop.
TEST(RecoveryTest, ResumeContinuesStreamAndStaysDurable) {
  std::vector<CrossingEvent> stream = RandomStream(75, kNumEdges, kNumEvents);
  TempDir dir;
  // Phase 1: crash partway through (deterministic crash point).
  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    faults::CrashPointRegistry::Global().Arm("wal:pre-fsync", 4);
    DurableIngestRun(dir.path, stream, /*snapshot_every=*/2);
    ::_exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  ASSERT_EQ(WEXITSTATUS(wstatus), faults::CrashPointRegistry::kCrashExitCode);

  // Phase 2: resume, figure out where the durable prefix ended, and feed
  // the remainder of the stream.
  RecoveryOptions recovery_options;
  recovery_options.wal_dir = dir.path;
  recovery_options.num_edges = kNumEdges;
  RecoveredState recovered;
  IngestPipelineOptions pipeline_options;
  pipeline_options.durability.snapshot_every_epochs = 2;
  util::StatusOr<std::unique_ptr<IngestPipeline>> pipeline =
      RecoveryManager(recovery_options)
          .Resume(pipeline_options, &recovered);
  ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
  ASSERT_LT(recovered.durable_events, stream.size());
  EXPECT_EQ((*pipeline)->handle().Generation(), recovered.generation);
  for (size_t i = recovered.durable_events; i < stream.size(); ++i) {
    (*pipeline)->Push(stream[i]);
    if ((i + 1) % kEpochEvery == 0) (*pipeline)->CloseEpochAndWait();
  }
  (*pipeline)->CloseEpochAndWait();

  TrackingForm reference(kNumEdges);
  for (const CrossingEvent& e : stream) {
    reference.RecordTraversal(e.edge, e.forward, e.time);
  }
  {
    forms::FrozenStoreHandle::Snapshot snap = (*pipeline)->handle().Acquire();
    ExpectBitIdentical(*snap.store, reference);
  }
  pipeline->reset();  // Clean shutdown: final epoch committed.

  // Phase 3: recover once more — the resumed run's WAL is itself durable.
  util::StatusOr<RecoveredState> again =
      RecoveryManager(recovery_options).Recover();
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->durable_events, stream.size());
  ExpectBitIdentical(*again->store, reference);
}

// ---- deployment-scale golden test ----------------------------------------

// Query-level identity: SampledQueryProcessor answers (point estimates AND
// AnswerSeries at several resolutions) over the recovered store must equal
// an uninterrupted run's answers exactly.
TEST(RecoveryTest, DeploymentAnswersFromRecoveredStoreMatchExactly) {
  core::FrameworkOptions fo;
  fo.road.num_junctions = 200;
  fo.traffic.num_trajectories = 250;
  fo.seed = 23;
  core::Framework framework(fo);
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, framework.network().NumSensors() / 5, core::DeploymentOptions{},
      rng);
  core::WorkloadOptions wo;
  wo.area_fraction = 0.05;
  wo.horizon = framework.Horizon();
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(framework.network(), wo, 8, rng);

  std::vector<CrossingEvent> events;
  for (const CrossingEvent& e : framework.network().events()) {
    if (deployment.graph().IsMonitored(e.edge)) events.push_back(e);
  }
  ASSERT_FALSE(events.empty());
  size_t edge_space = framework.network().TotalEdgeSpace();

  TempDir dir;
  uint64_t live_generation = 0;
  {
    IngestPipelineOptions options;
    options.durability.wal_dir = dir.path;
    options.durability.snapshot_every_epochs = 3;
    IngestPipeline pipeline(edge_space, options);
    size_t chunk = events.size() / 9 + 1;
    for (size_t begin = 0; begin < events.size(); begin += chunk) {
      size_t end = std::min(begin + chunk, events.size());
      for (size_t i = begin; i < end; ++i) pipeline.Push(events[i]);
      pipeline.CloseEpochAndWait();
    }
    live_generation = pipeline.handle().Generation();
  }

  RecoveryOptions options;
  options.wal_dir = dir.path;
  options.num_edges = edge_space;
  util::StatusOr<RecoveredState> state = RecoveryManager(options).Recover();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ(state->generation, live_generation);
  EXPECT_EQ(state->durable_events, events.size());

  const TrackingForm* tracking = deployment.tracking_store();
  ASSERT_NE(tracking, nullptr);
  FrozenTrackingForm scratch = tracking->Freeze();
  core::SampledQueryProcessor reference(deployment.graph(), scratch);
  core::SampledQueryProcessor recovered_proc(deployment.graph(),
                                             *state->store);
  for (const core::RangeQuery& q : queries) {
    for (core::BoundMode bound :
         {core::BoundMode::kLower, core::BoundMode::kUpper}) {
      for (core::CountKind kind :
           {core::CountKind::kStatic, core::CountKind::kTransient}) {
        core::QueryAnswer a = reference.Answer(q, kind, bound);
        core::QueryAnswer b = recovered_proc.Answer(q, kind, bound);
        EXPECT_EQ(a.estimate, b.estimate);
        EXPECT_EQ(a.missed, b.missed);
      }
      for (size_t steps : {size_t{0}, size_t{1}, size_t{500}}) {
        std::vector<double> a = reference.AnswerSeries(q, bound, steps);
        std::vector<double> b = recovered_proc.AnswerSeries(q, bound, steps);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i], b[i]) << "steps=" << steps << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace innet::runtime
