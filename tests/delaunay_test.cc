#include <gtest/gtest.h>

#include <set>

#include "geometry/delaunay.h"
#include "geometry/predicates.h"
#include "util/rng.h"

namespace innet::geometry {
namespace {

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Point> points;
  std::set<std::pair<long, long>> seen;
  while (points.size() < n) {
    Point p(rng.Uniform(0, 1000), rng.Uniform(0, 1000));
    auto key = std::make_pair(std::lround(p.x * 100), std::lround(p.y * 100));
    if (seen.insert(key).second) points.push_back(p);
  }
  return points;
}

TEST(DelaunayTest, TooFewPoints) {
  EXPECT_TRUE(DelaunayTriangulate({}).triangles.empty());
  EXPECT_TRUE(DelaunayTriangulate({{0, 0}}).triangles.empty());
  EXPECT_TRUE(DelaunayTriangulate({{0, 0}, {1, 1}}).triangles.empty());
}

TEST(DelaunayTest, SingleTriangle) {
  Triangulation tri = DelaunayTriangulate({{0, 0}, {1, 0}, {0, 1}});
  ASSERT_EQ(tri.triangles.size(), 1u);
  EXPECT_EQ(tri.Edges().size(), 3u);
}

TEST(DelaunayTest, SquareHasTwoTriangles) {
  Triangulation tri =
      DelaunayTriangulate({{0, 0}, {1, 0}, {1, 1.05}, {0, 1}});
  EXPECT_EQ(tri.triangles.size(), 2u);
  EXPECT_EQ(tri.Edges().size(), 5u);
}

TEST(DelaunayTest, TrianglesAreCounterClockwise) {
  std::vector<Point> points = RandomPoints(60, 3);
  Triangulation tri = DelaunayTriangulate(points);
  for (const Triangle& t : tri.triangles) {
    EXPECT_GT(
        SignedArea2(points[t.v[0]], points[t.v[1]], points[t.v[2]]), 0.0);
  }
}

// Euler relation for triangulations of points in general position:
// #triangles = 2n - 2 - h, #edges = 3n - 3 - h (h = hull vertices).
TEST(DelaunayTest, EulerCounts) {
  std::vector<Point> points = RandomPoints(120, 7);
  Triangulation tri = DelaunayTriangulate(points);
  size_t n = points.size();
  size_t f = tri.triangles.size();
  size_t e = tri.Edges().size();
  // V - E + F = 2 with F = triangles + outer face.
  EXPECT_EQ(n - e + (f + 1), 2u);
}

class DelaunayProperty : public ::testing::TestWithParam<int> {};

// The defining property: no input point lies strictly inside any triangle's
// circumcircle.
TEST_P(DelaunayProperty, EmptyCircumcircle) {
  std::vector<Point> points = RandomPoints(80, GetParam());
  Triangulation tri = DelaunayTriangulate(points);
  ASSERT_FALSE(tri.triangles.empty());
  for (const Triangle& t : tri.triangles) {
    Point center =
        Circumcenter(points[t.v[0]], points[t.v[1]], points[t.v[2]]);
    double r2 = DistanceSquared(center, points[t.v[0]]);
    for (uint32_t p = 0; p < points.size(); ++p) {
      if (p == t.v[0] || p == t.v[1] || p == t.v[2]) continue;
      // Allow a tolerance for near-cocircular configurations.
      EXPECT_GE(DistanceSquared(center, points[p]), r2 * (1.0 - 1e-9))
          << "point " << p << " inside circumcircle";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelaunayProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace innet::geometry
