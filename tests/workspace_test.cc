// QueryWorkspace: identity of the allocation-free primitives with the
// allocating overloads, stamp correctness across reuse, and the zero
// steady-state allocation guarantee of the warm query path (pinned with
// util::AllocProbe, which this binary links by referencing it).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/framework.h"
#include "core/query_processor.h"
#include "core/query_workspace.h"
#include "core/workload.h"
#include "forms/frozen_tracking_form.h"
#include "runtime/batch_query_engine.h"
#include "sampling/samplers.h"
#include "util/alloc_probe.h"

namespace innet::core {
namespace {

FrameworkOptions SmallOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 300;
  options.seed = seed;
  return options;
}

class WorkspaceFixture : public ::testing::Test {
 protected:
  WorkspaceFixture() : framework_(SmallOptions(5)) {
    sampling::KdTreeSampler sampler;
    util::Rng rng = framework_.ForkRng();
    deployment_ = std::make_unique<Deployment>(framework_.DeployWithSampler(
        sampler, framework_.network().NumSensors() / 5, DeploymentOptions{},
        rng));
    WorkloadOptions wo;
    wo.area_fraction = 0.05;
    wo.horizon = framework_.Horizon();
    queries_ = GenerateWorkload(framework_.network(), wo, 20, rng);
  }

  Framework framework_;
  std::unique_ptr<Deployment> deployment_;
  std::vector<RangeQuery> queries_;
};

TEST_F(WorkspaceFixture, WorkspaceVariantsMatchAllocatingOverloads) {
  const SampledGraph& g = deployment_->graph();
  QueryWorkspace ws;  // Fresh, private workspace (not the thread-local one).
  for (const RangeQuery& q : queries_) {
    std::vector<uint32_t> lower = g.LowerBoundFaces(q.junctions);
    g.LowerBoundFaces(q.junctions, ws);
    EXPECT_EQ(ws.faces, lower);

    std::vector<uint32_t> upper = g.UpperBoundFaces(q.junctions);
    g.UpperBoundFaces(q.junctions, ws);
    EXPECT_EQ(ws.faces, upper);

    if (upper.empty()) continue;
    SampledGraph::RegionBoundary boundary = g.BoundaryOfFaces(upper);
    // `faces` aliasing ws.faces is part of the contract.
    g.BoundaryOfFaces(ws.faces, ws);
    ASSERT_EQ(ws.boundary_edges.size(), boundary.edges.size());
    for (size_t i = 0; i < boundary.edges.size(); ++i) {
      EXPECT_EQ(ws.boundary_edges[i].edge, boundary.edges[i].edge);
      EXPECT_EQ(ws.boundary_edges[i].inward_is_forward,
                boundary.edges[i].inward_is_forward);
    }
    EXPECT_EQ(ws.boundary_sensors, boundary.sensors);
    // Sensors are deduplicated: equal as a set to the dual endpoints of the
    // boundary edges, with no repeats.
    std::set<graph::NodeId> unique_sensors(ws.boundary_sensors.begin(),
                                           ws.boundary_sensors.end());
    EXPECT_EQ(unique_sensors.size(), ws.boundary_sensors.size());
  }
}

TEST_F(WorkspaceFixture, ReusedWorkspaceAnswersMatchFreshWorkspaces) {
  SampledQueryProcessor processor = deployment_->processor();
  QueryWorkspace reused;
  for (const RangeQuery& q : queries_) {
    QueryWorkspace fresh;
    QueryAnswer a =
        processor.Answer(q, CountKind::kStatic, BoundMode::kLower, nullptr,
                         nullptr, &fresh);
    QueryAnswer b =
        processor.Answer(q, CountKind::kStatic, BoundMode::kLower, nullptr,
                         nullptr, &reused);
    // Stamped scratch must behave as if zero-initialized every query.
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.missed, b.missed);
    EXPECT_EQ(a.nodes_accessed, b.nodes_accessed);
    EXPECT_EQ(a.edges_accessed, b.edges_accessed);
  }
}

// The satellite bugfix regression: a junction listed twice in the query
// must count ONCE toward a face's coverage. Before the fix the duplicate
// inflated the hit count past the face size, so the equality test silently
// rejected fully-covered faces.
TEST_F(WorkspaceFixture, LowerBoundFacesCountsDuplicateJunctionsOnce) {
  const SampledGraph& g = deployment_->graph();
  const graph::PlanarGraph& mobility = framework_.network().mobility();
  // All junctions of one face: its lower bound must resolve to that face.
  for (uint32_t target = 0; target < g.NumFaces(); ++target) {
    std::vector<graph::NodeId> junctions;
    for (graph::NodeId n = 0; n < mobility.NumNodes(); ++n) {
      if (g.FaceOfJunction(n) == target) junctions.push_back(n);
    }
    if (junctions.empty()) continue;
    std::vector<uint32_t> clean = g.LowerBoundFaces(junctions);
    ASSERT_TRUE(std::count(clean.begin(), clean.end(), target) == 1)
        << "face " << target;
    // Duplicate every junction (and triple the first): same resolution.
    std::vector<graph::NodeId> dupes = junctions;
    dupes.insert(dupes.end(), junctions.begin(), junctions.end());
    dupes.push_back(junctions.front());
    EXPECT_EQ(g.LowerBoundFaces(dupes), clean);
    break;  // One face suffices; the loop only skips empty faces.
  }
}

TEST_F(WorkspaceFixture, UnsampledAnswersMatchWithAndWithoutWorkspace) {
  UnsampledQueryProcessor processor(framework_.network());
  QueryWorkspace ws;
  for (const RangeQuery& q : queries_) {
    QueryAnswer a = processor.Answer(q, CountKind::kStatic);
    QueryAnswer b = processor.Answer(q, CountKind::kStatic, nullptr, &ws);
    EXPECT_EQ(a.estimate, b.estimate);
    EXPECT_EQ(a.nodes_accessed, b.nodes_accessed);
    EXPECT_EQ(a.edges_accessed, b.edges_accessed);
    QueryAnswer c = processor.Answer(q, CountKind::kTransient);
    QueryAnswer d = processor.Answer(q, CountKind::kTransient, nullptr, &ws);
    EXPECT_EQ(c.estimate, d.estimate);
  }
}

TEST_F(WorkspaceFixture, SampledProcessorWarmPathDoesNotAllocate) {
  SampledQueryProcessor processor = deployment_->processor();
  QueryWorkspace ws;
  // Warm-up: grows the workspace buffers and the metric registry's
  // per-thread shards.
  for (int round = 0; round < 2; ++round) {
    for (const RangeQuery& q : queries_) {
      processor.Answer(q, CountKind::kStatic, BoundMode::kLower, nullptr,
                       nullptr, &ws);
      processor.Answer(q, CountKind::kTransient, BoundMode::kUpper, nullptr,
                       nullptr, &ws);
    }
  }
  util::AllocProbe probe;
  for (const RangeQuery& q : queries_) {
    processor.Answer(q, CountKind::kStatic, BoundMode::kLower, nullptr,
                     nullptr, &ws);
    processor.Answer(q, CountKind::kTransient, BoundMode::kUpper, nullptr,
                     nullptr, &ws);
  }
  EXPECT_EQ(probe.Delta(), 0u);
}

TEST_F(WorkspaceFixture, UnsampledProcessorWarmPathDoesNotAllocate) {
  UnsampledQueryProcessor processor(framework_.network());
  QueryWorkspace ws;
  for (int round = 0; round < 2; ++round) {
    for (const RangeQuery& q : queries_) {
      processor.Answer(q, CountKind::kStatic, nullptr, &ws);
      processor.Answer(q, CountKind::kTransient, nullptr, &ws);
    }
  }
  util::AllocProbe probe;
  for (const RangeQuery& q : queries_) {
    processor.Answer(q, CountKind::kStatic, nullptr, &ws);
    processor.Answer(q, CountKind::kTransient, nullptr, &ws);
  }
  EXPECT_EQ(probe.Delta(), 0u);
}

TEST_F(WorkspaceFixture, EngineWarmCacheHitPathDoesNotAllocate) {
  forms::FrozenTrackingForm frozen = deployment_->tracking_store()->Freeze();
  runtime::BatchEngineOptions options;
  options.num_threads = 0;  // Serial: the probe window stays single-threaded.
  runtime::BatchQueryEngine engine(deployment_->graph(), frozen, options);
  // First pass resolves and caches every region (cold, allocates); the
  // second warms metric shards and the LRU touch path.
  for (int round = 0; round < 2; ++round) {
    for (const RangeQuery& q : queries_) {
      engine.Answer(q, CountKind::kStatic, BoundMode::kLower);
    }
  }
  util::AllocProbe probe;
  for (const RangeQuery& q : queries_) {
    engine.Answer(q, CountKind::kStatic, BoundMode::kLower);
  }
  EXPECT_EQ(probe.Delta(), 0u);
}

}  // namespace
}  // namespace innet::core
