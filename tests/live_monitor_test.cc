#include <gtest/gtest.h>

#include "core/event_buffer.h"
#include "core/framework.h"
#include "core/live_monitor.h"
#include "core/workload.h"
#include "faults/fault_model.h"
#include "sampling/samplers.h"

namespace innet::core {
namespace {

FrameworkOptions SmallOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 400;
  options.seed = seed;
  return options;
}

class LiveMonitorFixture : public ::testing::Test {
 protected:
  LiveMonitorFixture() : framework_(SmallOptions(31)) {
    WorkloadOptions wo;
    wo.area_fraction = 0.1;
    wo.horizon = framework_.Horizon();
    util::Rng rng = framework_.ForkRng();
    queries_ = GenerateWorkload(framework_.network(), wo, 8, rng);
  }
  Framework framework_;
  std::vector<RangeQuery> queries_;
};

// Streaming counts match the batch evaluation at every event prefix.
TEST_F(LiveMonitorFixture, ExactMonitorTracksBatchCounts) {
  const SensorNetwork& net = framework_.network();
  for (const RangeQuery& q : queries_) {
    LiveRegionMonitor monitor(net, q.junctions);
    EXPECT_GT(monitor.WatchedEdges(), 0u);
    size_t checkpoint = net.events().size() / 5;
    size_t i = 0;
    for (const mobility::CrossingEvent& event : net.events()) {
      monitor.OnEvent(event);
      ++i;
      if (i % checkpoint == 0) {
        double batch = net.GroundTruthStatic(q.junctions, event.time);
        EXPECT_DOUBLE_EQ(static_cast<double>(monitor.CurrentCount()), batch)
            << "after " << i << " events";
      }
    }
    // Final count matches the end-of-time batch count.
    EXPECT_DOUBLE_EQ(static_cast<double>(monitor.CurrentCount()),
                     net.GroundTruthStatic(q.junctions, 1e18));
  }
}

TEST_F(LiveMonitorFixture, SampledMonitorTracksDeploymentAnswers) {
  const SensorNetwork& net = framework_.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, net.NumSensors() / 4, DeploymentOptions{}, rng);
  SampledQueryProcessor processor = dep.processor();
  for (const RangeQuery& q : queries_) {
    std::vector<uint32_t> faces = dep.graph().LowerBoundFaces(q.junctions);
    if (faces.empty()) continue;
    LiveRegionMonitor monitor(dep.graph(), faces);
    for (const mobility::CrossingEvent& event : net.events()) {
      monitor.OnEvent(event);
    }
    RangeQuery probe = q;
    probe.t2 = 1e18;
    QueryAnswer batch =
        processor.Answer(probe, CountKind::kStatic, BoundMode::kLower);
    EXPECT_DOUBLE_EQ(static_cast<double>(monitor.CurrentCount()),
                     batch.estimate);
  }
}

TEST_F(LiveMonitorFixture, NonBoundaryEventsIgnored) {
  const SensorNetwork& net = framework_.network();
  const RangeQuery& q = queries_.front();
  LiveRegionMonitor monitor(net, q.junctions);
  // Find an edge fully outside the region.
  std::vector<bool> mask = net.JunctionMask(q.junctions);
  graph::EdgeId outside = graph::kInvalidEdge;
  for (graph::EdgeId e = 0; e < net.mobility().NumEdges(); ++e) {
    if (!mask[net.mobility().Edge(e).u] && !mask[net.mobility().Edge(e).v]) {
      outside = e;
      break;
    }
  }
  ASSERT_NE(outside, graph::kInvalidEdge);
  monitor.OnEvent({outside, true, 1.0});
  monitor.OnEvent({outside, false, 2.0});
  EXPECT_EQ(monitor.CurrentCount(), 0);
  EXPECT_DOUBLE_EQ(monitor.LastEventTime(), 2.0);
}

// Satellite: a monitor fed a fault-injected stream (drops, bounded skew,
// duplicates) through the reorder buffer still brackets the true count with
// its drop-slack interval, and duplicates never double-count.
TEST_F(LiveMonitorFixture, IntervalBracketsTruthUnderFaultInjection) {
  const SensorNetwork& net = framework_.network();
  faults::FaultOptions fault_options;
  fault_options.seed = 77;
  fault_options.drop_probability = 0.05;
  fault_options.duplicate_probability = 0.05;
  fault_options.clock_skew_bound = 2.0;
  fault_options.horizon = framework_.Horizon();
  faults::FaultModel model(net, fault_options);
  faults::CorruptedStream corrupted = model.ApplyToStream(net.events());
  ASSERT_GT(corrupted.dropped, 0u);
  ASSERT_GT(corrupted.duplicated, 0u);

  for (const RangeQuery& q : queries_) {
    LiveRegionMonitor monitor(net, q.junctions);
    EventReorderBuffer buffer(
        2.0 * fault_options.clock_skew_bound + 1.0,
        [&](const mobility::CrossingEvent& e) { monitor.OnEvent(e); });
    for (const mobility::CrossingEvent& event : corrupted.events) {
      buffer.Push(event);
    }
    buffer.Flush();
    // Duplicates were suppressed upstream of the monitor.
    EXPECT_EQ(buffer.Duplicates(), corrupted.duplicated);

    double truth = net.GroundTruthStatic(q.junctions, 1e18);
    forms::CountInterval interval =
        monitor.CurrentInterval(fault_options.drop_probability);
    EXPECT_TRUE(interval.Contains(truth))
        << "truth " << truth << " outside [" << interval.lo << ", "
        << interval.hi << "]";
    // A fault-free stream yields the degenerate interval.
    forms::CountInterval exact = monitor.CurrentInterval(0.0);
    EXPECT_DOUBLE_EQ(exact.lo, exact.hi);
  }
}

TEST(LiveMonitorTest, CountNeverGoesNegativeOnRealStream) {
  Framework framework(SmallOptions(32));
  const SensorNetwork& net = framework.network();
  WorkloadOptions wo;
  wo.area_fraction = 0.15;
  wo.horizon = framework.Horizon();
  util::Rng rng = framework.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 5, rng);
  for (const RangeQuery& q : queries) {
    LiveRegionMonitor monitor(net, q.junctions);
    for (const mobility::CrossingEvent& event : net.events()) {
      monitor.OnEvent(event);
      ASSERT_GE(monitor.CurrentCount(), 0);
    }
  }
}

}  // namespace
}  // namespace innet::core
