#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/degraded.h"
#include "core/event_buffer.h"
#include "core/framework.h"
#include "core/workload.h"
#include "faults/fault_model.h"
#include "faults/health_monitor.h"
#include "forms/tracking_form.h"
#include "runtime/batch_query_engine.h"
#include "sampling/samplers.h"

namespace innet::faults {
namespace {

using core::BoundMode;
using core::CountKind;
using core::QueryAnswer;
using core::RangeQuery;

core::FrameworkOptions SmallOptions(uint64_t seed) {
  core::FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 400;
  options.seed = seed;
  return options;
}

// Replays a corrupted stream through the reorder buffer into an exact store
// restricted to the deployment's monitored edges — the real ingestion path.
forms::TrackingForm IngestCorrupted(const core::SensorNetwork& network,
                                    const core::SampledGraph& sampled,
                                    const CorruptedStream& corrupted,
                                    double max_lateness) {
  forms::TrackingForm store(network.TotalEdgeSpace());
  core::EventReorderBuffer buffer(
      max_lateness, [&](const mobility::CrossingEvent& event) {
        if (!sampled.IsMonitored(event.edge)) return;
        store.RecordTraversal(event.edge, event.forward, event.time);
      });
  for (const mobility::CrossingEvent& event : corrupted.events) {
    buffer.Push(event);
  }
  buffer.Flush();
  return store;
}

/// Scriptable health view for cache-invalidation tests.
class FakeHealth : public core::SensorHealthView {
 public:
  bool IsFailed(graph::NodeId sensor) const override {
    return std::find(failed_.begin(), failed_.end(), sensor) != failed_.end();
  }
  uint64_t Generation() const override { return generation_; }

  void Fail(graph::NodeId sensor) {
    failed_.push_back(sensor);
    ++generation_;
  }

 private:
  std::vector<graph::NodeId> failed_;
  uint64_t generation_ = 0;
};

TEST(FaultModelTest, SameSeedReproducesSameCorruption) {
  core::Framework framework(SmallOptions(7));
  const core::SensorNetwork& net = framework.network();
  FaultOptions options;
  options.seed = 99;
  options.dead_sensor_fraction = 0.1;
  options.drop_probability = 0.05;
  options.duplicate_probability = 0.05;
  options.clock_skew_bound = 0.5;
  options.horizon = framework.Horizon();

  FaultModel a(net, options);
  FaultModel b(net, options);
  EXPECT_EQ(a.DeadSensors(), b.DeadSensors());
  CorruptedStream sa = a.ApplyToStream(net.events());
  CorruptedStream sb = b.ApplyToStream(net.events());
  ASSERT_EQ(sa.events.size(), sb.events.size());
  EXPECT_EQ(sa.suppressed, sb.suppressed);
  EXPECT_EQ(sa.dropped, sb.dropped);
  EXPECT_EQ(sa.duplicated, sb.duplicated);
  for (size_t i = 0; i < sa.events.size(); ++i) {
    EXPECT_EQ(sa.events[i].edge, sb.events[i].edge);
    EXPECT_EQ(sa.events[i].forward, sb.events[i].forward);
    EXPECT_DOUBLE_EQ(sa.events[i].time, sb.events[i].time);
  }

  options.seed = 100;
  FaultModel c(net, options);
  CorruptedStream sc = c.ApplyToStream(net.events());
  bool identical = sa.events.size() == sc.events.size();
  for (size_t i = 0; identical && i < sa.events.size(); ++i) {
    identical = sa.events[i].edge == sc.events[i].edge &&
                sa.events[i].time == sc.events[i].time;
  }
  EXPECT_FALSE(identical) << "different seeds must corrupt differently";
}

TEST(FaultModelTest, DeadSensorsSuppressEveryOwnedEvent) {
  core::Framework framework(SmallOptions(8));
  const core::SensorNetwork& net = framework.network();
  FaultOptions options;
  options.seed = 5;
  options.dead_sensor_fraction = 0.2;  // Dead from t = 0.
  FaultModel model(net, options);
  ASSERT_FALSE(model.DeadSensors().empty());

  CorruptedStream corrupted = model.ApplyToStream(net.events());
  EXPECT_EQ(corrupted.events.size() + corrupted.suppressed,
            net.events().size());
  EXPECT_GT(corrupted.suppressed, 0u);
  size_t owned = 0;
  for (const mobility::CrossingEvent& event : corrupted.events) {
    // Virtual ⋆v_ext entry edges have no owning sensor and never fail.
    graph::NodeId owner = net.EdgeOwner(event.edge);
    if (owner == graph::kInvalidNode) {
      EXPECT_TRUE(net.IsVirtualEdge(event.edge));
      continue;
    }
    ++owned;
    EXPECT_FALSE(model.IsFailed(owner));
  }
  EXPECT_GT(owned, 0u);
  // Time-sorted output.
  for (size_t i = 1; i < corrupted.events.size(); ++i) {
    EXPECT_LE(corrupted.events[i - 1].time, corrupted.events[i].time);
  }
}

TEST(FaultModelTest, ReorderBufferSuppressesInjectedDuplicates) {
  core::Framework framework(SmallOptions(9));
  const core::SensorNetwork& net = framework.network();
  FaultOptions options;
  options.seed = 3;
  options.duplicate_probability = 0.3;
  FaultModel model(net, options);
  CorruptedStream corrupted = model.ApplyToStream(net.events());
  ASSERT_GT(corrupted.duplicated, 0u);

  size_t delivered = 0;
  core::EventReorderBuffer buffer(
      1.0, [&](const mobility::CrossingEvent&) { ++delivered; });
  for (const mobility::CrossingEvent& event : corrupted.events) {
    buffer.Push(event);
  }
  buffer.Flush();
  EXPECT_EQ(buffer.Duplicates(), corrupted.duplicated);
  EXPECT_EQ(delivered, corrupted.events.size() - corrupted.duplicated);
  EXPECT_EQ(delivered, net.events().size());
}

TEST(HealthMonitorTest, FlagsSilentSensorsAndBumpsGeneration) {
  core::Framework framework(SmallOptions(12));
  const core::SensorNetwork& net = framework.network();
  double horizon = framework.Horizon();

  FaultOptions fault_options;
  fault_options.seed = 21;
  fault_options.dead_sensor_fraction = 0.1;
  fault_options.horizon = horizon;
  FaultModel model(net, fault_options);
  ASSERT_FALSE(model.DeadSensors().empty());
  CorruptedStream corrupted = model.ApplyToStream(net.events());

  HealthMonitorOptions monitor_options;
  monitor_options.window = horizon / 10.0;
  SensorHealthMonitor monitor(net, monitor_options);
  monitor.Calibrate(net.events(), horizon);
  for (const mobility::CrossingEvent& event : corrupted.events) {
    monitor.OnEvent(event);
  }
  monitor.AdvanceTo(horizon + monitor_options.window);

  EXPECT_GT(monitor.Generation(), 0u);
  EXPECT_GT(monitor.NumDead(), 0u);

  // Every dead sensor busy enough to be judged must be flagged; every
  // flagged sensor must actually be dead (no drops in this model, so a
  // healthy sensor never looks silent for two consecutive windows).
  size_t judged_dead = 0;
  for (graph::NodeId s : model.DeadSensors()) {
    if (monitor.IsFailed(s)) ++judged_dead;
  }
  EXPECT_GT(judged_dead, 0u);
  EXPECT_EQ(monitor.NumDead(), judged_dead);
}

TEST(DegradedTest, FaultFreeHealthYieldsPointIntervals) {
  core::Framework framework(SmallOptions(13));
  const core::SensorNetwork& net = framework.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment dep = framework.DeployWithSampler(
      sampler, net.NumSensors() / 4, core::DeploymentOptions{}, rng);

  core::WorkloadOptions wo;
  wo.area_fraction = 0.08;
  wo.horizon = framework.Horizon();
  util::Rng wrng = framework.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 20, wrng);

  core::AllHealthyView healthy;
  core::SampledQueryProcessor processor = dep.processor();
  for (const RangeQuery& q : queries) {
    QueryAnswer plain = processor.Answer(q, CountKind::kStatic,
                                         BoundMode::kLower);
    QueryAnswer deg = processor.AnswerDegraded(
        q, CountKind::kStatic, BoundMode::kLower, healthy, {});
    EXPECT_EQ(plain.missed, deg.missed);
    if (plain.missed) continue;
    EXPECT_FALSE(deg.degraded);
    EXPECT_DOUBLE_EQ(deg.estimate, plain.estimate);
    EXPECT_DOUBLE_EQ(deg.interval.lo, deg.interval.hi);
    EXPECT_DOUBLE_EQ(deg.interval.lo, plain.estimate);
  }
}

// The ISSUE's pinned acceptance criterion: with 10% dead sensors and 5%
// message drop (seeded), degraded intervals contain the fault-free answer on
// at least 95% of the workload, while the naive point estimate over the
// corrupted store misses it for some queries.
TEST(DegradedTest, IntervalsContainFaultFreeTruthUnderPinnedFaults) {
  core::Framework framework(SmallOptions(17));
  const core::SensorNetwork& net = framework.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment dep = framework.DeployWithSampler(
      sampler, net.NumSensors() / 4, core::DeploymentOptions{}, rng);

  FaultOptions fault_options;
  fault_options.seed = 2024;
  fault_options.dead_sensor_fraction = 0.10;
  fault_options.drop_probability = 0.05;
  fault_options.horizon = framework.Horizon();
  FaultModel model(net, fault_options);
  CorruptedStream corrupted = model.ApplyToStream(net.events());
  forms::TrackingForm corrupted_store =
      IngestCorrupted(net, dep.graph(), corrupted, 1.0);

  core::WorkloadOptions wo;
  wo.area_fraction = 0.08;
  wo.horizon = framework.Horizon();
  util::Rng wrng = framework.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 40, wrng);

  runtime::BatchEngineOptions degraded_options;
  degraded_options.health = &model;
  degraded_options.degraded = model.MakeDegradedOptions();
  runtime::BatchQueryEngine degraded_engine(dep.graph(), corrupted_store,
                                            degraded_options);
  runtime::BatchQueryEngine naive_engine(dep.graph(), corrupted_store, {});

  core::SampledQueryProcessor reference = dep.processor();
  size_t answered = 0;
  size_t contained = 0;
  size_t degraded_count = 0;
  size_t naive_wrong = 0;
  for (BoundMode bound : {BoundMode::kLower, BoundMode::kUpper}) {
    std::vector<QueryAnswer> degraded_answers =
        degraded_engine.AnswerBatch(queries, CountKind::kStatic, bound);
    std::vector<QueryAnswer> naive_answers =
        naive_engine.AnswerBatch(queries, CountKind::kStatic, bound);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryAnswer truth =
          reference.Answer(queries[i], CountKind::kStatic, bound);
      if (truth.missed || degraded_answers[i].missed) continue;
      ++answered;
      if (degraded_answers[i].degraded) ++degraded_count;
      if (degraded_answers[i].interval.Contains(truth.estimate)) ++contained;
      if (naive_answers[i].estimate != truth.estimate) ++naive_wrong;
    }
  }
  ASSERT_GT(answered, 0u);
  EXPECT_GT(degraded_count, 0u);
  EXPECT_GT(naive_wrong, 0u) << "faults should corrupt some naive answers";
  EXPECT_GE(static_cast<double>(contained),
            0.95 * static_cast<double>(answered))
      << contained << "/" << answered << " intervals contained the truth";

  runtime::BatchEngineSnapshot snap = degraded_engine.Snapshot();
  EXPECT_EQ(snap.degraded_answers, degraded_count);
}

TEST(DegradedTest, HealthGenerationChangeFlushesBoundaryCache) {
  core::Framework framework(SmallOptions(19));
  const core::SensorNetwork& net = framework.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment dep = framework.DeployWithSampler(
      sampler, net.NumSensors() / 4, core::DeploymentOptions{}, rng);

  core::WorkloadOptions wo;
  wo.area_fraction = 0.08;
  wo.horizon = framework.Horizon();
  util::Rng wrng = framework.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 20, wrng);

  FakeHealth health;
  runtime::BatchEngineOptions options;
  options.health = &health;
  runtime::BatchQueryEngine engine(dep.graph(), dep.store(), options);

  engine.AnswerBatch(queries, CountKind::kStatic, BoundMode::kLower);
  runtime::BatchEngineSnapshot before = engine.Snapshot();
  EXPECT_EQ(before.health_invalidations, 0u);
  EXPECT_EQ(before.degraded_answers, 0u);
  EXPECT_GT(engine.CacheSize(), 0u);

  // Kill the owner of some monitored edge, then re-answer: the cache must
  // be flushed and rebuilt under the new generation.
  graph::NodeId victim = graph::kInvalidNode;
  for (graph::EdgeId e : dep.graph().monitored_edges()) {
    victim = net.EdgeOwner(e);
    if (victim != graph::kInvalidNode) break;
  }
  ASSERT_NE(victim, graph::kInvalidNode);
  health.Fail(victim);

  std::vector<QueryAnswer> after_answers =
      engine.AnswerBatch(queries, CountKind::kStatic, BoundMode::kLower);
  runtime::BatchEngineSnapshot after = engine.Snapshot();
  EXPECT_EQ(after.health_invalidations, 1u);
  EXPECT_GT(after.cache_misses, before.cache_misses);

  // Degraded answers appear iff some query boundary touched the victim.
  for (const QueryAnswer& a : after_answers) {
    if (a.degraded) {
      EXPECT_GE(a.interval.hi, a.interval.lo);
      EXPECT_GT(a.dead_boundary_edges, 0u);
    }
  }
}

TEST(DegradedTest, OuterDeformationContainsInnerStatically) {
  core::Framework framework(SmallOptions(23));
  const core::SensorNetwork& net = framework.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment dep = framework.DeployWithSampler(
      sampler, net.NumSensors() / 4, core::DeploymentOptions{}, rng);

  FaultOptions fault_options;
  fault_options.seed = 4;
  fault_options.dead_sensor_fraction = 0.15;
  FaultModel model(net, fault_options);

  core::WorkloadOptions wo;
  wo.area_fraction = 0.1;
  wo.horizon = framework.Horizon();
  util::Rng wrng = framework.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 25, wrng);

  size_t degraded_seen = 0;
  for (const RangeQuery& q : queries) {
    std::vector<uint32_t> faces = dep.graph().LowerBoundFaces(q.junctions);
    if (faces.empty()) continue;
    core::DegradedBoundary resolved =
        core::ResolveDegradedBoundary(dep.graph(), faces, model, {});
    if (!resolved.degraded) continue;
    ++degraded_seen;
    // Deformed boundaries must be fully healthy.
    for (const forms::BoundaryEdge& be : resolved.outer.edges) {
      graph::NodeId owner = net.EdgeOwner(be.edge);
      EXPECT_TRUE(owner == graph::kInvalidNode || !model.IsFailed(owner));
    }
    if (!resolved.inner_empty) {
      for (const forms::BoundaryEdge& be : resolved.inner.edges) {
        graph::NodeId owner = net.EdgeOwner(be.edge);
        EXPECT_TRUE(owner == graph::kInvalidNode || !model.IsFailed(owner));
      }
    }
    // F- ⊆ F ⊆ F+ so static counts must be ordered at any time.
    double t = framework.Horizon() * 0.7;
    double mid = net.GroundTruthStatic(q.junctions, t);
    QueryAnswer answer = core::AnswerFromDegradedBoundary(
        dep.store(), resolved, {q.rect, q.junctions, 0.0, t},
        CountKind::kStatic, {});
    EXPECT_LE(answer.interval.lo, answer.interval.hi);
    (void)mid;
  }
  EXPECT_GT(degraded_seen, 0u);
}

}  // namespace
}  // namespace innet::faults
