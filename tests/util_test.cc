#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace innet::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kFailedPrecondition, StatusCode::kOutOfRange,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeName(code), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(9);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 9);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 20 && !any_diff; ++i) {
    any_diff = a.UniformInt(0, 1 << 30) != b.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
    int64_t k = rng.UniformInt(-5, 5);
    EXPECT_GE(k, -5);
    EXPECT_LE(k, 5);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(9);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(11);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, WeightedIndexRoughlyProportional) {
  Rng rng(13);
  std::vector<double> weights = {1.0, 3.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.WeightedIndex(weights)];
  double frac = static_cast<double>(counts[1]) / 10000.0;
  EXPECT_NEAR(frac, 0.75, 0.03);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(5);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) {
    differ = child1.UniformInt(0, 1 << 30) != child2.UniformInt(0, 1 << 30);
  }
  EXPECT_TRUE(differ);
}

TEST(StatsTest, PercentileBasics) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.25), 2.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.9), 9.0);
}

TEST(StatsTest, SummarizeMatchesHandComputation) {
  Summary s = Summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(StatsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(10.0, 9.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(10.0, 11.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(RelativeError(-4.0, -2.0), 0.5);
}

TEST(StatsTest, AccumulatorCollects) {
  Accumulator acc;
  EXPECT_TRUE(acc.empty());
  acc.Add(1.0);
  acc.Add(3.0);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_DOUBLE_EQ(acc.Summarize().median, 2.0);
}

TEST(TableTest, AlignedRendering) {
  Table t("demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", Table::Num(1.5, 2)});
  t.AddRow({"b", "200"});
  std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("demo"), std::string::npos);
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("1.50"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  Table t("demo");
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  FlagParser flags({"generate", "--count=5", "--name", "hello", "--x=1.5"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"generate"}));
  EXPECT_EQ(flags.GetInt("count", 0), 5);
  EXPECT_EQ(flags.GetString("name"), "hello");
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 0.0), 1.5);
}

TEST(FlagsTest, BareBooleanFlags) {
  // Positionals come first by convention: `--flag token` would otherwise
  // bind the token as the flag's value.
  FlagParser flags({"cmd", "--verbose", "--dry-run"});
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_TRUE(flags.Has("dry-run"));
  EXPECT_TRUE(flags.GetBool("dry-run"));
  EXPECT_FALSE(flags.GetBool("absent"));
  EXPECT_TRUE(flags.GetBool("absent", true));
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"cmd"}));
}

TEST(FlagsTest, FlagConsumesFollowingToken) {
  FlagParser flags({"--mode", "fast", "--check"});
  EXPECT_EQ(flags.GetString("mode"), "fast");
  EXPECT_TRUE(flags.GetBool("check"));
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagsTest, BooleanValues) {
  FlagParser flags({"--a=true", "--b=false", "--c=1", "--d=no", "--e=maybe"});
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c"));
  EXPECT_FALSE(flags.GetBool("d", true));
  EXPECT_TRUE(flags.GetBool("e", true));  // Unparsable -> fallback.
}

TEST(FlagsTest, DefaultsOnMissingOrBadValues) {
  FlagParser flags({"--count=abc", "--rate", "--name=x"});
  EXPECT_EQ(flags.GetInt("count", 7), 7);        // Unparsable.
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate", 2.5), 2.5);  // Bare.
  EXPECT_EQ(flags.GetInt("missing", -1), -1);
  EXPECT_EQ(flags.GetString("missing", "dflt"), "dflt");
}

TEST(FlagsTest, BareFlagFollowedByFlag) {
  FlagParser flags({"--a", "--b=2"});
  EXPECT_TRUE(flags.GetBool("a"));
  EXPECT_EQ(flags.GetInt("b", 0), 2);
}

TEST(FlagsTest, UnusedFlagTracking) {
  FlagParser flags({"--used=1", "--typo=2"});
  EXPECT_EQ(flags.GetInt("used", 0), 1);
  std::vector<std::string> unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Busy-wait a tiny, bounded amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += i * 0.5;
  double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_NEAR(timer.ElapsedMicros(), timer.ElapsedSeconds() * 1e6,
              timer.ElapsedMicros() * 0.5);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), elapsed + 1.0);
}

TEST(FlagsTest, ArgcArgvConstructor) {
  const char* argv[] = {"prog", "run", "--n=3"};
  FlagParser flags(3, argv);
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"run"}));
  EXPECT_EQ(flags.GetInt("n", 0), 3);
}

}  // namespace
}  // namespace innet::util
