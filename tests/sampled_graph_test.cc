#include <gtest/gtest.h>

#include <set>

#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"

namespace innet::core {
namespace {

core::FrameworkOptions SmallOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 300;
  options.seed = seed;
  return options;
}

class SampledGraphFixture : public ::testing::Test {
 protected:
  SampledGraphFixture() : framework_(SmallOptions(1)) {}
  Framework framework_;
};

TEST_F(SampledGraphFixture, FacesPartitionJunctions) {
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, framework_.network().NumSensors() / 5, DeploymentOptions{},
      rng);
  const SampledGraph& g = dep.graph();
  std::vector<size_t> sizes(g.NumFaces(), 0);
  for (graph::NodeId n = 0; n < framework_.network().mobility().NumNodes();
       ++n) {
    uint32_t f = g.FaceOfJunction(n);
    ASSERT_LT(f, g.NumFaces());
    ++sizes[f];
  }
  size_t total = 0;
  for (uint32_t f = 0; f < g.NumFaces(); ++f) {
    EXPECT_EQ(sizes[f], g.FaceSize(f));
    total += sizes[f];
  }
  EXPECT_EQ(total, framework_.network().mobility().NumNodes());
}

TEST_F(SampledGraphFixture, MonitoredEdgesSeparateFaces) {
  sampling::UniformSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, framework_.network().NumSensors() / 4, DeploymentOptions{},
      rng);
  const SampledGraph& g = dep.graph();
  const graph::PlanarGraph& mobility = framework_.network().mobility();
  // Unmonitored edges never separate faces.
  for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
    const graph::EdgeRecord& rec = mobility.Edge(e);
    if (!g.IsMonitored(e)) {
      EXPECT_EQ(g.FaceOfJunction(rec.u), g.FaceOfJunction(rec.v));
    }
  }
  // Virtual edges are always monitored.
  EXPECT_TRUE(g.IsMonitored(
      static_cast<graph::EdgeId>(mobility.NumEdges())));
}

TEST_F(SampledGraphFixture, LowerFacesAreSubsetOfUpperFaces) {
  sampling::QuadTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, framework_.network().NumSensors() / 4, DeploymentOptions{},
      rng);
  WorkloadOptions wo;
  wo.area_fraction = 0.08;
  wo.horizon = framework_.Horizon();
  util::Rng qrng = framework_.ForkRng();
  std::vector<RangeQuery> queries =
      GenerateWorkload(framework_.network(), wo, 15, qrng);
  for (const RangeQuery& q : queries) {
    std::vector<uint32_t> lower = dep.graph().LowerBoundFaces(q.junctions);
    std::vector<uint32_t> upper = dep.graph().UpperBoundFaces(q.junctions);
    std::set<uint32_t> upper_set(upper.begin(), upper.end());
    for (uint32_t f : lower) EXPECT_EQ(upper_set.count(f), 1u);
    // Lower faces fully inside; upper faces intersect.
    std::set<graph::NodeId> qset(q.junctions.begin(), q.junctions.end());
    for (uint32_t f : lower) {
      for (graph::NodeId n = 0;
           n < framework_.network().mobility().NumNodes(); ++n) {
        if (dep.graph().FaceOfJunction(n) == f) {
          EXPECT_EQ(qset.count(n), 1u);
        }
      }
    }
  }
}

TEST_F(SampledGraphFixture, BoundaryEdgesAreMonitoredAndSeparating) {
  sampling::SystematicSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, framework_.network().NumSensors() / 4, DeploymentOptions{},
      rng);
  WorkloadOptions wo;
  wo.area_fraction = 0.1;
  wo.horizon = framework_.Horizon();
  util::Rng qrng = framework_.ForkRng();
  std::vector<RangeQuery> queries =
      GenerateWorkload(framework_.network(), wo, 10, qrng);
  const graph::PlanarGraph& mobility = framework_.network().mobility();
  for (const RangeQuery& q : queries) {
    std::vector<uint32_t> faces = dep.graph().UpperBoundFaces(q.junctions);
    SampledGraph::RegionBoundary boundary =
        dep.graph().BoundaryOfFaces(faces);
    std::set<uint32_t> region(faces.begin(), faces.end());
    for (const forms::BoundaryEdge& b : boundary.edges) {
      EXPECT_TRUE(dep.graph().IsMonitored(b.edge));
      if (b.edge < mobility.NumEdges()) {
        const graph::EdgeRecord& rec = mobility.Edge(b.edge);
        bool u_in = region.count(dep.graph().FaceOfJunction(rec.u)) > 0;
        bool v_in = region.count(dep.graph().FaceOfJunction(rec.v)) > 0;
        EXPECT_NE(u_in, v_in);
        EXPECT_EQ(b.inward_is_forward, v_in);
      }
    }
    if (!boundary.edges.empty()) {
      EXPECT_FALSE(boundary.sensors.empty());
    }
  }
}

TEST_F(SampledGraphFixture, StatsAreConsistent) {
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  size_t m = framework_.network().NumSensors() / 4;
  Deployment dep =
      framework_.DeployWithSampler(sampler, m, DeploymentOptions{}, rng);
  const SampledGraphStats& stats = dep.graph().stats();
  EXPECT_EQ(stats.num_comm_sensors, m);
  EXPECT_EQ(stats.num_monitored_edges, dep.graph().monitored_edges().size());
  EXPECT_EQ(stats.num_faces, dep.graph().NumFaces());
  EXPECT_GT(stats.num_faces, 1u);
  EXPECT_LE(stats.simplified_edges, stats.num_monitored_edges);
  EXPECT_GT(stats.simplified_nodes, 0u);
}

TEST_F(SampledGraphFixture, KnnProducesMoreFacesThanSparseTriangulation) {
  // §4.5/Fig. 14: k-NN with larger k yields more, smaller faces.
  util::Rng rng1 = framework_.ForkRng();
  sampling::KdTreeSampler sampler;
  size_t m = framework_.network().NumSensors() / 4;
  std::vector<graph::NodeId> sensors =
      sampler.Select(framework_.network().sensing(), m, rng1);

  DeploymentOptions knn3;
  knn3.graph.connectivity = Connectivity::kKnn;
  knn3.graph.knn_k = 3;
  DeploymentOptions knn8 = knn3;
  knn8.graph.knn_k = 8;
  Deployment d3 = framework_.DeployFromSensors(sensors, knn3);
  Deployment d8 = framework_.DeployFromSensors(sensors, knn8);
  EXPECT_GE(d8.graph().NumFaces(), d3.graph().NumFaces());
  EXPECT_GE(d8.graph().monitored_edges().size(),
            d3.graph().monitored_edges().size());
}

TEST_F(SampledGraphFixture, FromMonitoredEdgesAllEdges) {
  // Monitoring every edge: each junction becomes its own face.
  const graph::PlanarGraph& mobility = framework_.network().mobility();
  std::vector<graph::EdgeId> all;
  for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) all.push_back(e);
  SampledGraph g =
      SampledGraph::FromMonitoredEdges(framework_.network(), all, {});
  EXPECT_EQ(g.NumFaces(), mobility.NumNodes());
}

TEST_F(SampledGraphFixture, MoreSensorsMeansMoreFaces) {
  sampling::UniformSampler sampler;
  size_t prev_faces = 0;
  for (size_t m : {10, 40, 120}) {
    util::Rng rng(7);  // Same stream for nested-ish samples.
    Deployment dep =
        framework_.DeployWithSampler(sampler, m, DeploymentOptions{}, rng);
    EXPECT_GE(dep.graph().NumFaces(), prev_faces);
    prev_faces = dep.graph().NumFaces();
  }
}

}  // namespace
}  // namespace innet::core
