#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/weighted_adjacency.h"
#include "mobility/road_network.h"
#include "mobility/trajectory.h"
#include "util/rng.h"

namespace innet::mobility {
namespace {

class RoadNetworkProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoadNetworkProperty, ConnectedPlanarAndSized) {
  util::Rng rng(GetParam());
  RoadNetworkOptions options;
  options.num_junctions = 300;
  graph::PlanarGraph g = GenerateRoadNetwork(options, rng);
  // Size: the separation rejection may drop a few junctions.
  EXPECT_GE(g.NumNodes(), 250u);
  EXPECT_LE(g.NumNodes(), 300u);
  // Connected (spanning tree is always kept).
  EXPECT_TRUE(graph::IsConnected(graph::EuclideanAdjacency(g)));
  // Euler's formula holds (checked internally too, but assert the numbers).
  EXPECT_EQ(g.NumNodes() - g.NumEdges() + g.NumFaces(), 2u);
  // Thinned triangulation: between tree and full Delaunay density.
  EXPECT_GE(g.NumEdges(), g.NumNodes() - 1);
  EXPECT_LE(g.NumEdges(), 3 * g.NumNodes());
}

TEST_P(RoadNetworkProperty, GatewaysOnOuterFace) {
  util::Rng rng(GetParam() + 77);
  RoadNetworkOptions options;
  options.num_junctions = 200;
  graph::PlanarGraph g = GenerateRoadNetwork(options, rng);
  std::vector<graph::NodeId> gateways = GatewayJunctions(g);
  EXPECT_GE(gateways.size(), 3u);
  EXPECT_LT(gateways.size(), g.NumNodes() / 2);
  std::vector<bool> mask = GatewayMask(g);
  size_t count = 0;
  for (bool b : mask) count += b ? 1 : 0;
  EXPECT_EQ(count, gateways.size());
  // Gateways are exactly the outer-face boundary junctions.
  for (graph::NodeId gnode : gateways) {
    bool touches_outer = false;
    for (graph::FaceId f : g.FacesAroundNode(gnode)) {
      if (f == g.OuterFace()) touches_outer = true;
    }
    EXPECT_TRUE(touches_outer);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoadNetworkProperty,
                         ::testing::Values(1, 12, 123));

TEST(RoadNetworkTest, ExtraEdgeFractionControlsDensity) {
  RoadNetworkOptions sparse;
  sparse.num_junctions = 250;
  sparse.extra_edge_fraction = 0.0;
  RoadNetworkOptions dense = sparse;
  dense.extra_edge_fraction = 1.0;
  util::Rng rng1(42);
  util::Rng rng2(42);
  graph::PlanarGraph g_sparse = GenerateRoadNetwork(sparse, rng1);
  graph::PlanarGraph g_dense = GenerateRoadNetwork(dense, rng2);
  EXPECT_EQ(g_sparse.NumEdges(), g_sparse.NumNodes() - 1);  // Pure tree.
  EXPECT_GT(g_dense.NumEdges(), g_sparse.NumEdges());
}

TEST(RoadNetworkTest, DeterministicGivenSeed) {
  RoadNetworkOptions options;
  options.num_junctions = 150;
  util::Rng rng1(7);
  util::Rng rng2(7);
  graph::PlanarGraph a = GenerateRoadNetwork(options, rng1);
  graph::PlanarGraph b = GenerateRoadNetwork(options, rng2);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (graph::NodeId n = 0; n < a.NumNodes(); ++n) {
    EXPECT_EQ(a.Position(n).x, b.Position(n).x);
    EXPECT_EQ(a.Position(n).y, b.Position(n).y);
  }
}

}  // namespace
}  // namespace innet::mobility
