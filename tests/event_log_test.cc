// WAL + snapshot durability suite (io/event_log.h, io/serialize.h):
// round-trips, segment rotation, writer resume, and — the heart of it —
// torn-write tolerance: the log truncated or bit-flipped at EVERY byte
// offset of its tail must recover to the last whole committed record with
// a WARN, never crash, and never silently lose a committed event.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "forms/frozen_tracking_form.h"
#include "forms/tracking_form.h"
#include "io/event_log.h"
#include "io/serialize.h"
#include "mobility/trajectory.h"
#include "util/logging.h"
#include "util/rng.h"

namespace innet::io {
namespace {

using mobility::CrossingEvent;

// ---- log capture ----------------------------------------------------------

std::mutex g_log_mutex;
std::vector<std::string> g_log_lines;

void CaptureSink(LogLevel, const char*, int, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_log_lines.push_back(message);
}

struct ScopedLogCapture {
  ScopedLogCapture() {
    {
      std::lock_guard<std::mutex> lock(g_log_mutex);
      g_log_lines.clear();
    }
    SetLogSink(&CaptureSink);
  }
  ~ScopedLogCapture() { SetLogSink(nullptr); }

  bool Contains(const std::string& needle) const {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    for (const std::string& line : g_log_lines) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }
};

// ---- tmp-dir scaffolding --------------------------------------------------

struct TempDir {
  TempDir() {
    char tmpl[] = "/tmp/innet_wal_test_XXXXXX";
    path = ::mkdtemp(tmpl);
    EXPECT_FALSE(path.empty());
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string path;
};

CrossingEvent Event(uint32_t edge, bool forward, double time) {
  return {static_cast<graph::EdgeId>(edge), forward, time};
}

// Writes a small deterministic log: epoch 1 = 2 events (generation 2),
// epoch 2 = 3 events (generation 3). Returns the events in log order.
std::vector<CrossingEvent> WriteTwoEpochLog(const std::string& dir,
                                            EventLogOptions options = {}) {
  std::vector<CrossingEvent> events = {
      Event(0, true, 1.0),  Event(1, false, 2.0), Event(0, true, 3.0),
      Event(2, true, 3.5),  Event(1, true, 4.0),
  };
  auto writer = EventLogWriter::Open(dir, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE((*writer)->Append(events[i]).ok());
  }
  EXPECT_TRUE((*writer)->CommitEpoch(1, 2).ok());
  for (size_t i = 2; i < events.size(); ++i) {
    EXPECT_TRUE((*writer)->Append(events[i]).ok());
  }
  EXPECT_TRUE((*writer)->CommitEpoch(2, 3).ok());
  return events;
}

void ExpectSameEvents(const std::vector<CrossingEvent>& got,
                      const std::vector<CrossingEvent>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].edge, want[i].edge) << i;
    EXPECT_EQ(got[i].forward, want[i].forward) << i;
    EXPECT_EQ(got[i].time, want[i].time) << i;
  }
}

// ---- CRC ------------------------------------------------------------------

TEST(Crc32cTest, KnownVectorAndStreamingEquivalence) {
  // The canonical CRC-32C check vector.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xe3069283u);
  // Chunked == one-shot.
  uint32_t s = kCrc32cInit;
  s = Crc32cExtend(s, digits, 4);
  s = Crc32cExtend(s, digits + 4, 5);
  EXPECT_EQ(Crc32cFinish(s), 0xe3069283u);
}

// ---- basic log behavior ---------------------------------------------------

TEST(EventLogTest, RoundTripTwoEpochs) {
  TempDir dir;
  std::vector<CrossingEvent> events = WriteTwoEpochLog(dir.path);

  auto replay = ReplayEventLog(dir.path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ExpectSameEvents(replay->events, events);
  ASSERT_EQ(replay->commits.size(), 2u);
  EXPECT_EQ(replay->commits[0].epoch, 1u);
  EXPECT_EQ(replay->commits[0].events, 2u);
  EXPECT_EQ(replay->commits[0].generation, 2u);
  EXPECT_EQ(replay->commits[1].epoch, 2u);
  EXPECT_EQ(replay->commits[1].events, 3u);
  EXPECT_EQ(replay->durable_events, 5u);
  EXPECT_EQ(replay->durable_epoch, 2u);
  EXPECT_EQ(replay->generation, 3u);
  EXPECT_EQ(replay->discarded_events, 0u);
  EXPECT_EQ(replay->torn_bytes, 0u);
}

TEST(EventLogTest, SkipEventsDropsTheSnapshotPrefix) {
  TempDir dir;
  std::vector<CrossingEvent> events = WriteTwoEpochLog(dir.path);

  auto replay = ReplayEventLog(dir.path, 2);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ExpectSameEvents(replay->events,
                   {events.begin() + 2, events.end()});
  EXPECT_EQ(replay->durable_events, 5u);  // Durable counts are unskipped.

  // Skipping more than the log holds is a snapshot/WAL mismatch.
  EXPECT_FALSE(ReplayEventLog(dir.path, 6).ok());
}

TEST(EventLogTest, RotatesSegmentsOnCommitBoundaries) {
  TempDir dir;
  EventLogOptions options;
  options.segment_bytes = 64;  // Rotate after every commit.
  options.fsync_on_commit = false;

  auto writer = EventLogWriter::Open(dir.path, options);
  ASSERT_TRUE(writer.ok());
  std::vector<CrossingEvent> events;
  for (uint64_t epoch = 1; epoch <= 5; ++epoch) {
    for (int i = 0; i < 3; ++i) {
      CrossingEvent e = Event(static_cast<uint32_t>(epoch), i % 2 == 0,
                              static_cast<double>(10 * epoch + i));
      events.push_back(e);
      ASSERT_TRUE((*writer)->Append(e).ok());
    }
    ASSERT_TRUE((*writer)->CommitEpoch(epoch, epoch + 1).ok());
  }
  size_t segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir.path)) {
    (void)entry;
    ++segments;
  }
  EXPECT_GE(segments, 4u);  // Genuinely multi-segment.

  auto replay = ReplayEventLog(dir.path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ExpectSameEvents(replay->events, events);
  EXPECT_EQ(replay->durable_epoch, 5u);
  EXPECT_EQ(replay->generation, 6u);
}

TEST(EventLogTest, ReopenResumesAfterLastCommit) {
  TempDir dir;
  std::vector<CrossingEvent> events = WriteTwoEpochLog(dir.path);

  // Reopen and extend with a third epoch.
  auto writer = EventLogWriter::Open(dir.path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  EXPECT_EQ((*writer)->DurableEvents(), 5u);
  EXPECT_EQ((*writer)->DurableEpoch(), 2u);
  CrossingEvent extra = Event(3, false, 9.0);
  ASSERT_TRUE((*writer)->Append(extra).ok());
  ASSERT_TRUE((*writer)->CommitEpoch(3, 4).ok());
  events.push_back(extra);

  auto replay = ReplayEventLog(dir.path);
  ASSERT_TRUE(replay.ok());
  ExpectSameEvents(replay->events, events);
  EXPECT_EQ(replay->durable_epoch, 3u);
}

TEST(EventLogTest, ReopenTruncatesUncommittedTail) {
  TempDir dir;
  std::vector<CrossingEvent> events = WriteTwoEpochLog(dir.path);
  {
    // A writer that dies mid-epoch: whole, CRC-valid event records with no
    // commit. They must NOT be adopted by the next writer's first commit.
    auto writer = EventLogWriter::Open(dir.path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Event(7, true, 100.0)).ok());
    ASSERT_TRUE((*writer)->Append(Event(7, false, 101.0)).ok());
    // Destroyed without CommitEpoch — simulated crash.
  }
  ScopedLogCapture capture;
  auto writer = EventLogWriter::Open(dir.path);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  CrossingEvent extra = Event(4, true, 10.0);
  ASSERT_TRUE((*writer)->Append(extra).ok());
  ASSERT_TRUE((*writer)->CommitEpoch(3, 4).ok());
  events.push_back(extra);

  auto replay = ReplayEventLog(dir.path);
  ASSERT_TRUE(replay.ok());
  ExpectSameEvents(replay->events, events);  // Dead events are gone.
}

TEST(EventLogTest, FreshLogAfterNoCommitStartsOver) {
  TempDir dir;
  {
    auto writer = EventLogWriter::Open(dir.path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(Event(1, true, 1.0)).ok());
    // No commit at all.
  }
  auto writer = EventLogWriter::Open(dir.path);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->DurableEvents(), 0u);
  ASSERT_TRUE((*writer)->Append(Event(2, true, 2.0)).ok());
  ASSERT_TRUE((*writer)->CommitEpoch(1, 2).ok());
  auto replay = ReplayEventLog(dir.path);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->events.size(), 1u);
  EXPECT_EQ(replay->events[0].edge, 2u);
}

// ---- torn-write matrix ----------------------------------------------------

// The satellite requirement, exhaustively: truncate the (single-segment)
// log at EVERY byte length from "just past epoch 1's commit" to "one byte
// short of the end", i.e. at every offset inside epoch 2's records. Every
// truncation must replay cleanly to exactly epoch 1 with a WARN — no
// crash, no partial epoch, no silent loss of the committed prefix.
TEST(EventLogTest, TruncationAtEveryTailByteRecoversLastWholeCommit) {
  TempDir source;
  std::vector<CrossingEvent> events = WriteTwoEpochLog(source.path);
  std::string segment = source.path + "/wal-00000001.seg";
  uintmax_t full_size = std::filesystem::file_size(segment);

  // Find where epoch 1's durable prefix ends: replay a copy truncated at
  // every length and locate the longest one that still holds only epoch 1.
  // (The framing is private to event_log.cc; probing keeps the test honest
  // about the public contract instead of re-deriving the layout.)
  uintmax_t epoch1_end = 0;
  for (uintmax_t len = 0; len < full_size; ++len) {
    TempDir scratch;
    std::filesystem::copy_file(segment, scratch.path + "/wal-00000001.seg");
    std::filesystem::resize_file(scratch.path + "/wal-00000001.seg", len);
    ScopedLogCapture capture;
    auto replay = ReplayEventLog(scratch.path);
    ASSERT_TRUE(replay.ok())
        << "truncation at byte " << len << ": " << replay.status().ToString();
    EXPECT_LE(replay->durable_epoch, 2u) << "truncation at byte " << len;
    if (replay->durable_epoch == 0) {
      EXPECT_TRUE(replay->events.empty());
    } else if (replay->durable_epoch == 1) {
      ExpectSameEvents(replay->events, {events.begin(), events.begin() + 2});
      epoch1_end = len;
      // A shortened tail always sheds bytes or whole records, warned about.
      EXPECT_TRUE(capture.Contains("WAL") || replay->torn_bytes == 0)
          << "truncation at byte " << len;
    } else {
      ASSERT_EQ(len, 0u) << "full epoch 2 from a truncated file?";
    }
  }
  // The sweep genuinely exercised the interesting band: some truncations
  // recover epoch 1 (tail damage), and the shortest ones recover nothing.
  EXPECT_GT(epoch1_end, 0u);

  // Untruncated control: both epochs.
  auto replay = ReplayEventLog(source.path);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->durable_epoch, 2u);
}

// Bit-flip every byte of the final (commit) record region: the CRC must
// catch each one, demoting the log to epoch 1 — never a crash, never a
// half-applied epoch 2.
TEST(EventLogTest, BitFlipInTailNeverYieldsPartialEpoch) {
  TempDir source;
  std::vector<CrossingEvent> events = WriteTwoEpochLog(source.path);
  std::string segment = source.path + "/wal-00000001.seg";
  uintmax_t full_size = std::filesystem::file_size(segment);

  // Locate epoch 1's end once (longest truncation that replays to epoch 1).
  uintmax_t epoch1_end = 0;
  for (uintmax_t len = full_size; len-- > 0;) {
    TempDir scratch;
    std::filesystem::copy_file(segment, scratch.path + "/wal-00000001.seg");
    std::filesystem::resize_file(scratch.path + "/wal-00000001.seg", len);
    auto replay = ReplayEventLog(scratch.path);
    ASSERT_TRUE(replay.ok());
    if (replay->durable_epoch == 1) {
      epoch1_end = len;
      break;
    }
  }
  ASSERT_GT(epoch1_end, 0u);

  for (uintmax_t at = epoch1_end; at < full_size; ++at) {
    TempDir scratch;
    std::string copy = scratch.path + "/wal-00000001.seg";
    std::filesystem::copy_file(segment, copy);
    {
      std::FILE* f = std::fopen(copy.c_str(), "rb+");
      ASSERT_NE(f, nullptr);
      ASSERT_EQ(std::fseek(f, static_cast<long>(at), SEEK_SET), 0);
      int c = std::fgetc(f);
      ASSERT_NE(c, EOF);
      ASSERT_EQ(std::fseek(f, static_cast<long>(at), SEEK_SET), 0);
      std::fputc(c ^ 0x40, f);
      std::fclose(f);
    }
    ScopedLogCapture capture;
    auto replay = ReplayEventLog(scratch.path);
    ASSERT_TRUE(replay.ok())
        << "bit flip at byte " << at << ": " << replay.status().ToString();
    // The flip is past epoch 1, so epoch 1 must survive untouched; epoch 2
    // is either fully intact (flip cancelled by nothing — impossible with
    // CRC-32C on these sizes) or fully discarded.
    ASSERT_EQ(replay->durable_epoch, 1u) << "bit flip at byte " << at;
    ExpectSameEvents(replay->events, {events.begin(), events.begin() + 2});
    EXPECT_TRUE(capture.Contains("WAL")) << "bit flip at byte " << at;
  }
}

TEST(EventLogTest, MidLogCorruptionIsAnErrorNotATrim) {
  TempDir dir;
  EventLogOptions options;
  options.segment_bytes = 64;  // Force multiple segments.
  options.fsync_on_commit = false;
  {
    auto writer = EventLogWriter::Open(dir.path, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t epoch = 1; epoch <= 4; ++epoch) {
      ASSERT_TRUE(
          (*writer)->Append(Event(1, true, static_cast<double>(epoch))).ok());
      ASSERT_TRUE((*writer)->CommitEpoch(epoch, epoch + 1).ok());
    }
  }
  // Damage the FIRST segment: that is real corruption, not a torn tail.
  std::string first = dir.path + "/wal-00000001.seg";
  uintmax_t size = std::filesystem::file_size(first);
  std::filesystem::resize_file(first, size - 1);
  auto replay = ReplayEventLog(dir.path);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), util::StatusCode::kInvalidArgument);
}

// ---- frozen snapshots -----------------------------------------------------

forms::FrozenTrackingForm RandomStore(uint64_t seed, size_t num_edges,
                                      size_t num_events) {
  util::Rng rng(seed);
  std::vector<mobility::CrossingEvent> events(num_events);
  for (auto& e : events) {
    e.edge = static_cast<graph::EdgeId>(rng.UniformIndex(num_edges));
    e.forward = rng.Bernoulli(0.5);
    e.time = rng.Uniform(0.0, 500.0);
  }
  // RecordTraversal requires non-decreasing times per slot.
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  forms::TrackingForm tracking(num_edges);
  for (const auto& e : events) tracking.RecordTraversal(e.edge, e.forward, e.time);
  return tracking.Freeze();
}

TEST(FrozenSnapshotTest, RoundTripIsBitIdentical) {
  TempDir dir;
  forms::FrozenTrackingForm store = RandomStore(11, 20, 1500);
  FrozenSnapshotMeta meta;
  meta.generation = 7;
  meta.covered_epoch = 6;
  meta.covered_events = 1500;
  std::string path = dir.path + "/snap-0000000000000006.snap";
  ASSERT_TRUE(SaveFrozenSnapshot(store, meta, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // Atomic publish.

  auto loaded = LoadFrozenSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta.generation, 7u);
  EXPECT_EQ(loaded->meta.covered_epoch, 6u);
  EXPECT_EQ(loaded->meta.covered_events, 1500u);
  // Bit-identical persisted arrays — and therefore identical derived
  // index behavior at every boundary probe.
  EXPECT_EQ(loaded->store.RawTimes(), store.RawTimes());
  EXPECT_EQ(loaded->store.RawOffsets(), store.RawOffsets());
  for (graph::EdgeId e = 0; e < store.num_edges(); ++e) {
    for (bool forward : {true, false}) {
      for (double t : {0.0, 100.0, 250.0, 499.5, 600.0}) {
        EXPECT_EQ(loaded->store.CountUpTo(e, forward, t),
                  store.CountUpTo(e, forward, t));
      }
    }
  }
}

TEST(FrozenSnapshotTest, CorruptOrTruncatedFilesFailWithStatus) {
  TempDir dir;
  forms::FrozenTrackingForm store = RandomStore(12, 8, 300);
  std::string path = dir.path + "/snap.snap";
  ASSERT_TRUE(SaveFrozenSnapshot(store, {}, path).ok());
  uintmax_t size = std::filesystem::file_size(path);

  // Truncations at a spread of offsets: always a Status, never an abort.
  for (uintmax_t len : {size - 1, size / 2, uintmax_t{32}, uintmax_t{9},
                        uintmax_t{1}, uintmax_t{0}}) {
    std::string copy = dir.path + "/trunc.snap";
    std::filesystem::copy_file(path, copy,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(copy, len);
    auto loaded = LoadFrozenSnapshot(copy);
    EXPECT_FALSE(loaded.ok()) << "truncation at " << len;
  }

  // A flipped payload byte fails the checksum.
  std::string flipped = dir.path + "/flip.snap";
  std::filesystem::copy_file(path, flipped);
  {
    std::FILE* f = std::fopen(flipped.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }
  auto loaded = LoadFrozenSnapshot(flipped);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);

  // Wrong magic is "not a snapshot", missing file is NotFound.
  EXPECT_FALSE(LoadFrozenSnapshot(path + ".missing").ok());
}

}  // namespace
}  // namespace innet::io
