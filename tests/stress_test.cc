// Randomized end-to-end invariant sweeps: for many seeds, build a small
// world and check every cross-module contract at once. These are the
// "nothing drifted" tests that catch interaction bugs the per-module suites
// miss.
#include <gtest/gtest.h>

#include "core/framework.h"
#include "core/live_monitor.h"
#include "core/workload.h"
#include "learned/rolling_store.h"
#include "mobility/trajectory.h"
#include "sampling/samplers.h"
#include "util/stats.h"

namespace innet {
namespace {

core::FrameworkOptions WorldOptions(uint64_t seed) {
  core::FrameworkOptions options;
  options.road.num_junctions = 180 + (seed % 5) * 40;
  options.road.extra_edge_fraction = 0.35 + 0.1 * (seed % 4);
  options.traffic.num_trajectories = 250;
  options.traffic.num_hotspots = 2 + seed % 4;
  options.seed = seed;
  return options;
}

class EndToEndStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EndToEndStress, AllInvariantsHold) {
  core::Framework framework(WorldOptions(GetParam()));
  const core::SensorNetwork& net = framework.network();
  mobility::OccupancyOracle oracle(net.mobility(), framework.trajectories(),
                                   &net.gateway_mask());

  core::WorkloadOptions wo;
  wo.area_fraction = 0.08;
  wo.horizon = framework.Horizon();
  util::Rng qrng = framework.ForkRng();
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(net, wo, 10, qrng);
  ASSERT_FALSE(queries.empty());

  // 1. Exact layer: forms == per-object oracle, static and transient.
  core::UnsampledQueryProcessor exact(net);
  for (const core::RangeQuery& q : queries) {
    std::vector<bool> mask = net.JunctionMask(q.junctions);
    EXPECT_DOUBLE_EQ(
        exact.Answer(q, core::CountKind::kStatic).estimate,
        static_cast<double>(oracle.OccupancyAt(mask, q.t2)));
    EXPECT_DOUBLE_EQ(
        exact.Answer(q, core::CountKind::kTransient).estimate,
        static_cast<double>(oracle.NetChange(mask, q.t1, q.t2)));
  }

  // 2. Every sampler, one deployment each: bracketing + structure.
  for (const auto& sampler : sampling::AllSamplers()) {
    util::Rng rng(GetParam() * 7 + 1);
    core::Deployment dep = framework.DeployWithSampler(
        *sampler, net.NumSensors() / 5, core::DeploymentOptions{}, rng);
    core::SampledQueryProcessor processor = dep.processor();
    for (const core::RangeQuery& q : queries) {
      double truth = net.GroundTruthStatic(q.junctions, q.t2);
      core::QueryAnswer lower = processor.Answer(
          q, core::CountKind::kStatic, core::BoundMode::kLower);
      core::QueryAnswer upper = processor.Answer(
          q, core::CountKind::kStatic, core::BoundMode::kUpper);
      EXPECT_LE(lower.estimate, truth + 1e-9) << sampler->Name();
      EXPECT_GE(upper.estimate, truth - 1e-9) << sampler->Name();
      EXPECT_GE(lower.estimate, 0.0) << sampler->Name();
      if (!lower.missed) {
        EXPECT_GT(lower.nodes_accessed, 0u);
        EXPECT_GE(lower.edges_accessed, lower.nodes_accessed / 4);
      }
    }
  }

  // 3. Learned deployment: miss pattern identical to exact, estimates
  // within the per-edge model tolerance.
  sampling::QuadTreeSampler qt;
  util::Rng rng1(GetParam() * 7 + 2);
  std::vector<graph::NodeId> sensors =
      qt.Select(net.sensing(), net.NumSensors() / 5, rng1);
  core::Deployment exact_dep =
      framework.DeployFromSensors(sensors, core::DeploymentOptions{});
  core::DeploymentOptions learned_options;
  learned_options.store = core::StoreKind::kLearned;
  learned_options.model_type = learned::ModelType::kPiecewiseLinear;
  learned_options.pla_epsilon = 2.0;
  core::Deployment learned_dep =
      framework.DeployFromSensors(sensors, learned_options);
  EXPECT_LT(learned_dep.StorageBytes(), exact_dep.StorageBytes());
  core::SampledQueryProcessor pe = exact_dep.processor();
  core::SampledQueryProcessor pl = learned_dep.processor();
  for (const core::RangeQuery& q : queries) {
    core::QueryAnswer a =
        pe.Answer(q, core::CountKind::kStatic, core::BoundMode::kUpper);
    core::QueryAnswer b =
        pl.Answer(q, core::CountKind::kStatic, core::BoundMode::kUpper);
    EXPECT_EQ(a.missed, b.missed);
    double slack = (2.0 * learned_options.pla_epsilon + 1.0) *
                       static_cast<double>(a.edges_accessed) +
                   1e-6;
    EXPECT_NEAR(b.estimate, a.estimate, slack);
  }

  // 4. Live monitors replayed over the event stream agree with the batch
  // evaluation at the end of time.
  {
    const core::RangeQuery& q = queries.front();
    core::LiveRegionMonitor exact_monitor(net, q.junctions);
    core::LiveRegionMonitor sampled_monitor(
        exact_dep.graph(), exact_dep.graph().UpperBoundFaces(q.junctions));
    for (const mobility::CrossingEvent& event : net.events()) {
      exact_monitor.OnEvent(event);
      sampled_monitor.OnEvent(event);
    }
    EXPECT_DOUBLE_EQ(static_cast<double>(exact_monitor.CurrentCount()),
                     net.GroundTruthStatic(q.junctions, 1e18));
    core::RangeQuery probe = q;
    probe.t2 = 1e18;
    EXPECT_DOUBLE_EQ(
        static_cast<double>(sampled_monitor.CurrentCount()),
        pe.Answer(probe, core::CountKind::kStatic, core::BoundMode::kUpper)
            .estimate);
  }

  // 5. Determinism: rebuilding the same deployment yields identical
  // answers.
  {
    util::Rng ra(GetParam() * 7 + 3);
    util::Rng rb(GetParam() * 7 + 3);
    sampling::KdTreeSampler kd;
    core::Deployment da = framework.DeployWithSampler(
        kd, net.NumSensors() / 6, core::DeploymentOptions{}, ra);
    core::Deployment db = framework.DeployWithSampler(
        kd, net.NumSensors() / 6, core::DeploymentOptions{}, rb);
    core::SampledQueryProcessor pa = da.processor();
    core::SampledQueryProcessor pb = db.processor();
    for (const core::RangeQuery& q : queries) {
      EXPECT_EQ(pa.Answer(q, core::CountKind::kTransient,
                          core::BoundMode::kLower)
                    .estimate,
                pb.Answer(q, core::CountKind::kTransient,
                          core::BoundMode::kLower)
                    .estimate);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndStress,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace innet
