#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"

namespace innet::core {
namespace {

class DispatchFixture : public ::testing::Test {
 protected:
  DispatchFixture() : framework_(MakeOptions()) {
    sampling::KdTreeSampler sampler;
    util::Rng rng = framework_.ForkRng();
    deployment_ = std::make_unique<Deployment>(framework_.DeployWithSampler(
        sampler, framework_.network().NumSensors() / 6, DeploymentOptions{},
        rng));
    WorkloadOptions wo;
    wo.area_fraction = 0.1;
    wo.horizon = framework_.Horizon();
    util::Rng qrng = framework_.ForkRng();
    queries_ = GenerateWorkload(framework_.network(), wo, 10, qrng);
  }

  static FrameworkOptions MakeOptions() {
    FrameworkOptions options;
    options.road.num_junctions = 300;
    options.traffic.num_trajectories = 200;
    options.seed = 9;
    return options;
  }

  std::vector<graph::NodeId> PerimeterOf(const RangeQuery& q) const {
    std::vector<uint32_t> faces = deployment_->graph().UpperBoundFaces(
        q.junctions);
    return deployment_->graph().BoundaryOfFaces(faces).sensors;
  }

  Framework framework_;
  std::unique_ptr<Deployment> deployment_;
  std::vector<RangeQuery> queries_;
};

TEST_F(DispatchFixture, DirectModeOneLongLinkPerSensor) {
  for (const RangeQuery& q : queries_) {
    std::vector<graph::NodeId> perimeter = PerimeterOf(q);
    DispatchCost cost = SimulateDispatch(framework_.network(), perimeter,
                                         DispatchMode::kServerDirect);
    EXPECT_EQ(cost.sensors_contacted, perimeter.size());
    EXPECT_EQ(cost.long_links, perimeter.size());
    EXPECT_EQ(cost.mesh_hops, 0u);
    EXPECT_EQ(cost.Messages(), 2 * perimeter.size());
  }
}

TEST_F(DispatchFixture, TraversalModeTwoLongLinks) {
  for (const RangeQuery& q : queries_) {
    std::vector<graph::NodeId> perimeter = PerimeterOf(q);
    if (perimeter.size() < 3) continue;
    DispatchCost cost = SimulateDispatch(framework_.network(), perimeter,
                                         DispatchMode::kPerimeterTraversal);
    EXPECT_EQ(cost.sensors_contacted, perimeter.size());
    EXPECT_EQ(cost.long_links, 2u);
    EXPECT_GE(cost.mesh_hops, perimeter.size() - 2);
  }
}

TEST_F(DispatchFixture, TraversalWinsOnEnergyWhenLongLinksAreExpensive) {
  // §3.1: long-distance radio drains batteries; with a realistic cost ratio
  // the traversal mode should be cheaper for perimeter-sized regions.
  size_t traversal_wins = 0;
  size_t comparisons = 0;
  for (const RangeQuery& q : queries_) {
    std::vector<graph::NodeId> perimeter = PerimeterOf(q);
    if (perimeter.size() < 5) continue;
    DispatchCost direct = SimulateDispatch(framework_.network(), perimeter,
                                           DispatchMode::kServerDirect);
    DispatchCost traversal = SimulateDispatch(
        framework_.network(), perimeter, DispatchMode::kPerimeterTraversal);
    ++comparisons;
    if (traversal.Energy(20.0) < direct.Energy(20.0)) ++traversal_wins;
  }
  ASSERT_GT(comparisons, 0u);
  EXPECT_EQ(traversal_wins, comparisons);
}

TEST(DispatchTest, EmptyPerimeter) {
  FrameworkOptions options;
  options.road.num_junctions = 150;
  options.traffic.num_trajectories = 10;
  options.seed = 2;
  Framework framework(options);
  for (DispatchMode mode :
       {DispatchMode::kServerDirect, DispatchMode::kPerimeterTraversal}) {
    DispatchCost cost = SimulateDispatch(framework.network(), {}, mode);
    EXPECT_EQ(cost.sensors_contacted, 0u);
    EXPECT_EQ(cost.Messages(), 0u);
  }
}

TEST_F(DispatchFixture, LossFreeChannelMatchesIdealDispatch) {
  ChannelModel channel;
  channel.loss_rate = 0.0;
  for (const RangeQuery& q : queries_) {
    std::vector<graph::NodeId> perimeter = PerimeterOf(q);
    DispatchCost ideal = SimulateDispatch(framework_.network(), perimeter,
                                          DispatchMode::kServerDirect);
    DispatchCost lossy = SimulateDispatch(framework_.network(), perimeter,
                                          DispatchMode::kServerDirect,
                                          channel);
    EXPECT_EQ(lossy.Messages(), ideal.Messages());
    EXPECT_DOUBLE_EQ(lossy.expected_retransmissions, 0.0);
    EXPECT_DOUBLE_EQ(lossy.delivery_probability, 1.0);
    EXPECT_DOUBLE_EQ(lossy.Energy(20.0), ideal.Energy(20.0));
  }
}

TEST_F(DispatchFixture, RetransmissionsGrowWithLossRate) {
  const RangeQuery& q = queries_.front();
  std::vector<graph::NodeId> perimeter = PerimeterOf(q);
  ASSERT_FALSE(perimeter.empty());
  double last_retrans = -1.0;
  double last_latency = 0.0;
  for (double loss : {0.0, 0.05, 0.1, 0.2}) {
    ChannelModel channel;
    channel.loss_rate = loss;
    DispatchCost cost = SimulateDispatch(
        framework_.network(), perimeter, DispatchMode::kPerimeterTraversal,
        channel);
    EXPECT_GT(cost.expected_retransmissions, last_retrans);
    EXPECT_GE(cost.expected_latency_ms, last_latency);
    EXPECT_LE(cost.delivery_probability, 1.0);
    EXPECT_GT(cost.delivery_probability, 0.0);
    last_retrans = cost.expected_retransmissions;
    last_latency = cost.expected_latency_ms;
  }
}

TEST_F(DispatchFixture, BoundedRetriesCapDeliveryProbability) {
  const RangeQuery& q = queries_.front();
  std::vector<graph::NodeId> perimeter = PerimeterOf(q);
  ASSERT_FALSE(perimeter.empty());
  ChannelModel few;
  few.loss_rate = 0.3;
  few.max_retries = 1;
  ChannelModel many = few;
  many.max_retries = 8;
  DispatchCost cost_few = SimulateDispatch(
      framework_.network(), perimeter, DispatchMode::kServerDirect, few);
  DispatchCost cost_many = SimulateDispatch(
      framework_.network(), perimeter, DispatchMode::kServerDirect, many);
  // More retries buy delivery probability at the price of retransmissions
  // and backoff latency.
  EXPECT_GT(cost_many.delivery_probability, cost_few.delivery_probability);
  EXPECT_GT(cost_many.expected_retransmissions,
            cost_few.expected_retransmissions);
  EXPECT_GT(cost_many.expected_latency_ms, cost_few.expected_latency_ms);
  // Retransmissions inflate energy proportionally.
  DispatchCost ideal = SimulateDispatch(framework_.network(), perimeter,
                                        DispatchMode::kServerDirect);
  EXPECT_GT(cost_few.Energy(20.0), ideal.Energy(20.0));
}

TEST(DispatchTest, ModeNames) {
  EXPECT_STREQ(DispatchModeName(DispatchMode::kServerDirect),
               "server-direct");
  EXPECT_STREQ(DispatchModeName(DispatchMode::kPerimeterTraversal),
               "perimeter-traversal");
}

}  // namespace
}  // namespace innet::core
