#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/sensor_network.h"
#include "io/serialize.h"
#include "mobility/road_network.h"
#include "mobility/trajectory_generator.h"
#include "util/rng.h"

namespace innet::io {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("innet_io_" + name))
      .string();
}

struct World {
  World() : rng(3) {
    mobility::RoadNetworkOptions road;
    road.num_junctions = 150;
    graph = std::make_unique<graph::PlanarGraph>(
        mobility::GenerateRoadNetwork(road, rng));
    mobility::TrajectoryOptions traffic;
    traffic.num_trajectories = 40;
    trajectories = mobility::GenerateTrajectories(*graph, traffic, rng);
  }
  util::Rng rng;
  std::unique_ptr<graph::PlanarGraph> graph;
  std::vector<mobility::Trajectory> trajectories;
};

TEST(SerializeTest, RoadNetworkRoundTrip) {
  World w;
  std::string path = TempPath("graph.bin");
  ASSERT_TRUE(SaveRoadNetwork(*w.graph, path).ok());
  util::StatusOr<graph::PlanarGraph> loaded = LoadRoadNetwork(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), w.graph->NumNodes());
  EXPECT_EQ(loaded->NumEdges(), w.graph->NumEdges());
  EXPECT_EQ(loaded->NumFaces(), w.graph->NumFaces());
  for (graph::NodeId n = 0; n < w.graph->NumNodes(); n += 13) {
    EXPECT_EQ(loaded->Position(n).x, w.graph->Position(n).x);
    EXPECT_EQ(loaded->Position(n).y, w.graph->Position(n).y);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, TrajectoriesRoundTrip) {
  World w;
  std::string path = TempPath("traj.bin");
  ASSERT_TRUE(SaveTrajectories(w.trajectories, path).ok());
  auto loaded = LoadTrajectories(path, w.graph.get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), w.trajectories.size());
  for (size_t i = 0; i < loaded->size(); i += 7) {
    EXPECT_EQ((*loaded)[i].nodes, w.trajectories[i].nodes);
    EXPECT_EQ((*loaded)[i].times, w.trajectories[i].times);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  auto graph = LoadRoadNetwork(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), util::StatusCode::kNotFound);
  auto traj = LoadTrajectories(TempPath("does_not_exist.bin"));
  EXPECT_FALSE(traj.ok());
}

TEST(SerializeTest, BadMagicRejected) {
  std::string path = TempPath("bad_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a network file at all, padded to be long enough";
  }
  auto loaded = LoadRoadNetwork(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileRejected) {
  World w;
  std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(SaveRoadNetwork(*w.graph, path).ok());
  // Chop the file in half.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  auto loaded = LoadRoadNetwork(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, WrongFileTypeRejected) {
  World w;
  std::string path = TempPath("crossed.bin");
  ASSERT_TRUE(SaveTrajectories(w.trajectories, path).ok());
  auto loaded = LoadRoadNetwork(path);  // Trajectory file as graph.
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, TrajectoryValidationAgainstGraph) {
  World w;
  // Corrupt one trajectory: jump between non-adjacent junctions.
  std::vector<mobility::Trajectory> bad = w.trajectories;
  mobility::Trajectory hop;
  graph::NodeId a = 0;
  graph::NodeId b = 0;
  for (graph::NodeId n = 1; n < w.graph->NumNodes(); ++n) {
    if (w.graph->EdgeBetween(a, n) == graph::kInvalidEdge) {
      b = n;
      break;
    }
  }
  ASSERT_NE(b, 0u);
  hop.nodes = {a, b};
  hop.times = {0.0, 1.0};
  bad.push_back(hop);
  std::string path = TempPath("badtraj.bin");
  ASSERT_TRUE(SaveTrajectories(bad, path).ok());
  // Without a graph the file loads; with one, validation rejects it.
  EXPECT_TRUE(LoadTrajectories(path).ok());
  auto checked = LoadTrajectories(path, w.graph.get());
  EXPECT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SerializeTest, NonMonotoneTimestampsRejected) {
  World w;
  std::vector<mobility::Trajectory> bad;
  mobility::Trajectory t = w.trajectories[0];
  ASSERT_GE(t.times.size(), 2u);
  std::swap(t.times[0], t.times[1]);
  bad.push_back(t);
  std::string path = TempPath("badtimes.bin");
  ASSERT_TRUE(SaveTrajectories(bad, path).ok());
  auto loaded = LoadTrajectories(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, LoadedWorldBehavesIdentically) {
  // Full round trip: rebuild the sensor network from disk and verify a
  // ground-truth count matches the original.
  World w;
  std::string gpath = TempPath("world_graph.bin");
  std::string tpath = TempPath("world_traj.bin");
  ASSERT_TRUE(SaveRoadNetwork(*w.graph, gpath).ok());
  ASSERT_TRUE(SaveTrajectories(w.trajectories, tpath).ok());
  auto graph2 = LoadRoadNetwork(gpath);
  ASSERT_TRUE(graph2.ok());
  auto traj2 = LoadTrajectories(tpath, &*graph2);
  ASSERT_TRUE(traj2.ok());

  core::SensorNetwork original(std::move(*w.graph));
  original.IngestTrajectories(w.trajectories);
  core::SensorNetwork restored(std::move(*graph2));
  restored.IngestTrajectories(*traj2);
  EXPECT_EQ(original.events().size(), restored.events().size());

  geometry::Rect probe = original.DomainBounds();
  probe = geometry::Rect(probe.min_x + probe.Width() * 0.3,
                         probe.min_y + probe.Height() * 0.3,
                         probe.min_x + probe.Width() * 0.7,
                         probe.min_y + probe.Height() * 0.7);
  std::vector<graph::NodeId> region = original.JunctionsInRect(probe);
  EXPECT_EQ(original.GroundTruthStatic(region, 5000.0),
            restored.GroundTruthStatic(region, 5000.0));
  std::remove(gpath.c_str());
  std::remove(tpath.c_str());
}

}  // namespace
}  // namespace innet::io
