#include <gtest/gtest.h>

#include "graph/weighted_adjacency.h"
#include "mobility/map_matching.h"
#include "mobility/road_network.h"
#include "mobility/trajectory_generator.h"
#include "spatial/kdtree.h"
#include "util/rng.h"

namespace innet::mobility {
namespace {

struct Fixture {
  explicit Fixture(uint64_t seed) : rng(seed) {
    RoadNetworkOptions options;
    options.num_junctions = 200;
    graph = std::make_unique<graph::PlanarGraph>(
        GenerateRoadNetwork(options, rng));
    adjacency = graph::EuclideanAdjacency(*graph);
    index = std::make_unique<spatial::KdTree>(graph->positions());
  }
  util::Rng rng;
  std::unique_ptr<graph::PlanarGraph> graph;
  graph::WeightedAdjacency adjacency;
  std::unique_ptr<spatial::KdTree> index;
};

TEST(MapMatchingTest, EmptyTrace) {
  Fixture f(1);
  Trajectory t = MapMatch(*f.graph, f.adjacency, *f.index, GpsTrace{});
  EXPECT_TRUE(t.nodes.empty());
}

TEST(MapMatchingTest, StationaryTraceIsEmpty) {
  Fixture f(2);
  GpsTrace trace;
  trace.points.assign(5, f.graph->Position(0));
  trace.times = {0, 1, 2, 3, 4};
  Trajectory t = MapMatch(*f.graph, f.adjacency, *f.index, trace);
  EXPECT_TRUE(t.nodes.empty());  // Fewer than two distinct junctions.
}

TEST(MapMatchingTest, ExactSamplesRecoverPath) {
  Fixture f(3);
  // Ground-truth trip.
  TrajectoryOptions options;
  options.num_trajectories = 1;
  options.enter_from_boundary = false;
  util::Rng rng(33);
  std::vector<Trajectory> trips =
      GenerateTrajectories(*f.graph, options, rng);
  ASSERT_EQ(trips.size(), 1u);
  const Trajectory& truth = trips[0];

  // Noise-free samples exactly at the junctions.
  GpsTrace trace;
  trace.points.reserve(truth.nodes.size());
  for (size_t i = 0; i < truth.nodes.size(); ++i) {
    trace.points.push_back(f.graph->Position(truth.nodes[i]));
    trace.times.push_back(truth.times[i]);
  }
  Trajectory matched = MapMatch(*f.graph, f.adjacency, *f.index, trace);
  ASSERT_TRUE(matched.Valid(*f.graph));
  EXPECT_EQ(matched.nodes.front(), truth.nodes.front());
  EXPECT_EQ(matched.nodes.back(), truth.nodes.back());
  // A shortest-path reconnection of exact junction samples cannot be longer
  // than the original shortest-path trip.
  EXPECT_LE(matched.nodes.size(), truth.nodes.size() + 2);
}

class NoiseRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(NoiseRoundTrip, NoisyTraceMatchesNearTruth) {
  Fixture f(4);
  TrajectoryOptions options;
  options.num_trajectories = 10;
  options.enter_from_boundary = false;
  util::Rng trip_rng(44);
  std::vector<Trajectory> trips =
      GenerateTrajectories(*f.graph, options, trip_rng);
  util::Rng noise_rng(45);
  for (const Trajectory& truth : trips) {
    GpsTrace trace = SynthesizeGpsTrace(*f.graph, truth, /*sample_interval=*/20.0,
                                        GetParam(), noise_rng);
    if (trace.points.size() < 2) continue;
    Trajectory matched = MapMatch(*f.graph, f.adjacency, *f.index, trace);
    if (matched.nodes.empty()) continue;
    EXPECT_TRUE(matched.Valid(*f.graph));
    // Endpoints land near the true endpoints (within a few hundred meters,
    // i.e., a couple of junction spacings).
    double start_err = geometry::Distance(
        f.graph->Position(matched.nodes.front()),
        f.graph->Position(truth.nodes.front()));
    double end_err = geometry::Distance(
        f.graph->Position(matched.nodes.back()),
        f.graph->Position(truth.nodes.back()));
    EXPECT_LT(start_err, 2000.0);
    EXPECT_LT(end_err, 2000.0);
  }
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, NoiseRoundTrip,
                         ::testing::Values(0.0, 30.0, 120.0));

TEST(MapMatchingTest, SynthesizedTraceCoversTripDuration) {
  Fixture f(5);
  TrajectoryOptions options;
  options.num_trajectories = 1;
  util::Rng rng(55);
  std::vector<Trajectory> trips =
      GenerateTrajectories(*f.graph, options, rng);
  const Trajectory& truth = trips[0];
  GpsTrace trace =
      SynthesizeGpsTrace(*f.graph, truth, 10.0, 5.0, rng);
  ASSERT_GE(trace.points.size(), 2u);
  EXPECT_GE(trace.times.front(), truth.times.front());
  EXPECT_LE(trace.times.back(), truth.times.back() + 10.0);
  for (size_t i = 1; i < trace.times.size(); ++i) {
    EXPECT_GT(trace.times[i], trace.times[i - 1]);
  }
}

}  // namespace
}  // namespace innet::mobility
