#include <gtest/gtest.h>

#include "graph/dual_graph.h"
#include "graph/connectivity.h"
#include "mobility/road_network.h"
#include "util/rng.h"

namespace innet::graph {
namespace {

PlanarGraph MakeGrid3x3() {
  std::vector<geometry::Point> positions;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) positions.emplace_back(x, y);
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [](int x, int y) { return static_cast<NodeId>(y * 3 + x); };
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      if (x + 1 < 3) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < 3) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return PlanarGraph(std::move(positions), std::move(edges));
}

TEST(DualGraphTest, NodeAndAdjacencyCounts) {
  PlanarGraph primal = MakeGrid3x3();
  DualGraph dual(primal);
  EXPECT_EQ(dual.NumNodes(), primal.NumFaces());
  EXPECT_EQ(dual.ExtNode(), primal.OuterFace());
  // Each primal edge yields one dual adjacency pair (no bridges in a grid):
  size_t arcs = 0;
  for (const auto& list : dual.adjacency()) arcs += list.size();
  EXPECT_EQ(arcs, 2 * primal.NumEdges());
}

TEST(DualGraphTest, EndpointsAreEdgeFaces) {
  PlanarGraph primal = MakeGrid3x3();
  DualGraph dual(primal);
  for (EdgeId e = 0; e < primal.NumEdges(); ++e) {
    EXPECT_EQ(dual.EndpointA(e), primal.Edge(e).left);
    EXPECT_EQ(dual.EndpointB(e), primal.Edge(e).right);
  }
}

TEST(DualGraphTest, InteriorPositionsAreCentroids) {
  PlanarGraph primal = MakeGrid3x3();
  DualGraph dual(primal);
  for (FaceId f = 0; f < primal.NumFaces(); ++f) {
    if (f == dual.ExtNode()) continue;
    geometry::Point centroid = primal.FacePolygon(f).Centroid();
    EXPECT_NEAR(dual.Position(f).x, centroid.x, 1e-12);
    EXPECT_NEAR(dual.Position(f).y, centroid.y, 1e-12);
  }
  // Ext node parked outside the domain.
  EXPECT_GT(dual.Position(dual.ExtNode()).x, 2.0);
}

TEST(DualGraphTest, DualIsConnected) {
  util::Rng rng(5);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 200;
  PlanarGraph primal = mobility::GenerateRoadNetwork(options, rng);
  DualGraph dual(primal);
  EXPECT_TRUE(IsConnected(dual.adjacency()));
}

TEST(DualGraphTest, JunctionCellSurroundsJunction) {
  util::Rng rng(6);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 200;
  PlanarGraph primal = mobility::GenerateRoadNetwork(options, rng);
  DualGraph dual(primal);
  // For interior junctions (not on the outer face), the cell through the
  // incident face centroids contains the junction itself.
  const FaceRecord& outer = primal.Face(primal.OuterFace());
  std::vector<bool> on_hull(primal.NumNodes(), false);
  for (NodeId n : outer.boundary_nodes) on_hull[n] = true;
  // Centroid rings of non-convex faces occasionally exclude the junction,
  // so assert a high containment rate rather than universality.
  size_t checked = 0;
  size_t contained = 0;
  for (NodeId n = 0; n < primal.NumNodes(); ++n) {
    if (on_hull[n] || primal.Degree(n) < 3) continue;
    geometry::Polygon cell = dual.JunctionCell(n);
    if (cell.Contains(primal.Position(n))) ++contained;
    ++checked;
  }
  EXPECT_GT(checked, 20u);
  EXPECT_GT(static_cast<double>(contained), 0.8 * static_cast<double>(checked));
}

TEST(DualGraphTest, BridgeBecomesNoDualSelfLoop) {
  // Triangle plus dangling edge: the bridge is skipped in dual adjacency.
  std::vector<geometry::Point> positions = {{0, 0}, {2, 0}, {1, 2}, {3, 2}};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {1, 3}};
  PlanarGraph primal(std::move(positions), std::move(edges));
  DualGraph dual(primal);
  size_t arcs = 0;
  for (const auto& list : dual.adjacency()) arcs += list.size();
  EXPECT_EQ(arcs, 2 * 3u);  // Only the three triangle edges.
}

}  // namespace
}  // namespace innet::graph
