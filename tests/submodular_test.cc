#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "placement/submodular.h"
#include "util/rng.h"

namespace innet::placement {
namespace {

// Random coverage instance: `items` sets over a `universe`.
CoverageFunction RandomCoverage(size_t items, size_t universe, double density,
                                uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<size_t>> covers(items);
  for (size_t i = 0; i < items; ++i) {
    for (size_t e = 0; e < universe; ++e) {
      if (rng.Bernoulli(density)) covers[i].push_back(e);
    }
  }
  return CoverageFunction(std::move(covers), {}, universe);
}

// Exhaustive optimum over all subsets of size <= k (small instances only).
double BruteForceOptimum(const CoverageFunction& f, size_t items, size_t k) {
  double best = 0.0;
  std::vector<size_t> subset;
  // Enumerate bitmasks.
  for (uint32_t mask = 0; mask < (1u << items); ++mask) {
    if (static_cast<size_t>(__builtin_popcount(mask)) > k) continue;
    subset.clear();
    for (size_t i = 0; i < items; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    best = std::max(best, f.Evaluate(subset));
  }
  return best;
}

TEST(CoverageFunctionTest, MarginalGainShrinks) {
  CoverageFunction f({{0, 1, 2}, {2, 3}, {0, 1}}, {}, 4);
  EXPECT_DOUBLE_EQ(f.MarginalGain(0), 3.0);
  f.Commit(0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(1), 1.0);  // Only element 3 is new.
  EXPECT_DOUBLE_EQ(f.MarginalGain(2), 0.0);
  f.Reset();
  EXPECT_DOUBLE_EQ(f.MarginalGain(2), 2.0);
}

TEST(CoverageFunctionTest, WeightedElements) {
  CoverageFunction f({{0}, {1}}, {10.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(f.MarginalGain(0), 10.0);
  EXPECT_DOUBLE_EQ(f.MarginalGain(1), 1.0);
}

TEST(GreedyTest, PicksObviousBest) {
  CoverageFunction f({{0}, {0, 1, 2, 3}, {1}}, {}, 4);
  std::vector<double> costs(3, 1.0);
  GreedyOptions options;
  options.budget = 1.0;
  GreedyResult result = GreedyMaximize(f, costs, options);
  ASSERT_EQ(result.selected.size(), 1u);
  EXPECT_EQ(result.selected[0], 1u);
  EXPECT_DOUBLE_EQ(result.utility, 4.0);
}

TEST(GreedyTest, RespectsBudget) {
  CoverageFunction f = RandomCoverage(12, 40, 0.2, 3);
  std::vector<double> costs = {1, 2, 3, 1, 2, 3, 1, 2, 3, 1, 2, 3};
  GreedyOptions options;
  options.budget = 5.0;
  options.cost_benefit = true;
  GreedyResult result = GreedyMaximize(f, costs, options);
  EXPECT_LE(result.cost, 5.0 + 1e-9);
  EXPECT_GT(result.utility, 0.0);
}

TEST(GreedyTest, StopsWhenNoGain) {
  CoverageFunction f({{0}, {0}, {0}}, {}, 1);
  std::vector<double> costs(3, 1.0);
  GreedyOptions options;
  options.budget = 3.0;
  GreedyResult result = GreedyMaximize(f, costs, options);
  EXPECT_EQ(result.selected.size(), 1u);  // Others add nothing.
}

// (1 - 1/e) guarantee for cardinality-constrained greedy, against brute
// force on small random instances.
class GreedyGuarantee : public ::testing::TestWithParam<int> {};

TEST_P(GreedyGuarantee, WithinClassicBoundOfOptimum) {
  CoverageFunction f = RandomCoverage(14, 30, 0.18, GetParam());
  std::vector<double> costs(14, 1.0);
  size_t k = 4;
  GreedyOptions options;
  options.budget = static_cast<double>(k);
  GreedyResult greedy = GreedyMaximize(f, costs, options);
  double optimum = BruteForceOptimum(f, 14, k);
  ASSERT_GT(optimum, 0.0);
  EXPECT_GE(greedy.utility, (1.0 - 1.0 / std::exp(1.0)) * optimum - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyGuarantee,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// CELF must select exactly the same set as plain greedy, with fewer
// marginal-gain evaluations on larger instances.
class LazyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LazyEquivalence, SameSelectionFewerEvaluations) {
  CoverageFunction f1 = RandomCoverage(60, 200, 0.08, GetParam());
  CoverageFunction f2 = RandomCoverage(60, 200, 0.08, GetParam());
  std::vector<double> costs(60, 1.0);
  GreedyOptions plain;
  plain.budget = 10.0;
  GreedyOptions lazy = plain;
  lazy.lazy = true;
  GreedyResult a = GreedyMaximize(f1, costs, plain);
  GreedyResult b = GreedyMaximize(f2, costs, lazy);
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.utility, b.utility);
  EXPECT_LT(b.evaluations, a.evaluations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalence,
                         ::testing::Values(11, 22, 33, 44));

TEST(GreedyTest, CostBenefitPrefersCheapCoverage) {
  // Item 0 covers 4 elements at cost 8 (ratio 0.5); item 1 covers 3 at
  // cost 1 (ratio 3).
  CoverageFunction f({{0, 1, 2, 3}, {4, 5, 6}}, {}, 7);
  std::vector<double> costs = {8.0, 1.0};
  GreedyOptions options;
  options.budget = 8.0;
  options.cost_benefit = true;
  GreedyResult result = GreedyMaximize(f, costs, options);
  ASSERT_FALSE(result.selected.empty());
  EXPECT_EQ(result.selected[0], 1u);
}

TEST(GreedyTest, LazyCostBenefitMatchesPlain) {
  CoverageFunction f1 = RandomCoverage(40, 120, 0.1, 5);
  CoverageFunction f2 = RandomCoverage(40, 120, 0.1, 5);
  util::Rng rng(6);
  std::vector<double> costs;
  for (int i = 0; i < 40; ++i) costs.push_back(rng.Uniform(0.5, 4.0));
  GreedyOptions plain;
  plain.budget = 12.0;
  plain.cost_benefit = true;
  GreedyOptions lazy = plain;
  lazy.lazy = true;
  GreedyResult a = GreedyMaximize(f1, costs, plain);
  GreedyResult b = GreedyMaximize(f2, costs, lazy);
  EXPECT_EQ(a.selected, b.selected);
}

}  // namespace
}  // namespace innet::placement
