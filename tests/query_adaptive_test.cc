#include <gtest/gtest.h>

#include <set>

#include "graph/dual_graph.h"
#include "mobility/road_network.h"
#include "placement/query_adaptive.h"
#include "util/rng.h"

namespace innet::placement {
namespace {

struct World {
  explicit World(uint64_t seed) {
    util::Rng rng(seed);
    mobility::RoadNetworkOptions options;
    options.num_junctions = 200;
    primal = std::make_unique<graph::PlanarGraph>(
        mobility::GenerateRoadNetwork(options, rng));
    dual = std::make_unique<graph::DualGraph>(*primal);
  }

  // A connected ball of junctions around a center (BFS by hops).
  std::vector<graph::NodeId> Ball(graph::NodeId center, int hops) const {
    std::vector<graph::NodeId> out = {center};
    std::set<graph::NodeId> seen = {center};
    std::vector<graph::NodeId> frontier = {center};
    for (int h = 0; h < hops; ++h) {
      std::vector<graph::NodeId> next;
      for (graph::NodeId u : frontier) {
        for (const graph::Neighbor& nb : primal->NeighborsOf(u)) {
          if (seen.insert(nb.node).second) {
            next.push_back(nb.node);
            out.push_back(nb.node);
          }
        }
      }
      frontier = std::move(next);
    }
    return out;
  }

  std::unique_ptr<graph::PlanarGraph> primal;
  std::unique_ptr<graph::DualGraph> dual;
};

TEST(AtomPartitionTest, DisjointAndSignatureConsistent) {
  World w(1);
  std::vector<QueryRegionHistory> history = {
      {w.Ball(10, 3)}, {w.Ball(15, 3)}, {w.Ball(120, 2)}};
  std::vector<Atom> atoms = PartitionIntoAtoms(*w.primal, history);
  ASSERT_FALSE(atoms.empty());

  // Atoms are disjoint and cover exactly the union of the query regions.
  std::set<graph::NodeId> covered;
  for (const Atom& atom : atoms) {
    for (graph::NodeId n : atom.junctions) {
      EXPECT_TRUE(covered.insert(n).second) << "node in two atoms";
    }
  }
  std::set<graph::NodeId> region_union;
  for (const auto& q : history) {
    region_union.insert(q.junctions.begin(), q.junctions.end());
  }
  EXPECT_EQ(covered, region_union);

  // Every atom's junctions share its signature: contained in each covering
  // query, and boundary edges leave the atom.
  for (const Atom& atom : atoms) {
    std::set<graph::NodeId> members(atom.junctions.begin(),
                                    atom.junctions.end());
    for (uint32_t q : atom.queries) {
      std::set<graph::NodeId> qset(history[q].junctions.begin(),
                                   history[q].junctions.end());
      for (graph::NodeId n : atom.junctions) {
        EXPECT_EQ(qset.count(n), 1u);
      }
    }
    for (graph::EdgeId e : atom.boundary_edges) {
      const graph::EdgeRecord& rec = w.primal->Edge(e);
      EXPECT_NE(members.count(rec.u) > 0, members.count(rec.v) > 0);
    }
  }
}

TEST(AtomPartitionTest, OverlapCreatesThreeAtomKinds) {
  // Two overlapping balls (Fig. 5): expect atoms labeled {0}, {1}, {0,1}.
  World w(2);
  // Find a pair of centers whose 3-balls overlap partially.
  std::vector<graph::NodeId> a = w.Ball(50, 3);
  graph::NodeId other = a[a.size() / 2];
  std::vector<QueryRegionHistory> history = {{a}, {w.Ball(other, 3)}};
  std::vector<Atom> atoms = PartitionIntoAtoms(*w.primal, history);
  std::set<std::vector<uint32_t>> signatures;
  for (const Atom& atom : atoms) signatures.insert(atom.queries);
  EXPECT_TRUE(signatures.count({0}) > 0);
  EXPECT_TRUE(signatures.count({1}) > 0);
  EXPECT_TRUE(signatures.count({0, 1}) > 0);
}

TEST(AtomPartitionTest, UtilityMatchesEquationSix) {
  World w(3);
  std::vector<graph::NodeId> region = w.Ball(30, 2);
  std::vector<QueryRegionHistory> history = {{region}};
  std::vector<Atom> atoms = PartitionIntoAtoms(*w.primal, history);
  ASSERT_EQ(atoms.size(), 1u);  // Single region, one signature, connected.
  EXPECT_DOUBLE_EQ(atoms[0].utility, 1.0);  // ω(σ)/ω(Q) = 1.
  EXPECT_EQ(atoms[0].junctions.size(), region.size());
}

TEST(SelectAtomsTest, RespectsSensorBudget) {
  World w(4);
  std::vector<QueryRegionHistory> history;
  util::Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    history.push_back(
        {w.Ball(static_cast<graph::NodeId>(rng.UniformIndex(
                    w.primal->NumNodes())),
                2)});
  }
  std::vector<Atom> atoms = PartitionIntoAtoms(*w.primal, history);
  for (size_t budget : {size_t{5}, size_t{20}, size_t{60}}) {
    AdaptivePlacement placement = SelectAtoms(*w.dual, atoms, budget);
    EXPECT_LE(placement.sensor_nodes.size(), budget);
    // Monitored edges are exactly the union of selected atom boundaries.
    std::set<graph::EdgeId> expected;
    for (size_t idx : placement.selected_atoms) {
      expected.insert(atoms[idx].boundary_edges.begin(),
                      atoms[idx].boundary_edges.end());
    }
    std::set<graph::EdgeId> got(placement.monitored_edges.begin(),
                                placement.monitored_edges.end());
    EXPECT_EQ(got, expected);
  }
}

TEST(SelectAtomsTest, LargerBudgetNeverWorse) {
  World w(6);
  std::vector<QueryRegionHistory> history;
  util::Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    history.push_back(
        {w.Ball(static_cast<graph::NodeId>(rng.UniformIndex(
                    w.primal->NumNodes())),
                2)});
  }
  std::vector<Atom> atoms = PartitionIntoAtoms(*w.primal, history);
  double prev_utility = -1.0;
  for (size_t budget : {size_t{10}, size_t{30}, size_t{80}, size_t{200}}) {
    AdaptivePlacement placement = SelectAtoms(*w.dual, atoms, budget);
    EXPECT_GE(placement.utility, prev_utility);
    prev_utility = placement.utility;
  }
}

TEST(SelectAtomsTest, ZeroBudgetSelectsNothing) {
  World w(8);
  std::vector<QueryRegionHistory> history = {{w.Ball(20, 2)}};
  std::vector<Atom> atoms = PartitionIntoAtoms(*w.primal, history);
  AdaptivePlacement placement = SelectAtoms(*w.dual, atoms, 0);
  EXPECT_TRUE(placement.selected_atoms.empty());
  EXPECT_TRUE(placement.monitored_edges.empty());
}

}  // namespace
}  // namespace innet::placement
