#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/build_info.h"
#include "obs/explain.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_cost.h"
#include "obs/query_digest.h"
#include "obs/slo.h"
#include "obs/slowlog.h"
#include "obs/telemetry_server.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace innet::obs {
namespace {

// Minimal real-socket HTTP client: the conformance tests must exercise the
// actual accept loop, not just HandleRequest().
std::string HttpGet(uint16_t port, const std::string& path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  std::string request = "GET " + path +
                        " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

std::string Body(const std::string& response) {
  size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(TelemetryServerTest, MetricsScrapeByteIdenticalToPrometheusExport) {
  MetricsRegistry registry;
  registry.GetCounter("innet_queries_total", "Answered queries")
      .Increment(17);
  registry.GetGauge("innet_store_generation", "Published generation")
      .Set(3.0);
  registry.GetGaugeWithLabels("innet_mode", "Serving mode", "mode=\"batch\"")
      .Set(1.0);
  registry.GetGaugeWithLabels("innet_mode", "Serving mode", "mode=\"live\"")
      .Set(0.0);
  Histogram& latency =
      registry.GetHistogram("innet_lat", {1.0, 10.0}, "Latency");
  latency.Observe(0.5);
  latency.Observe(5.0);
  latency.Observe(50.0);
  registry.GetHistogram("innet_empty", {1.0}, "No samples");
  RegisterBuildInfo(registry);

  TelemetryServerOptions options;  // port 0: ephemeral
  TelemetryServer server(registry, options);
  ASSERT_TRUE(server.Start());
  ASSERT_NE(server.Port(), 0);

  std::string response = HttpGet(server.Port(), "/metrics");
  EXPECT_EQ(response.compare(0, 15, "HTTP/1.1 200 OK"), 0) << response;
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  std::string body = Body(response);

  // Rendered AFTER the scrape so the scrape counter (incremented before
  // the server renders) agrees; no other writer runs in between.
  std::ostringstream golden;
  WritePrometheus(registry, golden);
  EXPECT_EQ(body, golden.str());

  // Content-Length matches the body exactly (Connection: close framing
  // would mask an error here).
  std::string want_length =
      "Content-Length: " + std::to_string(body.size()) + "\r\n";
  EXPECT_NE(response.find(want_length), std::string::npos);

  // The scrape itself is visible: a second scrape reports one more request.
  std::string second = Body(HttpGet(server.Port(), "/metrics"));
  EXPECT_NE(second.find("innet_telemetry_requests_total 2\n"),
            std::string::npos);
  EXPECT_GE(server.RequestsServed(), 2u);
  server.Stop();
}

TEST(TelemetryServerTest, HealthzAndReadyzProbes) {
  MetricsRegistry registry;
  TelemetryServer server(registry, TelemetryServerOptions{});

  EXPECT_NE(server.HandleRequest("GET /healthz HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200"),
            std::string::npos);

  // No probes registered: vacuously ready.
  std::string ready = server.HandleRequest("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_NE(ready.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(ready.find("ready"), std::string::npos);

  std::atomic<bool> published{false};
  server.AddReadinessProbe("store_published",
                           [&published] { return published.load(); });
  server.AddReadinessProbe("always_ok", [] { return true; });
  std::string not_ready =
      server.HandleRequest("GET /readyz HTTP/1.1\r\n\r\n");
  EXPECT_NE(not_ready.find("HTTP/1.1 503"), std::string::npos);
  EXPECT_NE(not_ready.find("store_published"), std::string::npos);
  EXPECT_EQ(not_ready.find("always_ok"), std::string::npos);

  published.store(true);
  EXPECT_NE(server.HandleRequest("GET /readyz HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200"),
            std::string::npos);
}

TEST(TelemetryServerTest, MalformedAndUnknownRequests) {
  MetricsRegistry registry;
  TelemetryServer server(registry, TelemetryServerOptions{});

  // No spaces in the request line: not parseable as METHOD PATH VERSION.
  EXPECT_NE(server.HandleRequest("GARBAGE\r\n\r\n").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("GET  HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  // Read-only plane: anything but GET is rejected.
  EXPECT_NE(server.HandleRequest("POST /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("DELETE /metrics HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("GET /nope HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 404"),
            std::string::npos);
  // Query strings route to the base path.
  EXPECT_NE(server.HandleRequest("GET /healthz?v=1 HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200"),
            std::string::npos);

  // Over a real socket, a malformed request must not wedge the serial
  // accept loop for the next client.
  ASSERT_TRUE(server.Start());
  std::string bad = HttpGet(server.Port(), "");  // "GET  HTTP/1.1": 400
  EXPECT_NE(bad.find("HTTP/1.1 400"), std::string::npos);
  EXPECT_NE(HttpGet(server.Port(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  server.Stop();
}

TEST(TelemetryServerTest, VarzReportsBuildCountersAndSlos) {
  MetricsRegistry registry;
  registry.GetCounter("reqs_total").Increment(5);
  registry.GetGauge("depth").Set(2.5);
  registry.GetHistogram("lat", {1.0, 10.0}).Observe(3.0);

  TimeSeriesCollector collector(registry, TimeSeriesOptions{});
  collector.SampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  registry.GetCounter("reqs_total").Increment(5);
  collector.SampleNow();

  std::vector<SloObjective> objectives;
  ASSERT_TRUE(ParseSloConfig(
      "slo name=depth_high metric=depth signal=gauge threshold=1 "
      "short=0.0001 long=0.0001\n",
      &objectives));
  SloEngine slo(registry, collector, std::move(objectives));
  slo.Evaluate();
  ASSERT_TRUE(slo.IsBurning("depth_high"));

  TelemetryServer server(registry, TelemetryServerOptions{});
  server.AttachCollector(&collector);
  server.AttachSloEngine(&slo);
  std::string response = server.HandleRequest("GET /varz HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("Content-Type: application/json"),
            std::string::npos);
  std::string body = Body(response);
  ASSERT_FALSE(body.empty());
  while (!body.empty() && body.back() == '\n') body.pop_back();
  EXPECT_EQ(body.front(), '{');
  EXPECT_EQ(body.back(), '}');
  EXPECT_NE(body.find("\"build\":{\"version\":\""), std::string::npos);
  EXPECT_NE(body.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(body.find("\"reqs_total\":10"), std::string::npos);
  EXPECT_NE(body.find("\"depth\":2.5"), std::string::npos);
  EXPECT_NE(body.find("\"rates_per_sec\":"), std::string::npos);
  EXPECT_NE(body.find("\"slo_burning\":[\"depth_high\"]"),
            std::string::npos);
}

TEST(TimeSeriesTest, RatesWindowedCountsAndQuantiles) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("events_total");
  Gauge& gauge = registry.GetGauge("level");
  Histogram& histogram = registry.GetHistogram("lat", {1.0, 2.0});

  TimeSeriesOptions options;
  options.window_slots = 8;
  TimeSeriesCollector collector(registry, options);
  EXPECT_EQ(collector.CounterRate("events_total", 10.0), 0.0);

  gauge.Set(4.0);
  for (int i = 0; i < 4; ++i) histogram.Observe(0.5);
  collector.SampleNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  counter.Increment(100);
  gauge.Set(9.0);
  for (int i = 0; i < 4; ++i) histogram.Observe(1.5);
  collector.SampleNow();
  EXPECT_EQ(collector.SamplesTaken(), 2u);

  // Rate derives from the cumulative delta over elapsed sample time.
  EXPECT_GT(collector.CounterRate("events_total", 10.0), 0.0);
  EXPECT_DOUBLE_EQ(collector.Last("events_total"), 100.0);
  EXPECT_DOUBLE_EQ(collector.Last("level"), 9.0);
  EXPECT_DOUBLE_EQ(collector.WindowedMax("level", 10.0), 9.0);

  // The windowed quantile sees only the delta between the window's edge
  // samples: the four 1.5s, not the four 0.5s recorded before the first
  // sample... which ARE in the first cumulative snapshot, hence excluded.
  EXPECT_EQ(collector.WindowedCount("lat", 10.0), 4u);
  double q50 = collector.WindowedQuantile("lat", 10.0, 0.5);
  EXPECT_GT(q50, 1.0);
  EXPECT_LE(q50, 2.0);
  // Lifetime quantile over all eight observations lands in the first
  // bucket: the window view and lifetime view answer different questions.
  EXPECT_LE(histogram.Percentile(0.5), 1.0);

  // Ring eviction: many samples, bounded slots, oldest dropped.
  for (int i = 0; i < 20; ++i) collector.SampleNow();
  EXPECT_EQ(collector.Series("events_total").size(), options.window_slots);

  std::vector<std::pair<std::string, double>> rates =
      collector.AllCounterRates(10.0);
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_EQ(rates[0].first, "events_total");
}

TEST(SloTest, ParseConfigAcceptsValidRejectsMalformed) {
  std::vector<SloObjective> objectives;
  EXPECT_TRUE(ParseSloConfig(
      "# comment line\n"
      "\n"
      "slo name=p95_lat metric=innet_lat signal=p95 threshold=5000 "
      "short=5 long=30\n"
      "slo name=low_rate metric=reqs signal=rate threshold=1 below=1 "
      "short=10 long=60  # trailing comment\n",
      &objectives));
  ASSERT_EQ(objectives.size(), 2u);
  EXPECT_EQ(objectives[0].name, "p95_lat");
  EXPECT_EQ(objectives[0].metric, "innet_lat");
  EXPECT_EQ(objectives[0].signal, SloSignal::kP95);
  EXPECT_DOUBLE_EQ(objectives[0].threshold, 5000.0);
  EXPECT_FALSE(objectives[0].below);
  EXPECT_DOUBLE_EQ(objectives[0].short_window_seconds, 5.0);
  EXPECT_DOUBLE_EQ(objectives[0].long_window_seconds, 30.0);
  EXPECT_EQ(objectives[1].signal, SloSignal::kRate);
  EXPECT_TRUE(objectives[1].below);

  std::vector<SloObjective> rejected;
  // Missing name.
  EXPECT_FALSE(ParseSloConfig(
      "slo metric=m signal=gauge threshold=1 short=1 long=2\n", &rejected));
  // long < short.
  EXPECT_FALSE(ParseSloConfig(
      "slo name=x metric=m signal=gauge threshold=1 short=5 long=2\n",
      &rejected));
  // Unknown signal.
  EXPECT_FALSE(ParseSloConfig(
      "slo name=x metric=m signal=p42 threshold=1 short=1 long=2\n",
      &rejected));
  // Unknown key and non-slo leading token.
  EXPECT_FALSE(ParseSloConfig(
      "slo name=x metric=m signal=gauge threshold=1 short=1 long=2 "
      "bogus=1\n",
      &rejected));
  EXPECT_FALSE(ParseSloConfig("objective name=x\n", &rejected));
}

// Captures WARN+ lines so the stationary/regression contrast is assertable.
struct SloLogCapture {
  static std::vector<std::string>& Lines() {
    static std::vector<std::string> lines;
    return lines;
  }
  static void Sink(LogLevel level, const char*, int,
                   const std::string& message) {
    if (level >= LogLevel::kWarn) Lines().push_back(message);
  }
};

TEST(SloTest, LatchesOnLatencyRegressionSilentWhenStationary) {
  MetricsRegistry registry;
  Histogram& latency =
      registry.GetHistogram("innet_lat_micros", {1.0, 10.0, 100.0});
  TimeSeriesCollector collector(registry, TimeSeriesOptions{});

  // Tiny windows + spaced samples force the edge pair to the last two
  // slots, so each Evaluate sees exactly the observations since the
  // previous sample: deterministic, no wall-clock coupling.
  std::vector<SloObjective> objectives;
  ASSERT_TRUE(ParseSloConfig(
      "slo name=lat_p95 metric=innet_lat_micros signal=p95 threshold=50 "
      "short=0.0001 long=0.0001\n",
      &objectives));
  SloEngine engine(registry, collector, std::move(objectives));
  Gauge& burning_gauge =
      registry.GetGaugeWithLabels("innet_slo_burning", "slo=\"lat_p95\"");
  EXPECT_DOUBLE_EQ(burning_gauge.Value(), 0.0);

  SloLogCapture::Lines().clear();
  SetLogSink(&SloLogCapture::Sink);

  auto tick = [&collector, &engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    collector.SampleNow();
    engine.Evaluate();
  };

  // Stationary: healthy latencies, several evaluation rounds, no alert.
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) latency.Observe(0.5);
    tick();
    EXPECT_FALSE(engine.IsBurning("lat_p95"));
  }
  EXPECT_TRUE(SloLogCapture::Lines().empty());
  EXPECT_TRUE(engine.Burning().empty());

  // Injected regression: the windowed p95 jumps over the threshold and
  // the SLO latches into the gauge.
  for (int i = 0; i < 20; ++i) latency.Observe(99.0);
  tick();
  EXPECT_TRUE(engine.IsBurning("lat_p95"));
  EXPECT_DOUBLE_EQ(burning_gauge.Value(), 1.0);
  ASSERT_EQ(engine.Burning().size(), 1u);
  EXPECT_EQ(engine.Burning()[0], "lat_p95");
  ASSERT_EQ(SloLogCapture::Lines().size(), 1u);
  EXPECT_NE(SloLogCapture::Lines()[0].find("BURNING"), std::string::npos);

  // Latched while still breaching: no repeat warnings.
  for (int i = 0; i < 20; ++i) latency.Observe(99.0);
  tick();
  EXPECT_TRUE(engine.IsBurning("lat_p95"));
  EXPECT_EQ(SloLogCapture::Lines().size(), 1u);

  // Recovery clears the gauge and logs the transition once.
  for (int i = 0; i < 20; ++i) latency.Observe(0.5);
  tick();
  EXPECT_FALSE(engine.IsBurning("lat_p95"));
  EXPECT_DOUBLE_EQ(burning_gauge.Value(), 0.0);
  ASSERT_EQ(SloLogCapture::Lines().size(), 2u);
  EXPECT_NE(SloLogCapture::Lines()[1].find("recovered"), std::string::npos);

  SetLogSink(nullptr);
}

TEST(FlightRecorderTest, NotesSurviveToParseableDump) {
  char dir_template[] = "/tmp/innet_flight_XXXXXX";
  char* dir = mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);

  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Configure(dir);
  ASSERT_TRUE(recorder.Configured());
  uint64_t before = recorder.NotesTaken();
  recorder.Note("store", "publish_generation", 7.0);
  recorder.Note("wal", "error", 1.0);
  recorder.Note("engine", "batch_queries", 128.0);
  EXPECT_EQ(recorder.NotesTaken(), before + 3);

  ASSERT_TRUE(recorder.DumpNow("unit-test"));

  // Exactly one flight-<pid>-<seq>.json appears in the fresh directory.
  std::string path;
  {
    std::string prefix =
        std::string(dir) + "/flight-" + std::to_string(getpid()) + "-";
    for (int seq = 0; seq < 16 && path.empty(); ++seq) {
      std::string candidate = prefix + std::to_string(seq) + ".json";
      if (access(candidate.c_str(), R_OK) == 0) path = candidate;
    }
  }
  ASSERT_FALSE(path.empty()) << "no flight dump under " << dir;

  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  std::string dump = contents.str();
  EXPECT_NE(dump.find("\"schema\":\"innet-flight-v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(dump.find("\"build\":{"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"store\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\":\"publish_generation\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"value\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"wal\""), std::string::npos);
  EXPECT_NE(dump.find("\"value\":128"), std::string::npos);
  // Balanced braces/brackets; no trailing garbage after the close.
  EXPECT_EQ(dump.front(), '{');
  ASSERT_FALSE(dump.empty());
  size_t last = dump.find_last_not_of('\n');
  EXPECT_EQ(dump[last], '}');

  // The ring wraps without corruption: overfill it, dump again, and the
  // record array stays bounded by the ring size.
  for (size_t i = 0; i < FlightRecorder::kRecords + 32; ++i) {
    recorder.Note("test", "wrap", static_cast<double>(i));
  }
  ASSERT_TRUE(recorder.DumpNow("unit-test-wrap"));

  unlink(path.c_str());
}

// The TSan CI job runs this binary: scrapes must be clean against live
// metric writers and a background sampling thread.
TEST(TelemetryServerTest, ConcurrentScrapeUnderIngestIsRaceFree) {
  MetricsRegistry registry;
  Counter& events = registry.GetCounter("events_total", "writer hammer");
  Gauge& depth = registry.GetGauge("depth");
  Histogram& latency = registry.GetHistogram("lat", {1.0, 10.0, 100.0});

  TimeSeriesOptions collector_options;
  collector_options.period_ms = 2;
  TimeSeriesCollector collector(registry, collector_options);
  collector.Start();

  TelemetryServer server(registry, TelemetryServerOptions{});
  server.AttachCollector(&collector);
  server.AddReadinessProbe("events_flowing",
                           [&events] { return events.Value() > 0; });
  ASSERT_TRUE(server.Start());
  uint16_t port = server.Port();
  ASSERT_NE(port, 0);

  std::atomic<bool> writing{true};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t i = 0;
      while (writing.load(std::memory_order_relaxed)) {
        events.Increment();
        depth.Set(static_cast<double>(t));
        latency.Observe(static_cast<double>(i % 128));
        ++i;
      }
    });
  }

  constexpr int kScrapers = 2;
  constexpr int kRequestsEach = 12;
  std::vector<std::thread> scrapers;
  std::atomic<int> ok_responses{0};
  const char* paths[] = {"/metrics", "/varz", "/healthz", "/readyz"};
  for (int s = 0; s < kScrapers; ++s) {
    scrapers.emplace_back([&, s] {
      for (int i = 0; i < kRequestsEach; ++i) {
        std::string response = HttpGet(port, paths[(s + i) % 4]);
        if (response.compare(0, 12, "HTTP/1.1 200") == 0 ||
            response.compare(0, 12, "HTTP/1.1 503") == 0) {
          ok_responses.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& scraper : scrapers) scraper.join();
  writing.store(false);
  for (std::thread& writer : writers) writer.join();
  collector.Stop();
  server.Stop();

  EXPECT_EQ(ok_responses.load(), kScrapers * kRequestsEach);
  EXPECT_GE(server.RequestsServed(),
            static_cast<uint64_t>(kScrapers * kRequestsEach));
  EXPECT_GT(events.Value(), 0u);
  EXPECT_GT(collector.SamplesTaken(), 0u);
}

TEST(TelemetryServerTest, TracesEndpointHonorsLimitAndFormat) {
  MetricsRegistry registry;
  TelemetryServer server(registry, TelemetryServerOptions{});

  // No tracer attached: valid requests still answer with an empty
  // document rather than an error.
  EXPECT_NE(server.HandleRequest("GET /traces HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200"),
            std::string::npos);

  Tracer tracer(TracerOptions{});
  server.AttachTracer(&tracer);
  for (int i = 0; i < 5; ++i) {
    std::unique_ptr<QueryTrace> trace = tracer.StartQuery();
    { Span span(trace.get(), "resolve_region"); }
    tracer.Finish(std::move(trace));
  }

  std::string all = Body(
      server.HandleRequest("GET /traces HTTP/1.1\r\n\r\n"));
  size_t lines = 0;
  for (char c : all) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5u);

  // ?limit=N keeps the most recent N.
  std::string limited = Body(
      server.HandleRequest("GET /traces?limit=2 HTTP/1.1\r\n\r\n"));
  lines = 0;
  for (char c : limited) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  // The most recent traces survive the trim: query ids 3 and 4.
  EXPECT_NE(limited.find("\"query\":4"), std::string::npos);
  EXPECT_EQ(limited.find("\"query\":0"), std::string::npos);

  // ?format=chrome returns one Chrome trace-event JSON array.
  std::string chrome_response =
      server.HandleRequest("GET /traces?format=chrome&limit=3 HTTP/1.1\r\n\r\n");
  EXPECT_NE(chrome_response.find("HTTP/1.1 200"), std::string::npos);
  std::string chrome = Body(chrome_response);
  while (!chrome.empty() && chrome.back() == '\n') chrome.pop_back();
  ASSERT_FALSE(chrome.empty());
  EXPECT_EQ(chrome.front(), '[');
  EXPECT_EQ(chrome.back(), ']');
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":"), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\":"), std::string::npos);

  // Malformed parameters are a client error, not a crash or a fallback.
  EXPECT_NE(server.HandleRequest("GET /traces?limit=abc HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("GET /traces?limit=-1 HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("GET /traces?format=xml HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  // Unknown parameters are ignored, not rejected.
  EXPECT_NE(server.HandleRequest("GET /traces?foo=1 HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 200"),
            std::string::npos);
}

TEST(TelemetryServerTest, QueryzServesDigestsAndSlowLog) {
  MetricsRegistry registry;
  TelemetryServer server(registry, TelemetryServerOptions{});

  // Nothing attached: an empty digest document, not an error.
  std::string empty = Body(
      server.HandleRequest("GET /queryz HTTP/1.1\r\n\r\n"));
  EXPECT_NE(empty.find("\"recorded\":0"), std::string::npos);

  QueryDigestTable digest;
  SlowQueryLogOptions slow_options;
  slow_options.threshold_micros = 1.0;
  slow_options.registry = &registry;
  SlowQueryLog slowlog(slow_options);
  server.AttachDigestTable(&digest);
  server.AttachSlowLog(&slowlog);

  QueryCostProfile profile;
  profile.kind = 0;
  profile.region_decile = 4;
  profile.path = QueryPathKind::kCacheHit;
  profile.boundary_edges = 9;
  profile.total_nanos = 50000;
  for (int i = 0; i < 7; ++i) digest.Record(profile);
  ASSERT_TRUE(slowlog.Admit());
  slowlog.Record(profile, ExplainRecord{});
  ASSERT_TRUE(slowlog.Admit());
  slowlog.Record(profile, ExplainRecord{});

  std::string body = Body(
      server.HandleRequest("GET /queryz HTTP/1.1\r\n\r\n"));
  EXPECT_NE(body.find("\"recorded\":7"), std::string::npos);
  EXPECT_NE(body.find("\"digests\":1"), std::string::npos);
  EXPECT_NE(body.find("static/lower/d4/exact/cache_hit"),
            std::string::npos);

  // ?slow=1 flips to the slow-query ring; ?limit trims it.
  std::string slow = Body(
      server.HandleRequest("GET /queryz?slow=1&limit=1 HTTP/1.1\r\n\r\n"));
  EXPECT_NE(slow.find("\"slow\":["), std::string::npos);
  size_t records = 0;
  for (size_t at = slow.find("\"ts_unix\":"); at != std::string::npos;
       at = slow.find("\"ts_unix\":", at + 1)) {
    ++records;
  }
  EXPECT_EQ(records, 1u);

  EXPECT_NE(server.HandleRequest("GET /queryz?slow=2 HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(server.HandleRequest("GET /queryz?limit=x HTTP/1.1\r\n\r\n")
                .find("HTTP/1.1 400"),
            std::string::npos);

  // /varz carries the summary counters for both planes.
  std::string varz = Body(
      server.HandleRequest("GET /varz HTTP/1.1\r\n\r\n"));
  EXPECT_NE(varz.find("\"query_digest\":{\"recorded\":7,\"digests\":1}"),
            std::string::npos);
  EXPECT_NE(varz.find("\"slowlog\":{\"records\":2,\"suppressed\":0}"),
            std::string::npos);
}

}  // namespace
}  // namespace innet::obs
