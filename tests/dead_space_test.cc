#include <gtest/gtest.h>

#include "core/dead_space.h"
#include "core/framework.h"

namespace innet::core {
namespace {

class DeadSpaceFixture : public ::testing::Test {
 protected:
  DeadSpaceFixture() : framework_(Options()) {}
  static FrameworkOptions Options() {
    FrameworkOptions options;
    options.road.num_junctions = 300;
    options.traffic.num_trajectories = 500;
    options.seed = 71;
    return options;
  }
  Framework framework_;
};

TEST_F(DeadSpaceFixture, SensingFacesHaveNoRoadFreePartitions) {
  DeadSpaceReport report = AnalyzeSensingDeadSpace(framework_.network());
  EXPECT_EQ(report.without_roads, 0u);
  EXPECT_EQ(report.partitions,
            framework_.network().mobility().NumFaces() - 1);
  // With thousands of events, nearly every face saw traffic.
  EXPECT_LT(report.NoTrafficFraction(), 0.25);
}

TEST_F(DeadSpaceFixture, CoarseGridHasLittleDeadSpaceFineGridALot) {
  DeadSpaceReport coarse = AnalyzeGridDeadSpace(framework_.network(), 4, 4);
  DeadSpaceReport fine = AnalyzeGridDeadSpace(framework_.network(), 64, 64);
  EXPECT_EQ(coarse.partitions, 16u);
  EXPECT_EQ(fine.partitions, 64u * 64u);
  // A 4x4 grid over a connected city has roads everywhere...
  EXPECT_LT(coarse.NoRoadFraction(), 0.2);
  // ...while a fine grid leaves many cells between roads empty.
  EXPECT_GT(fine.NoRoadFraction(), coarse.NoRoadFraction());
  EXPECT_GT(fine.NoTrafficFraction(), 0.3);
  // Traffic-free is at least road-free.
  EXPECT_GE(fine.without_traffic, fine.without_roads);
  EXPECT_GE(coarse.without_traffic, coarse.without_roads);
}

TEST_F(DeadSpaceFixture, SensingBeatsComparableGrid) {
  // Compare against a grid with roughly as many partitions as sensors.
  size_t sensors = framework_.network().NumSensors();
  size_t n = 1;
  while (n * n < sensors) ++n;
  DeadSpaceReport grid = AnalyzeGridDeadSpace(framework_.network(), n, n);
  DeadSpaceReport sensing = AnalyzeSensingDeadSpace(framework_.network());
  EXPECT_GT(grid.NoTrafficFraction(), sensing.NoTrafficFraction());
}

TEST_F(DeadSpaceFixture, TrafficAttributionConserved) {
  // Total events attributed across grid cells equals total real-edge
  // events (each event lands in exactly one midpoint cell).
  DeadSpaceReport one = AnalyzeGridDeadSpace(framework_.network(), 1, 1);
  EXPECT_EQ(one.partitions, 1u);
  EXPECT_EQ(one.without_roads, 0u);
  EXPECT_EQ(one.without_traffic, 0u);
}

}  // namespace
}  // namespace innet::core
