#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "spatial/grid.h"
#include "spatial/kdtree.h"
#include "spatial/quadtree.h"
#include "spatial/rtree.h"
#include "util/rng.h"

namespace innet::spatial {
namespace {

using geometry::Point;
using geometry::Rect;

std::vector<Point> RandomPoints(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    points.emplace_back(rng.Uniform(0, 100), rng.Uniform(0, 100));
  }
  return points;
}

std::vector<size_t> BruteRange(const std::vector<Point>& points,
                               const Rect& range) {
  std::vector<size_t> out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (range.Contains(points[i])) out.push_back(i);
  }
  return out;
}

std::vector<size_t> BruteKnn(const std::vector<Point>& points, const Point& q,
                             size_t k) {
  std::vector<size_t> idx(points.size());
  for (size_t i = 0; i < points.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
    return geometry::DistanceSquared(points[a], q) <
           geometry::DistanceSquared(points[b], q);
  });
  idx.resize(std::min(k, idx.size()));
  return idx;
}

class IndexProperty : public ::testing::TestWithParam<int> {};

TEST_P(IndexProperty, KdTreeRangeMatchesBruteForce) {
  std::vector<Point> points = RandomPoints(400, GetParam());
  KdTree tree(points, 8);
  util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 50; ++i) {
    Point a(rng.Uniform(0, 100), rng.Uniform(0, 100));
    Point b(rng.Uniform(0, 100), rng.Uniform(0, 100));
    Rect range = Rect::FromCorners(a, b);
    std::vector<size_t> got = tree.RangeQuery(range);
    std::vector<size_t> want = BruteRange(points, range);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(IndexProperty, QuadTreeRangeMatchesBruteForce) {
  std::vector<Point> points = RandomPoints(400, GetParam());
  QuadTree tree(points, 8);
  util::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 50; ++i) {
    Point a(rng.Uniform(0, 100), rng.Uniform(0, 100));
    Point b(rng.Uniform(0, 100), rng.Uniform(0, 100));
    Rect range = Rect::FromCorners(a, b);
    std::vector<size_t> got = tree.RangeQuery(range);
    std::vector<size_t> want = BruteRange(points, range);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want);
  }
}

TEST_P(IndexProperty, KnnMatchesBruteForce) {
  std::vector<Point> points = RandomPoints(300, GetParam());
  KdTree tree(points, 4);
  util::Rng rng(GetParam() + 3000);
  for (int i = 0; i < 30; ++i) {
    Point q(rng.Uniform(-10, 110), rng.Uniform(-10, 110));
    for (size_t k : {size_t{1}, size_t{5}, size_t{17}}) {
      std::vector<size_t> got = tree.KNearest(q, k);
      std::vector<size_t> want = BruteKnn(points, q, k);
      ASSERT_EQ(got.size(), want.size());
      // Distances must match (indices can differ on exact ties).
      for (size_t j = 0; j < got.size(); ++j) {
        EXPECT_DOUBLE_EQ(geometry::DistanceSquared(points[got[j]], q),
                         geometry::DistanceSquared(points[want[j]], q));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexProperty, ::testing::Values(1, 2, 3));

TEST(KdTreeTest, EmptyAndSingle) {
  KdTree empty(std::vector<Point>{});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.RangeQuery(Rect(0, 0, 1, 1)).empty());
  EXPECT_TRUE(empty.KNearest(Point(0, 0), 3).empty());

  KdTree single({Point(5, 5)});
  EXPECT_EQ(single.NearestNeighbor(Point(0, 0)), 0u);
  EXPECT_EQ(single.RangeQuery(Rect(0, 0, 10, 10)).size(), 1u);
}

TEST(KdTreeTest, LeafPartitionsCoverAllPoints) {
  std::vector<Point> points = RandomPoints(200, 9);
  KdTree tree(points, 10);
  std::vector<std::vector<size_t>> cells = tree.LeafPartitions();
  std::set<size_t> seen;
  for (const auto& cell : cells) {
    EXPECT_LE(cell.size(), 10u);
    for (size_t idx : cell) EXPECT_TRUE(seen.insert(idx).second);
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(KdTreeTest, PartitionIntoCellsCountAndCover) {
  std::vector<Point> points = RandomPoints(200, 10);
  for (size_t target : {size_t{1}, size_t{7}, size_t{50}, size_t{200}}) {
    std::vector<std::vector<size_t>> cells =
        KdTree::PartitionIntoCells(points, target);
    EXPECT_GE(cells.size(), std::min(target, points.size()));
    std::set<size_t> seen;
    for (const auto& cell : cells) {
      EXPECT_FALSE(cell.empty());
      for (size_t idx : cell) EXPECT_TRUE(seen.insert(idx).second);
    }
    EXPECT_EQ(seen.size(), points.size());
  }
}

TEST(QuadTreeTest, PartitionIntoCellsCountAndCover) {
  std::vector<Point> points = RandomPoints(200, 11);
  for (size_t target : {size_t{1}, size_t{9}, size_t{60}}) {
    std::vector<std::vector<size_t>> cells =
        QuadTree::PartitionIntoCells(points, target);
    EXPECT_GE(cells.size(), std::min(target, points.size() / 2));
    std::set<size_t> seen;
    for (const auto& cell : cells) {
      EXPECT_FALSE(cell.empty());
      for (size_t idx : cell) EXPECT_TRUE(seen.insert(idx).second);
    }
    EXPECT_EQ(seen.size(), points.size());
  }
}

TEST(QuadTreeTest, LeafPartitionsDisjointCover) {
  std::vector<Point> points = RandomPoints(300, 12);
  QuadTree tree(points, 16);
  std::set<size_t> seen;
  for (const auto& leaf : tree.LeafPartitions()) {
    for (size_t idx : leaf.indices) {
      EXPECT_TRUE(seen.insert(idx).second);
      EXPECT_TRUE(leaf.bounds.Contains(points[idx]));
    }
  }
  EXPECT_EQ(seen.size(), points.size());
}

TEST(QuadTreeTest, HandlesDuplicatePoints) {
  std::vector<Point> points(50, Point(1, 1));
  points.emplace_back(2, 2);
  QuadTree tree(points, 4, /*max_depth=*/16);
  EXPECT_EQ(tree.RangeQuery(Rect(0, 0, 1.5, 1.5)).size(), 50u);
}

std::vector<geometry::Rect> RandomBoxes(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<geometry::Rect> boxes;
  boxes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 100);
    double y = rng.Uniform(0, 100);
    boxes.emplace_back(x, y, x + rng.Uniform(0.1, 8.0),
                       y + rng.Uniform(0.1, 8.0));
  }
  return boxes;
}

class RTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RTreeProperty, MatchesBruteForce) {
  std::vector<geometry::Rect> boxes = RandomBoxes(500, GetParam());
  RTree tree(boxes, 8);
  util::Rng rng(GetParam() + 4000);
  for (int trial = 0; trial < 40; ++trial) {
    Point a(rng.Uniform(-10, 110), rng.Uniform(-10, 110));
    Point b(rng.Uniform(-10, 110), rng.Uniform(-10, 110));
    Rect range = Rect::FromCorners(a, b);

    std::vector<size_t> inter = tree.Intersecting(range);
    std::vector<size_t> contained = tree.ContainedIn(range);
    std::sort(inter.begin(), inter.end());
    std::sort(contained.begin(), contained.end());

    std::vector<size_t> want_inter;
    std::vector<size_t> want_contained;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (range.Intersects(boxes[i])) want_inter.push_back(i);
      if (range.Contains(boxes[i])) want_contained.push_back(i);
    }
    EXPECT_EQ(inter, want_inter);
    EXPECT_EQ(contained, want_contained);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RTreeProperty, ::testing::Values(1, 2, 3));

TEST(RTreeTest, EmptyAndSingle) {
  RTree empty{{}};
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.Height(), 0u);
  EXPECT_TRUE(empty.Intersecting(Rect(0, 0, 1, 1)).empty());

  RTree single({Rect(1, 1, 2, 2)});
  EXPECT_EQ(single.Height(), 1u);
  EXPECT_EQ(single.Intersecting(Rect(0, 0, 3, 3)).size(), 1u);
  EXPECT_EQ(single.ContainedIn(Rect(1.5, 0, 3, 3)).size(), 0u);
}

TEST(RTreeTest, HeightLogarithmic) {
  std::vector<geometry::Rect> boxes = RandomBoxes(4000, 9);
  RTree tree(boxes, 16);
  // 4000 boxes at fanout 16: 250 leaves -> 16 -> 1: height 3.
  EXPECT_LE(tree.Height(), 4u);
  EXPECT_GE(tree.Height(), 3u);
}

TEST(RTreeTest, ContainedSubsetOfIntersecting) {
  std::vector<geometry::Rect> boxes = RandomBoxes(300, 10);
  RTree tree(boxes);
  Rect range(20, 20, 70, 70);
  std::vector<size_t> inter = tree.Intersecting(range);
  std::vector<size_t> contained = tree.ContainedIn(range);
  std::set<size_t> inter_set(inter.begin(), inter.end());
  for (size_t idx : contained) EXPECT_EQ(inter_set.count(idx), 1u);
  EXPECT_LT(contained.size(), inter.size());
}

TEST(GridTest, CellAssignment) {
  std::vector<Point> points = {{0.5, 0.5}, {9.5, 9.5}, {5.0, 0.5}};
  UniformGrid grid(Rect(0, 0, 10, 10), 2, 2, points);
  EXPECT_EQ(grid.num_cells(), 4u);
  EXPECT_EQ(grid.CellOf(Point(0.5, 0.5)), 0u);
  EXPECT_EQ(grid.CellOf(Point(9.5, 9.5)), 3u);
  EXPECT_EQ(grid.PointsInCell(0).size(), 1u);
  EXPECT_EQ(grid.PointsInCell(3).size(), 1u);
  // Out-of-bounds points clamp to border cells.
  EXPECT_EQ(grid.CellOf(Point(-5, -5)), 0u);
  EXPECT_EQ(grid.CellOf(Point(15, 15)), 3u);
}

TEST(GridTest, CellGeometry) {
  std::vector<Point> none;
  UniformGrid grid(Rect(0, 0, 10, 4), 5, 2, none);
  Rect cell = grid.CellBounds(0);
  EXPECT_DOUBLE_EQ(cell.Width(), 2.0);
  EXPECT_DOUBLE_EQ(cell.Height(), 2.0);
  Point center = grid.CellCenter(0);
  EXPECT_DOUBLE_EQ(center.x, 1.0);
  EXPECT_DOUBLE_EQ(center.y, 1.0);
  // Centers lie inside their own cells.
  for (size_t c = 0; c < grid.num_cells(); ++c) {
    EXPECT_TRUE(grid.CellBounds(c).Contains(grid.CellCenter(c)));
  }
}

}  // namespace
}  // namespace innet::spatial
