// Arbitrary-shape query regions (§4.6) and query-adaptive sampling weights
// (§4.3, last paragraph).
#include <gtest/gtest.h>

#include <set>

#include "core/adaptive_weights.h"
#include "core/framework.h"
#include "core/workload.h"
#include "geometry/polygon.h"
#include "sampling/samplers.h"

namespace innet::core {
namespace {

FrameworkOptions SmallOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 300;
  options.traffic.num_trajectories = 400;
  options.seed = seed;
  return options;
}

TEST(PolygonRegionTest, PolygonContainsRectBasics) {
  geometry::Polygon triangle({{0, 0}, {10, 0}, {0, 10}});
  EXPECT_TRUE(geometry::PolygonContainsRect(triangle,
                                            geometry::Rect(1, 1, 3, 3)));
  EXPECT_FALSE(geometry::PolygonContainsRect(triangle,
                                             geometry::Rect(6, 6, 8, 8)));
  // Straddling the hypotenuse: corners 3/4 inside.
  EXPECT_FALSE(geometry::PolygonContainsRect(triangle,
                                             geometry::Rect(3, 3, 8, 8)));
}

TEST(PolygonRegionTest, ConcaveNotchDetected) {
  // U-shape: rect spanning the notch has all corners inside but a polygon
  // edge crossing it.
  geometry::Polygon u_shape({{0, 0},
                             {10, 0},
                             {10, 10},
                             {7, 10},
                             {7, 3},
                             {3, 3},
                             {3, 10},
                             {0, 10}});
  EXPECT_TRUE(geometry::PolygonContainsRect(u_shape,
                                            geometry::Rect(1, 1, 9, 2)));
  // Below the notch floor (y = 3) the bar still fits...
  EXPECT_TRUE(geometry::PolygonContainsRect(
      u_shape, geometry::Rect(1, 1, 9, 2.9)));
  // ...but crossing it puts the notch inside the rect: all four corners in
  // the arms, yet not contained.
  EXPECT_FALSE(geometry::PolygonContainsRect(u_shape,
                                             geometry::Rect(1, 1, 9, 3.5)));
  EXPECT_FALSE(geometry::PolygonContainsRect(u_shape,
                                             geometry::Rect(2, 1, 8, 5)));
}

TEST(PolygonRegionTest, EllipseApproximation) {
  geometry::Polygon ellipse =
      geometry::ApproximateEllipse({5, 5}, 3.0, 2.0, 32);
  EXPECT_EQ(ellipse.size(), 32u);
  EXPECT_TRUE(ellipse.IsCounterClockwise());
  EXPECT_NEAR(ellipse.Area(), 3.14159265 * 3.0 * 2.0, 0.3);
  EXPECT_TRUE(ellipse.Contains({5, 5}));
  EXPECT_FALSE(ellipse.Contains({8.5, 5}));
}

TEST(PolygonRegionTest, EllipticalQueryMatchesRectSemantics) {
  Framework framework(SmallOptions(4));
  const SensorNetwork& network = framework.network();
  const geometry::Rect& world = network.DomainBounds();
  geometry::Point center = world.Center();
  double r = 0.25 * world.Width();

  // The circle inscribed in a square: circle junctions are a subset of the
  // square's junctions.
  geometry::Polygon circle = geometry::ApproximateEllipse(center, r, r, 48);
  geometry::Rect square(center.x - r, center.y - r, center.x + r,
                        center.y + r);
  std::vector<graph::NodeId> in_circle = network.JunctionsInPolygon(circle);
  std::vector<graph::NodeId> in_square = network.JunctionsInRect(square);
  ASSERT_FALSE(in_circle.empty());
  std::set<graph::NodeId> square_set(in_square.begin(), in_square.end());
  for (graph::NodeId n : in_circle) {
    EXPECT_EQ(square_set.count(n), 1u);
    EXPECT_TRUE(circle.Contains(network.mobility().Position(n)));
  }
  EXPECT_LT(in_circle.size(), in_square.size());
}

TEST(PolygonRegionTest, PolygonRegionQueriesAreExactOnUnsampledGraph) {
  Framework framework(SmallOptions(5));
  const SensorNetwork& network = framework.network();
  const geometry::Rect& world = network.DomainBounds();
  geometry::Polygon region = geometry::ApproximateEllipse(
      world.Center(), 0.3 * world.Width(), 0.2 * world.Height(), 40);

  RangeQuery query;
  query.rect = region.Bounds();
  query.junctions = network.JunctionsInPolygon(region);
  ASSERT_FALSE(query.junctions.empty());
  query.t1 = 0.25 * framework.Horizon();
  query.t2 = 0.75 * framework.Horizon();

  UnsampledQueryProcessor processor(network);
  mobility::OccupancyOracle oracle(network.mobility(),
                                   framework.trajectories(),
                                   &network.gateway_mask());
  QueryAnswer answer = processor.Answer(query, CountKind::kStatic);
  std::vector<bool> mask = network.JunctionMask(query.junctions);
  EXPECT_DOUBLE_EQ(answer.estimate,
                   static_cast<double>(oracle.OccupancyAt(mask, query.t2)));
}

TEST(AdaptiveWeightsTest, HotRegionsGetHigherWeights) {
  Framework framework(SmallOptions(6));
  const SensorNetwork& network = framework.network();
  // History: repeated queries in one corner of the domain.
  const geometry::Rect& world = network.DomainBounds();
  geometry::Rect hot(world.min_x + 0.1 * world.Width(),
                     world.min_y + 0.1 * world.Height(),
                     world.min_x + 0.45 * world.Width(),
                     world.min_y + 0.45 * world.Height());
  RangeQuery hot_query;
  hot_query.rect = hot;
  hot_query.junctions = network.JunctionsInRect(hot);
  ASSERT_FALSE(hot_query.junctions.empty());
  std::vector<RangeQuery> history(10, hot_query);

  std::vector<double> weights = QueryFrequencyWeights(network, history, 1.0);
  EXPECT_EQ(weights[network.sensing().ExtNode()], 0.0);

  // Sensors whose face touches the hot junctions got +10; others stay at 1.
  double hot_weight_total = 0.0;
  size_t hot_sensors = 0;
  for (graph::NodeId j : hot_query.junctions) {
    for (graph::FaceId f : network.mobility().FacesAroundNode(j)) {
      hot_weight_total += weights[f];
      ++hot_sensors;
    }
  }
  EXPECT_GT(hot_weight_total / static_cast<double>(hot_sensors), 10.0);
}

TEST(AdaptiveWeightsTest, WeightedSamplersConcentrateOnHotRegion) {
  Framework framework(SmallOptions(7));
  const SensorNetwork& network = framework.network();
  const geometry::Rect& world = network.DomainBounds();
  geometry::Rect hot(world.min_x, world.min_y,
                     world.min_x + 0.4 * world.Width(),
                     world.min_y + 0.4 * world.Height());
  RangeQuery hot_query;
  hot_query.rect = hot;
  hot_query.junctions = network.JunctionsInRect(hot);
  std::vector<RangeQuery> history(20, hot_query);
  std::vector<double> weights = QueryFrequencyWeights(network, history, 0.05);

  auto hot_fraction = [&](sampling::SensorSampler& sampler) {
    util::Rng rng(11);
    std::vector<graph::NodeId> selected =
        sampler.Select(network.sensing(), 60, rng);
    size_t in_hot = 0;
    for (graph::NodeId s : selected) {
      if (hot.Contains(network.sensing().Position(s))) ++in_hot;
    }
    return static_cast<double>(in_hot) /
           static_cast<double>(selected.size());
  };

  sampling::UniformSampler plain;
  sampling::UniformSampler adaptive;
  adaptive.SetWeights(weights);
  EXPECT_GT(hot_fraction(adaptive), hot_fraction(plain) + 0.15);

  sampling::KdTreeSampler kd_plain;
  sampling::KdTreeSampler kd_adaptive;
  kd_adaptive.SetWeights(weights);
  // Cell-based samplers keep one pick per cell, so the shift is bounded but
  // must not hurt: within-cell picks lean toward the hot side.
  EXPECT_GE(hot_fraction(kd_adaptive) + 0.05, hot_fraction(kd_plain));
}

}  // namespace
}  // namespace innet::core
