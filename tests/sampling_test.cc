#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "graph/dual_graph.h"
#include "mobility/road_network.h"
#include "sampling/samplers.h"
#include "util/rng.h"

namespace innet::sampling {
namespace {

struct World {
  explicit World(uint64_t seed) {
    util::Rng rng(seed);
    mobility::RoadNetworkOptions options;
    options.num_junctions = 250;
    primal = std::make_unique<graph::PlanarGraph>(
        mobility::GenerateRoadNetwork(options, rng));
    dual = std::make_unique<graph::DualGraph>(*primal);
  }
  std::unique_ptr<graph::PlanarGraph> primal;
  std::unique_ptr<graph::DualGraph> dual;
};

// Sampler-generic contract tests.
class SamplerContract : public ::testing::TestWithParam<size_t> {
 protected:
  static std::vector<std::unique_ptr<SensorSampler>> MakeAll() {
    return AllSamplers();
  }
};

TEST_P(SamplerContract, SelectsExactCountDistinctNonExt) {
  World w(7);
  size_t m = GetParam();
  for (const auto& sampler : MakeAll()) {
    util::Rng rng(99);
    std::vector<graph::NodeId> selected = sampler->Select(*w.dual, m, rng);
    size_t available = w.dual->NumNodes() - 1;
    EXPECT_EQ(selected.size(), std::min(m, available)) << sampler->Name();
    std::set<graph::NodeId> unique(selected.begin(), selected.end());
    EXPECT_EQ(unique.size(), selected.size()) << sampler->Name();
    for (graph::NodeId n : selected) {
      EXPECT_NE(n, w.dual->ExtNode()) << sampler->Name();
      EXPECT_LT(n, w.dual->NumNodes()) << sampler->Name();
    }
  }
}

TEST_P(SamplerContract, DeterministicGivenSeed) {
  World w(8);
  size_t m = GetParam();
  for (const auto& sampler : MakeAll()) {
    util::Rng rng1(5);
    util::Rng rng2(5);
    EXPECT_EQ(sampler->Select(*w.dual, m, rng1),
              sampler->Select(*w.dual, m, rng2))
        << sampler->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, SamplerContract,
                         ::testing::Values(1, 10, 60, 100000));

TEST(SamplerTest, NamesAreDistinct) {
  std::set<std::string> names;
  for (const auto& sampler : AllSamplers()) {
    EXPECT_TRUE(names.insert(std::string(sampler->Name())).second);
  }
  EXPECT_EQ(names.size(), 5u);
}

// Spatial spread: systematic and kd/quad samplers should cover the domain
// more evenly than uniform sampling. Measure with the max over a coarse
// grid of (cell count / expected).
double SpreadImbalance(const graph::DualGraph& dual,
                       const std::vector<graph::NodeId>& selected) {
  geometry::Rect bounds(1e18, 1e18, -1e18, -1e18);
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    if (n == dual.ExtNode()) continue;
    bounds.ExpandToInclude(dual.Position(n));
  }
  constexpr int kGrid = 4;
  std::vector<int> counts(kGrid * kGrid, 0);
  for (graph::NodeId n : selected) {
    const geometry::Point& p = dual.Position(n);
    int cx = std::min<int>(kGrid - 1, static_cast<int>((p.x - bounds.min_x) /
                                                       bounds.Width() * kGrid));
    int cy = std::min<int>(kGrid - 1, static_cast<int>((p.y - bounds.min_y) /
                                                       bounds.Height() * kGrid));
    ++counts[cy * kGrid + cx];
  }
  int max_count = 0;
  for (int c : counts) max_count = std::max(max_count, c);
  double expected = static_cast<double>(selected.size()) / (kGrid * kGrid);
  return static_cast<double>(max_count) / expected;
}

TEST(SamplerTest, SystematicSpreadsMoreEvenlyThanUniform) {
  World w(9);
  size_t m = 64;
  double uniform_imbalance = 0.0;
  double systematic_imbalance = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    util::Rng rng1(seed);
    util::Rng rng2(seed);
    UniformSampler uniform;
    SystematicSampler systematic;
    uniform_imbalance +=
        SpreadImbalance(*w.dual, uniform.Select(*w.dual, m, rng1));
    systematic_imbalance +=
        SpreadImbalance(*w.dual, systematic.Select(*w.dual, m, rng2));
  }
  EXPECT_LE(systematic_imbalance, uniform_imbalance);
}

TEST(SamplerTest, WeightedUniformFavorsHeavyNodes) {
  World w(10);
  UniformSampler sampler;
  std::vector<double> weights(w.dual->NumNodes(), 0.0);
  // Give all weight to nodes 1, 2, 3.
  std::vector<graph::NodeId> heavy;
  for (graph::NodeId n = 0; n < w.dual->NumNodes() && heavy.size() < 3; ++n) {
    if (n == w.dual->ExtNode()) continue;
    weights[n] = 1.0;
    heavy.push_back(n);
  }
  sampler.SetWeights(weights);
  util::Rng rng(3);
  std::vector<graph::NodeId> selected = sampler.Select(*w.dual, 3, rng);
  std::set<graph::NodeId> got(selected.begin(), selected.end());
  for (graph::NodeId n : heavy) EXPECT_EQ(got.count(n), 1u);
}

TEST(SamplerTest, StratifiedQuotasRoughlyEqualAcrossStrata) {
  World w(11);
  StratifiedSampler sampler(2, 2);
  util::Rng rng(4);
  std::vector<graph::NodeId> selected = sampler.Select(*w.dual, 80, rng);
  EXPECT_EQ(selected.size(), 80u);
  EXPECT_LE(SpreadImbalance(*w.dual, selected), 3.0);
}

TEST(SamplerTest, PickCenterVariantsDeterministicPlacement) {
  World w(12);
  SystematicSampler center(true);
  util::Rng rng1(1);
  util::Rng rng2(2);  // Different seeds...
  std::vector<graph::NodeId> a = center.Select(*w.dual, 40, rng1);
  std::vector<graph::NodeId> b = center.Select(*w.dual, 40, rng2);
  // ...but center-picking makes the grid portion seed-independent; allow
  // top-up randomness by comparing intersection size.
  std::set<graph::NodeId> sa(a.begin(), a.end());
  size_t common = 0;
  for (graph::NodeId n : b) common += sa.count(n);
  EXPECT_GE(common, 30u);
}

}  // namespace
}  // namespace innet::sampling
