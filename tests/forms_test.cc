#include <gtest/gtest.h>

#include "forms/differential_form.h"
#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "mobility/road_network.h"
#include "mobility/trajectory.h"
#include "mobility/trajectory_generator.h"
#include "util/rng.h"

namespace innet::forms {
namespace {

using graph::EdgeId;
using graph::NodeId;
using graph::PlanarGraph;
using mobility::Trajectory;

// Shared fixture: a generated network with gateway-entering trips, the
// resulting crossing events ingested into forms, and the brute-force oracle.
struct World {
  explicit World(uint64_t seed, size_t junctions = 200, size_t trips = 120) {
    util::Rng rng(seed);
    mobility::RoadNetworkOptions road;
    road.num_junctions = junctions;
    graph = std::make_unique<PlanarGraph>(
        mobility::GenerateRoadNetwork(road, rng));
    gateway_mask = mobility::GatewayMask(*graph);
    mobility::TrajectoryOptions traffic;
    traffic.num_trajectories = trips;
    trajectories = mobility::GenerateTrajectories(*graph, traffic, rng);
    oracle = std::make_unique<mobility::OccupancyOracle>(*graph, trajectories,
                                                         &gateway_mask);
  }

  // A region mask that avoids gateway junctions (the queryable regions).
  std::vector<bool> RandomInteriorRegion(util::Rng& rng, double frac) const {
    std::vector<bool> mask(graph->NumNodes(), false);
    for (NodeId n = 0; n < graph->NumNodes(); ++n) {
      if (!gateway_mask[n] && rng.Bernoulli(frac)) mask[n] = true;
    }
    return mask;
  }

  std::unique_ptr<PlanarGraph> graph;
  std::vector<bool> gateway_mask;
  std::vector<Trajectory> trajectories;
  std::unique_ptr<mobility::OccupancyOracle> oracle;
};

TEST(SnapshotFormTest, SignedFormAntisymmetry) {
  World w(1);
  SnapshotForm form(w.graph->NumEdges());
  util::Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    form.RecordTraversal(
        static_cast<EdgeId>(rng.UniformIndex(w.graph->NumEdges())),
        rng.Bernoulli(0.5));
  }
  // ξ(-e) = -ξ(e): the signed form toward one endpoint is the negation of
  // the signed form toward the other.
  for (EdgeId e = 0; e < w.graph->NumEdges(); ++e) {
    const graph::EdgeRecord& rec = w.graph->Edge(e);
    EXPECT_EQ(form.SignedToward(*w.graph, e, rec.u),
              -form.SignedToward(*w.graph, e, rec.v));
    EXPECT_EQ(form.PlusInto(*w.graph, e, rec.v), form.Forward(e));
    EXPECT_EQ(form.MinusOutOf(*w.graph, e, rec.u), form.Forward(e));
  }
}

TEST(SnapshotFormTest, SingleCrossingExample) {
  // Reproduces the Fig. 8b proof sketch: one object moving σ -> τ.
  World w(3);
  EdgeId e = 0;
  const graph::EdgeRecord& rec = w.graph->Edge(e);
  SnapshotForm form(w.graph->NumEdges());
  form.RecordTraversal(e, /*forward=*/true);  // u -> v.
  std::vector<bool> cell_v(w.graph->NumNodes(), false);
  cell_v[rec.v] = true;
  EXPECT_EQ(form.CountInside(*w.graph, cell_v), 1);
  std::vector<bool> cell_u(w.graph->NumNodes(), false);
  cell_u[rec.u] = true;
  EXPECT_EQ(form.CountInside(*w.graph, cell_u), -1);  // Left without entering.
  // Union of both cells: the crossing is interior and cancels.
  cell_u[rec.v] = true;
  EXPECT_EQ(form.CountInside(*w.graph, cell_u), 0);
}

// Theorem 4.1 against the oracle: snapshot counts of arbitrary interior
// regions match per-object ground truth at the end of time, where every
// recorded crossing is final. (Snapshot forms have no time; we replay all
// events and compare at t = +inf.)
class Theorem41 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem41, SnapshotCountMatchesOracle) {
  World w(GetParam());
  SnapshotForm form(w.graph->NumEdges());
  // Births at gateways are invisible to real-edge snapshot forms; replay
  // only trajectories' real crossings and compare against the oracle with
  // regions that exclude gateways AND trajectories that entered through
  // them (the ⋆v_ext entries are on virtual edges, handled by the core
  // layer; here we emulate them by also counting entries into the first
  // cell).
  for (const Trajectory& t : w.trajectories) {
    for (const mobility::CrossingEvent& ev :
         mobility::ExtractCrossingEvents(*w.graph, t)) {
      form.RecordTraversal(ev.edge, ev.forward);
    }
  }
  util::Rng rng(GetParam() + 100);
  double t_end = 1e18;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> region = w.RandomInteriorRegion(rng, 0.3);
    int64_t expected = w.oracle->OccupancyAt(region, t_end);
    // Correction for gateway-entered objects: entering the domain at a
    // gateway cell is not a real-edge crossing, but gateway cells are never
    // part of the region, so the object's subsequent move INTO the region
    // is correctly counted. No correction needed.
    EXPECT_EQ(form.CountInside(*w.graph, region), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem41, ::testing::Values(10, 20, 30));

// Tracking form + Theorem 4.2 (static count at time t) against the oracle.
class Theorem42 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem42, StaticCountMatchesOracleAtAnyTime) {
  World w(GetParam());
  TrackingForm form(w.graph->NumEdges());
  for (const mobility::CrossingEvent& ev :
       mobility::ExtractAllCrossingEvents(*w.graph, w.trajectories)) {
    form.RecordTraversal(ev.edge, ev.forward, ev.time);
  }
  util::Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<bool> region = w.RandomInteriorRegion(rng, 0.25);
    std::vector<BoundaryEdge> boundary = RegionBoundary(*w.graph, region);
    for (double t : {500.0, 3000.0, 9000.0, 20000.0, 1e9}) {
      double got = EvaluateStaticCount(form, boundary, t);
      int64_t want = w.oracle->OccupancyAt(region, t);
      EXPECT_DOUBLE_EQ(got, static_cast<double>(want))
          << "t=" << t << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem42, ::testing::Values(11, 21, 31));

// Theorem 4.3 (transient count) against the oracle.
class Theorem43 : public ::testing::TestWithParam<int> {};

TEST_P(Theorem43, TransientCountMatchesOracle) {
  World w(GetParam());
  TrackingForm form(w.graph->NumEdges());
  for (const mobility::CrossingEvent& ev :
       mobility::ExtractAllCrossingEvents(*w.graph, w.trajectories)) {
    form.RecordTraversal(ev.edge, ev.forward, ev.time);
  }
  util::Rng rng(GetParam() + 300);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<bool> region = w.RandomInteriorRegion(rng, 0.25);
    std::vector<BoundaryEdge> boundary = RegionBoundary(*w.graph, region);
    double t0 = rng.Uniform(0, 15000);
    double t1 = t0 + rng.Uniform(0, 15000);
    double got = EvaluateTransientCount(form, boundary, t0, t1);
    int64_t want = w.oracle->NetChange(region, t0, t1);
    EXPECT_DOUBLE_EQ(got, static_cast<double>(want));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem43, ::testing::Values(12, 22, 32));

TEST(TrackingFormTest, CountUpToBinarySearch) {
  TrackingForm form(2);
  for (double t : {1.0, 2.0, 2.0, 5.0}) form.RecordTraversal(0, true, t);
  EXPECT_DOUBLE_EQ(form.CountUpTo(0, true, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(form.CountUpTo(0, true, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(form.CountUpTo(0, true, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(form.CountUpTo(0, true, 10.0), 4.0);
  EXPECT_DOUBLE_EQ(form.CountUpTo(0, false, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(form.CountInRange(0, true, 1.0, 5.0), 3.0);
}

TEST(TrackingFormTest, StorageAccounting) {
  TrackingForm form(3);
  form.RecordTraversal(0, true, 1.0);
  form.RecordTraversal(0, false, 2.0);
  form.RecordTraversal(2, true, 3.0);
  EXPECT_EQ(form.TotalEvents(), 3u);
  EXPECT_EQ(form.StorageBytes(), 3 * sizeof(double));
  EXPECT_EQ(form.StorageBytesForEdge(0), 2 * sizeof(double));
  EXPECT_EQ(form.StorageBytesForEdge(1), 0u);
}

TEST(RegionCountTest, PaperFigure10Example) {
  // Two trajectories moving in and out of σ at t0..t3 (Fig. 10): blue
  // enters via b at t0 and exits via c at t3; green enters via b at t2; red
  // enters via a at t1.
  TrackingForm form(3);  // Edges a=0, b=1, c=2; forward = inward.
  form.RecordTraversal(1, true, 0.0);  // Blue in via b.
  form.RecordTraversal(0, true, 1.0);  // Red in via a.
  form.RecordTraversal(1, true, 2.0);  // Green in via b.
  form.RecordTraversal(2, false, 3.0); // Blue out via c.
  std::vector<BoundaryEdge> boundary = {
      {0, true}, {1, true}, {2, true}};
  // Thm 4.2 at t3: 1 + 2 - 1 = 2.
  EXPECT_DOUBLE_EQ(EvaluateStaticCount(form, boundary, 3.0), 2.0);
  // Thm 4.3 over [t1, t3]: 0 + 1 - 1 = 0 — always two objects inside.
  EXPECT_DOUBLE_EQ(EvaluateTransientCount(form, boundary, 1.0, 3.0), 0.0);
}

// Counts are additive over disjoint regions: count(S1 ∪ S2) = count(S1) +
// count(S2) when S1 and S2 share no junction — the boundary edges between
// them (if any) contribute to both with opposite signs... no: disjoint
// junction sets may be adjacent; an edge between S1 and S2 is a boundary
// edge of both AND of the union it is interior. Additivity still holds for
// occupancy (each object is in exactly one cell), which is what we check.
TEST(RegionCountTest, OccupancyAdditiveOverDisjointRegions) {
  World w(50);
  TrackingForm form(w.graph->NumEdges());
  for (const mobility::CrossingEvent& ev :
       mobility::ExtractAllCrossingEvents(*w.graph, w.trajectories)) {
    form.RecordTraversal(ev.edge, ev.forward, ev.time);
  }
  util::Rng rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<bool> s1 = w.RandomInteriorRegion(rng, 0.2);
    std::vector<bool> s2 = w.RandomInteriorRegion(rng, 0.2);
    std::vector<bool> s2_only(s2.size());
    std::vector<bool> s_union(s2.size());
    for (size_t i = 0; i < s2.size(); ++i) {
      s2_only[i] = s2[i] && !s1[i];
      s_union[i] = s1[i] || s2[i];
    }
    double t = rng.Uniform(0, 20000);
    double c1 = EvaluateStaticCount(form, RegionBoundary(*w.graph, s1), t);
    double c2 =
        EvaluateStaticCount(form, RegionBoundary(*w.graph, s2_only), t);
    double cu =
        EvaluateStaticCount(form, RegionBoundary(*w.graph, s_union), t);
    EXPECT_DOUBLE_EQ(cu, c1 + c2);
  }
}

TEST(RegionCountTest, CountInRangeBoundarySemantics) {
  // CountInRange covers the half-open interval (t0, t1].
  TrackingForm form(1);
  form.RecordTraversal(0, true, 5.0);
  form.RecordTraversal(0, true, 10.0);
  EXPECT_DOUBLE_EQ(form.CountInRange(0, true, 5.0, 10.0), 1.0);  // 10 only.
  EXPECT_DOUBLE_EQ(form.CountInRange(0, true, 4.9, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(form.CountInRange(0, true, 10.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(form.CountInRange(0, true, 0.0, 4.9), 0.0);
}

TEST(RegionCountTest, EmptyBoundaryYieldsZero) {
  TrackingForm form(4);
  form.RecordTraversal(2, true, 1.0);
  std::vector<BoundaryEdge> empty;
  EXPECT_DOUBLE_EQ(EvaluateStaticCount(form, empty, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(EvaluateTransientCount(form, empty, 0.0, 100.0), 0.0);
}

TEST(RegionCountTest, BoundaryOrientationFlagsMatchMask) {
  World w(40);
  util::Rng rng(41);
  std::vector<bool> region = w.RandomInteriorRegion(rng, 0.3);
  std::vector<BoundaryEdge> boundary = RegionBoundary(*w.graph, region);
  for (const BoundaryEdge& b : boundary) {
    const graph::EdgeRecord& rec = w.graph->Edge(b.edge);
    EXPECT_NE(region[rec.u], region[rec.v]);
    EXPECT_EQ(b.inward_is_forward, region[rec.v]);
  }
  // Every mixed edge appears exactly once.
  size_t mixed = 0;
  for (EdgeId e = 0; e < w.graph->NumEdges(); ++e) {
    const graph::EdgeRecord& rec = w.graph->Edge(e);
    if (region[rec.u] != region[rec.v]) ++mixed;
  }
  EXPECT_EQ(boundary.size(), mixed);
}

}  // namespace
}  // namespace innet::forms
