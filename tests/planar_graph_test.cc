#include <gtest/gtest.h>

#include <set>

#include "graph/planar_graph.h"
#include "mobility/road_network.h"
#include "util/rng.h"

namespace innet::graph {
namespace {

// 2x2 grid of unit squares (9 nodes, 12 edges, 4 interior faces + outer).
PlanarGraph MakeGrid3x3() {
  std::vector<geometry::Point> positions;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      positions.emplace_back(x, y);
    }
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto id = [](int x, int y) { return static_cast<NodeId>(y * 3 + x); };
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      if (x + 1 < 3) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < 3) edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return PlanarGraph(std::move(positions), std::move(edges));
}

TEST(PlanarGraphTest, GridFaceCount) {
  PlanarGraph g = MakeGrid3x3();
  EXPECT_EQ(g.NumNodes(), 9u);
  EXPECT_EQ(g.NumEdges(), 12u);
  EXPECT_EQ(g.NumFaces(), 5u);  // 4 squares + outer.
  EXPECT_EQ(g.NumNodes() - g.NumEdges() + g.NumFaces(), 2u);
}

TEST(PlanarGraphTest, OuterFaceIsUniqueAndNegative) {
  PlanarGraph g = MakeGrid3x3();
  size_t negative = 0;
  for (FaceId f = 0; f < g.NumFaces(); ++f) {
    if (g.Face(f).signed_area < 0) {
      ++negative;
      EXPECT_EQ(f, g.OuterFace());
      EXPECT_TRUE(g.Face(f).is_outer);
    } else {
      EXPECT_FALSE(g.Face(f).is_outer);
    }
  }
  EXPECT_EQ(negative, 1u);
  EXPECT_DOUBLE_EQ(g.Face(g.OuterFace()).signed_area, -4.0);
}

TEST(PlanarGraphTest, InteriorFacesAreUnitSquares) {
  PlanarGraph g = MakeGrid3x3();
  for (FaceId f = 0; f < g.NumFaces(); ++f) {
    if (f == g.OuterFace()) continue;
    EXPECT_NEAR(g.Face(f).signed_area, 1.0, 1e-12);
    EXPECT_EQ(g.Face(f).boundary_edges.size(), 4u);
  }
}

TEST(PlanarGraphTest, EdgeFacesConsistent) {
  PlanarGraph g = MakeGrid3x3();
  // Every edge has two distinct incident faces (no bridges in a grid), and
  // each face's area sums correctly.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const EdgeRecord& rec = g.Edge(e);
    EXPECT_NE(rec.left, kInvalidFace);
    EXPECT_NE(rec.right, kInvalidFace);
    EXPECT_NE(rec.left, rec.right);
  }
  double total = 0.0;
  for (FaceId f = 0; f < g.NumFaces(); ++f) total += g.Face(f).signed_area;
  EXPECT_NEAR(total, 0.0, 1e-9);  // Interior areas cancel the outer walk.
}

TEST(PlanarGraphTest, EdgeBetween) {
  PlanarGraph g = MakeGrid3x3();
  EXPECT_NE(g.EdgeBetween(0, 1), kInvalidEdge);
  EXPECT_EQ(g.EdgeBetween(0, 8), kInvalidEdge);
  EdgeId e = g.EdgeBetween(4, 5);
  ASSERT_NE(e, kInvalidEdge);
  EXPECT_EQ(g.Edge(e).Other(4), 5u);
  EXPECT_EQ(g.Edge(e).Other(5), 4u);
}

TEST(PlanarGraphTest, FacesAroundNode) {
  PlanarGraph g = MakeGrid3x3();
  // Center node (4) touches all four interior squares.
  std::vector<FaceId> around = g.FacesAroundNode(4);
  EXPECT_EQ(around.size(), 4u);
  std::set<FaceId> unique(around.begin(), around.end());
  EXPECT_EQ(unique.size(), 4u);
  EXPECT_EQ(unique.count(g.OuterFace()), 0u);
  // Corner node (0) touches one square and the outer face twice is not
  // possible: degree 2 -> two incident faces.
  std::vector<FaceId> corner = g.FacesAroundNode(0);
  EXPECT_EQ(corner.size(), 2u);
  EXPECT_TRUE(corner[0] == g.OuterFace() || corner[1] == g.OuterFace());
}

TEST(PlanarGraphTest, TriangleWithDangling) {
  // A triangle with a dangling edge (bridge): still one face + outer.
  std::vector<geometry::Point> positions = {
      {0, 0}, {2, 0}, {1, 2}, {3, 2}};
  std::vector<std::pair<NodeId, NodeId>> edges = {
      {0, 1}, {1, 2}, {2, 0}, {1, 3}};
  PlanarGraph g(std::move(positions), std::move(edges));
  EXPECT_EQ(g.NumFaces(), 2u);  // V-E+F = 4-4+2 = 2.
  // The bridge edge has the same face on both sides.
  EdgeId bridge = g.EdgeBetween(1, 3);
  EXPECT_EQ(g.Edge(bridge).left, g.Edge(bridge).right);
}

TEST(PlanarGraphTest, HalfEdgeEndpoints) {
  PlanarGraph g = MakeGrid3x3();
  EdgeId e = g.EdgeBetween(0, 1);
  uint32_t h = e << 1;
  EXPECT_EQ(g.HalfEdgeSource(h), g.Edge(e).u);
  EXPECT_EQ(g.HalfEdgeTarget(h), g.Edge(e).v);
  EXPECT_EQ(g.HalfEdgeSource(h | 1), g.Edge(e).v);
  EXPECT_EQ(g.HalfEdgeTarget(h | 1), g.Edge(e).u);
  // The two half-edges see the two sides.
  EXPECT_EQ(g.FaceOfHalfEdge(h), g.Edge(e).left);
  EXPECT_EQ(g.FaceOfHalfEdge(h | 1), g.Edge(e).right);
}

// Property sweep over generated road networks: Euler's formula, unique outer
// face, boundary-walk closure.
class PlanarGraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlanarGraphProperty, GeneratedNetworksAreConsistent) {
  util::Rng rng(GetParam());
  mobility::RoadNetworkOptions options;
  options.num_junctions = 150;
  PlanarGraph g = mobility::GenerateRoadNetwork(options, rng);
  EXPECT_EQ(g.NumNodes() - g.NumEdges() + g.NumFaces(), 2u);
  size_t negative = 0;
  double total = 0.0;
  for (FaceId f = 0; f < g.NumFaces(); ++f) {
    if (g.Face(f).signed_area < 0) ++negative;
    total += g.Face(f).signed_area;
    // Boundary arrays are parallel and closed.
    EXPECT_EQ(g.Face(f).boundary_nodes.size(),
              g.Face(f).boundary_edges.size());
  }
  EXPECT_EQ(negative, 1u);
  EXPECT_NEAR(total, 0.0, 1e-6);
  // Every half-edge belongs to exactly one face: edge face ids valid.
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_NE(g.Edge(e).left, kInvalidFace);
    EXPECT_NE(g.Edge(e).right, kInvalidFace);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanarGraphProperty,
                         ::testing::Values(101, 202, 303, 404));

// Algebraic-topology sanity: every half-edge belongs to exactly one face
// walk, so for ANY antisymmetric 1-form (ξ(-e) = -ξ(e)) the total
// circulation over all face boundaries vanishes — each edge contributes +ξ
// to one face and -ξ to the other (Stokes on a closed surface).
TEST_P(PlanarGraphProperty, FaceCirculationsSumToZero) {
  util::Rng rng(GetParam() + 5000);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 120;
  PlanarGraph g = mobility::GenerateRoadNetwork(options, rng);

  std::vector<double> form(g.NumEdges());
  for (double& x : form) x = rng.Uniform(-10.0, 10.0);

  double total = 0.0;
  size_t half_edges_walked = 0;
  for (FaceId f = 0; f < g.NumFaces(); ++f) {
    const FaceRecord& face = g.Face(f);
    double circulation = 0.0;
    for (size_t i = 0; i < face.boundary_edges.size(); ++i) {
      EdgeId e = face.boundary_edges[i];
      // Orientation within the walk: source of this step.
      bool forward = g.Edge(e).u == face.boundary_nodes[i];
      circulation += forward ? form[e] : -form[e];
      ++half_edges_walked;
    }
    total += circulation;
  }
  EXPECT_NEAR(total, 0.0, 1e-6);
  EXPECT_EQ(half_edges_walked, 2 * g.NumEdges());
}

}  // namespace
}  // namespace innet::graph
