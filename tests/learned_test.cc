#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "learned/buffered_edge_store.h"
#include "learned/count_model.h"
#include "learned/piecewise_model.h"
#include "learned/polynomial_model.h"
#include "util/rng.h"

namespace innet::learned {
namespace {

std::vector<double> SortedTimes(size_t n, uint64_t seed, double scale) {
  util::Rng rng(seed);
  std::vector<double> times;
  times.reserve(n);
  for (size_t i = 0; i < n; ++i) times.push_back(rng.Uniform(0.0, scale));
  std::sort(times.begin(), times.end());
  return times;
}

double TrueCount(const std::vector<double>& times, double t) {
  return static_cast<double>(
      std::upper_bound(times.begin(), times.end(), t) - times.begin());
}

TEST(CountModelTest, EmptyModelPredictsZero) {
  ModelOptions options;
  for (ModelType type :
       {ModelType::kLinear, ModelType::kQuadratic, ModelType::kCubic,
        ModelType::kPiecewiseLinear, ModelType::kPiecewiseConstant}) {
    auto model = CreateCountModel(type, options);
    EXPECT_DOUBLE_EQ(model->Predict(123.0), 0.0) << ModelTypeName(type);
    EXPECT_EQ(model->ObservedCount(), 0u);
  }
}

TEST(CountModelTest, SingleEventStep) {
  ModelOptions options;
  for (ModelType type :
       {ModelType::kLinear, ModelType::kPiecewiseLinear,
        ModelType::kPiecewiseConstant}) {
    auto model = CreateCountModel(type, options);
    model->Observe(10.0);
    EXPECT_DOUBLE_EQ(model->Predict(5.0), 0.0) << ModelTypeName(type);
    EXPECT_GE(model->Predict(10.0), 0.0);
    EXPECT_LE(model->Predict(1e9), 1.0);
  }
}

TEST(LinearModelTest, ExactOnUniformArrivals) {
  // Perfectly linear CDF: events at 1, 2, ..., 100.
  PolynomialModel model(1, /*time_scale=*/100.0);
  for (int i = 1; i <= 100; ++i) model.Observe(static_cast<double>(i));
  for (double t : {10.0, 25.0, 50.0, 99.0}) {
    EXPECT_NEAR(model.Predict(t), t, 1.0);
  }
  // Clamped outside the observed range.
  EXPECT_DOUBLE_EQ(model.Predict(-50.0), 0.0);
  EXPECT_DOUBLE_EQ(model.Predict(1e6), 100.0);
}

TEST(PolynomialModelTest, QuadraticFitsQuadraticCdf) {
  // Events with arrival density growing linearly: t_i = sqrt(i) * 10.
  PolynomialModel model(2, /*time_scale=*/100.0);
  std::vector<double> times;
  for (int i = 1; i <= 100; ++i) times.push_back(std::sqrt(i) * 10.0);
  for (double t : times) model.Observe(t);
  // True count at time t is (t/10)^2.
  for (double t : {30.0, 50.0, 80.0}) {
    EXPECT_NEAR(model.Predict(t), (t / 10.0) * (t / 10.0), 3.0);
  }
}

TEST(PolynomialModelTest, ParameterCountConstantInEvents) {
  PolynomialModel model(3, 100.0);
  size_t before = model.ParameterCount();
  for (int i = 0; i < 10000; ++i) model.Observe(i * 0.01);
  EXPECT_EQ(model.ParameterCount(), before);
}

TEST(PiecewiseModelTest, EpsilonGuaranteeAtTrainingPoints) {
  double epsilon = 4.0;
  PiecewiseModel model(epsilon, /*constant_segments=*/false);
  std::vector<double> times = SortedTimes(2000, 77, 1000.0);
  for (double t : times) model.Observe(t);
  for (size_t i = 0; i < times.size(); ++i) {
    double want = TrueCount(times, times[i]);
    // Duplicate timestamps collapse: prediction must be within epsilon of
    // the final count at that timestamp.
    EXPECT_NEAR(model.Predict(times[i]), want, epsilon + 1e-6)
        << "at event " << i;
  }
}

TEST(PiecewiseConstantModelTest, EpsilonGuarantee) {
  double epsilon = 6.0;
  PiecewiseModel model(epsilon, /*constant_segments=*/true);
  std::vector<double> times = SortedTimes(1500, 78, 1000.0);
  for (double t : times) model.Observe(t);
  for (size_t i = 0; i < times.size(); i += 7) {
    double want = TrueCount(times, times[i]);
    EXPECT_NEAR(model.Predict(times[i]), want, epsilon + 1e-6);
  }
}

TEST(PiecewiseModelTest, FewerSegmentsWithLargerEpsilon) {
  std::vector<double> times = SortedTimes(3000, 79, 1000.0);
  PiecewiseModel tight(1.0, false);
  PiecewiseModel loose(16.0, false);
  for (double t : times) {
    tight.Observe(t);
    loose.Observe(t);
  }
  EXPECT_GT(tight.SegmentCount(), loose.SegmentCount());
  EXPECT_LT(loose.SegmentCount(), 40u);  // Compresses well.
}

TEST(PiecewiseModelTest, MonotoneWithinClampBounds) {
  PiecewiseModel model(4.0, false);
  std::vector<double> times = SortedTimes(500, 80, 100.0);
  for (double t : times) model.Observe(t);
  double prev = -1.0;
  bool monotone = true;
  for (double t = -10.0; t < 120.0; t += 0.5) {
    double p = model.Predict(t);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 500.0);
    if (p + 1e-9 < prev - 4.0) monotone = false;  // Allow epsilon wiggle.
    prev = std::max(prev, p);
  }
  EXPECT_TRUE(monotone);
}

// Accuracy sweep across every model family on heterogeneous arrival
// processes: the learned count must track the true CDF within a small
// fraction of the total event count.
class ModelAccuracy : public ::testing::TestWithParam<ModelType> {};

TEST_P(ModelAccuracy, TracksCdfWithinFivePercent) {
  ModelOptions options;
  options.time_scale = 1000.0;
  options.epsilon = 8.0;
  // Mixture arrival process: bursty + uniform.
  util::Rng rng(91);
  std::vector<double> times;
  for (int i = 0; i < 1200; ++i) times.push_back(rng.Uniform(0, 1000));
  for (int i = 0; i < 800; ++i) times.push_back(300 + rng.Normal(0, 40));
  std::sort(times.begin(), times.end());

  auto model = CreateCountModel(GetParam(), options);
  for (double t : times) model->Observe(t);
  double max_err = 0.0;
  for (double t = 0; t <= 1000; t += 10) {
    max_err = std::max(max_err,
                       std::abs(model->Predict(t) - TrueCount(times, t)));
  }
  bool global_polynomial = GetParam() == ModelType::kLinear ||
                           GetParam() == ModelType::kQuadratic ||
                           GetParam() == ModelType::kCubic;
  // Global polynomials fit the burst loosely; piecewise models are tight.
  double budget = global_polynomial ? 0.25 : 0.05;
  EXPECT_LT(max_err, budget * static_cast<double>(times.size()))
      << ModelTypeName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelAccuracy,
    ::testing::Values(ModelType::kLinear, ModelType::kQuadratic,
                      ModelType::kCubic, ModelType::kPiecewiseLinear,
                      ModelType::kPiecewiseConstant),
    [](const ::testing::TestParamInfo<ModelType>& info) {
      std::string name(ModelTypeName(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(PiecewiseModelTest, HeavyDuplicateTimestamps) {
  // Bursts of identical timestamps: representable while each vertical run
  // stays within epsilon; otherwise segments split.
  PiecewiseModel model(3.0, /*constant_segments=*/false);
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 8; ++i) {
      model.Observe(static_cast<double>(burst) * 10.0);
    }
  }
  EXPECT_EQ(model.ObservedCount(), 80u);
  // Prediction at each burst time lands within epsilon + the vertical-run
  // ambiguity (8 events share one timestamp).
  for (int burst = 0; burst < 10; ++burst) {
    double want = (burst + 1) * 8.0;
    EXPECT_NEAR(model.Predict(burst * 10.0), want, 8.0 + 3.0);
  }
  EXPECT_DOUBLE_EQ(model.Predict(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(model.Predict(1e9), 80.0);
}

TEST(CountModelTest, FactoryNamesMatchTypes) {
  ModelOptions options;
  EXPECT_EQ(CreateCountModel(ModelType::kLinear, options)->Name(), "linear");
  EXPECT_EQ(CreateCountModel(ModelType::kQuadratic, options)->Name(),
            "quadratic");
  EXPECT_EQ(CreateCountModel(ModelType::kCubic, options)->Name(), "cubic");
  EXPECT_EQ(CreateCountModel(ModelType::kPiecewiseLinear, options)->Name(),
            "pw-linear");
  EXPECT_EQ(CreateCountModel(ModelType::kPiecewiseConstant, options)->Name(),
            "pw-constant");
  for (ModelType type :
       {ModelType::kLinear, ModelType::kQuadratic, ModelType::kCubic,
        ModelType::kPiecewiseLinear, ModelType::kPiecewiseConstant}) {
    EXPECT_EQ(ModelTypeName(type), CreateCountModel(type, options)->Name());
  }
}

TEST(LinearModelTest, PredictionClampedToObservedCount) {
  // A steeply rising then flat CDF: the linear fit overshoots at the end
  // but the clamp caps it at the observed count.
  PolynomialModel model(1, 100.0);
  for (int i = 0; i < 50; ++i) model.Observe(i * 0.1);  // Burst at start.
  for (double t = 0; t <= 200; t += 5) {
    EXPECT_LE(model.Predict(t), 50.0);
    EXPECT_GE(model.Predict(t), 0.0);
  }
}

TEST(BufferedEdgeStoreTest, BufferIsExactUntilFlush) {
  ModelOptions options;
  options.time_scale = 100.0;
  BufferedEdgeStore store(4, ModelType::kLinear, /*buffer_capacity=*/10,
                          options);
  for (double t : {1.0, 2.0, 3.0}) store.RecordTraversal(2, true, t);
  // Below capacity: everything still buffered, counts exact.
  EXPECT_EQ(store.ModelFor(2, true), nullptr);
  EXPECT_DOUBLE_EQ(store.CountUpTo(2, true, 2.5), 2.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(2, true, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(2, false, 10.0), 0.0);
}

TEST(BufferedEdgeStoreTest, FlushMovesEventsToModel) {
  ModelOptions options;
  options.time_scale = 100.0;
  BufferedEdgeStore store(2, ModelType::kPiecewiseLinear,
                          /*buffer_capacity=*/8, options);
  for (int i = 1; i <= 8; ++i) {
    store.RecordTraversal(0, true, static_cast<double>(i));
  }
  const CountModel* model = store.ModelFor(0, true);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->ObservedCount(), 8u);
  EXPECT_EQ(store.TotalEvents(), 8u);
  // Model + empty buffer still answers.
  EXPECT_NEAR(store.CountUpTo(0, true, 8.0), 8.0, 8.0 /*pla epsilon*/);
}

TEST(BufferedEdgeStoreTest, CloseToExactAcrossManyEvents) {
  ModelOptions options;
  options.time_scale = 1000.0;
  options.epsilon = 4.0;
  BufferedEdgeStore store(1, ModelType::kPiecewiseLinear, 32, options);
  std::vector<double> times = SortedTimes(5000, 92, 1000.0);
  for (double t : times) store.RecordTraversal(0, true, t);
  for (double t = 0; t <= 1000; t += 25) {
    EXPECT_NEAR(store.CountUpTo(0, true, t), TrueCount(times, t), 8.0);
  }
}

TEST(BufferedEdgeStoreTest, StorageMuchSmallerThanExact) {
  ModelOptions options;
  options.time_scale = 1000.0;
  BufferedEdgeStore store(1, ModelType::kLinear, 32, options);
  std::vector<double> times = SortedTimes(20000, 93, 1000.0);
  for (double t : times) store.RecordTraversal(0, true, t);
  size_t exact_bytes = times.size() * sizeof(double);
  EXPECT_LT(store.StorageBytes(), exact_bytes / 50);
  EXPECT_EQ(store.StorageBytesForEdge(0), store.StorageBytes());
}

TEST(BufferedEdgeStoreTest, DirectionsIndependent) {
  ModelOptions options;
  BufferedEdgeStore store(1, ModelType::kLinear, 4, options);
  store.RecordTraversal(0, true, 1.0);
  store.RecordTraversal(0, false, 2.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(0, true, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(0, false, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(0, false, 1.5), 0.0);
}

}  // namespace
}  // namespace innet::learned
