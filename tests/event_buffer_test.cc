#include <gtest/gtest.h>

#include "core/event_buffer.h"
#include "core/framework.h"
#include "core/live_monitor.h"
#include "core/workload.h"
#include "util/rng.h"

namespace innet::core {
namespace {

using mobility::CrossingEvent;

TEST(EventBufferTest, ReordersWithinLateness) {
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(5.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  // Arrival order scrambled within a 5 s window.
  for (double t : {3.0, 1.0, 2.0, 8.0, 6.0, 7.0, 12.0, 11.0}) {
    EXPECT_TRUE(buffer.Push({0, true, t}));
  }
  buffer.Flush();
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].time, out[i].time);
  }
  EXPECT_EQ(buffer.Dropped(), 0u);
}

TEST(EventBufferTest, HoldsBackUndecidedEvents) {
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(10.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  buffer.Push({0, true, 100.0});
  buffer.Push({0, true, 105.0});
  // Nothing is safe yet: newest - lateness = 95 < all held events.
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(buffer.Pending(), 2u);
  buffer.Push({0, true, 120.0});
  // Now events <= 110 are safe.
  EXPECT_EQ(out.size(), 2u);
  buffer.Flush();
  EXPECT_EQ(out.size(), 3u);
}

TEST(EventBufferTest, DropsTooLateEvents) {
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(2.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  buffer.Push({0, true, 10.0});
  buffer.Push({0, true, 20.0});  // Releases t=10, watermark=10.
  EXPECT_DOUBLE_EQ(buffer.Watermark(), 10.0);
  EXPECT_FALSE(buffer.Push({0, true, 5.0}));  // Behind the watermark.
  EXPECT_EQ(buffer.Dropped(), 1u);
  buffer.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0].time, 10.0);
  EXPECT_DOUBLE_EQ(out[1].time, 20.0);
}

TEST(EventBufferTest, ReuseAfterFlushKeepsReleasedHistorySealed) {
  // Regression: Flush() drained the heap without closing the stream epoch,
  // so a reused buffer could accept events behind the released history.
  // After Flush the watermark must sit at the newest admitted event and
  // anything older must be rejected.
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(5.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  for (double t : {10.0, 30.0, 20.0}) {
    EXPECT_TRUE(buffer.Push({0, true, t}));
  }
  buffer.Flush();
  EXPECT_EQ(buffer.Pending(), 0u);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(buffer.Watermark(), 30.0);

  // Stale events from before the flushed epoch are dropped...
  EXPECT_FALSE(buffer.Push({0, true, 25.0}));
  EXPECT_EQ(buffer.Dropped(), 1u);
  // ...while a later segment flows in order across the flush boundary.
  EXPECT_TRUE(buffer.Push({0, true, 40.0}));
  EXPECT_TRUE(buffer.Push({0, true, 35.0}));
  buffer.Flush();
  ASSERT_EQ(out.size(), 5u);
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].time, out[i].time);
  }
  EXPECT_DOUBLE_EQ(buffer.Watermark(), 40.0);

  // A flush on an idle (already drained) buffer is a no-op.
  buffer.Flush();
  EXPECT_EQ(out.size(), 5u);
  EXPECT_DOUBLE_EQ(buffer.Watermark(), 40.0);
}

TEST(EventBufferTest, SuppressesExactDuplicatesWithinWindow) {
  // Regression: retransmitting meshes deliver the same crossing twice; the
  // buffer must release it once and count the copy in Duplicates().
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(5.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  EXPECT_TRUE(buffer.Push({0, true, 1.0}));
  EXPECT_FALSE(buffer.Push({0, true, 1.0}));  // Exact duplicate, buffered.
  // Same timestamp but different edge/direction is NOT a duplicate.
  EXPECT_TRUE(buffer.Push({1, true, 1.0}));
  EXPECT_TRUE(buffer.Push({0, false, 1.0}));
  EXPECT_EQ(buffer.Duplicates(), 1u);
  EXPECT_EQ(buffer.Dropped(), 0u);

  buffer.Push({0, true, 10.0});  // Advances the watermark past t=1.
  buffer.Push({0, true, 20.0});  // Releases t=10.
  buffer.Flush();
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(buffer.Duplicates(), 1u);

  // ...and a duplicate arriving exactly at the post-flush watermark is
  // rejected as a duplicate, not replayed.
  EXPECT_FALSE(buffer.Push({0, true, 20.0}));
  EXPECT_EQ(buffer.Duplicates(), 2u);
  EXPECT_EQ(out.size(), 5u);
}

TEST(EventBufferTest, DuplicateOfReleasedWatermarkEventSuppressed) {
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(2.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  buffer.Push({0, true, 10.0});
  buffer.Push({0, true, 12.0});  // Releases t=10; watermark = 10.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(buffer.Watermark(), 10.0);
  // A duplicate of the released t=10 event passes the lateness gate (time
  // == watermark) but must be recognized as already delivered.
  EXPECT_FALSE(buffer.Push({0, true, 10.0}));
  EXPECT_EQ(buffer.Duplicates(), 1u);
  buffer.Flush();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[1].time, 12.0);
}

TEST(EventBufferTest, EpochCloseBoundaryDeliversExactlyOnce) {
  // Audit pin for the ingest-sink interaction (runtime::IngestPipeline
  // closes epochs with Flush): an event whose timestamp sits EXACTLY on
  // the epoch-close watermark must land in exactly one epoch — buffered
  // copies deliver with the closing epoch, redeliveries across the close
  // are suppressed as duplicates (never dropped as late, never replayed),
  // and a genuinely new event at the boundary instant joins the next epoch
  // once.
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(5.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  // Epoch 1 ends exactly at t=20 with two distinct events at the boundary.
  EXPECT_TRUE(buffer.Push({0, true, 10.0}));
  EXPECT_TRUE(buffer.Push({1, true, 20.0}));
  EXPECT_TRUE(buffer.Push({2, false, 20.0}));
  buffer.Flush();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(buffer.Watermark(), 20.0);

  // Redelivered boundary events pass the lateness gate (time == watermark)
  // but must be recognized as already delivered.
  EXPECT_FALSE(buffer.Push({1, true, 20.0}));
  EXPECT_FALSE(buffer.Push({2, false, 20.0}));
  EXPECT_EQ(buffer.Duplicates(), 2u);
  EXPECT_EQ(buffer.Dropped(), 0u);
  EXPECT_EQ(out.size(), 3u);

  // A NEW event at exactly the boundary instant belongs to epoch 2.
  EXPECT_TRUE(buffer.Push({3, true, 20.0}));
  buffer.Flush();
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out.back().edge, 3u);
  // ...and its own redelivery after the second close is a duplicate too.
  EXPECT_FALSE(buffer.Push({3, true, 20.0}));
  EXPECT_EQ(buffer.Duplicates(), 3u);
  EXPECT_EQ(buffer.Dropped(), 0u);

  // Net effect: every admitted key delivered exactly once.
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = i + 1; j < out.size(); ++j) {
      EXPECT_FALSE(out[i].edge == out[j].edge &&
                   out[i].forward == out[j].forward &&
                   out[i].time == out[j].time)
          << "event delivered twice at i=" << i << " j=" << j;
    }
  }
}

TEST(EventBufferTest, ZeroLatenessIsPassThrough) {
  std::vector<CrossingEvent> out;
  EventReorderBuffer buffer(0.0, [&](const CrossingEvent& e) {
    out.push_back(e);
  });
  buffer.Push({0, true, 1.0});
  buffer.Push({0, true, 2.0});
  EXPECT_EQ(out.size(), 2u);
}

// Integration: a live monitor fed through a reorder buffer over a shuffled
// event stream matches the batch count, as long as the shuffle respects the
// lateness bound.
TEST(EventBufferTest, LiveMonitorOverShuffledStream) {
  FrameworkOptions options;
  options.road.num_junctions = 200;
  options.traffic.num_trajectories = 250;
  options.seed = 17;
  Framework framework(options);
  const SensorNetwork& net = framework.network();

  WorkloadOptions wo;
  wo.area_fraction = 0.12;
  wo.horizon = framework.Horizon();
  util::Rng rng = framework.ForkRng();
  std::vector<RangeQuery> queries = GenerateWorkload(net, wo, 3, rng);

  // Perturb delivery order: each event delayed by up to 30 s.
  struct Delayed {
    CrossingEvent event;
    double arrival;
  };
  std::vector<Delayed> deliveries;
  deliveries.reserve(net.events().size());
  util::Rng jitter = framework.ForkRng();
  for (const CrossingEvent& event : net.events()) {
    deliveries.push_back({event, event.time + jitter.Uniform(0.0, 30.0)});
  }
  std::sort(deliveries.begin(), deliveries.end(),
            [](const Delayed& a, const Delayed& b) {
              return a.arrival < b.arrival;
            });

  for (const RangeQuery& q : queries) {
    LiveRegionMonitor monitor(net, q.junctions);
    EventReorderBuffer buffer(
        30.0, [&](const CrossingEvent& e) { monitor.OnEvent(e); });
    for (const Delayed& d : deliveries) {
      EXPECT_TRUE(buffer.Push(d.event));
    }
    buffer.Flush();
    EXPECT_EQ(buffer.Dropped(), 0u);
    EXPECT_DOUBLE_EQ(static_cast<double>(monitor.CurrentCount()),
                     net.GroundTruthStatic(q.junctions, 1e18));
  }
}

}  // namespace
}  // namespace innet::core
