// EXPLAIN provenance and online accuracy monitoring (ISSUE: observability).
//
// Pins three contracts:
//   (a) explain output is deterministic — byte-identical JSON across runs
//       and between the serial and 8-worker engines, cache-cold and -warm;
//   (b) the shadow accuracy monitor measures exactly the offline relative
//       error (the bench/fig12_static_error computation) to 1e-9;
//   (c) the drift detector fires on a regime-shifted event stream fed to a
//       PolynomialModel and stays silent on a stationary one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/query_processor.h"
#include "core/workload.h"
#include "learned/polynomial_model.h"
#include "obs/accuracy.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "runtime/batch_query_engine.h"
#include "sampling/samplers.h"
#include "util/stats.h"

namespace innet {
namespace {

using core::BoundMode;
using core::CountKind;
using core::RangeQuery;

core::FrameworkOptions SmallOptions(uint64_t seed) {
  core::FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 400;
  options.seed = seed;
  return options;
}

class ExplainFixture : public ::testing::Test {
 protected:
  ExplainFixture() : framework_(SmallOptions(17)) {
    core::WorkloadOptions wo;
    wo.area_fraction = 0.08;
    wo.horizon = framework_.Horizon();
    util::Rng rng = framework_.ForkRng();
    // Distinct regions only: a cold pass then misses the cache on every
    // query and a warm pass hits on every query, in any engine — keeping
    // even the cache_hit flag deterministic under 8 workers. (Intra-batch
    // duplicates would race two concurrent misses for the same key.)
    queries_ = GenerateWorkload(framework_.network(), wo, 30, rng);

    sampling::KdTreeSampler sampler;
    util::Rng drng = framework_.ForkRng();
    deployment_ = std::make_unique<core::Deployment>(
        framework_.DeployWithSampler(sampler,
                                     framework_.network().NumSensors() / 4,
                                     core::DeploymentOptions{}, drng));
  }

  std::vector<std::string> ExplainJson(runtime::BatchQueryEngine& engine,
                                       CountKind kind, BoundMode bound) {
    std::vector<obs::ExplainRecord> explains;
    engine.AnswerBatchExplained(queries_, kind, bound, &explains);
    std::vector<std::string> json;
    json.reserve(explains.size());
    for (const obs::ExplainRecord& record : explains) {
      json.push_back(record.ToJson());
    }
    return json;
  }

  core::Framework framework_;
  std::vector<RangeQuery> queries_;
  std::unique_ptr<core::Deployment> deployment_;
};

// (a) Same batch, serial vs 8 workers, cold vs warm: identical JSON.
TEST_F(ExplainFixture, ExplainDeterministicAcrossEnginesAndCache) {
  runtime::BatchEngineOptions serial_options;
  serial_options.num_threads = 0;
  runtime::BatchEngineOptions parallel_options;
  parallel_options.num_threads = 8;
  runtime::BatchQueryEngine serial(deployment_->graph(), deployment_->store(),
                                   serial_options);
  runtime::BatchQueryEngine parallel(deployment_->graph(),
                                     deployment_->store(), parallel_options);

  for (BoundMode bound : {BoundMode::kLower, BoundMode::kUpper}) {
    std::vector<std::string> cold =
        ExplainJson(serial, CountKind::kStatic, bound);
    std::vector<std::string> warm =
        ExplainJson(serial, CountKind::kStatic, bound);
    std::vector<std::string> par_cold =
        ExplainJson(parallel, CountKind::kStatic, bound);
    std::vector<std::string> par_warm =
        ExplainJson(parallel, CountKind::kStatic, bound);
    ASSERT_EQ(cold.size(), queries_.size());
    for (size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(par_cold[i], cold[i]) << "query " << i << " (cold)";
      EXPECT_EQ(par_warm[i], warm[i]) << "query " << i << " (warm)";
    }
  }
}

// A warm hit must explain identically to the fresh resolution except for
// the cache_hit flag itself.
TEST_F(ExplainFixture, CacheHitExplainsLikeFreshResolution) {
  runtime::BatchEngineOptions options;
  options.num_threads = 0;
  runtime::BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                                   options);
  std::vector<obs::ExplainRecord> cold;
  std::vector<obs::ExplainRecord> warm;
  engine.AnswerBatchExplained(queries_, CountKind::kStatic, BoundMode::kLower,
                              &cold);
  engine.AnswerBatchExplained(queries_, CountKind::kStatic, BoundMode::kLower,
                              &warm);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    EXPECT_TRUE(warm[i].cache_hit) << "query " << i;
    warm[i].cache_hit = cold[i].cache_hit;
    EXPECT_EQ(warm[i].ToJson(), cold[i].ToJson()) << "query " << i;
  }
}

// Explain fields are internally consistent with the deployment.
TEST_F(ExplainFixture, ExplainFieldsMatchDeployment) {
  runtime::BatchEngineOptions options;
  runtime::BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                                   options);
  std::vector<obs::ExplainRecord> explains;
  std::vector<core::QueryAnswer> answers = engine.AnswerBatchExplained(
      queries_, CountKind::kStatic, BoundMode::kLower, &explains);
  const core::SampledGraph& sampled = deployment_->graph();
  for (size_t i = 0; i < explains.size(); ++i) {
    const obs::ExplainRecord& e = explains[i];
    EXPECT_EQ(e.kind, "static");
    EXPECT_EQ(e.bound, "lower");
    EXPECT_EQ(e.region_cells, queries_[i].junctions.size());
    EXPECT_EQ(e.missed, answers[i].missed);
    EXPECT_DOUBLE_EQ(e.answer, answers[i].estimate);
    EXPECT_EQ(e.boundary_edges, answers[i].edges_accessed);
    EXPECT_TRUE(std::is_sorted(e.faces.begin(), e.faces.end()));
    size_t cells = 0;
    for (uint32_t face : e.faces) {
      ASSERT_LT(face, sampled.NumFaces());
      cells += sampled.FaceSize(face);
    }
    EXPECT_EQ(e.resolved_cells, cells);
    // Lower-bound resolutions cover a subset of the region.
    EXPECT_LE(e.resolved_cells, e.region_cells);
    if (e.region_cells > 0) {
      EXPECT_NEAR(e.deadspace_fraction,
                  static_cast<double>(e.region_cells - e.resolved_cells) /
                      static_cast<double>(e.region_cells),
                  1e-12);
    }
    EXPECT_EQ(e.store, "exact");
  }
}

// (b) Shadowing every query must reproduce the offline error computation
// (UnsampledQueryProcessor reference + util::RelativeError, the
// bench/fig12_static_error formula) exactly.
TEST_F(ExplainFixture, ShadowErrorMatchesOfflineComputation) {
  obs::MetricsRegistry registry;
  obs::AccuracyMonitorOptions monitor_options;
  monitor_options.shadow_every = 1;  // Shadow everything.
  monitor_options.total_cells = framework_.network().mobility().NumNodes();
  monitor_options.registry = &registry;
  obs::AccuracyMonitor monitor(monitor_options);

  runtime::BatchEngineOptions options;
  options.num_threads = 4;
  options.accuracy = &monitor;
  runtime::BatchQueryEngine engine(deployment_->graph(), deployment_->store(),
                                   options);
  std::vector<core::QueryAnswer> approx =
      engine.AnswerBatch(queries_, CountKind::kStatic, BoundMode::kLower);
  engine.FlushShadow();
  ASSERT_EQ(monitor.Comparisons(), queries_.size());

  core::UnsampledQueryProcessor exact(framework_.network());
  double abs_sum = 0.0;
  double signed_sum = 0.0;
  for (size_t i = 0; i < queries_.size(); ++i) {
    double truth =
        exact.Answer(queries_[i], CountKind::kStatic).estimate;
    abs_sum += util::RelativeError(truth, approx[i].estimate);
    signed_sum +=
        obs::AccuracyMonitor::SignedRelativeError(truth, approx[i].estimate);
  }
  double n = static_cast<double>(queries_.size());
  EXPECT_NEAR(monitor.MeanAbsRelError(), abs_sum / n, 1e-9);
  EXPECT_NEAR(monitor.MeanSignedRelError(), signed_sum / n, 1e-9);
}

// Signed error conventions pinned (magnitude == util::RelativeError).
TEST(AccuracyMonitorTest, SignedRelativeErrorConventions) {
  EXPECT_DOUBLE_EQ(obs::AccuracyMonitor::SignedRelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::AccuracyMonitor::SignedRelativeError(0.0, 3.0), 1.0);
  EXPECT_DOUBLE_EQ(obs::AccuracyMonitor::SignedRelativeError(0.0, -3.0),
                   -1.0);
  EXPECT_DOUBLE_EQ(obs::AccuracyMonitor::SignedRelativeError(10.0, 8.0),
                   -0.2);
  EXPECT_DOUBLE_EQ(obs::AccuracyMonitor::SignedRelativeError(10.0, 12.0),
                   0.2);
  for (double exact : {0.0, 4.0, 25.0}) {
    for (double approx : {0.0, 3.0, 40.0}) {
      EXPECT_DOUBLE_EQ(
          std::abs(obs::AccuracyMonitor::SignedRelativeError(exact, approx)),
          util::RelativeError(exact, approx));
    }
  }
}

// (c) Drift detection: a stationary stream keeps the alarm silent, a
// regime shift (sudden 100x rate burst) fires it.
TEST(DriftDetectorTest, FiresOnRegimeShiftSilentOnStationary) {
  auto run_stream = [](const std::vector<double>& times,
                       obs::MetricsRegistry* registry) {
    learned::PolynomialModel model(/*degree=*/1, /*time_scale=*/1000.0);
    obs::DriftDetectorOptions options;
    options.window = 32;
    options.min_observations = 32;
    options.threshold = 0.1;
    options.registry = registry;
    auto detector = std::make_unique<obs::DriftDetector>(options);
    // Per the DriftDetector protocol: predict at the new event's time
    // BEFORE folding it in, audited against the count of PRIOR events (the
    // arriving event is information the model cannot have had).
    double observed = 0.0;
    for (double t : times) {
      double predicted = model.Predict(t);
      detector->Observe(predicted, observed);
      observed += 1.0;
      model.Observe(t);
    }
    return detector;
  };

  // Stationary: one event per tick, a linear CDF the model nails.
  std::vector<double> stationary;
  for (int i = 0; i < 400; ++i) stationary.push_back(static_cast<double>(i));
  obs::MetricsRegistry stationary_registry;
  auto quiet = run_stream(stationary, &stationary_registry);
  EXPECT_FALSE(quiet->Fired())
      << "rolling residual " << quiet->RollingResidual();

  // Regime shift: same head, then 300 events arriving 100x faster.
  std::vector<double> shifted = stationary;
  double t = shifted.back();
  for (int i = 0; i < 300; ++i) {
    t += 0.01;
    shifted.push_back(t);
  }
  obs::MetricsRegistry shifted_registry;
  auto loud = run_stream(shifted, &shifted_registry);
  EXPECT_TRUE(loud->Fired())
      << "rolling residual " << loud->RollingResidual();
  EXPECT_EQ(
      shifted_registry.GetGauge("innet_model_drift_alarm", "").Value() != 0.0,
      loud->Alarmed());
}

}  // namespace
}  // namespace innet
