#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace innet::obs {
namespace {

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// The TSan CI job runs this binary: 8 writer threads hammer one counter
// through the sharded cells and the merged value must be exact once they
// join.
TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter("test_counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);

  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge gauge("test_gauge");
  gauge.Set(3.5);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.5);
  gauge.Reset();

  // Integer-valued adds are exactly representable, so the CAS loop must
  // lose no update.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, ConcurrentObservationsCountExactly) {
  Histogram histogram("test_latency", Histogram::LatencyBoundsMicros());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<double>(t * kPerThread + i) * 0.01);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, PercentileErrorWithinOneBucketWidth) {
  // Linear buckets of width 10 over [0, 100]; observations 0.5, 1.5, ...
  // 999.5 scaled into [0, 100) uniformly. The interpolated quantile must
  // land within one bucket width of the exact empirical quantile.
  std::vector<double> bounds;
  for (int i = 1; i <= 10; ++i) bounds.push_back(10.0 * i);
  constexpr double kBucketWidth = 10.0;
  Histogram histogram("test_uniform", bounds);
  constexpr int kSamples = 1000;
  std::vector<double> values;
  values.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    double v = (i + 0.5) * 100.0 / kSamples;
    values.push_back(v);
    histogram.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    double exact = values[static_cast<size_t>(q * (kSamples - 1))];
    double approx = histogram.Percentile(q);
    EXPECT_NEAR(approx, exact, kBucketWidth)
        << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
  double expected_sum = 0.0;
  for (double v : values) expected_sum += v;
  EXPECT_NEAR(histogram.Sum(), expected_sum, 1e-6);
}

TEST(HistogramTest, OverflowLandsInInfBucket) {
  Histogram histogram("test_inf", {1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(100.0);  // Beyond the last finite bound.
  std::vector<uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  // A quantile landing in the +Inf overflow bucket has no finite upper
  // bound; reporting the last finite bound would understate tail latency,
  // so the estimate is honest: infinity.
  EXPECT_TRUE(std::isinf(histogram.Percentile(1.0)));
  EXPECT_GT(histogram.Percentile(1.0), 0.0);
  // Quantiles inside finite buckets still interpolate.
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.3), 0.9);
  EXPECT_EQ(Histogram("empty", {1.0}).Percentile(0.5), 0.0);
}

TEST(HistogramTest, PercentileFromBucketCountsFreeFunction) {
  std::vector<double> bounds = {1.0, 2.0};
  // counts has bounds.size() + 1 entries; the last is the overflow bucket.
  EXPECT_DOUBLE_EQ(PercentileFromBucketCounts(bounds, {4, 0, 0}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(PercentileFromBucketCounts(bounds, {0, 4, 0}, 0.5), 1.5);
  EXPECT_TRUE(
      std::isinf(PercentileFromBucketCounts(bounds, {0, 0, 4}, 0.5)));
  EXPECT_TRUE(std::isinf(PercentileFromBucketCounts(bounds, {2, 1, 1}, 1.0)));
  // Empty distribution degrades to zero rather than NaN.
  EXPECT_DOUBLE_EQ(PercentileFromBucketCounts(bounds, {0, 0, 0}, 0.99), 0.0);
}

TEST(RegistryTest, DedupsByNameAndListsInOrder) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("zeta", "last");
  Counter& b = registry.GetCounter("alpha", "first");
  Counter& a_again = registry.GetCounter("zeta");
  EXPECT_EQ(&a, &a_again);
  a.Increment(3);
  b.Increment(1);

  std::vector<const Counter*> counters = registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0]->name(), "alpha");
  EXPECT_EQ(counters[1]->name(), "zeta");

  registry.GetGauge("g").Set(4.0);
  registry.GetHistogram("h", {1.0, 2.0}).Observe(1.5);
  registry.ResetAll();
  EXPECT_EQ(a.Value(), 0u);
  EXPECT_DOUBLE_EQ(registry.GetGauge("g").Value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("h", {1.0, 2.0}).Count(), 0u);
}

TEST(TraceTest, NestedAndOverlappingSpansRecordDepth) {
  QueryTrace trace(42);
  {
    Span outer(&trace, "outer");
    { Span inner(&trace, "inner"); }
    { Span inner2(&trace, "inner2"); }
  }
  { Span after(&trace, "after"); }
  trace.Annotate("estimate", 12.5);

  const std::vector<TraceStage>& stages = trace.stages();
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].name, "outer");
  EXPECT_EQ(stages[0].depth, 0);
  EXPECT_EQ(stages[1].name, "inner");
  EXPECT_EQ(stages[1].depth, 1);
  EXPECT_EQ(stages[2].name, "inner2");
  EXPECT_EQ(stages[2].depth, 1);
  EXPECT_EQ(stages[3].name, "after");
  EXPECT_EQ(stages[3].depth, 0);

  // Children start no earlier than the parent and end within it (span
  // bookkeeping, not wall-clock flakiness: these are offsets of the same
  // monotonic clock).
  double outer_end = stages[0].start_micros + stages[0].elapsed_micros;
  for (size_t i = 1; i <= 2; ++i) {
    EXPECT_GE(stages[i].start_micros, stages[0].start_micros);
    EXPECT_LE(stages[i].start_micros + stages[i].elapsed_micros,
              outer_end + 1e-9);
  }
  EXPECT_GE(stages[3].start_micros, outer_end - 1e-9);
  EXPECT_GE(trace.TotalMicros(),
            stages[3].start_micros + stages[3].elapsed_micros - 1e-9);

  ASSERT_EQ(trace.annotations().size(), 1u);
  EXPECT_EQ(trace.annotations()[0].first, "estimate");

  // Null-trace spans are no-ops.
  Span null_span(nullptr, "ignored");
}

TEST(TracerTest, SamplingKnobAndRingEviction) {
  TracerOptions options;
  options.sample_every = 3;
  options.ring_capacity = 2;
  Tracer tracer(options);
  std::vector<uint64_t> sampled_ids;
  for (int i = 0; i < 10; ++i) {
    std::unique_ptr<QueryTrace> trace = tracer.StartQuery();
    if (trace != nullptr) sampled_ids.push_back(trace->id());
    tracer.Finish(std::move(trace));  // Null-safe.
  }
  EXPECT_EQ(tracer.Started(), 10u);
  EXPECT_EQ(tracer.Sampled(), 4u);  // Queries 0, 3, 6, 9.
  ASSERT_EQ(sampled_ids.size(), 4u);

  // The ring keeps only the newest two finished traces.
  std::vector<std::unique_ptr<QueryTrace>> drained = tracer.Drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0]->id(), sampled_ids[2]);
  EXPECT_EQ(drained[1]->id(), sampled_ids[3]);
  EXPECT_TRUE(tracer.Drain().empty());

  // sample_every = 0 disables tracing entirely.
  TracerOptions off;
  off.sample_every = 0;
  Tracer disabled(off);
  EXPECT_EQ(disabled.StartQuery(), nullptr);
  EXPECT_EQ(disabled.Sampled(), 0u);
}

TEST(ExportTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total", "Total requests").Increment(42);
  registry.GetGauge("sensors_dead").Set(3.0);
  Histogram& histogram = registry.GetHistogram("lat", {1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  histogram.Observe(9.0);

  std::ostringstream out;
  WritePrometheus(registry, out);
  std::string text = out.str();
  EXPECT_NE(text.find("# HELP requests_total Total requests\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sensors_dead gauge\n"), std::string::npos);
  EXPECT_NE(text.find("sensors_dead 3\n"), std::string::npos);
  // Histogram buckets are cumulative and close with +Inf == _count.
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 11\n"), std::string::npos);
}

TEST(ExportTest, MetricsAndTracesJsonLines) {
  MetricsRegistry registry;
  registry.GetCounter("c").Increment(5);
  registry.GetHistogram("h", {1.0}).Observe(0.5);
  std::ostringstream metrics_out;
  WriteMetricsJsonLines(registry, metrics_out);
  std::istringstream metrics_in(metrics_out.str());
  std::string line;
  size_t lines = 0;
  while (std::getline(metrics_in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(metrics_out.str().find(
                "{\"type\":\"counter\",\"name\":\"c\",\"value\":5}"),
            std::string::npos);

  std::vector<std::unique_ptr<QueryTrace>> traces;
  traces.push_back(std::make_unique<QueryTrace>(7));
  { Span span(traces.back().get(), "stage_a"); }
  traces.back()->Annotate("cache_hit", 1.0);
  std::ostringstream traces_out;
  WriteTracesJsonLines(traces, traces_out);
  std::string trace_line = traces_out.str();
  EXPECT_NE(trace_line.find("{\"query\":7,\"total_micros\":"),
            std::string::npos);
  EXPECT_NE(trace_line.find("\"name\":\"stage_a\""), std::string::npos);
  EXPECT_NE(trace_line.find("\"cache_hit\":1"), std::string::npos);
}

TEST(ExportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ExportTest, PrometheusNameSanitization) {
  // Valid characters pass through untouched.
  EXPECT_EQ(PrometheusSanitizeName("innet_queries_answered"),
            "innet_queries_answered");
  EXPECT_EQ(PrometheusSanitizeName("a:b_C9"), "a:b_C9");
  // Reserved / invalid characters collapse to underscores.
  EXPECT_EQ(PrometheusSanitizeName("innet.queries-answered/total"),
            "innet_queries_answered_total");
  EXPECT_EQ(PrometheusSanitizeName("rate (1/s)"), "rate__1_s_");
  // A leading digit (or empty name) gains an underscore prefix.
  EXPECT_EQ(PrometheusSanitizeName("5xx_responses"), "_5xx_responses");
  EXPECT_EQ(PrometheusSanitizeName(""), "_");
}

TEST(ExportTest, PrometheusLabelAndHelpEscaping) {
  EXPECT_EQ(PrometheusEscapeLabel("plain"), "plain");
  EXPECT_EQ(PrometheusEscapeLabel("a\"b"), "a\\\"b");
  EXPECT_EQ(PrometheusEscapeLabel("back\\slash"), "back\\\\slash");
  EXPECT_EQ(PrometheusEscapeLabel("two\nlines"), "two\\nlines");
  // HELP text escapes backslash and newline, but NOT quotes (it is not a
  // quoted position in the exposition format).
  EXPECT_EQ(PrometheusEscapeHelp("a\\b\nc\"d"), "a\\\\b\\nc\"d");
}

TEST(ExportTest, PrometheusCounterWithReservedCharactersExports) {
  MetricsRegistry registry;
  registry.GetCounter("innet.queries-answered/total", "Total, with \"stuff\"\nand newline")
      .Increment(7);
  std::ostringstream out;
  WritePrometheus(registry, out);
  std::string text = out.str();
  // Name sanitized everywhere it appears; help escaped onto one line.
  EXPECT_NE(text.find("# TYPE innet_queries_answered_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("innet_queries_answered_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("# HELP innet_queries_answered_total Total, with "
                      "\"stuff\"\\nand newline\n"),
            std::string::npos);
  EXPECT_EQ(text.find("innet.queries"), std::string::npos);
}

TEST(ExportTest, PrometheusEmptyHistogramExposition) {
  MetricsRegistry registry;
  registry.GetHistogram("empty_hist", {1.0, 10.0}, "No samples yet");
  std::ostringstream out;
  WritePrometheus(registry, out);
  std::string text = out.str();
  // An observation-free histogram still exposes the full bucket chain with
  // zero counts and a zero sum — scrapers must see a consistent series.
  EXPECT_NE(text.find("# TYPE empty_hist histogram\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_bucket{le=\"1\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_bucket{le=\"10\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("empty_hist_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("empty_hist_sum 0\n"), std::string::npos);
  EXPECT_NE(text.find("empty_hist_count 0\n"), std::string::npos);
}

// Captures emitted log records for assertions.
struct CapturedLog {
  static std::vector<std::string>& Lines() {
    static std::vector<std::string> lines;
    return lines;
  }
  static void Sink(LogLevel level, const char* /*file*/, int /*line*/,
                   const std::string& message) {
    Lines().push_back(std::string(LogLevelName(level)) + ":" + message);
  }
};

TEST(LoggingTest, LevelsFilterAndSinkReceivesPayload) {
  CapturedLog::Lines().clear();
  SetLogSink(&CapturedLog::Sink);
  LogLevel saved = MinLogLevel();

  SetMinLogLevel(LogLevel::kWarn);
  EXPECT_FALSE(LogLevelEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogLevelEnabled(LogLevel::kError));
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return "x";
  };
  INNET_LOG(INFO) << "dropped " << touch();
  INNET_LOG(WARN) << "kept " << touch();
  INNET_LOG(ERROR) << "error " << 42;

  // Disabled levels must not evaluate their streamed operands.
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(CapturedLog::Lines().size(), 2u);
  EXPECT_EQ(CapturedLog::Lines()[0], "WARN:kept x");
  EXPECT_EQ(CapturedLog::Lines()[1], "ERROR:error 42");

  SetMinLogLevel(saved);
  SetLogSink(nullptr);
}

TEST(RegistryTest, DuplicateRegistrationHelpConflictWarnsOnce) {
  CapturedLog::Lines().clear();
  SetLogSink(&CapturedLog::Sink);

  MetricsRegistry registry;
  Counter& first = registry.GetCounter("dup_total", "original help");
  // Same help (or no help) is not a conflict.
  registry.GetCounter("dup_total", "original help");
  registry.GetCounter("dup_total");
  EXPECT_TRUE(CapturedLog::Lines().empty());

  // A different help string warns — once — and keeps the first text.
  Counter& again = registry.GetCounter("dup_total", "conflicting help");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.help(), "original help");
  ASSERT_EQ(CapturedLog::Lines().size(), 1u);
  const std::string& line = CapturedLog::Lines()[0];
  EXPECT_NE(line.find("WARN:"), std::string::npos);
  EXPECT_NE(line.find("dup_total"), std::string::npos);
  EXPECT_NE(line.find("original help"), std::string::npos);
  EXPECT_NE(line.find("conflicting help"), std::string::npos);

  // Further conflicts on the same name stay silent; the warn is one-time.
  registry.GetCounter("dup_total", "third help");
  registry.GetCounter("dup_total", "fourth help");
  EXPECT_EQ(CapturedLog::Lines().size(), 1u);

  // Gauges and histograms get the same treatment.
  registry.GetGauge("dup_gauge", "a");
  registry.GetGauge("dup_gauge", "b");
  registry.GetHistogram("dup_hist", {1.0}, "a");
  registry.GetHistogram("dup_hist", {1.0}, "b");
  EXPECT_EQ(CapturedLog::Lines().size(), 3u);

  SetLogSink(nullptr);
}

TEST(RegistryTest, LabeledGaugeVariantsAreDistinct) {
  MetricsRegistry registry;
  Gauge& a = registry.GetGaugeWithLabels("info", "kind=\"a\"", "i");
  Gauge& b = registry.GetGaugeWithLabels("info", "kind=\"b\"", "i");
  Gauge& plain = registry.GetGaugeWithLabels("info", "", "i");
  EXPECT_NE(&a, &b);
  EXPECT_NE(&a, &plain);
  EXPECT_EQ(&a, &registry.GetGaugeWithLabels("info", "kind=\"a\""));
  EXPECT_EQ(&plain, &registry.GetGauge("info"));
  EXPECT_EQ(a.name(), "info");
  EXPECT_EQ(a.labels(), "kind=\"a\"");
  a.Set(1.0);
  b.Set(2.0);
  plain.Set(3.0);

  std::ostringstream out;
  WritePrometheus(registry, out);
  std::string text = out.str();
  // One HELP/TYPE header for the family, one sample per label set.
  EXPECT_EQ(CountOccurrences(text, "# TYPE info gauge\n"), 1u);
  EXPECT_EQ(CountOccurrences(text, "# HELP info i\n"), 1u);
  EXPECT_NE(text.find("info{kind=\"a\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("info{kind=\"b\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("info 3\n"), std::string::npos);
}

TEST(BuildInfoTest, RegistersLabeledGaugeAndUptime) {
  MetricsRegistry registry;
  Gauge& uptime = RegisterBuildInfo(registry);
  EXPECT_EQ(uptime.name(), "innet_uptime_seconds");
  // Idempotent: re-registering returns the same uptime gauge.
  EXPECT_EQ(&uptime, &RegisterBuildInfo(registry));

  std::ostringstream out;
  WritePrometheus(registry, out);
  std::string text = out.str();
  EXPECT_NE(text.find("innet_build_info{version=\""), std::string::npos);
  EXPECT_NE(text.find("git_sha=\""), std::string::npos);
  EXPECT_NE(text.find("compiler=\""), std::string::npos);
  EXPECT_NE(text.find("} 1\n"), std::string::npos);
  EXPECT_NE(text.find("innet_uptime_seconds"), std::string::npos);
  EXPECT_NE(BuildVersion()[0], '\0');
  EXPECT_NE(BuildGitSha()[0], '\0');
  EXPECT_NE(BuildCompiler()[0], '\0');
  EXPECT_GE(UptimeSeconds(), 0.0);
}

}  // namespace
}  // namespace innet::obs
