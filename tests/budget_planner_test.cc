#include <gtest/gtest.h>

#include "core/budget_planner.h"
#include "core/workload.h"
#include "sampling/samplers.h"

namespace innet::core {
namespace {

FrameworkOptions MidOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 400;
  options.traffic.num_trajectories = 700;
  options.seed = seed;
  return options;
}

class PlannerFixture : public ::testing::Test {
 protected:
  PlannerFixture() : framework_(MidOptions(61)) {
    WorkloadOptions wo;
    wo.area_fraction = 0.08;
    wo.horizon = framework_.Horizon();
    util::Rng rng = framework_.ForkRng();
    queries_ = GenerateWorkload(framework_.network(), wo, 20, rng);
  }
  Framework framework_;
  std::vector<RangeQuery> queries_;
};

TEST_F(PlannerFixture, RecommendedBudgetMeetsTarget) {
  sampling::KdTreeSampler sampler;
  BudgetPlanOptions options;
  options.target_error = 0.35;
  BudgetPlan plan = PlanBudget(framework_, sampler, queries_, options);
  ASSERT_TRUE(plan.feasible);
  EXPECT_GT(plan.recommended_budget, 0u);
  EXPECT_LE(plan.achieved_error, options.target_error);
  // Verification probe: re-measuring at the recommended budget reproduces
  // the achieved error (deterministic seeds).
  double check = MeasureMedianError(framework_, sampler,
                                    plan.recommended_budget, queries_,
                                    options.deployment, options.reps);
  EXPECT_DOUBLE_EQ(check, plan.achieved_error);
}

TEST_F(PlannerFixture, TighterTargetNeedsMoreSensors) {
  sampling::QuadTreeSampler sampler;
  BudgetPlanOptions loose;
  loose.target_error = 0.5;
  BudgetPlanOptions tight;
  tight.target_error = 0.2;
  BudgetPlan loose_plan = PlanBudget(framework_, sampler, queries_, loose);
  BudgetPlan tight_plan = PlanBudget(framework_, sampler, queries_, tight);
  ASSERT_TRUE(loose_plan.feasible);
  if (tight_plan.feasible) {
    EXPECT_GE(tight_plan.recommended_budget, loose_plan.recommended_budget);
  }
}

TEST_F(PlannerFixture, ImpossibleTargetReportsInfeasible) {
  sampling::UniformSampler sampler;
  BudgetPlanOptions options;
  options.target_error = 0.0;  // Exactness is unreachable via sampling here.
  options.max_budget = framework_.network().NumSensors() / 20;
  BudgetPlan plan = PlanBudget(framework_, sampler, queries_, options);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.recommended_budget, 0u);
  EXPECT_GT(plan.achieved_error, 0.0);
  EXPECT_FALSE(plan.probes.empty());
}

TEST_F(PlannerFixture, TrivialTargetReturnsMinBudget) {
  sampling::KdTreeSampler sampler;
  BudgetPlanOptions options;
  options.target_error = 1.0;  // Always satisfiable.
  options.min_budget = 6;
  BudgetPlan plan = PlanBudget(framework_, sampler, queries_, options);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.recommended_budget, 6u);
  EXPECT_EQ(plan.probes.size(), 1u);
}

TEST_F(PlannerFixture, ProbeCountLogarithmic) {
  sampling::KdTreeSampler sampler;
  BudgetPlanOptions options;
  options.target_error = 0.3;
  BudgetPlan plan = PlanBudget(framework_, sampler, queries_, options);
  // Exponential + binary search: well under 2 * log2(sensors) probes.
  EXPECT_LE(plan.probes.size(), 2 * 10u);
}

}  // namespace
}  // namespace innet::core
