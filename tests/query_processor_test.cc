#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/framework.h"
#include "core/workload.h"
#include "mobility/trajectory.h"
#include "sampling/samplers.h"
#include "util/stats.h"

namespace innet::core {
namespace {

FrameworkOptions SmallOptions(uint64_t seed) {
  FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 400;
  options.seed = seed;
  return options;
}

class QueryProcessorFixture : public ::testing::Test {
 protected:
  QueryProcessorFixture() : framework_(SmallOptions(3)) {
    WorkloadOptions wo;
    wo.area_fraction = 0.06;
    wo.horizon = framework_.Horizon();
    util::Rng rng = framework_.ForkRng();
    queries_ = GenerateWorkload(framework_.network(), wo, 25, rng);
  }
  Framework framework_;
  std::vector<RangeQuery> queries_;
};

TEST_F(QueryProcessorFixture, UnsampledMatchesGroundTruthAndOracle) {
  const SensorNetwork& net = framework_.network();
  UnsampledQueryProcessor processor(net);
  mobility::OccupancyOracle oracle(net.mobility(), framework_.trajectories(),
                                   &net.gateway_mask());
  ASSERT_FALSE(queries_.empty());
  for (const RangeQuery& q : queries_) {
    QueryAnswer st = processor.Answer(q, CountKind::kStatic);
    double truth = net.GroundTruthStatic(q.junctions, q.t2);
    EXPECT_DOUBLE_EQ(st.estimate, truth);
    // And both equal the per-object oracle.
    std::vector<bool> mask = net.JunctionMask(q.junctions);
    EXPECT_DOUBLE_EQ(truth,
                     static_cast<double>(oracle.OccupancyAt(mask, q.t2)));

    QueryAnswer tr = processor.Answer(q, CountKind::kTransient);
    EXPECT_DOUBLE_EQ(tr.estimate,
                     static_cast<double>(oracle.NetChange(mask, q.t1, q.t2)));
    EXPECT_FALSE(st.missed);
    EXPECT_GT(st.nodes_accessed, 0u);
    EXPECT_GT(st.edges_accessed, 0u);
  }
}

TEST_F(QueryProcessorFixture, FullyMonitoredSampledGraphIsExact) {
  // Monitoring every edge makes the sampled processor exact: each junction
  // is its own face, so lower and upper regions coincide with Q_R.
  const SensorNetwork& net = framework_.network();
  std::vector<graph::EdgeId> all;
  for (graph::EdgeId e = 0; e < net.mobility().NumEdges(); ++e) {
    all.push_back(e);
  }
  SampledGraph graph = SampledGraph::FromMonitoredEdges(net, all, {});
  Deployment dep(net, std::move(graph), DeploymentOptions{},
                 framework_.Horizon());
  SampledQueryProcessor processor = dep.processor();
  for (const RangeQuery& q : queries_) {
    double truth = net.GroundTruthStatic(q.junctions, q.t2);
    QueryAnswer lower = processor.Answer(q, CountKind::kStatic,
                                         BoundMode::kLower);
    QueryAnswer upper = processor.Answer(q, CountKind::kStatic,
                                         BoundMode::kUpper);
    EXPECT_DOUBLE_EQ(lower.estimate, truth);
    EXPECT_DOUBLE_EQ(upper.estimate, truth);
  }
}

TEST_F(QueryProcessorFixture, BoundsBracketTruthForStaticCounts) {
  const SensorNetwork& net = framework_.network();
  sampling::QuadTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, net.NumSensors() / 4, DeploymentOptions{}, rng);
  SampledQueryProcessor processor = dep.processor();
  for (const RangeQuery& q : queries_) {
    double truth = net.GroundTruthStatic(q.junctions, q.t2);
    QueryAnswer lower =
        processor.Answer(q, CountKind::kStatic, BoundMode::kLower);
    QueryAnswer upper =
        processor.Answer(q, CountKind::kStatic, BoundMode::kUpper);
    EXPECT_LE(lower.estimate, truth + 1e-9);
    EXPECT_GE(upper.estimate, truth - 1e-9);
    EXPECT_FALSE(upper.missed);  // Upper bound always finds a face.
  }
}

TEST_F(QueryProcessorFixture, MissReportsZeroEstimate) {
  // A tiny sensor budget produces giant faces; small queries then miss.
  sampling::UniformSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep =
      framework_.DeployWithSampler(sampler, 2, DeploymentOptions{}, rng);
  SampledQueryProcessor processor = dep.processor();
  size_t missed = 0;
  for (const RangeQuery& q : queries_) {
    QueryAnswer lower =
        processor.Answer(q, CountKind::kStatic, BoundMode::kLower);
    if (lower.missed) {
      ++missed;
      EXPECT_DOUBLE_EQ(lower.estimate, 0.0);
      EXPECT_EQ(lower.nodes_accessed, 0u);
    }
  }
  EXPECT_GT(missed, queries_.size() / 2);
}

TEST_F(QueryProcessorFixture, SampledAccessesFewerNodesThanUnsampled) {
  const SensorNetwork& net = framework_.network();
  UnsampledQueryProcessor unsampled(net);
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, net.NumSensors() / 6, DeploymentOptions{}, rng);
  SampledQueryProcessor processor = dep.processor();
  size_t total_sampled = 0;
  size_t total_unsampled = 0;
  for (const RangeQuery& q : queries_) {
    total_sampled +=
        processor.Answer(q, CountKind::kStatic, BoundMode::kLower)
            .nodes_accessed;
    total_unsampled +=
        unsampled.Answer(q, CountKind::kStatic).nodes_accessed;
  }
  EXPECT_LT(total_sampled, total_unsampled);
}

TEST_F(QueryProcessorFixture, LearnedStoreApproximatesExactStore) {
  const SensorNetwork& net = framework_.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng1 = framework_.ForkRng();
  std::vector<graph::NodeId> sensors =
      sampler.Select(net.sensing(), net.NumSensors() / 4, rng1);

  DeploymentOptions exact_options;
  Deployment exact = framework_.DeployFromSensors(sensors, exact_options);

  DeploymentOptions learned_options;
  learned_options.store = StoreKind::kLearned;
  learned_options.model_type = learned::ModelType::kPiecewiseLinear;
  learned_options.pla_epsilon = 2.0;
  learned_options.buffer_capacity = 16;
  Deployment learned = framework_.DeployFromSensors(sensors, learned_options);

  // Same graph structure, smaller storage, close answers.
  EXPECT_EQ(exact.graph().monitored_edges().size(),
            learned.graph().monitored_edges().size());
  SampledQueryProcessor pe = exact.processor();
  SampledQueryProcessor pl = learned.processor();
  for (const RangeQuery& q : queries_) {
    QueryAnswer a = pe.Answer(q, CountKind::kStatic, BoundMode::kLower);
    QueryAnswer b = pl.Answer(q, CountKind::kStatic, BoundMode::kLower);
    EXPECT_EQ(a.missed, b.missed);
    if (!a.missed) {
      // Per-edge error is bounded by epsilon; boundary sizes are modest.
      double slack =
          2.0 * learned_options.pla_epsilon *
              static_cast<double>(a.edges_accessed) +
          1e-6;
      EXPECT_NEAR(b.estimate, a.estimate, slack);
    }
  }
}

TEST_F(QueryProcessorFixture, TimeSeriesMatchesPointQueries) {
  const SensorNetwork& net = framework_.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, net.NumSensors() / 4, DeploymentOptions{}, rng);
  SampledQueryProcessor processor = dep.processor();
  for (const RangeQuery& q : queries_) {
    constexpr size_t kSteps = 7;
    std::vector<double> series =
        processor.AnswerSeries(q, BoundMode::kLower, kSteps);
    QueryAnswer at_t2 = processor.Answer(q, CountKind::kStatic,
                                         BoundMode::kLower);
    if (at_t2.missed) {
      EXPECT_TRUE(series.empty());
      continue;
    }
    ASSERT_EQ(series.size(), kSteps);
    // The last instant is exactly the static answer at t2; intermediate
    // instants match individual static queries at the same times.
    EXPECT_DOUBLE_EQ(series.back(), at_t2.estimate);
    for (size_t i = 0; i < kSteps; ++i) {
      RangeQuery probe = q;
      probe.t2 = q.t1 + (q.t2 - q.t1) * static_cast<double>(i) /
                            static_cast<double>(kSteps - 1);
      EXPECT_DOUBLE_EQ(series[i],
                       processor
                           .Answer(probe, CountKind::kStatic,
                                   BoundMode::kLower)
                           .estimate)
          << "step " << i;
    }
  }
}

TEST_F(QueryProcessorFixture, TimeSeriesDegenerateStepCounts) {
  // Regression: steps == 1 used to abort via INNET_CHECK(steps >= 2) even
  // though the API documents any instant count. One step is the single
  // instant at t1; zero steps is an empty series.
  const SensorNetwork& net = framework_.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework_.ForkRng();
  Deployment dep = framework_.DeployWithSampler(
      sampler, net.NumSensors() / 4, DeploymentOptions{}, rng);
  SampledQueryProcessor processor = dep.processor();
  size_t answered = 0;
  for (const RangeQuery& q : queries_) {
    EXPECT_TRUE(processor.AnswerSeries(q, BoundMode::kLower, 0).empty());
    std::vector<double> one = processor.AnswerSeries(q, BoundMode::kLower, 1);
    RangeQuery at_t1 = q;
    at_t1.t2 = q.t1;
    QueryAnswer reference =
        processor.Answer(at_t1, CountKind::kStatic, BoundMode::kLower);
    if (reference.missed) {
      EXPECT_TRUE(one.empty());
      continue;
    }
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0], reference.estimate);
    ++answered;
  }
  EXPECT_GT(answered, 0u);
}

TEST_F(QueryProcessorFixture, AdaptiveDeploymentAnswersHistoricalQueries) {
  const SensorNetwork& net = framework_.network();
  // Use half the workload as history, deploy adaptively, and check that
  // historical query regions are answered exactly (their atoms' boundaries
  // are monitored when the budget allows).
  std::vector<RangeQuery> history(queries_.begin(),
                                  queries_.begin() + queries_.size() / 2);
  Deployment dep =
      framework_.DeployAdaptive(history, net.NumSensors(), DeploymentOptions{});
  SampledQueryProcessor processor = dep.processor();
  for (const RangeQuery& q : history) {
    double truth = net.GroundTruthStatic(q.junctions, q.t2);
    QueryAnswer lower =
        processor.Answer(q, CountKind::kStatic, BoundMode::kLower);
    EXPECT_LE(lower.estimate, truth + 1e-9);
    // With an unconstrained budget every atom is selected, so historical
    // regions are exactly representable.
    EXPECT_DOUBLE_EQ(lower.estimate, truth);
  }
}

TEST(ParseBatchQueryLineTest, AcceptsWellFormedAndRejectsMalformed) {
  FrameworkOptions options;
  options.road.num_junctions = 150;
  options.traffic.num_trajectories = 10;
  options.seed = 6;
  Framework framework(options);
  const SensorNetwork& net = framework.network();
  const geometry::Rect& domain = net.DomainBounds();

  RangeQuery query;
  std::string error;
  char good[128];
  std::snprintf(good, sizeof(good), "%f,%f,%f,%f,0,100", domain.min_x,
                domain.min_y, domain.max_x, domain.max_y);
  ASSERT_TRUE(ParseBatchQueryLine(good, net, &query, &error)) << error;
  EXPECT_FALSE(query.junctions.empty());
  EXPECT_DOUBLE_EQ(query.t1, 0.0);
  EXPECT_DOUBLE_EQ(query.t2, 100.0);

  // Whitespace around fields is tolerated.
  EXPECT_TRUE(ParseBatchQueryLine(" 0 , 0 , 10 , 10 , 1 , 2 ", net, &query,
                                  &error));

  for (const char* bad : {
           "",                        // Empty.
           "1,2,3,4,5",               // Too few fields.
           "1,2,3,4,5,6,7",           // Too many fields.
           "1,2,3,4,5,six",           // Non-numeric.
           "1,2,3,4,5,6 trailing",    // Trailing garbage.
           "1,2,3,4,nan,6",           // Non-finite.
           "1,2,3,4,5,inf",           // Non-finite.
       }) {
    error.clear();
    EXPECT_FALSE(ParseBatchQueryLine(bad, net, &query, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }

  // Inverted time interval is rejected with a distinct message.
  EXPECT_FALSE(ParseBatchQueryLine("1,2,3,4,9,6", net, &query, &error));
  EXPECT_EQ(error, "t2 < t1");

  // A region outside the domain parses fine but resolves no junctions —
  // the caller decides whether that is an error.
  EXPECT_TRUE(ParseBatchQueryLine("-1e7,-1e7,-9e6,-9e6,0,1", net, &query,
                                  &error));
  EXPECT_TRUE(query.junctions.empty());
}

}  // namespace
}  // namespace innet::core
