#include <gtest/gtest.h>

#include <limits>

#include "graph/connectivity.h"
#include "graph/shortest_path.h"
#include "mobility/road_network.h"
#include "util/rng.h"

namespace innet::graph {
namespace {

WeightedAdjacency MakeWeighted(
    size_t n, const std::vector<std::tuple<NodeId, NodeId, double>>& edges) {
  WeightedAdjacency adj(n);
  for (EdgeId e = 0; e < edges.size(); ++e) {
    auto [u, v, w] = edges[e];
    adj[u].push_back({v, e, w});
    adj[v].push_back({u, e, w});
  }
  return adj;
}

TEST(ShortestPathTest, SimpleChain) {
  WeightedAdjacency adj = MakeWeighted(4, {{0, 1, 1.0}, {1, 2, 2.0},
                                           {2, 3, 3.0}});
  auto path = ShortestPath(adj, 0, 3);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 6.0);
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(path->edges.size(), 3u);
}

TEST(ShortestPathTest, PrefersCheaperDetour) {
  // Direct edge costs 10, detour 0-1-2 costs 3.
  WeightedAdjacency adj =
      MakeWeighted(3, {{0, 2, 10.0}, {0, 1, 1.0}, {1, 2, 2.0}});
  auto path = ShortestPath(adj, 0, 2);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 3.0);
  EXPECT_EQ(path->nodes.size(), 3u);
}

TEST(ShortestPathTest, Unreachable) {
  WeightedAdjacency adj = MakeWeighted(4, {{0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_FALSE(ShortestPath(adj, 0, 3).has_value());
}

TEST(ShortestPathTest, SourceEqualsTarget) {
  WeightedAdjacency adj = MakeWeighted(2, {{0, 1, 1.0}});
  auto path = ShortestPath(adj, 0, 0);
  ASSERT_TRUE(path.has_value());
  EXPECT_DOUBLE_EQ(path->cost, 0.0);
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0}));
  EXPECT_TRUE(path->edges.empty());
}

TEST(ShortestPathTest, BlockedNodeForcesDetour) {
  //   0 - 1 - 4
  //    \ 2  /
  //     \| /
  //      3
  WeightedAdjacency adj = MakeWeighted(
      5, {{0, 1, 1.0}, {1, 4, 1.0}, {0, 3, 1.0}, {3, 4, 1.0}, {2, 3, 1.0}});
  std::vector<bool> blocked(5, false);
  blocked[1] = true;
  auto path = ShortestPath(adj, 0, 4, &blocked);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->nodes, (std::vector<NodeId>{0, 3, 4}));
}

TEST(ShortestPathTest, DistancesMatchPathCosts) {
  util::Rng rng(17);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 120;
  PlanarGraph g = mobility::GenerateRoadNetwork(options, rng);
  WeightedAdjacency adj = EuclideanAdjacency(g);
  std::vector<double> dist = DijkstraDistances(adj, 0);
  for (NodeId target : {NodeId{5}, NodeId{50}, NodeId{100}}) {
    auto path = ShortestPath(adj, 0, target);
    ASSERT_TRUE(path.has_value());
    EXPECT_NEAR(path->cost, dist[target], 1e-9);
    // Path cost equals the sum of its edge lengths.
    double total = 0.0;
    for (EdgeId e : path->edges) total += g.EdgeLength(e);
    EXPECT_NEAR(total, path->cost, 1e-9);
    // Consecutive path nodes are adjacent.
    for (size_t i = 0; i + 1 < path->nodes.size(); ++i) {
      EXPECT_NE(g.EdgeBetween(path->nodes[i], path->nodes[i + 1]),
                kInvalidEdge);
    }
  }
}

TEST(ShortestPathTest, TriangleInequalityProperty) {
  util::Rng rng(18);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 100;
  PlanarGraph g = mobility::GenerateRoadNetwork(options, rng);
  WeightedAdjacency adj = EuclideanAdjacency(g);
  std::vector<double> from0 = DijkstraDistances(adj, 0);
  std::vector<double> from7 = DijkstraDistances(adj, 7);
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_LE(from0[n], from0[7] + from7[n] + 1e-9);
  }
}

TEST(BfsTest, HopsOnChain) {
  WeightedAdjacency adj =
      MakeWeighted(4, {{0, 1, 5.0}, {1, 2, 5.0}, {2, 3, 5.0}});
  std::vector<uint32_t> hops = BfsHops(adj, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[3], 3u);
}

TEST(BfsTest, UnreachableIsMax) {
  WeightedAdjacency adj = MakeWeighted(3, {{0, 1, 1.0}});
  std::vector<uint32_t> hops = BfsHops(adj, 0);
  EXPECT_EQ(hops[2], std::numeric_limits<uint32_t>::max());
}

TEST(ConnectivityTest, Components) {
  WeightedAdjacency adj = MakeWeighted(5, {{0, 1, 1.0}, {2, 3, 1.0}});
  ComponentLabels labels = ConnectedComponents(adj);
  EXPECT_EQ(labels.count, 3u);
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_EQ(labels.label[2], labels.label[3]);
  EXPECT_NE(labels.label[0], labels.label[2]);
  EXPECT_NE(labels.label[4], labels.label[0]);
  EXPECT_FALSE(IsConnected(adj));
}

TEST(ConnectivityTest, RemovedEdgesSplitGraph) {
  // Path 0-1-2: removing the middle edge splits into {0,1} and {2}.
  std::vector<geometry::Point> positions = {{0, 0}, {1, 0}, {2, 0.1}};
  std::vector<std::pair<NodeId, NodeId>> edges = {{0, 1}, {1, 2}};
  // PlanarGraph requires connectivity; this path is connected.
  PlanarGraph g(std::move(positions), std::move(edges));
  std::vector<bool> removed = {false, true};
  ComponentLabels labels = ComponentsWithRemovedEdges(g, removed);
  EXPECT_EQ(labels.count, 2u);
  EXPECT_EQ(labels.label[0], labels.label[1]);
  EXPECT_NE(labels.label[1], labels.label[2]);
}

TEST(ShortestPathTest, AveragePathHopsPositive) {
  util::Rng rng(19);
  mobility::RoadNetworkOptions options;
  options.num_junctions = 100;
  PlanarGraph g = mobility::GenerateRoadNetwork(options, rng);
  WeightedAdjacency adj = EuclideanAdjacency(g);
  double avg = EstimateAveragePathHops(adj, 20, 99);
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, static_cast<double>(g.NumNodes()));
}

}  // namespace
}  // namespace innet::graph
