#include <gtest/gtest.h>

#include <cmath>

#include "core/framework.h"
#include "core/workload.h"
#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "privacy/noise.h"
#include "privacy/private_store.h"
#include "sampling/samplers.h"
#include "util/stats.h"

namespace innet::privacy {
namespace {

TEST(NoiseTest, KeyedLaplaceDeterministic) {
  for (uint64_t key : {1ull, 42ull, 0xdeadbeefull}) {
    EXPECT_DOUBLE_EQ(KeyedLaplace(key, 2.0), KeyedLaplace(key, 2.0));
  }
  EXPECT_NE(KeyedLaplace(1, 2.0), KeyedLaplace(2, 2.0));
}

TEST(NoiseTest, KeyedLaplaceStatistics) {
  // Empirical mean ~0 and mean absolute deviation ~scale.
  double scale = 3.0;
  double sum = 0.0;
  double abs_sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    double x = KeyedLaplace(static_cast<uint64_t>(i) * 2654435761ull, scale);
    sum += x;
    abs_sum += std::abs(x);
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.15);
  EXPECT_NEAR(abs_sum / kSamples, scale, 0.25);
}

TEST(NoiseTest, KeysDistinguishComponents) {
  uint64_t base = NoiseKey(7, 10, true, 3, 5);
  EXPECT_NE(base, NoiseKey(7, 11, true, 3, 5));
  EXPECT_NE(base, NoiseKey(7, 10, false, 3, 5));
  EXPECT_NE(base, NoiseKey(7, 10, true, 4, 5));
  EXPECT_NE(base, NoiseKey(7, 10, true, 3, 6));
  EXPECT_NE(base, NoiseKey(8, 10, true, 3, 5));
}

class PrivateStoreFixture : public ::testing::Test {
 protected:
  PrivateStoreFixture() : base_(4) {
    // 1000 events uniform over [0, 1000) on edge 2, forward.
    for (int i = 0; i < 1000; ++i) {
      base_.RecordTraversal(2, true, static_cast<double>(i));
    }
  }
  forms::TrackingForm base_;
};

TEST_F(PrivateStoreFixture, DeterministicAcrossQueries) {
  PrivateEdgeStore store(base_, /*epsilon=*/1.0, /*horizon=*/1000.0);
  for (double t : {10.0, 500.0, 999.0}) {
    EXPECT_DOUBLE_EQ(store.CountUpTo(2, true, t), store.CountUpTo(2, true, t));
  }
}

TEST_F(PrivateStoreFixture, NonNegativeAndZeroBeforeStart) {
  PrivateEdgeStore store(base_, 0.5, 1000.0);
  EXPECT_DOUBLE_EQ(store.CountUpTo(2, true, -5.0), 0.0);
  for (double t = 0; t <= 1200; t += 37) {
    EXPECT_GE(store.CountUpTo(2, true, t), 0.0);
  }
}

TEST_F(PrivateStoreFixture, AccuracyImprovesWithEpsilon) {
  auto max_error = [this](double epsilon) {
    PrivateEdgeStore store(base_, epsilon, 1000.0, /*levels=*/10);
    double worst = 0.0;
    for (double t = 50; t <= 1000; t += 50) {
      worst = std::max(worst, std::abs(store.CountUpTo(2, true, t) -
                                       base_.CountUpTo(2, true, t)));
    }
    return worst;
  };
  double loose = max_error(0.1);
  double tight = max_error(10.0);
  EXPECT_LT(tight, loose);
  // At epsilon 10 with 10 levels the noise scale is 1; prefix error stays
  // within a few standard deviations plus bucket discretization (~1 event
  // per bucket here).
  EXPECT_LT(tight, 40.0);
}

TEST_F(PrivateStoreFixture, NoiseScaleMatchesDefinition) {
  PrivateEdgeStore store(base_, 2.0, 1000.0, /*levels=*/8);
  EXPECT_DOUBLE_EQ(store.NoiseScale(), 4.0);
  EXPECT_EQ(store.levels(), 8);
  EXPECT_DOUBLE_EQ(store.epsilon(), 2.0);
}

TEST_F(PrivateStoreFixture, StoragePassesThrough) {
  PrivateEdgeStore store(base_, 1.0, 1000.0);
  EXPECT_EQ(store.StorageBytes(), base_.StorageBytes());
  EXPECT_EQ(store.StorageBytesForEdge(2), base_.StorageBytesForEdge(2));
}

TEST_F(PrivateStoreFixture, UntouchedEdgesStayNearZero) {
  PrivateEdgeStore store(base_, 1.0, 1000.0, /*levels=*/10);
  // Edge 0 never saw events: answers are pure (clamped) noise, small in
  // magnitude relative to real counts.
  double value = store.CountUpTo(0, true, 900.0);
  EXPECT_GE(value, 0.0);
  EXPECT_LT(value, 120.0);  // ~levels * scale, far below the 900 real events.
}

// End-to-end: answering region queries through the private store keeps the
// relative error moderate at practical epsilon and degrades gracefully.
TEST(PrivateQueryTest, RegionCountsUsableAtPracticalEpsilon) {
  core::FrameworkOptions options;
  options.road.num_junctions = 250;
  options.traffic.num_trajectories = 600;
  options.seed = 5;
  core::Framework framework(options);
  const core::SensorNetwork& network = framework.network();

  core::WorkloadOptions workload;
  workload.area_fraction = 0.1;
  workload.horizon = framework.Horizon();
  util::Rng rng = framework.ForkRng();
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(network, workload, 15, rng);

  auto median_error = [&](double epsilon) {
    PrivateEdgeStore store(network.reference_store(), epsilon,
                           framework.Horizon() * 1.5, /*levels=*/10);
    util::Accumulator err;
    for (const core::RangeQuery& q : queries) {
      std::vector<forms::BoundaryEdge> boundary =
          network.RegionBoundaryWithVirtual(network.JunctionMask(q.junctions));
      double truth = network.GroundTruthStatic(q.junctions, q.t2);
      double noisy = forms::EvaluateStaticCount(store, boundary, q.t2);
      err.Add(util::RelativeError(truth, noisy));
    }
    return err.Summarize().median;
  };
  // DP noise accumulates across the ~hundreds of boundary-edge lookups, so
  // small epsilon wrecks small counts (the expected DP behaviour); larger
  // epsilon must recover usable accuracy.
  double strict = median_error(0.05);
  double loose = median_error(20.0);
  EXPECT_LT(loose, strict);
  EXPECT_LT(loose, 0.5);
}

}  // namespace
}  // namespace innet::privacy
