#include <gtest/gtest.h>

#include <set>

#include "core/sensor_network.h"
#include "core/workload.h"
#include "mobility/perturbation.h"
#include "mobility/road_network.h"
#include "mobility/trajectory_generator.h"
#include "util/stats.h"

namespace innet::mobility {
namespace {

struct World {
  World() : rng(51) {
    RoadNetworkOptions road;
    road.num_junctions = 250;
    graph = std::make_unique<graph::PlanarGraph>(
        GenerateRoadNetwork(road, rng));
    TrajectoryOptions traffic;
    traffic.num_trajectories = 150;
    trajectories = GenerateTrajectories(*graph, traffic, rng);
  }
  util::Rng rng;
  std::unique_ptr<graph::PlanarGraph> graph;
  std::vector<Trajectory> trajectories;
};

TEST(PerturbationTest, ZeroHopsPreservesAnchorsAndValidity) {
  World w;
  PerturbationOptions options;
  options.max_hops = 0;
  options.anchor_stride = 1;  // Every junction is an anchor.
  std::vector<Trajectory> out =
      PerturbTrajectories(*w.graph, w.trajectories, options, w.rng);
  ASSERT_EQ(out.size(), w.trajectories.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].Valid(*w.graph));
    EXPECT_EQ(out[i].nodes.front(), w.trajectories[i].nodes.front());
    EXPECT_EQ(out[i].nodes.back(), w.trajectories[i].nodes.back());
    // Shortest-path reconnection of adjacent anchors returns the same path.
    EXPECT_EQ(out[i].nodes, w.trajectories[i].nodes);
  }
}

TEST(PerturbationTest, OutputAlwaysValidAndTimePreserving) {
  World w;
  PerturbationOptions options;
  options.max_hops = 3;
  std::vector<Trajectory> out =
      PerturbTrajectories(*w.graph, w.trajectories, options, w.rng);
  EXPECT_GT(out.size(), w.trajectories.size() * 9 / 10);
  // Dropped (collapsed) trips shift indices, so match start times by set
  // membership instead of position.
  std::multiset<double> input_starts;
  for (const Trajectory& t : w.trajectories) {
    input_starts.insert(t.times.front());
  }
  for (const Trajectory& t : out) {
    EXPECT_TRUE(t.Valid(*w.graph));
    auto it = input_starts.find(t.times.front());
    EXPECT_NE(it, input_starts.end()) << "start time not preserved";
    if (it != input_starts.end()) input_starts.erase(it);
  }
}

TEST(PerturbationTest, PerturbationActuallyMovesAnchors) {
  World w;
  PerturbationOptions options;
  options.max_hops = 3;
  options.alpha = 0.9;  // Heavy perturbation.
  std::vector<Trajectory> out =
      PerturbTrajectories(*w.graph, w.trajectories, options, w.rng);
  size_t moved_endpoints = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    if (out[i].nodes.back() != w.trajectories[i].nodes.back()) {
      ++moved_endpoints;
    }
  }
  EXPECT_GT(moved_endpoints, out.size() / 4);
}

TEST(PerturbationTest, CountAccuracyDegradesGracefullyWithRadius) {
  World w;
  // Build reference network with the TRUE trajectories.
  core::SensorNetwork truth_net(graph::PlanarGraph(*w.graph));
  truth_net.IngestTrajectories(w.trajectories);

  core::WorkloadOptions wo;
  wo.area_fraction = 0.15;
  wo.horizon = 6.0 * 3600.0;
  util::Rng qrng(9);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(truth_net, wo, 10, qrng);

  double previous_error = -1.0;
  for (int hops : {0, 4}) {
    PerturbationOptions options;
    options.max_hops = hops;
    options.alpha = 0.9;
    util::Rng prng(77);
    std::vector<Trajectory> perturbed =
        PerturbTrajectories(*w.graph, w.trajectories, options, prng);
    core::SensorNetwork noisy_net(graph::PlanarGraph(*w.graph));
    noisy_net.IngestTrajectories(perturbed);

    util::Accumulator err;
    for (const core::RangeQuery& q : queries) {
      double truth = truth_net.GroundTruthStatic(q.junctions, q.t2);
      double noisy = noisy_net.GroundTruthStatic(q.junctions, q.t2);
      err.Add(util::RelativeError(truth, noisy));
    }
    double median = err.Summarize().median;
    if (hops == 0) {
      // Re-anchored but unperturbed trips keep counts close (route changes
      // only between anchors).
      EXPECT_LT(median, 0.25);
    } else {
      EXPECT_GE(median, previous_error);
    }
    previous_error = median;
  }
}

}  // namespace
}  // namespace innet::mobility
