// Ablation: input perturbation (local-DP-style trajectory perturbation,
// related work [11]) vs output noise (the continual-counting DP store).
// Input perturbation corrupts the data before ingestion — accuracy is lost
// for every query forever; output noise preserves exact internal state and
// spends a privacy budget per released statistic.
#include <cstdio>

#include "bench/bench_common.h"
#include "forms/region_count.h"
#include "mobility/perturbation.h"
#include "privacy/private_store.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueries = 30;

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              network.mobility().NumNodes(), network.NumSensors(),
              network.events().size());
  JsonReport report("ablation_input_privacy");

  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.08, kQueries, 995);

  // Input perturbation sweep: rebuild the network from perturbed trips.
  util::Table table(
      "Input perturbation ([11]-style) vs output DP noise: median relative "
      "error of static counts (8% queries, unsampled graph)");
  table.SetHeader({"mechanism", "knob", "median_err"});

  for (int hops : {1, 2, 4}) {
    mobility::PerturbationOptions options;
    options.max_hops = hops;
    options.alpha = 0.8;
    util::Rng rng(1000 + hops);
    std::vector<mobility::Trajectory> perturbed =
        mobility::PerturbTrajectories(network.mobility(),
                                      framework.trajectories(), options, rng);
    core::SensorNetwork noisy(graph::PlanarGraph(network.mobility()));
    noisy.IngestTrajectories(perturbed);
    util::Accumulator err;
    for (const core::RangeQuery& q : queries) {
      double truth = network.GroundTruthStatic(q.junctions, q.t2);
      err.Add(util::RelativeError(
          truth, noisy.GroundTruthStatic(q.junctions, q.t2)));
    }
    table.AddRow({"input-perturbation", "hops=" + std::to_string(hops),
                  util::Table::Num(err.Summarize().median, 3)});
    report.Metric("input_perturbation_err_hops_" + std::to_string(hops),
                  err.Summarize().median);
  }

  for (double epsilon : {0.5, 2.0, 10.0}) {
    privacy::PrivateEdgeStore store(network.reference_store(), epsilon,
                                    framework.Horizon() * 1.5);
    util::Accumulator err;
    for (const core::RangeQuery& q : queries) {
      double truth = network.GroundTruthStatic(q.junctions, q.t2);
      std::vector<forms::BoundaryEdge> boundary =
          network.RegionBoundaryWithVirtual(network.JunctionMask(q.junctions));
      err.Add(util::RelativeError(
          truth, forms::EvaluateStaticCount(store, boundary, q.t2)));
    }
    char knob[32];
    std::snprintf(knob, sizeof(knob), "epsilon=%.1f", epsilon);
    table.AddRow({"output-DP", knob,
                  util::Table::Num(err.Summarize().median, 3)});
    char key[48];
    std::snprintf(key, sizeof(key), "output_dp_err_epsilon_%.1f", epsilon);
    report.Metric(key, err.Summarize().median);
  }
  table.Print();
  std::printf(
      "reading guide: the two mechanisms trade different things. Input "
      "perturbation barely moves AGGREGATE counts at small radii (errors "
      "average out) but its per-object guarantee is only as strong as the "
      "hop radius; output DP gives a formal event-level epsilon guarantee "
      "whose cost scales with the number of noisy boundary lookups, so it "
      "needs epsilon around 10 (or the shorter perimeters of a sampled "
      "graph) to match. The in-network design composes with either.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
