// Motivation reproduction (§1, §3.1.1): the dead-space problem. Axis-aligned
// grid deployments (the Grid/kd-tree/QuadTree style of §2.3) waste sensors
// on cells without roads or traffic; the planar sensing faces border roads
// by construction and are almost all active.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/dead_space.h"
#include "util/table.h"

namespace innet::bench {
namespace {

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu roads, %zu sensors, %zu events\n\n",
              network.mobility().NumNodes(), network.mobility().NumEdges(),
              network.NumSensors(), network.events().size());
  JsonReport report("ablation_deadspace");

  util::Table table(
      "Dead space: axis-aligned grid partitions vs planar sensing faces "
      "(one sensor per partition)");
  table.SetHeader({"partitioning", "sensors", "no_road", "no_traffic",
                   "wasted"});

  for (size_t n : {16, 24, 32, 48, 64}) {
    core::DeadSpaceReport grid =
        core::AnalyzeGridDeadSpace(network, n, n);
    table.AddRow({"grid " + std::to_string(n) + "x" + std::to_string(n),
                  std::to_string(grid.partitions),
                  Percent(grid.NoRoadFraction(), 1),
                  Percent(grid.NoTrafficFraction(), 1),
                  Percent(grid.NoTrafficFraction(), 1)});
    std::string prefix = "grid_" + std::to_string(n);
    report.Metric(prefix + "_no_road_fraction", grid.NoRoadFraction());
    report.Metric(prefix + "_no_traffic_fraction", grid.NoTrafficFraction());
  }
  core::DeadSpaceReport sensing = core::AnalyzeSensingDeadSpace(network);
  table.AddRow({"sensing faces (ours)", std::to_string(sensing.partitions),
                Percent(sensing.NoRoadFraction(), 1),
                Percent(sensing.NoTrafficFraction(), 1),
                Percent(sensing.NoTrafficFraction(), 1)});
  table.Print();
  report.Metric("sensing_no_road_fraction", sensing.NoRoadFraction());
  report.Metric("sensing_no_traffic_fraction", sensing.NoTrafficFraction());

  std::printf(
      "reading guide: grid sensors in road-free or traffic-free cells "
      "consume power and must still be flooded during queries (§3.1.1); "
      "sensing faces are never road-free, and only low-traffic fringe "
      "faces are inactive. Finer grids make the waste worse — the paper's "
      "argument for sensor-distribution-aware partitioning.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
