// Shared experiment harness for the paper-reproduction benchmarks.
//
// Every bench binary builds the same world (synthetic road network +
// gateway-entering trips, DESIGN.md §2), sweeps the paper's parameters, and
// prints the corresponding figure's rows. The paper reports medians of
// repeated runs with interquartile bands (§5.1.1); EvaluateDeployment
// mirrors that.
#ifndef INNET_BENCH_BENCH_COMMON_H_
#define INNET_BENCH_BENCH_COMMON_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/face_sampling.h"
#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/flags.h"
#include "util/stats.h"

namespace innet::bench {

/// Default experiment scale. ~2500 junctions / ~8000 trips keeps every bench
/// under a few minutes while leaving enough faces for percent-level region
/// sweeps.
core::FrameworkOptions DefaultWorld(uint64_t seed = 42);

/// The paper's sampled-graph size sweep (fraction of sensors), §5.2.
std::vector<double> GraphSizeSweep();

/// Query-region size sweep (fraction of the sensing area), §5.3.
std::vector<double> QuerySizeSweep();

/// Builds `count` queries at the given area fraction.
std::vector<core::RangeQuery> MakeQueries(const core::Framework& framework,
                                          double area_fraction, size_t count,
                                          uint64_t seed);

/// Aggregated evaluation of one deployment on one workload.
struct EvalResult {
  double err_median = 0.0;  // Relative error vs. the unsampled count η.
  double err_p25 = 0.0;
  double err_p75 = 0.0;
  double missed_fraction = 0.0;
  double mean_nodes_accessed = 0.0;
  double mean_edges_accessed = 0.0;
  double mean_exec_micros = 0.0;
  /// Mean simulated end-to-end time (compute + per-sensor contact cost).
  double mean_sim_micros = 0.0;
  /// Mean estimate / truth ratio over queries with truth > 0 (upper-bound
  /// figures report this, Fig. 13c/d).
  double ratio_mean = 0.0;
};

/// Runs every query against the deployment processor and aggregates.
EvalResult EvaluateDeployment(const core::SensorNetwork& network,
                              const core::Deployment& deployment,
                              const std::vector<core::RangeQuery>& queries,
                              core::CountKind kind, core::BoundMode bound);

/// Same aggregation for the unsampled exact processor.
EvalResult EvaluateUnsampled(const core::SensorNetwork& network,
                             const std::vector<core::RangeQuery>& queries,
                             core::CountKind kind);

/// Same aggregation for the face-sampling baseline.
EvalResult EvaluateBaseline(const core::SensorNetwork& network,
                            const baseline::FaceSamplingBaseline& baseline,
                            const std::vector<core::RangeQuery>& queries,
                            core::CountKind kind);

/// A named deployment strategy: the five samplers plus the submodular
/// query-adaptive method. `history` is used by the adaptive method only.
struct Method {
  std::string name;
  /// Deploys m sensors; `rep` seeds the sampler's randomness.
  std::function<core::Deployment(const core::Framework&, size_t m,
                                 const core::DeploymentOptions&,
                                 uint64_t rep)>
      deploy;
};

/// All six methods of Fig. 11/12 (uniform, systematic, stratified, kd-tree,
/// quadtree, submodular). The submodular method deploys for the KNOWN query
/// distribution `history` (§4.4); the benches pass the evaluation workload
/// itself, which is what "query distribution is known a priori" means there.
std::vector<Method> AllMethods(
    std::shared_ptr<const std::vector<core::RangeQuery>> history);

/// Median-of-reps evaluation: deploys `method` `reps` times with different
/// seeds and pools per-query errors before summarizing.
EvalResult EvaluateMethod(const core::Framework& framework,
                          const Method& method, size_t m,
                          const core::DeploymentOptions& options,
                          const std::vector<core::RangeQuery>& queries,
                          core::CountKind kind, core::BoundMode bound,
                          size_t reps);

/// Formats a fraction as a percent string ("6.4%").
std::string Percent(double fraction, int precision = 1);

/// Machine-readable benchmark output (the benches' --json=PATH flag).
/// Collects flat key -> number metrics plus string notes while the bench
/// prints its human tables, then writes ONE JSON object:
///
///   {"bench":"headline","notes":{"world":"tiny"},
///    "metrics":{"kd-tree_err_median":0.12,...}}
///
/// Keys keep insertion order; re-adding a key overwrites its value. CI's
/// bench-smoke job parses BENCH_headline.json produced this way to track
/// the perf trajectory across commits.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name);

  void Note(const std::string& key, const std::string& value);
  void Metric(const std::string& key, double value);

  /// Records an EvalResult's standard fields as "<prefix>_err_median",
  /// "<prefix>_missed_fraction", "<prefix>_mean_exec_micros", ...
  void MetricResult(const std::string& prefix, const EvalResult& result);

  /// Serializes the report (one object, trailing newline).
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false (with a log line) on I/O failure.
  /// An empty path is a silent no-op returning true, so call sites can pass
  /// the flag value through unconditionally.
  bool WriteTo(const std::string& path) const;

  /// Handles the shared --json[=PATH] flag: absent is a no-op, bare
  /// `--json` defaults to BENCH_<bench_name>.json, `--json=PATH` writes to
  /// PATH. Returns false on I/O failure — every bench's exit code.
  bool WriteFlagged(const util::FlagParser& flags) const;

 private:
  void Upsert(std::vector<std::pair<std::string, std::string>>* entries,
              const std::string& key, std::string value);

  std::string name_;
  std::vector<std::pair<std::string, std::string>> notes_;
  std::vector<std::pair<std::string, std::string>> metrics_;  // Pre-rendered.
};

}  // namespace innet::bench

#endif  // INNET_BENCH_BENCH_COMMON_H_
