// Ablation: the three per-edge store designs —
//   exact    tracking forms (full timestamp sequences, §4.7),
//   buffered constant-size model + bounded buffer (§4.8),
//   rolling  FLIRT-style per-window models with eviction (§4.8 future work)
// — compared on storage growth and lookup accuracy as the event stream on a
// single busy edge scales from 1k to 1M events.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "forms/tracking_form.h"
#include "learned/buffered_edge_store.h"
#include "learned/rolling_store.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace innet::bench {
namespace {

int Main(const util::FlagParser& flags) {
  JsonReport report("ablation_stores");
  util::Table table(
      "Store ablation: one edge, growing event stream (bytes | median abs "
      "count error over the retained horizon)");
  table.SetHeader({"events", "exact_B", "buffered_B", "rolling_B",
                   "buffered_err", "rolling_err(recent)"});

  for (size_t events : {size_t{1000}, size_t{10000}, size_t{100000},
                        size_t{1000000}}) {
    forms::TrackingForm exact(1);
    learned::ModelOptions model_options;
    model_options.time_scale = static_cast<double>(events);
    model_options.epsilon = 8.0;
    learned::BufferedEdgeStore buffered(1, learned::ModelType::kPiecewiseLinear,
                                        32, model_options);
    // Fixed-width wall-clock windows: the retained horizon (and therefore
    // storage) stays constant while the stream duration grows with the
    // event count (~1 event/second here).
    learned::RollingOptions rolling_options;
    rolling_options.window_seconds = 2000.0;
    rolling_options.retained_windows = 6;
    rolling_options.model = model_options;
    learned::RollingWindowStore rolling(1, rolling_options);

    // Non-homogeneous arrivals (rush-hour bursts) to stress the models.
    util::Rng rng(events);
    double t = 0.0;
    for (size_t i = 0; i < events; ++i) {
      double rate = 1.0 + 0.8 * std::sin(t * 50.0 / static_cast<double>(events));
      t += rng.Exponential(rate);
      exact.RecordTraversal(0, true, t);
      buffered.RecordTraversal(0, true, t);
      rolling.RecordTraversal(0, true, t);
    }

    // Accuracy probes: buffered over the whole stream; rolling over its
    // retained horizon only (its contract).
    util::Accumulator buffered_err;
    util::Accumulator rolling_err;
    double retention = rolling.RetentionStart(0, true);
    for (int i = 1; i <= 50; ++i) {
      double q = t * static_cast<double>(i) / 50.0;
      double truth = exact.CountUpTo(0, true, q);
      buffered_err.Add(std::abs(buffered.CountUpTo(0, true, q) - truth));
      if (q >= retention) {
        rolling_err.Add(std::abs(rolling.CountUpTo(0, true, q) - truth));
      }
    }
    table.AddRow(
        {std::to_string(events), std::to_string(exact.StorageBytes()),
         std::to_string(buffered.StorageBytes()),
         std::to_string(rolling.StorageBytes()),
         util::Table::Num(buffered_err.Summarize().median, 1),
         util::Table::Num(
             rolling_err.empty() ? 0.0 : rolling_err.Summarize().median, 1)});
    std::string at = "_at_" + std::to_string(events);
    report.Metric("exact_bytes" + at,
                  static_cast<double>(exact.StorageBytes()));
    report.Metric("buffered_bytes" + at,
                  static_cast<double>(buffered.StorageBytes()));
    report.Metric("rolling_bytes" + at,
                  static_cast<double>(rolling.StorageBytes()));
    report.Metric("buffered_err" + at, buffered_err.Summarize().median);
    report.Metric("rolling_err" + at,
                  rolling_err.empty() ? 0.0 : rolling_err.Summarize().median);
  }
  table.Print();
  std::printf(
      "reading guide: exact grows linearly; buffered grows with PLA "
      "segments (sublinear, distribution-dependent); rolling is O(retained "
      "windows) — truly bounded — at the price of answering only over its "
      "retention horizon.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
