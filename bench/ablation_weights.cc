// Ablation: query-adaptive sampling weights (§4.3, last paragraph). When the
// workload concentrates in part of the domain, weighting samplers by how
// often each sensor served past queries shifts the budget toward the hot
// area and cuts the error there.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/adaptive_weights.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueries = 40;
constexpr size_t kReps = 3;

// Localized workload: all queries inside one quadrant of the domain.
std::vector<core::RangeQuery> HotQueries(const core::Framework& framework,
                                         size_t count, uint64_t seed) {
  const core::SensorNetwork& network = framework.network();
  const geometry::Rect& world = network.DomainBounds();
  geometry::Rect hot(world.min_x, world.min_y,
                     world.min_x + 0.5 * world.Width(),
                     world.min_y + 0.5 * world.Height());
  util::Rng rng(seed);
  std::vector<core::RangeQuery> queries;
  while (queries.size() < count) {
    double w = 0.2 * hot.Width();
    double x0 = hot.min_x + rng.Uniform(0.0, hot.Width() - w);
    double y0 = hot.min_y + rng.Uniform(0.0, hot.Height() - w);
    core::RangeQuery q;
    q.rect = geometry::Rect(x0, y0, x0 + w, y0 + w);
    q.junctions = network.JunctionsInRect(q.rect);
    if (q.junctions.empty()) continue;
    double len = rng.Uniform(0.1, 0.4) * framework.Horizon();
    q.t1 = rng.Uniform(0.0, framework.Horizon() - len);
    q.t2 = q.t1 + len;
    queries.push_back(std::move(q));
  }
  return queries;
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors\n\n",
              network.mobility().NumNodes(), network.NumSensors());
  JsonReport report("ablation_weights");

  std::vector<core::RangeQuery> history = HotQueries(framework, 60, 981);
  std::vector<core::RangeQuery> eval = HotQueries(framework, kQueries, 982);
  std::vector<double> weights =
      core::QueryFrequencyWeights(network, history, /*base_weight=*/0.2);

  util::Table table(
      "Adaptive-weights ablation: localized workload, 12.8% budget "
      "(median static lower-bound error)");
  table.SetHeader({"sampler", "plain", "weighted", "improvement"});

  size_t budget = static_cast<size_t>(0.128 * network.NumSensors());
  auto evaluate = [&](const sampling::SensorSampler& sampler) {
    util::Accumulator err;
    for (size_t rep = 0; rep < kReps; ++rep) {
      util::Rng rng(0xada0 + rep);
      core::Deployment dep = framework.DeployWithSampler(
          sampler, budget, core::DeploymentOptions{}, rng);
      core::SampledQueryProcessor processor = dep.processor();
      for (const core::RangeQuery& q : eval) {
        double truth = network.GroundTruthStatic(q.junctions, q.t2);
        err.Add(util::RelativeError(
            truth, processor
                       .Answer(q, core::CountKind::kStatic,
                               core::BoundMode::kLower)
                       .estimate));
      }
    }
    return err.Summarize().median;
  };

  for (const auto& sampler : sampling::AllSamplers()) {
    double plain = evaluate(*sampler);
    sampler->SetWeights(weights);
    double weighted = evaluate(*sampler);
    double improvement = plain > 0 ? (plain - weighted) / plain : 0.0;
    table.AddRow({std::string(sampler->Name()), util::Table::Num(plain, 3),
                  util::Table::Num(weighted, 3), Percent(improvement, 1)});
    std::string name(sampler->Name());
    report.Metric(name + "_plain_err", plain);
    report.Metric(name + "_weighted_err", weighted);
    report.Metric(name + "_improvement", improvement);
  }
  table.Print();
  std::printf(
      "reading guide: density-following samplers (uniform) gain the most; "
      "grid/cell samplers shift only within cells, so their gain is "
      "smaller by construction.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
