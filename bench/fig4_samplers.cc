// Textual stand-in for Fig. 4: where each sampler places communication
// sensors. Reports per-quadrant sensor counts, spatial spread (nearest
// selected-neighbor distances), and coverage of dense districts, which is
// what the paper's maps convey visually.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "placement/query_adaptive.h"
#include "sampling/samplers.h"
#include "spatial/kdtree.h"
#include "util/table.h"

namespace innet::bench {
namespace {

struct PlacementStats {
  size_t count = 0;
  size_t quadrant[4] = {0, 0, 0, 0};
  double mean_nn_distance = 0.0;  // Mean distance to nearest selected peer.
  double cv_nn_distance = 0.0;    // Coefficient of variation (regularity).
};

PlacementStats Analyze(const core::SensorNetwork& network,
                       const std::vector<graph::NodeId>& selected) {
  PlacementStats stats;
  stats.count = selected.size();
  if (selected.empty()) return stats;
  const geometry::Rect& bounds = network.DomainBounds();
  geometry::Point center = bounds.Center();
  std::vector<geometry::Point> positions;
  for (graph::NodeId n : selected) {
    const geometry::Point& p = network.sensing().Position(n);
    positions.push_back(p);
    int q = (p.x >= center.x ? 1 : 0) + (p.y >= center.y ? 2 : 0);
    ++stats.quadrant[q];
  }
  if (selected.size() < 2) return stats;
  spatial::KdTree index(positions);
  util::Accumulator nn;
  for (const geometry::Point& p : positions) {
    std::vector<size_t> two = index.KNearest(p, 2);
    nn.Add(geometry::Distance(p, positions[two[1]]));
  }
  util::Summary s = nn.Summarize();
  stats.mean_nn_distance = s.mean;
  double variance = 0.0;
  for (double v : nn.values()) {
    variance += (v - s.mean) * (v - s.mean);
  }
  variance /= static_cast<double>(nn.count());
  stats.cv_nn_distance = s.mean > 0 ? std::sqrt(variance) / s.mean : 0.0;
  return stats;
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors\n\n",
              network.mobility().NumNodes(), network.NumSensors());
  size_t m = static_cast<size_t>(0.1 * network.NumSensors());
  JsonReport report("fig4_samplers");
  report.Metric("sensors", static_cast<double>(network.NumSensors()));
  report.Metric("m", static_cast<double>(m));

  util::Table table(
      "Fig 4: sensor placement character per sampler (m = 10% of sensors)");
  table.SetHeader({"sampler", "selected", "q00", "q10", "q01", "q11",
                   "mean_nn_dist_m", "nn_dist_cv"});

  for (const auto& sampler : sampling::AllSamplers()) {
    util::Rng rng(31);
    std::vector<graph::NodeId> selected =
        sampler->Select(network.sensing(), m, rng);
    PlacementStats stats = Analyze(network, selected);
    table.AddRow({std::string(sampler->Name()), std::to_string(stats.count),
                  std::to_string(stats.quadrant[0]),
                  std::to_string(stats.quadrant[1]),
                  std::to_string(stats.quadrant[2]),
                  std::to_string(stats.quadrant[3]),
                  util::Table::Num(stats.mean_nn_distance, 0),
                  util::Table::Num(stats.cv_nn_distance, 2)});
    std::string name(sampler->Name());
    report.Metric(name + "_selected", static_cast<double>(stats.count));
    report.Metric(name + "_mean_nn_distance", stats.mean_nn_distance);
    report.Metric(name + "_nn_distance_cv", stats.cv_nn_distance);
  }

  // Submodular placement (Fig. 4f): regions selected from 100 historical
  // queries.
  std::vector<core::RangeQuery> history = MakeQueries(framework, 0.02, 100, 61);
  std::vector<placement::QueryRegionHistory> regions;
  for (const core::RangeQuery& q : history) regions.push_back({q.junctions});
  std::vector<placement::Atom> atoms =
      placement::PartitionIntoAtoms(network.mobility(), regions);
  placement::AdaptivePlacement placement =
      placement::SelectAtoms(network.sensing(), atoms, m);
  PlacementStats stats = Analyze(network, placement.sensor_nodes);
  table.AddRow({"submodular", std::to_string(stats.count),
                std::to_string(stats.quadrant[0]),
                std::to_string(stats.quadrant[1]),
                std::to_string(stats.quadrant[2]),
                std::to_string(stats.quadrant[3]),
                util::Table::Num(stats.mean_nn_distance, 0),
                util::Table::Num(stats.cv_nn_distance, 2)});
  table.Print();

  std::printf(
      "reading guide: systematic/kd-tree/quadtree have low nn-distance CV "
      "(regular spread); uniform follows sensor density; submodular clusters "
      "on historical query boundaries (%zu atoms from %zu queries).\n",
      atoms.size(), history.size());
  report.Metric("submodular_selected", static_cast<double>(stats.count));
  report.Metric("submodular_mean_nn_distance", stats.mean_nn_distance);
  report.Metric("submodular_nn_distance_cv", stats.cv_nn_distance);
  report.Metric("submodular_atoms", static_cast<double>(atoms.size()));
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
