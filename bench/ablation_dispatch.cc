// Ablation: the two query-dispatch strategies of §4.6 — server-direct
// (one long-distance link per perimeter sensor) vs perimeter traversal (two
// long-distance links plus in-mesh hops). Reports message counts and the
// battery-energy proxy across query sizes.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/dispatch.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueries = 40;

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors\n\n",
              network.mobility().NumNodes(), network.NumSensors());
  JsonReport report("ablation_dispatch");

  sampling::KdTreeSampler sampler;
  util::Rng rng(5);
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, static_cast<size_t>(0.064 * network.NumSensors()),
      core::DeploymentOptions{}, rng);

  util::Table table(
      "Dispatch ablation (graph 6.4%): direct vs perimeter traversal");
  table.SetHeader({"query_size", "perimeter", "direct_msgs", "trav_msgs",
                   "direct_energy", "trav_energy", "trav_wins"});

  for (double area : QuerySizeSweep()) {
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueries, 971);
    util::Accumulator perimeter;
    util::Accumulator direct_msgs;
    util::Accumulator trav_msgs;
    util::Accumulator direct_energy;
    util::Accumulator trav_energy;
    size_t wins = 0;
    for (const core::RangeQuery& q : queries) {
      std::vector<uint32_t> faces =
          deployment.graph().UpperBoundFaces(q.junctions);
      std::vector<graph::NodeId> sensors =
          deployment.graph().BoundaryOfFaces(faces).sensors;
      core::DispatchCost direct = core::SimulateDispatch(
          network, sensors, core::DispatchMode::kServerDirect);
      core::DispatchCost traversal = core::SimulateDispatch(
          network, sensors, core::DispatchMode::kPerimeterTraversal);
      perimeter.Add(static_cast<double>(sensors.size()));
      direct_msgs.Add(static_cast<double>(direct.Messages()));
      trav_msgs.Add(static_cast<double>(traversal.Messages()));
      direct_energy.Add(direct.Energy());
      trav_energy.Add(traversal.Energy());
      if (traversal.Energy() < direct.Energy()) ++wins;
    }
    table.AddRow({Percent(area),
                  util::Table::Num(perimeter.Summarize().mean, 1),
                  util::Table::Num(direct_msgs.Summarize().mean, 1),
                  util::Table::Num(trav_msgs.Summarize().mean, 1),
                  util::Table::Num(direct_energy.Summarize().mean, 1),
                  util::Table::Num(trav_energy.Summarize().mean, 1),
                  util::Table::Num(static_cast<double>(wins) /
                                       static_cast<double>(queries.size()),
                                   2)});
    std::string at = "_at_" + Percent(area);
    report.Metric("perimeter_sensors" + at, perimeter.Summarize().mean);
    report.Metric("direct_messages" + at, direct_msgs.Summarize().mean);
    report.Metric("traversal_messages" + at, trav_msgs.Summarize().mean);
    report.Metric("direct_energy" + at, direct_energy.Summarize().mean);
    report.Metric("traversal_energy" + at, trav_energy.Summarize().mean);
    report.Metric("traversal_win_fraction" + at,
                  static_cast<double>(wins) /
                      static_cast<double>(queries.size()));
  }
  table.Print();
  std::printf(
      "energy model: one long-distance (sensor-to-server) transmission "
      "costs 20 mesh hops (§3.1's high-power radio remark). Traversal "
      "trades long links for mesh hops, winning whenever perimeters exceed "
      "a handful of sensors.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
