// Reproduces the paper's headline claims (§1, abstract):
//   - relative error at most ~13.8% with 25.6% of sensors,
//   - ~3.5x query speedup over the exact unsampled graph,
//   - ~69.81% reduction in sensors accessed,
//   - ~99.96% storage reduction from constant-size regression models.
// Absolute values depend on the substrate scale; see EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Flags:
//   --tiny             small world (~120 junctions) for CI smoke runs
//   --json[=PATH]      machine-readable report (default BENCH_headline.json)
//   --metrics-out=PATH dump the process metrics registry on exit
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "forms/frozen_tracking_form.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_digest.h"
#include "obs/slowlog.h"
#include "runtime/batch_query_engine.h"
#include "sampling/samplers.h"
#include "util/alloc_probe.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

namespace innet::bench {
namespace {

int Main(const util::FlagParser& flags) {
  bool tiny = flags.GetBool("tiny");
  core::FrameworkOptions world = DefaultWorld();
  size_t num_queries = 60;
  size_t busy_events = 1'000'000;
  if (tiny) {
    world.road.num_junctions = 120;
    world.road.world_size = 8000.0;
    world.traffic.num_trajectories = 300;
    world.traffic.horizon = 1800.0;
    num_queries = 20;
    busy_events = 100'000;
  }
  JsonReport report("headline");
  report.Note("world", tiny ? "tiny" : "default");

  core::Framework framework(world);
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              network.mobility().NumNodes(), network.NumSensors(),
              network.events().size());
  report.Metric("junctions",
                static_cast<double>(network.mobility().NumNodes()));
  report.Metric("sensors", static_cast<double>(network.NumSensors()));
  report.Metric("events", static_cast<double>(network.events().size()));

  size_t m = std::max<size_t>(
      1, static_cast<size_t>(0.256 * network.NumSensors()));
  // Evaluation workload: 8% regions. The adaptive method deploys for the
  // known query distribution — the workload itself (§4.4).
  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.08, num_queries, 951);
  auto history = std::make_shared<std::vector<core::RangeQuery>>(queries);

  // --- Relative error at 25.6% of sensors, all methods. ---
  util::Table err("Headline: static lower-bound relative error at 25.6% of "
                  "sensors (paper: <= 13.8%)");
  err.SetHeader({"method", "median_err", "p25", "p75", "missed"});
  std::vector<Method> methods = AllMethods(history);
  for (const Method& method : methods) {
    EvalResult result =
        EvaluateMethod(framework, method, m, core::DeploymentOptions{},
                       queries, core::CountKind::kStatic,
                       core::BoundMode::kLower, /*reps=*/3);
    err.AddRow({method.name, util::Table::Num(result.err_median, 3),
                util::Table::Num(result.err_p25, 3),
                util::Table::Num(result.err_p75, 3),
                util::Table::Num(result.missed_fraction, 3)});
    report.Metric(method.name + "_err_median", result.err_median);
    report.Metric(method.name + "_missed_fraction", result.missed_fraction);
  }
  err.Print();

  // --- Speedup and sensors-accessed reduction vs the unsampled graph,
  // measured at the paper's median 6.4% graph size (as in Fig. 11c/d). ---
  sampling::KdTreeSampler sampler;
  util::Rng rng(9);
  size_t m_gain = std::max<size_t>(
      1, static_cast<size_t>(0.064 * network.NumSensors()));
  core::Deployment dep = framework.DeployWithSampler(
      sampler, m_gain, core::DeploymentOptions{}, rng);
  EvalResult sampled = EvaluateDeployment(
      network, dep, queries, core::CountKind::kStatic, core::BoundMode::kLower);
  EvalResult unsampled =
      EvaluateUnsampled(network, queries, core::CountKind::kStatic);
  report.MetricResult("sampled_6p4", sampled);
  report.MetricResult("unsampled", unsampled);

  util::Table sys(
      "Headline: system gains at 6.4% sensors (kd-tree sampler)");
  sys.SetHeader({"metric", "sampled", "unsampled", "gain"});
  double speedup_x =
      unsampled.mean_sim_micros / std::max(sampled.mean_sim_micros, 1e-9);
  char speedup[32];
  std::snprintf(speedup, sizeof(speedup), "%.2fx", speedup_x);
  sys.AddRow({"sim query time (us)",
              util::Table::Num(sampled.mean_sim_micros, 2),
              util::Table::Num(unsampled.mean_sim_micros, 2), speedup});
  double node_reduction = 1.0 - sampled.mean_nodes_accessed /
                                    unsampled.mean_nodes_accessed;
  sys.AddRow({"sensors accessed",
              util::Table::Num(sampled.mean_nodes_accessed, 1),
              util::Table::Num(unsampled.mean_nodes_accessed, 1),
              Percent(node_reduction, 2) + " fewer"});
  sys.Print();
  std::printf("paper: 3.5x speedup, 69.81%% fewer sensors accessed\n\n");
  report.Metric("speedup_x", speedup_x);
  report.Metric("node_reduction", node_reduction);

  // --- Storage reduction from regression models on the same deployment. ---
  util::Rng rng2(9);
  std::vector<graph::NodeId> sensors =
      sampler.Select(network.sensing(), m, rng2);
  core::Deployment exact_dep =
      framework.DeployFromSensors(sensors, core::DeploymentOptions{});
  core::DeploymentOptions learned_options;
  learned_options.store = core::StoreKind::kLearned;
  learned_options.model_type = learned::ModelType::kLinear;
  learned_options.buffer_capacity = 8;
  core::Deployment learned_dep =
      framework.DeployFromSensors(sensors, learned_options);
  double reduction = 1.0 - static_cast<double>(learned_dep.StorageBytes()) /
                               static_cast<double>(exact_dep.StorageBytes());
  std::printf(
      "storage: exact=%zu bytes, linear models=%zu bytes -> %.2f%% reduction "
      "(paper: 99.96%%; grows toward it with stream length since model size "
      "is O(1) per edge)\n",
      exact_dep.StorageBytes(), learned_dep.StorageBytes(),
      reduction * 100.0);
  report.Metric("storage_reduction", reduction);

  // Asymptotic storage behaviour at the paper's per-edge stream lengths: a
  // single busy edge observing ~a million crossings.
  learned::ModelOptions model_options;
  model_options.time_scale = static_cast<double>(busy_events);
  learned::BufferedEdgeStore busy(1, learned::ModelType::kLinear, 8,
                                  model_options);
  for (size_t i = 0; i < busy_events; ++i) {
    busy.RecordTraversal(0, true, static_cast<double>(i));
  }
  double busy_reduction =
      1.0 - static_cast<double>(busy.StorageBytes()) /
                static_cast<double>(busy_events * sizeof(double));
  std::printf(
      "storage asymptote: %zu-event edge, exact=%zu bytes vs model=%zu bytes "
      "-> %.4f%% reduction\n",
      busy_events, busy_events * sizeof(double), busy.StorageBytes(),
      busy_reduction * 100.0);
  report.Metric("storage_reduction_asymptote", busy_reduction);

  // --- Batch serving: the BatchQueryEngine on the same workload, repeated
  // as a polling dashboard would. The boundary cache amortizes face
  // resolution across repetitions; see bench/throughput_scaling for the
  // thread sweep. ---
  std::vector<core::RangeQuery> batch;
  constexpr size_t kBatchRepeats = 16;
  batch.reserve(queries.size() * kBatchRepeats);
  for (size_t r = 0; r < kBatchRepeats; ++r) {
    batch.insert(batch.end(), queries.begin(), queries.end());
  }
  core::SampledQueryProcessor serial = dep.processor();
  util::Timer serial_timer;
  for (const core::RangeQuery& q : batch) {
    serial.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower);
  }
  double serial_seconds = serial_timer.ElapsedSeconds();

  // The engine publishes into the process registry so --metrics-out dumps
  // its counters alongside everything else.
  runtime::BatchEngineOptions engine_options;
  engine_options.num_threads = 8;
  engine_options.registry = &obs::MetricsRegistry::Global();
  runtime::BatchQueryEngine engine(dep.graph(), dep.store(), engine_options);
  engine.AnswerBatch(batch, core::CountKind::kStatic, core::BoundMode::kLower);
  util::Timer warm_timer;
  engine.AnswerBatch(batch, core::CountKind::kStatic, core::BoundMode::kLower);
  double warm_seconds = warm_timer.ElapsedSeconds();
  runtime::BatchEngineSnapshot snap = engine.Snapshot();
  double serial_qps =
      static_cast<double>(batch.size()) / std::max(serial_seconds, 1e-9);
  double warm_qps =
      static_cast<double>(batch.size()) / std::max(warm_seconds, 1e-9);
  std::printf(
      "\nbatch serving (%zu queries, 8 workers): serial %.0f q/s -> "
      "cache-warm %.0f q/s | cache hits %llu / misses %llu | "
      "p50=%.1fus p95=%.1fus\n",
      batch.size(), serial_qps, warm_qps,
      static_cast<unsigned long long>(snap.cache_hits),
      static_cast<unsigned long long>(snap.cache_misses),
      snap.latency_p50_micros, snap.latency_p95_micros);
  report.Metric("batch_serial_qps", serial_qps);
  report.Metric("batch_warm_qps", warm_qps);
  report.Metric("batch_cache_hits", static_cast<double>(snap.cache_hits));
  report.Metric("batch_cache_misses",
                static_cast<double>(snap.cache_misses));
  report.Metric("batch_latency_p50_micros", snap.latency_p50_micros);
  report.Metric("batch_latency_p95_micros", snap.latency_p95_micros);

  // Interleaved A/B overhead measurement: repeats the batch `inner` times
  // per timed section (the tiny world's batch alone is ~100us, far too
  // short to time) and pairs each base section with the variant section
  // timed immediately after it, so a scheduler burst tends to hit both
  // halves of a pair rather than one. Two estimates come back: the MEDIAN
  // pairwise ratio (the honest central estimate, reported) and the
  // QUIETEST (minimum) pairwise ratio (what the CI gates compare, since
  // scheduler noise only ever inflates a section while a real regression
  // inflates every pair — the minimum stays a sound upper-bound check and
  // does not flake on loaded machines). Callers whose variant defers work
  // to a background thread must keep inner=1 — longer sections would time
  // the deferred work's CPU competition, not the enqueue cost.
  struct OverheadEstimate {
    double median = 0.0;    // Central estimate across pairs.
    double quietest = 0.0;  // Minimum pair: noise-free bound, gated on.
  };
  auto measure_overhead = [&](runtime::BatchQueryEngine& base_engine,
                              runtime::BatchQueryEngine& variant_engine,
                              int inner, int reps) {
    std::vector<double> ratios;
    ratios.reserve(static_cast<size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
      util::Timer base_timer;
      for (int i = 0; i < inner; ++i) {
        base_engine.AnswerBatch(batch, core::CountKind::kStatic,
                                core::BoundMode::kLower);
      }
      double base = base_timer.ElapsedSeconds();
      util::Timer variant_timer;
      for (int i = 0; i < inner; ++i) {
        variant_engine.AnswerBatch(batch, core::CountKind::kStatic,
                                   core::BoundMode::kLower);
      }
      double variant = variant_timer.ElapsedSeconds();
      ratios.push_back(variant / std::max(base, 1e-12));
    }
    std::sort(ratios.begin(), ratios.end());
    OverheadEstimate estimate;
    estimate.median = ratios[ratios.size() / 2] - 1.0;
    estimate.quietest = ratios.front() - 1.0;
    return estimate;
  };

  // --- Online accuracy: shadow execution at 1-in-8 must stay (nearly)
  // free on the hot path, since shadow checks run off-peak on their own
  // thread. Both engines are cache-warm. The measured error doubles as
  // the bench's accuracy section. ---
  obs::AccuracyMonitorOptions accuracy_options;
  accuracy_options.shadow_every = 8;
  accuracy_options.total_cells = network.mobility().NumNodes();
  accuracy_options.registry = &obs::MetricsRegistry::Global();
  obs::AccuracyMonitor accuracy(accuracy_options);
  runtime::BatchEngineOptions shadow_options = engine_options;
  shadow_options.accuracy = &accuracy;
  runtime::BatchQueryEngine shadow_engine(dep.graph(), dep.store(),
                                          shadow_options);
  shadow_engine.AnswerBatch(batch, core::CountKind::kStatic,
                            core::BoundMode::kLower);
  OverheadEstimate shadow_overhead =
      measure_overhead(engine, shadow_engine, 1, 5);
  shadow_engine.FlushShadow();
  std::printf(
      "\nshadow accuracy (1-in-8): %llu checks | mean |rel err|=%.4f "
      "signed=%.4f | hot-path overhead %.1f%% (quietest pair %.1f%%)\n",
      static_cast<unsigned long long>(accuracy.Comparisons()),
      accuracy.MeanAbsRelError(), accuracy.MeanSignedRelError(),
      shadow_overhead.median * 100.0, shadow_overhead.quietest * 100.0);
  report.Metric("shadow_checks", static_cast<double>(accuracy.Comparisons()));
  report.Metric("shadow_mean_abs_rel_error", accuracy.MeanAbsRelError());
  report.Metric("shadow_mean_signed_rel_error",
                accuracy.MeanSignedRelError());
  report.Metric("shadow_overhead_fraction", shadow_overhead.quietest);
  if (tiny && shadow_overhead.quietest >= 0.15) {
    std::fprintf(stderr,
                 "FAIL: shadow execution cost %.1f%% of headline throughput "
                 "(budget: <15%%)\n",
                 shadow_overhead.quietest * 100.0);
    return 1;
  }

  // --- Cost accounting: attaching the digest table + slow-query log
  // (docs/OBSERVABILITY.md §9) must cost < 5% of warm batch throughput.
  // Both engines are cache-warm. CI's --tiny gate enforces the budget. ---
  obs::QueryDigestTable digest_table;
  obs::SlowQueryLogOptions slowlog_options;
  slowlog_options.registry = &obs::MetricsRegistry::Global();
  obs::SlowQueryLog slowlog(slowlog_options);  // Memory-only: no file I/O.
  runtime::BatchEngineOptions profiled_options = engine_options;
  profiled_options.digest = &digest_table;
  profiled_options.slowlog = &slowlog;
  runtime::BatchQueryEngine profiled_engine(dep.graph(), dep.store(),
                                            profiled_options);
  profiled_engine.AnswerBatch(batch, core::CountKind::kStatic,
                              core::BoundMode::kLower);
  OverheadEstimate profile_overhead =
      measure_overhead(engine, profiled_engine, tiny ? 20 : 2, 9);
  std::printf(
      "\ncost accounting: %llu queries digested into %zu distinct digests | "
      "hot-path overhead %.1f%% (quietest pair %.1f%%)\n",
      static_cast<unsigned long long>(digest_table.TotalRecorded()),
      digest_table.DistinctDigests(), profile_overhead.median * 100.0,
      profile_overhead.quietest * 100.0);
  report.Metric("digest_records",
                static_cast<double>(digest_table.TotalRecorded()));
  report.Metric("digest_distinct",
                static_cast<double>(digest_table.DistinctDigests()));
  report.Metric("cost_accounting_overhead_fraction",
                profile_overhead.quietest);
  if (tiny && profile_overhead.quietest >= 0.05) {
    std::fprintf(stderr,
                 "FAIL: cost accounting cost %.1f%% of headline throughput "
                 "(budget: <5%%)\n",
                 profile_overhead.quietest * 100.0);
    return 1;
  }

  // --- Frozen-store warm path: per-query heap allocations must be ZERO
  // once the workspace has grown to the deployment (docs/PERFORMANCE.md).
  // CI's bench-smoke job reads warm_query_allocs from the JSON report and
  // fails on any nonzero value. ---
  forms::FrozenTrackingForm frozen = dep.tracking_store()->Freeze();
  core::SampledQueryProcessor frozen_processor(dep.graph(), frozen);
  core::QueryWorkspace workspace;
  double frozen_sum = 0.0;
  for (int round = 0; round < 2; ++round) {  // Warm-up: grow all scratch.
    for (const core::RangeQuery& q : queries) {
      frozen_processor.Answer(q, core::CountKind::kStatic,
                              core::BoundMode::kLower, nullptr, nullptr,
                              &workspace);
    }
  }
  util::AllocProbe probe;
  for (const core::RangeQuery& q : queries) {
    frozen_sum += frozen_processor
                      .Answer(q, core::CountKind::kStatic,
                              core::BoundMode::kLower, nullptr, nullptr,
                              &workspace)
                      .estimate;
  }
  uint64_t warm_allocs = probe.Delta();
  // Same loop with full cost accounting live: filling the workspace cost
  // profile, recording it into the digest table, and taking the slow-log
  // threshold gate must add ZERO allocations (lock-free atomics only).
  util::AllocProbe profiled_probe;
  for (const core::RangeQuery& q : queries) {
    frozen_processor.Answer(q, core::CountKind::kStatic,
                            core::BoundMode::kLower, nullptr, nullptr,
                            &workspace);
    digest_table.Record(workspace.cost);
    if (slowlog.IsSlow(workspace.cost)) {
      (void)slowlog.Admit();  // Reached only on a genuinely slow query.
    }
  }
  uint64_t warm_allocs_profiled = profiled_probe.Delta();
  double tracking_sum = 0.0;
  for (const core::RangeQuery& q : queries) {
    tracking_sum += serial
                        .Answer(q, core::CountKind::kStatic,
                                core::BoundMode::kLower)
                        .estimate;
  }
  std::printf(
      "\nwarm resolve-and-integrate path (frozen store, %zu queries): %llu "
      "heap allocations (want 0; %llu with cost accounting) | "
      "frozen-vs-tracking estimate drift %.17g\n",
      queries.size(), static_cast<unsigned long long>(warm_allocs),
      static_cast<unsigned long long>(warm_allocs_profiled),
      std::abs(frozen_sum - tracking_sum));
  report.Metric("warm_query_allocs", static_cast<double>(warm_allocs));
  report.Metric("warm_query_allocs_profiled",
                static_cast<double>(warm_allocs_profiled));
  report.Metric("frozen_identity_abs_diff",
                std::abs(frozen_sum - tracking_sum));

  if (!report.WriteFlagged(flags)) return 1;
  std::string metrics_out = flags.GetString("metrics-out");
  if (!metrics_out.empty() &&
      !obs::ExportMetricsToFile(obs::MetricsRegistry::Global(),
                                metrics_out)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
