// Reproduces Fig. 11a/11b: lower-bound relative error of TRANSIENT range
// count queries versus sampled-graph size and versus query-region size.
// The submodular method deploys for the known query distribution (the
// evaluation workload), as in Fig. 12.
#include <cstdio>
#include <memory>

#include "baseline/face_sampling.h"
#include "bench/bench_common.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueriesPerConfig = 40;
constexpr size_t kReps = 3;

double BaselineError(const core::Framework& framework, size_t m,
                     const std::vector<core::RangeQuery>& queries) {
  util::Accumulator err;
  for (size_t rep = 0; rep < kReps; ++rep) {
    util::Rng rng(0xba5e + rep);
    baseline::FaceSamplingBaseline base(framework.network(),
                                        framework.trajectories(), m, rng);
    err.Add(EvaluateBaseline(framework.network(), base, queries,
                             core::CountKind::kTransient)
                .err_median);
  }
  return err.Summarize().median;
}

void Sweep(const core::Framework& framework, bool sweep_graph_size,
           JsonReport* report) {
  const core::SensorNetwork& network = framework.network();
  const char* axis = sweep_graph_size ? "graph" : "query";
  util::Table table(sweep_graph_size
                        ? "Fig 11a: transient lower-bound relative error vs "
                          "sampled graph size (query area 4%)"
                        : "Fig 11b: transient lower-bound relative error vs "
                          "query size (graph size 6.4%)");
  std::vector<std::string> header = {sweep_graph_size ? "graph_size"
                                                      : "query_size"};
  for (const Method& method : AllMethods(nullptr)) {
    header.push_back(method.name);
  }
  header.push_back("baseline");
  table.SetHeader(header);

  std::vector<double> sweep =
      sweep_graph_size ? GraphSizeSweep() : QuerySizeSweep();
  for (double x : sweep) {
    size_t m = std::max<size_t>(
        1, static_cast<size_t>((sweep_graph_size ? x : 0.064) *
                               network.NumSensors()));
    double area = sweep_graph_size ? 0.04 : x;
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueriesPerConfig, 911);
    std::vector<Method> methods = AllMethods(
        std::make_shared<std::vector<core::RangeQuery>>(queries));
    std::vector<std::string> row = {Percent(x)};
    std::string at = "_at_" + Percent(x);
    for (const Method& method : methods) {
      EvalResult result = EvaluateMethod(
          framework, method, m, core::DeploymentOptions{}, queries,
          core::CountKind::kTransient, core::BoundMode::kLower, kReps);
      row.push_back(util::Table::Num(result.err_median, 3));
      report->Metric(std::string(axis) + "_" + method.name + at,
                     result.err_median);
    }
    double baseline_err = BaselineError(framework, m, queries);
    row.push_back(util::Table::Num(baseline_err, 3));
    report->Metric(std::string(axis) + "_baseline" + at, baseline_err);
    table.AddRow(row);
  }
  table.Print();
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              framework.network().mobility().NumNodes(),
              framework.network().NumSensors(),
              framework.network().events().size());
  JsonReport report("fig11_transient_error");
  Sweep(framework, /*sweep_graph_size=*/true, &report);
  Sweep(framework, /*sweep_graph_size=*/false, &report);
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
