// Ablation: plain greedy vs lazy-greedy (CELF) submodular maximization
// (§4.4.1). Both select identical sets; CELF skips most marginal-gain
// re-evaluations. Reported on synthetic coverage instances of growing size.
#include <cstdio>

#include "bench/bench_common.h"
#include "placement/submodular.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace innet::bench {
namespace {

placement::CoverageFunction RandomCoverage(size_t items, size_t universe,
                                           double density, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<size_t>> covers(items);
  for (size_t i = 0; i < items; ++i) {
    for (size_t e = 0; e < universe; ++e) {
      if (rng.Bernoulli(density)) covers[i].push_back(e);
    }
  }
  return placement::CoverageFunction(std::move(covers), {}, universe);
}

int Main(const util::FlagParser& flags) {
  JsonReport report("ablation_celf");
  util::Table table("Ablation: plain greedy vs lazy greedy (CELF)");
  table.SetHeader({"items", "budget", "plain_evals", "lazy_evals",
                   "eval_ratio", "plain_ms", "lazy_ms", "same_selection"});
  bool all_same = true;

  for (size_t items : {200, 800, 2000}) {
    size_t universe = items * 4;
    size_t budget = items / 10;
    placement::CoverageFunction f1 =
        RandomCoverage(items, universe, 0.02, items);
    placement::CoverageFunction f2 =
        RandomCoverage(items, universe, 0.02, items);
    std::vector<double> costs(items, 1.0);

    placement::GreedyOptions plain;
    plain.budget = static_cast<double>(budget);
    placement::GreedyOptions lazy = plain;
    lazy.lazy = true;

    util::Timer t1;
    placement::GreedyResult a = placement::GreedyMaximize(f1, costs, plain);
    double plain_ms = t1.ElapsedSeconds() * 1e3;
    util::Timer t2;
    placement::GreedyResult b = placement::GreedyMaximize(f2, costs, lazy);
    double lazy_ms = t2.ElapsedSeconds() * 1e3;

    table.AddRow({std::to_string(items), std::to_string(budget),
                  std::to_string(a.evaluations), std::to_string(b.evaluations),
                  util::Table::Num(static_cast<double>(a.evaluations) /
                                       static_cast<double>(b.evaluations),
                                   1),
                  util::Table::Num(plain_ms, 2), util::Table::Num(lazy_ms, 2),
                  a.selected == b.selected ? "yes" : "NO"});
    all_same = all_same && a.selected == b.selected;
    std::string at = "_at_" + std::to_string(items);
    report.Metric("plain_evals" + at, static_cast<double>(a.evaluations));
    report.Metric("lazy_evals" + at, static_cast<double>(b.evaluations));
    report.Metric("eval_ratio" + at, static_cast<double>(a.evaluations) /
                                         static_cast<double>(b.evaluations));
  }
  table.Print();
  report.Metric("same_selection", all_same ? 1.0 : 0.0);
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
