// Validation of the §4.9 theoretical querying-cost model:
//   |Ñ_P| = (A(Q_R)/A(T_R)) * m * k * ℓ_G
// against the measured in-network footprint of query regions, across query
// sizes and sampled-graph sizes, for triangulation and k-NN connectivity.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/cost_model.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueries = 30;

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors\n\n",
              network.mobility().NumNodes(), network.NumSensors());
  JsonReport report("ablation_costmodel");

  struct Config {
    const char* name;
    core::SampledGraphOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"triangulation", {}});
  core::SampledGraphOptions knn5;
  knn5.connectivity = core::Connectivity::kKnn;
  knn5.knn_k = 5;
  configs.push_back({"knn_k=5", knn5});

  sampling::KdTreeSampler sampler;
  for (const Config& config : configs) {
    size_t m = static_cast<size_t>(0.128 * network.NumSensors());
    util::Rng rng(4);
    std::vector<graph::NodeId> sensors =
        sampler.Select(network.sensing(), m, rng);
    core::DeploymentOptions dop;
    dop.graph = config.options;
    core::Deployment dep = framework.DeployFromSensors(sensors, dop);

    util::Table table(std::string("§4.9 cost model vs measurement (") +
                      config.name + ", graph 12.8%)");
    table.SetHeader({"query_size", "predicted", "measured", "ratio"});
    for (double area : QuerySizeSweep()) {
      std::vector<core::RangeQuery> queries =
          MakeQueries(framework, area, kQueries, 991);
      util::Accumulator measured;
      for (const core::RangeQuery& q : queries) {
        measured.Add(static_cast<double>(
            core::MeasureRegionNodes(dep.graph(), q.junctions)));
      }
      core::CostModelParams params =
          core::EstimateParams(network, config.options, m, area);
      double predicted = core::PredictRegionNodes(params);
      double mean_measured = measured.Summarize().mean;
      table.AddRow({Percent(area), util::Table::Num(predicted, 1),
                    util::Table::Num(mean_measured, 1),
                    util::Table::Num(mean_measured / predicted, 2)});
      std::string at = "_at_" + Percent(area);
      report.Metric(std::string(config.name) + "_predicted" + at, predicted);
      report.Metric(std::string(config.name) + "_measured" + at,
                    mean_measured);
      report.Metric(std::string(config.name) + "_ratio" + at,
                    mean_measured / predicted);
    }
    table.Print();
  }
  std::printf(
      "reading guide: the model predicts linear scaling in the query area "
      "with slope m*k*l_G; a stable measured/predicted ratio across rows "
      "validates the scaling law (the constant absorbs the non-uniformity "
      "of sensor density).\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
