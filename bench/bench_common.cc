#include "bench/bench_common.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <utility>

#include "obs/export.h"
#include "util/logging.h"

namespace innet::bench {

core::FrameworkOptions DefaultWorld(uint64_t seed) {
  core::FrameworkOptions options;
  options.road.num_junctions = 2500;
  options.road.world_size = 30000.0;
  options.traffic.num_trajectories = 8000;
  options.traffic.horizon = 6.0 * 3600.0;
  options.seed = seed;
  return options;
}

std::vector<double> GraphSizeSweep() {
  return {0.004, 0.008, 0.016, 0.032, 0.064, 0.128, 0.256, 0.512};
}

std::vector<double> QuerySizeSweep() {
  return {0.01, 0.02, 0.04, 0.08, 0.16};
}

std::vector<core::RangeQuery> MakeQueries(const core::Framework& framework,
                                          double area_fraction, size_t count,
                                          uint64_t seed) {
  core::WorkloadOptions options;
  options.area_fraction = area_fraction;
  options.horizon = framework.Horizon();
  options.min_duration_fraction = 0.1;
  options.max_duration_fraction = 0.4;
  util::Rng rng(seed);
  return core::GenerateWorkload(framework.network(), options, count, rng);
}

namespace {

struct RawAccumulators {
  util::Accumulator err;
  util::Accumulator nodes;
  util::Accumulator edges;
  util::Accumulator micros;
  util::Accumulator sim_micros;
  util::Accumulator ratio;
  size_t missed = 0;
  size_t total = 0;

  void Add(double truth, const core::QueryAnswer& answer) {
    ++total;
    if (answer.missed) ++missed;
    err.Add(util::RelativeError(truth, answer.estimate));
    nodes.Add(static_cast<double>(answer.nodes_accessed));
    edges.Add(static_cast<double>(answer.edges_accessed));
    micros.Add(answer.exec_micros);
    sim_micros.Add(answer.SimulatedMicros());
    if (truth > 0.0) ratio.Add(answer.estimate / truth);
  }

  EvalResult Finish() const {
    EvalResult result;
    if (!err.empty()) {
      util::Summary s = err.Summarize();
      result.err_median = s.median;
      result.err_p25 = s.p25;
      result.err_p75 = s.p75;
    }
    result.missed_fraction =
        total == 0 ? 0.0
                   : static_cast<double>(missed) / static_cast<double>(total);
    if (!nodes.empty()) result.mean_nodes_accessed = nodes.Summarize().mean;
    if (!edges.empty()) result.mean_edges_accessed = edges.Summarize().mean;
    if (!micros.empty()) result.mean_exec_micros = micros.Summarize().mean;
    if (!sim_micros.empty()) {
      result.mean_sim_micros = sim_micros.Summarize().mean;
    }
    if (!ratio.empty()) result.ratio_mean = ratio.Summarize().mean;
    return result;
  }
};

double Truth(const core::SensorNetwork& network, const core::RangeQuery& q,
             core::CountKind kind) {
  return kind == core::CountKind::kStatic
             ? network.GroundTruthStatic(q.junctions, q.t2)
             : network.GroundTruthTransient(q.junctions, q.t1, q.t2);
}

}  // namespace

EvalResult EvaluateDeployment(const core::SensorNetwork& network,
                              const core::Deployment& deployment,
                              const std::vector<core::RangeQuery>& queries,
                              core::CountKind kind, core::BoundMode bound) {
  core::SampledQueryProcessor processor = deployment.processor();
  RawAccumulators acc;
  for (const core::RangeQuery& q : queries) {
    acc.Add(Truth(network, q, kind), processor.Answer(q, kind, bound));
  }
  return acc.Finish();
}

EvalResult EvaluateUnsampled(const core::SensorNetwork& network,
                             const std::vector<core::RangeQuery>& queries,
                             core::CountKind kind) {
  core::UnsampledQueryProcessor processor(network);
  RawAccumulators acc;
  for (const core::RangeQuery& q : queries) {
    acc.Add(Truth(network, q, kind), processor.Answer(q, kind));
  }
  return acc.Finish();
}

EvalResult EvaluateBaseline(const core::SensorNetwork& network,
                            const baseline::FaceSamplingBaseline& baseline,
                            const std::vector<core::RangeQuery>& queries,
                            core::CountKind kind) {
  RawAccumulators acc;
  for (const core::RangeQuery& q : queries) {
    acc.Add(Truth(network, q, kind), baseline.Answer(q, kind));
  }
  return acc.Finish();
}

std::vector<Method> AllMethods(
    std::shared_ptr<const std::vector<core::RangeQuery>> history) {
  std::vector<Method> methods;
  auto add_sampler = [&methods](std::shared_ptr<sampling::SensorSampler> s) {
    Method m;
    m.name = std::string(s->Name());
    m.deploy = [s](const core::Framework& fw, size_t budget,
                   const core::DeploymentOptions& options, uint64_t rep) {
      util::Rng rng(0x5eed0000 + rep);
      return fw.DeployWithSampler(*s, budget, options, rng);
    };
    methods.push_back(std::move(m));
  };
  add_sampler(std::make_shared<sampling::UniformSampler>());
  add_sampler(std::make_shared<sampling::SystematicSampler>());
  add_sampler(std::make_shared<sampling::StratifiedSampler>());
  add_sampler(std::make_shared<sampling::KdTreeSampler>());
  add_sampler(std::make_shared<sampling::QuadTreeSampler>());

  Method submodular;
  submodular.name = "submodular";
  submodular.deploy = [history](const core::Framework& fw, size_t budget,
                                const core::DeploymentOptions& options,
                                uint64_t rep) {
    (void)rep;  // Deterministic given the history.
    INNET_CHECK(history != nullptr);
    return fw.DeployAdaptive(*history, budget, options);
  };
  methods.push_back(std::move(submodular));
  return methods;
}

EvalResult EvaluateMethod(const core::Framework& framework,
                          const Method& method, size_t m,
                          const core::DeploymentOptions& options,
                          const std::vector<core::RangeQuery>& queries,
                          core::CountKind kind, core::BoundMode bound,
                          size_t reps) {
  RawAccumulators acc;
  const core::SensorNetwork& network = framework.network();
  for (size_t rep = 0; rep < reps; ++rep) {
    core::Deployment deployment = method.deploy(framework, m, options, rep);
    core::SampledQueryProcessor processor = deployment.processor();
    for (const core::RangeQuery& q : queries) {
      acc.Add(Truth(network, q, kind), processor.Answer(q, kind, bound));
    }
  }
  return acc.Finish();
}

std::string Percent(double fraction, int precision) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

JsonReport::JsonReport(std::string bench_name)
    : name_(std::move(bench_name)) {}

void JsonReport::Upsert(
    std::vector<std::pair<std::string, std::string>>* entries,
    const std::string& key, std::string value) {
  for (auto& [existing, stored] : *entries) {
    if (existing == key) {
      stored = std::move(value);
      return;
    }
  }
  entries->emplace_back(key, std::move(value));
}

void JsonReport::Note(const std::string& key, const std::string& value) {
  Upsert(&notes_, key, "\"" + obs::JsonEscape(value) + "\"");
}

void JsonReport::Metric(const std::string& key, double value) {
  std::string rendered;
  if (std::isfinite(value)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    rendered = buf;
  } else {
    rendered = "null";
  }
  Upsert(&metrics_, key, std::move(rendered));
}

void JsonReport::MetricResult(const std::string& prefix,
                              const EvalResult& result) {
  Metric(prefix + "_err_median", result.err_median);
  Metric(prefix + "_err_p25", result.err_p25);
  Metric(prefix + "_err_p75", result.err_p75);
  Metric(prefix + "_missed_fraction", result.missed_fraction);
  Metric(prefix + "_mean_nodes_accessed", result.mean_nodes_accessed);
  Metric(prefix + "_mean_edges_accessed", result.mean_edges_accessed);
  Metric(prefix + "_mean_exec_micros", result.mean_exec_micros);
  Metric(prefix + "_mean_sim_micros", result.mean_sim_micros);
  Metric(prefix + "_ratio_mean", result.ratio_mean);
}

std::string JsonReport::ToJson() const {
  std::string out = "{\"bench\":\"" + obs::JsonEscape(name_) + "\"";
  auto append_section =
      [&out](const char* section,
             const std::vector<std::pair<std::string, std::string>>& entries) {
        out += ",\"";
        out += section;
        out += "\":{";
        bool first = true;
        for (const auto& [key, value] : entries) {
          if (!first) out += ",";
          first = false;
          out += "\"" + obs::JsonEscape(key) + "\":" + value;
        }
        out += "}";
      };
  append_section("notes", notes_);
  append_section("metrics", metrics_);
  out += "}\n";
  return out;
}

bool JsonReport::WriteTo(const std::string& path) const {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out) {
    INNET_LOG(ERROR) << "cannot write " << path;
    return false;
  }
  out << ToJson();
  return static_cast<bool>(out);
}

bool JsonReport::WriteFlagged(const util::FlagParser& flags) const {
  std::string json_path = flags.GetString("json");
  if (flags.Has("json") && json_path.empty()) {
    json_path = "BENCH_" + name_ + ".json";
  }
  return WriteTo(json_path);
}

}  // namespace innet::bench
