// Ablation: differential privacy vs accuracy (§4.1's extension via the
// continual-counting mechanism of Ghosh et al. 2020). Sweeps the privacy
// budget epsilon and reports the median relative error of static counts on
// the unsampled graph and on a 12.8% sampled deployment.
#include <cstdio>

#include "bench/bench_common.h"
#include "forms/region_count.h"
#include "privacy/private_store.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueries = 40;

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              network.mobility().NumNodes(), network.NumSensors(),
              network.events().size());
  JsonReport report("ablation_privacy");

  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.08, kQueries, 961);

  sampling::KdTreeSampler sampler;
  util::Rng rng(3);
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, static_cast<size_t>(0.128 * network.NumSensors()),
      core::DeploymentOptions{}, rng);

  double tree_horizon = framework.Horizon() * 1.5;

  util::Table table(
      "DP ablation: median relative error vs privacy budget epsilon "
      "(static counts, 8% queries; sampled graph at 12.8%)");
  table.SetHeader({"epsilon", "unsampled+DP", "sampled", "sampled+DP",
                   "noise/lookup"});

  for (double epsilon : {0.1, 0.5, 1.0, 5.0, 20.0, 100.0}) {
    privacy::PrivateEdgeStore private_full(network.reference_store(), epsilon,
                                           tree_horizon);
    privacy::PrivateEdgeStore private_sampled(deployment.store(), epsilon,
                                              tree_horizon);
    core::SampledQueryProcessor sampled_plain = deployment.processor();
    core::SampledQueryProcessor sampled_private(deployment.graph(),
                                                private_sampled);

    util::Accumulator err_full;
    util::Accumulator err_sampled;
    util::Accumulator err_sampled_dp;
    for (const core::RangeQuery& q : queries) {
      double truth = network.GroundTruthStatic(q.junctions, q.t2);
      std::vector<forms::BoundaryEdge> boundary =
          network.RegionBoundaryWithVirtual(network.JunctionMask(q.junctions));
      err_full.Add(util::RelativeError(
          truth, forms::EvaluateStaticCount(private_full, boundary, q.t2)));
      err_sampled.Add(util::RelativeError(
          truth, sampled_plain
                     .Answer(q, core::CountKind::kStatic,
                             core::BoundMode::kLower)
                     .estimate));
      err_sampled_dp.Add(util::RelativeError(
          truth, sampled_private
                     .Answer(q, core::CountKind::kStatic,
                             core::BoundMode::kLower)
                     .estimate));
    }
    table.AddRow({util::Table::Num(epsilon, 1),
                  util::Table::Num(err_full.Summarize().median, 3),
                  util::Table::Num(err_sampled.Summarize().median, 3),
                  util::Table::Num(err_sampled_dp.Summarize().median, 3),
                  util::Table::Num(private_full.NoiseScale(), 2)});
    char at[32];
    std::snprintf(at, sizeof(at), "_at_epsilon_%.1f", epsilon);
    report.Metric(std::string("unsampled_dp_err") + at,
                  err_full.Summarize().median);
    report.Metric(std::string("sampled_err") + at,
                  err_sampled.Summarize().median);
    report.Metric(std::string("sampled_dp_err") + at,
                  err_sampled_dp.Summarize().median);
  }
  table.Print();
  std::printf(
      "reading guide: sampling already perturbs counts geometrically; DP "
      "noise dominates below epsilon ~1 and becomes negligible above ~20. "
      "Sampled graphs need fewer noisy lookups (shorter perimeters), so "
      "sampling + DP composes well.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
