// Reproduces Fig. 12: lower-bound relative error of STATIC range count
// queries, (a) versus sampled-graph size and (b) versus query-region size,
// for every sampling method, the submodular query-adaptive method, and the
// Euler-histogram face-sampling baseline.
//
// The submodular method deploys for the KNOWN query distribution (§4.4):
// the evaluation workload itself serves as its historical query regions.
#include <cstdio>
#include <memory>

#include "baseline/face_sampling.h"
#include "bench/bench_common.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueriesPerConfig = 40;
constexpr size_t kReps = 3;

// Median baseline error over kReps face-sampling draws.
double BaselineError(const core::Framework& framework, size_t m,
                     const std::vector<core::RangeQuery>& queries) {
  util::Accumulator err;
  for (size_t rep = 0; rep < kReps; ++rep) {
    util::Rng rng(0xba5e + rep);
    baseline::FaceSamplingBaseline base(framework.network(),
                                        framework.trajectories(), m, rng);
    err.Add(EvaluateBaseline(framework.network(), base, queries,
                             core::CountKind::kStatic)
                .err_median);
  }
  return err.Summarize().median;
}

void RunGraphSizeSweep(const core::Framework& framework, JsonReport* report) {
  const core::SensorNetwork& network = framework.network();
  // Fixed query size (paper: 1.08% of the sensing area; 4% at our smaller
  // scale — see EXPERIMENTS.md).
  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.04, kQueriesPerConfig, 901);
  std::vector<Method> methods = AllMethods(
      std::make_shared<std::vector<core::RangeQuery>>(queries));

  util::Table table(
      "Fig 12a: static lower-bound relative error vs sampled graph size "
      "(query area 4%)");
  std::vector<std::string> header = {"graph_size"};
  for (const Method& m : methods) header.push_back(m.name);
  header.push_back("baseline");
  table.SetHeader(header);

  for (double frac : GraphSizeSweep()) {
    size_t m = std::max<size_t>(
        1, static_cast<size_t>(frac * network.NumSensors()));
    std::vector<std::string> row = {Percent(frac)};
    std::string at = "_at_" + Percent(frac);
    for (const Method& method : methods) {
      EvalResult result = EvaluateMethod(
          framework, method, m, core::DeploymentOptions{}, queries,
          core::CountKind::kStatic, core::BoundMode::kLower, kReps);
      row.push_back(util::Table::Num(result.err_median, 3));
      report->Metric("graph_" + method.name + at, result.err_median);
    }
    double baseline_err = BaselineError(framework, m, queries);
    row.push_back(util::Table::Num(baseline_err, 3));
    report->Metric("graph_baseline" + at, baseline_err);
    table.AddRow(row);
  }
  table.Print();
}

void RunQuerySizeSweep(const core::Framework& framework, JsonReport* report) {
  const core::SensorNetwork& network = framework.network();
  // Fixed sampled-graph size: the paper's median 6%.
  size_t m = static_cast<size_t>(0.064 * network.NumSensors());

  util::Table table(
      "Fig 12b: static lower-bound relative error vs query size "
      "(graph size 6.4%)");
  std::vector<std::string> header = {"query_size"};
  for (const Method& method : AllMethods(nullptr)) {
    header.push_back(method.name);
  }
  header.push_back("baseline");
  table.SetHeader(header);

  for (double area : QuerySizeSweep()) {
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueriesPerConfig, 902);
    std::vector<Method> methods = AllMethods(
        std::make_shared<std::vector<core::RangeQuery>>(queries));
    std::vector<std::string> row = {Percent(area)};
    std::string at = "_at_" + Percent(area);
    for (const Method& method : methods) {
      EvalResult result = EvaluateMethod(
          framework, method, m, core::DeploymentOptions{}, queries,
          core::CountKind::kStatic, core::BoundMode::kLower, kReps);
      row.push_back(util::Table::Num(result.err_median, 3));
      report->Metric("query_" + method.name + at, result.err_median);
    }
    double baseline_err = BaselineError(framework, m, queries);
    row.push_back(util::Table::Num(baseline_err, 3));
    report->Metric("query_baseline" + at, baseline_err);
    table.AddRow(row);
  }
  table.Print();
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  std::printf("world: %zu junctions, %zu roads, %zu sensors, %zu events\n\n",
              framework.network().mobility().NumNodes(),
              framework.network().mobility().NumEdges(),
              framework.network().NumSensors(),
              framework.network().events().size());
  JsonReport report("fig12_static_error");
  RunGraphSizeSweep(framework, &report);
  RunQuerySizeSweep(framework, &report);
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
