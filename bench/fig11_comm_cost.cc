// Reproduces Fig. 11c/11d: communication cost (sensors accessed) and query
// execution time versus query size, comparing sampled graphs at 6.4% and
// 51.2%, the unsampled graph, and the face-sampling baseline.
//
// Expected shapes (§5.4): sampled node access stays near-constant /
// logarithmic in the query area; unsampled and baseline access grow
// linearly; sampled execution time grows with a shallower slope.
#include <cstdio>

#include "baseline/face_sampling.h"
#include "bench/bench_common.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueriesPerConfig = 50;

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              network.mobility().NumNodes(), network.NumSensors(),
              network.events().size());
  JsonReport report("fig11_comm_cost");

  sampling::KdTreeSampler sampler;
  size_t m_small = static_cast<size_t>(0.064 * network.NumSensors());
  size_t m_large = static_cast<size_t>(0.512 * network.NumSensors());
  util::Rng rng1(1);
  util::Rng rng2(2);
  core::Deployment small = framework.DeployWithSampler(
      sampler, m_small, core::DeploymentOptions{}, rng1);
  core::Deployment large = framework.DeployWithSampler(
      sampler, m_large, core::DeploymentOptions{}, rng2);
  util::Rng rng3(3);
  baseline::FaceSamplingBaseline base(network, framework.trajectories(),
                                      m_small, rng3);

  util::Table nodes("Fig 11c: sensors accessed vs query size");
  nodes.SetHeader({"query_size", "sampled_6.4%", "sampled_51.2%", "unsampled",
                   "baseline_6.4%"});
  util::Table time(
      "Fig 11d: simulated query time (us; compute + 5us/sensor contact, "
      "\u00a74.9) vs query size");
  time.SetHeader({"query_size", "sampled_6.4%", "sampled_51.2%", "unsampled"});

  for (double area : QuerySizeSweep()) {
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueriesPerConfig, 921);
    EvalResult r_small =
        EvaluateDeployment(network, small, queries, core::CountKind::kStatic,
                           core::BoundMode::kLower);
    EvalResult r_large =
        EvaluateDeployment(network, large, queries, core::CountKind::kStatic,
                           core::BoundMode::kLower);
    EvalResult r_full =
        EvaluateUnsampled(network, queries, core::CountKind::kStatic);
    EvalResult r_base =
        EvaluateBaseline(network, base, queries, core::CountKind::kStatic);

    nodes.AddRow({Percent(area),
                  util::Table::Num(r_small.mean_nodes_accessed, 1),
                  util::Table::Num(r_large.mean_nodes_accessed, 1),
                  util::Table::Num(r_full.mean_nodes_accessed, 1),
                  util::Table::Num(r_base.mean_nodes_accessed, 1)});
    time.AddRow({Percent(area), util::Table::Num(r_small.mean_sim_micros, 2),
                 util::Table::Num(r_large.mean_sim_micros, 2),
                 util::Table::Num(r_full.mean_sim_micros, 2)});

    std::string at = "_at_" + Percent(area);
    report.Metric("nodes_sampled_6.4" + at, r_small.mean_nodes_accessed);
    report.Metric("nodes_sampled_51.2" + at, r_large.mean_nodes_accessed);
    report.Metric("nodes_unsampled" + at, r_full.mean_nodes_accessed);
    report.Metric("nodes_baseline_6.4" + at, r_base.mean_nodes_accessed);
    report.Metric("sim_micros_sampled_6.4" + at, r_small.mean_sim_micros);
    report.Metric("sim_micros_sampled_51.2" + at, r_large.mean_sim_micros);
    report.Metric("sim_micros_unsampled" + at, r_full.mean_sim_micros);
  }
  nodes.Print();
  time.Print();

  // Summary: the paper's headline 69.81% reduction in sensors accessed.
  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.08, kQueriesPerConfig, 922);
  EvalResult r_small = EvaluateDeployment(
      network, small, queries, core::CountKind::kStatic,
      core::BoundMode::kLower);
  EvalResult r_full =
      EvaluateUnsampled(network, queries, core::CountKind::kStatic);
  double reduction =
      1.0 - r_small.mean_nodes_accessed / r_full.mean_nodes_accessed;
  std::printf(
      "sensors-accessed reduction at 6.4%% graph, 8%% queries: %.2f%% "
      "(paper reports 69.81%%)\n",
      reduction * 100.0);
  report.Metric("sensors_accessed_reduction", reduction);
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
