// Google-benchmark microbenchmarks for the framework's hot paths: crossing
// updates, tracking-form lookups, model observe/predict, routing, and
// sampled-graph construction.
#include <benchmark/benchmark.h>

#include "core/framework.h"
#include "core/live_monitor.h"
#include "core/workload.h"
#include "forms/differential_form.h"
#include "forms/tracking_form.h"
#include "graph/shortest_path.h"
#include "learned/buffered_edge_store.h"
#include "mobility/road_network.h"
#include "sampling/samplers.h"
#include "util/rng.h"

namespace innet {
namespace {

const core::Framework& SharedWorld() {
  static core::Framework* framework = [] {
    core::FrameworkOptions options;
    options.road.num_junctions = 800;
    options.traffic.num_trajectories = 2000;
    options.seed = 99;
    return new core::Framework(options);
  }();
  return *framework;
}

void BM_SnapshotFormUpdate(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  forms::SnapshotForm form(network.mobility().NumEdges());
  util::Rng rng(1);
  size_t num_edges = network.mobility().NumEdges();
  for (auto _ : state) {
    form.RecordTraversal(
        static_cast<graph::EdgeId>(rng.UniformIndex(num_edges)),
        rng.Bernoulli(0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotFormUpdate);

void BM_TrackingFormLookup(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  const forms::TrackingForm& form = network.reference_store();
  util::Rng rng(2);
  size_t num_edges = network.mobility().NumEdges();
  double horizon = SharedWorld().Horizon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(form.CountUpTo(
        static_cast<graph::EdgeId>(rng.UniformIndex(num_edges)),
        rng.Bernoulli(0.5), rng.Uniform(0, horizon)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackingFormLookup);

void BM_ModelObserve(benchmark::State& state) {
  learned::ModelOptions options;
  options.time_scale = 1e6;
  auto type = static_cast<learned::ModelType>(state.range(0));
  auto model = learned::CreateCountModel(type, options);
  double t = 0.0;
  util::Rng rng(3);
  for (auto _ : state) {
    t += rng.Uniform(0.0, 2.0);
    model->Observe(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelObserve)->DenseRange(0, 4)->ArgName("model");

void BM_ModelPredict(benchmark::State& state) {
  learned::ModelOptions options;
  options.time_scale = 1e6;
  auto type = static_cast<learned::ModelType>(state.range(0));
  auto model = learned::CreateCountModel(type, options);
  util::Rng rng(4);
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    t += rng.Uniform(0.0, 2.0);
    model->Observe(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(rng.Uniform(0.0, t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelPredict)->DenseRange(0, 4)->ArgName("model");

void BM_Dijkstra(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  const graph::WeightedAdjacency& adjacency = network.sensing().adjacency();
  util::Rng rng(5);
  std::vector<bool> blocked(network.sensing().NumNodes(), false);
  blocked[network.sensing().ExtNode()] = true;
  for (auto _ : state) {
    graph::NodeId src;
    graph::NodeId dst;
    do {
      src = static_cast<graph::NodeId>(rng.UniformIndex(adjacency.size()));
      dst = static_cast<graph::NodeId>(rng.UniformIndex(adjacency.size()));
    } while (blocked[src] || blocked[dst]);
    benchmark::DoNotOptimize(
        graph::ShortestPath(adjacency, src, dst, &blocked));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dijkstra);

void BM_SampledGraphConstruction(benchmark::State& state) {
  const core::Framework& framework = SharedWorld();
  sampling::KdTreeSampler sampler;
  size_t m = framework.network().NumSensors() *
             static_cast<size_t>(state.range(0)) / 100;
  for (auto _ : state) {
    util::Rng rng(6);
    core::Deployment dep = framework.DeployWithSampler(
        sampler, m, core::DeploymentOptions{}, rng);
    benchmark::DoNotOptimize(dep.graph().NumFaces());
  }
}
BENCHMARK(BM_SampledGraphConstruction)
    ->Arg(5)
    ->Arg(25)
    ->ArgName("pct_sensors")
    ->Unit(benchmark::kMillisecond);

void BM_SampledQuery(benchmark::State& state) {
  const core::Framework& framework = SharedWorld();
  sampling::KdTreeSampler sampler;
  util::Rng rng(7);
  static core::Deployment* dep = new core::Deployment(
      framework.DeployWithSampler(sampler,
                                  framework.network().NumSensors() / 4,
                                  core::DeploymentOptions{}, rng));
  core::SampledQueryProcessor processor = dep->processor();
  core::WorkloadOptions wo;
  wo.area_fraction = 0.05;
  wo.horizon = framework.Horizon();
  util::Rng qrng(8);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(framework.network(), wo, 50, qrng);
  size_t i = 0;
  for (auto _ : state) {
    const core::RangeQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(processor.Answer(q, core::CountKind::kStatic,
                                              core::BoundMode::kLower));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledQuery);

void BM_RegionResolution(benchmark::State& state) {
  // R-tree-backed JunctionsInRect (the query-dispatch front end).
  const auto& framework = SharedWorld();
  const auto& network = framework.network();
  const geometry::Rect& domain = network.DomainBounds();
  util::Rng rng(11);
  for (auto _ : state) {
    double w = domain.Width() * 0.2;
    double x0 = domain.min_x + rng.Uniform(0.0, domain.Width() - w);
    double y0 = domain.min_y + rng.Uniform(0.0, domain.Height() - w);
    benchmark::DoNotOptimize(
        network.JunctionsInRect(geometry::Rect(x0, y0, x0 + w, y0 + w)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegionResolution);

void BM_LiveMonitorEvent(benchmark::State& state) {
  const auto& framework = SharedWorld();
  const auto& network = framework.network();
  core::WorkloadOptions wo;
  wo.area_fraction = 0.1;
  wo.horizon = framework.Horizon();
  util::Rng rng(12);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(network, wo, 1, rng);
  core::LiveRegionMonitor monitor(network, queries[0].junctions);
  const auto& events = network.events();
  size_t i = 0;
  for (auto _ : state) {
    // Cycling the stream would violate time order at the wrap; clamp the
    // timestamp (count arithmetic is order-insensitive).
    mobility::CrossingEvent event = events[i++ % events.size()];
    if (event.time < monitor.LastEventTime()) {
      event.time = monitor.LastEventTime();
    }
    monitor.OnEvent(event);
  }
  benchmark::DoNotOptimize(monitor.CurrentCount());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveMonitorEvent);

void BM_UnsampledQuery(benchmark::State& state) {
  const core::Framework& framework = SharedWorld();
  core::UnsampledQueryProcessor processor(framework.network());
  core::WorkloadOptions wo;
  wo.area_fraction = 0.05;
  wo.horizon = framework.Horizon();
  util::Rng qrng(9);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(framework.network(), wo, 50, qrng);
  size_t i = 0;
  for (auto _ : state) {
    const core::RangeQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(processor.Answer(q, core::CountKind::kStatic));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnsampledQuery);

}  // namespace
}  // namespace innet

BENCHMARK_MAIN();
