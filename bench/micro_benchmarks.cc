// Google-benchmark microbenchmarks for the framework's hot paths: crossing
// updates, tracking-form lookups, model observe/predict, routing, and
// sampled-graph construction.
//
// Two modes:
//   (default)      the usual google-benchmark runner and flags
//   --json[=PATH]  a DETERMINISTIC kernel before/after harness instead:
//                  times the virtual (TrackingForm) integration path against
//                  the fused FrozenTrackingForm kernels on one fixed world,
//                  verifies bit-identity, counts warm-path allocations, and
//                  writes a JsonReport (default BENCH_kernels.json) whose
//                  schema CI's bench-smoke job validates.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/framework.h"
#include "core/live_monitor.h"
#include "core/query_workspace.h"
#include "core/workload.h"
#include "forms/differential_form.h"
#include "forms/frozen_tracking_form.h"
#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "graph/shortest_path.h"
#include "learned/buffered_edge_store.h"
#include "mobility/road_network.h"
#include "sampling/samplers.h"
#include "util/alloc_probe.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/timer.h"

namespace innet {
namespace {

const core::Framework& SharedWorld() {
  static core::Framework* framework = [] {
    core::FrameworkOptions options;
    options.road.num_junctions = 800;
    options.traffic.num_trajectories = 2000;
    options.seed = 99;
    return new core::Framework(options);
  }();
  return *framework;
}

void BM_SnapshotFormUpdate(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  forms::SnapshotForm form(network.mobility().NumEdges());
  util::Rng rng(1);
  size_t num_edges = network.mobility().NumEdges();
  for (auto _ : state) {
    form.RecordTraversal(
        static_cast<graph::EdgeId>(rng.UniformIndex(num_edges)),
        rng.Bernoulli(0.5));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SnapshotFormUpdate);

void BM_TrackingFormLookup(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  const forms::TrackingForm& form = network.reference_store();
  util::Rng rng(2);
  size_t num_edges = network.mobility().NumEdges();
  double horizon = SharedWorld().Horizon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(form.CountUpTo(
        static_cast<graph::EdgeId>(rng.UniformIndex(num_edges)),
        rng.Bernoulli(0.5), rng.Uniform(0, horizon)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackingFormLookup);

void BM_FrozenFormLookup(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  static const forms::FrozenTrackingForm* frozen =
      new forms::FrozenTrackingForm(network.reference_store().Freeze());
  util::Rng rng(2);  // Same stream as BM_TrackingFormLookup.
  size_t num_edges = network.mobility().NumEdges();
  double horizon = SharedWorld().Horizon();
  for (auto _ : state) {
    benchmark::DoNotOptimize(frozen->CountUpToFast(
        static_cast<graph::EdgeId>(rng.UniformIndex(num_edges)),
        rng.Bernoulli(0.5), rng.Uniform(0, horizon)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrozenFormLookup);

void BM_ModelObserve(benchmark::State& state) {
  learned::ModelOptions options;
  options.time_scale = 1e6;
  auto type = static_cast<learned::ModelType>(state.range(0));
  auto model = learned::CreateCountModel(type, options);
  double t = 0.0;
  util::Rng rng(3);
  for (auto _ : state) {
    t += rng.Uniform(0.0, 2.0);
    model->Observe(t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelObserve)->DenseRange(0, 4)->ArgName("model");

void BM_ModelPredict(benchmark::State& state) {
  learned::ModelOptions options;
  options.time_scale = 1e6;
  auto type = static_cast<learned::ModelType>(state.range(0));
  auto model = learned::CreateCountModel(type, options);
  util::Rng rng(4);
  double t = 0.0;
  for (int i = 0; i < 10000; ++i) {
    t += rng.Uniform(0.0, 2.0);
    model->Observe(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->Predict(rng.Uniform(0.0, t)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ModelPredict)->DenseRange(0, 4)->ArgName("model");

void BM_Dijkstra(benchmark::State& state) {
  const auto& network = SharedWorld().network();
  const graph::WeightedAdjacency& adjacency = network.sensing().adjacency();
  util::Rng rng(5);
  std::vector<bool> blocked(network.sensing().NumNodes(), false);
  blocked[network.sensing().ExtNode()] = true;
  for (auto _ : state) {
    graph::NodeId src;
    graph::NodeId dst;
    do {
      src = static_cast<graph::NodeId>(rng.UniformIndex(adjacency.size()));
      dst = static_cast<graph::NodeId>(rng.UniformIndex(adjacency.size()));
    } while (blocked[src] || blocked[dst]);
    benchmark::DoNotOptimize(
        graph::ShortestPath(adjacency, src, dst, &blocked));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Dijkstra);

void BM_SampledGraphConstruction(benchmark::State& state) {
  const core::Framework& framework = SharedWorld();
  sampling::KdTreeSampler sampler;
  size_t m = framework.network().NumSensors() *
             static_cast<size_t>(state.range(0)) / 100;
  for (auto _ : state) {
    util::Rng rng(6);
    core::Deployment dep = framework.DeployWithSampler(
        sampler, m, core::DeploymentOptions{}, rng);
    benchmark::DoNotOptimize(dep.graph().NumFaces());
  }
}
BENCHMARK(BM_SampledGraphConstruction)
    ->Arg(5)
    ->Arg(25)
    ->ArgName("pct_sensors")
    ->Unit(benchmark::kMillisecond);

// Shared deployment for the query benches (built once; kd-tree, 1/4 of the
// sensors, exact tracking store).
const core::Deployment& SharedDeployment() {
  static core::Deployment* dep = [] {
    sampling::KdTreeSampler sampler;
    util::Rng rng(7);
    return new core::Deployment(SharedWorld().DeployWithSampler(
        sampler, SharedWorld().network().NumSensors() / 4,
        core::DeploymentOptions{}, rng));
  }();
  return *dep;
}

const forms::FrozenTrackingForm& SharedFrozenStore() {
  static forms::FrozenTrackingForm* frozen = new forms::FrozenTrackingForm(
      SharedDeployment().tracking_store()->Freeze());
  return *frozen;
}

std::vector<core::RangeQuery> SharedQueries() {
  core::WorkloadOptions wo;
  wo.area_fraction = 0.05;
  wo.horizon = SharedWorld().Horizon();
  util::Rng qrng(8);
  return core::GenerateWorkload(SharedWorld().network(), wo, 50, qrng);
}

void BM_SampledQuery(benchmark::State& state) {
  core::SampledQueryProcessor processor = SharedDeployment().processor();
  std::vector<core::RangeQuery> queries = SharedQueries();
  size_t i = 0;
  for (auto _ : state) {
    const core::RangeQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(processor.Answer(q, core::CountKind::kStatic,
                                              core::BoundMode::kLower));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledQuery);

void BM_SampledQueryFrozen(benchmark::State& state) {
  // BM_SampledQuery on the frozen store: same deployment, same workload,
  // devirtualized fused integration.
  core::SampledQueryProcessor processor(SharedDeployment().graph(),
                                        SharedFrozenStore());
  std::vector<core::RangeQuery> queries = SharedQueries();
  size_t i = 0;
  for (auto _ : state) {
    const core::RangeQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(processor.Answer(q, core::CountKind::kStatic,
                                              core::BoundMode::kLower));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SampledQueryFrozen);

void BM_AnswerSeries(benchmark::State& state) {
  // state.range(0) == 1 uses the frozen store (batch kernel), 0 the
  // tracking form (one scan per instant).
  bool use_frozen = state.range(0) == 1;
  core::SampledQueryProcessor tracking = SharedDeployment().processor();
  core::SampledQueryProcessor frozen(SharedDeployment().graph(),
                                     SharedFrozenStore());
  core::SampledQueryProcessor& processor = use_frozen ? frozen : tracking;
  std::vector<core::RangeQuery> queries = SharedQueries();
  size_t i = 0;
  for (auto _ : state) {
    const core::RangeQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(
        processor.AnswerSeries(q, core::BoundMode::kLower, 256));
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_AnswerSeries)->Arg(0)->Arg(1)->ArgName("frozen");

void BM_RegionResolution(benchmark::State& state) {
  // R-tree-backed JunctionsInRect (the query-dispatch front end).
  const auto& framework = SharedWorld();
  const auto& network = framework.network();
  const geometry::Rect& domain = network.DomainBounds();
  util::Rng rng(11);
  for (auto _ : state) {
    double w = domain.Width() * 0.2;
    double x0 = domain.min_x + rng.Uniform(0.0, domain.Width() - w);
    double y0 = domain.min_y + rng.Uniform(0.0, domain.Height() - w);
    benchmark::DoNotOptimize(
        network.JunctionsInRect(geometry::Rect(x0, y0, x0 + w, y0 + w)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegionResolution);

void BM_LiveMonitorEvent(benchmark::State& state) {
  const auto& framework = SharedWorld();
  const auto& network = framework.network();
  core::WorkloadOptions wo;
  wo.area_fraction = 0.1;
  wo.horizon = framework.Horizon();
  util::Rng rng(12);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(network, wo, 1, rng);
  core::LiveRegionMonitor monitor(network, queries[0].junctions);
  const auto& events = network.events();
  size_t i = 0;
  for (auto _ : state) {
    // Cycling the stream would violate time order at the wrap; clamp the
    // timestamp (count arithmetic is order-insensitive).
    mobility::CrossingEvent event = events[i++ % events.size()];
    if (event.time < monitor.LastEventTime()) {
      event.time = monitor.LastEventTime();
    }
    monitor.OnEvent(event);
  }
  benchmark::DoNotOptimize(monitor.CurrentCount());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LiveMonitorEvent);

void BM_UnsampledQuery(benchmark::State& state) {
  const core::Framework& framework = SharedWorld();
  core::UnsampledQueryProcessor processor(framework.network());
  core::WorkloadOptions wo;
  wo.area_fraction = 0.05;
  wo.horizon = framework.Horizon();
  util::Rng qrng(9);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(framework.network(), wo, 50, qrng);
  size_t i = 0;
  for (auto _ : state) {
    const core::RangeQuery& q = queries[i++ % queries.size()];
    benchmark::DoNotOptimize(processor.Answer(q, core::CountKind::kStatic));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnsampledQuery);

// --- Deterministic kernel before/after harness (--json mode). -------------

// Nanoseconds per call of `fn` over `reps` repetitions of `work` inner
// calls, with a warm-up pass first.
template <typename Fn>
double TimePerCallNs(size_t reps, size_t work, const Fn& fn) {
  fn();  // Warm caches and any lazy state outside the timed window.
  util::Timer timer;
  for (size_t r = 0; r < reps; ++r) fn();
  return timer.ElapsedMicros() * 1000.0 /
         static_cast<double>(reps * work);
}

int KernelReport(const util::FlagParser& flags) {
  // A fixed mid-size world: big enough for stable kernel timings, small
  // enough that CI's bench-smoke job runs it in seconds.
  core::FrameworkOptions world;
  world.road.num_junctions = 400;
  world.traffic.num_trajectories = 1200;
  world.seed = 99;
  core::Framework framework(world);
  sampling::KdTreeSampler sampler;
  util::Rng rng(7);
  core::Deployment dep = framework.DeployWithSampler(
      sampler, framework.network().NumSensors() / 4, core::DeploymentOptions{},
      rng);
  const forms::TrackingForm& tracking = *dep.tracking_store();
  const forms::EdgeCountStore& virt = tracking;  // Virtual dispatch path.
  forms::FrozenTrackingForm frozen = tracking.Freeze();

  core::WorkloadOptions wo;
  wo.area_fraction = 0.05;
  wo.horizon = framework.Horizon();
  util::Rng qrng(8);
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(framework.network(), wo, 120, qrng);

  // Pre-resolve every query's boundary once: the harness times the
  // INTEGRATION kernels, not face resolution.
  std::vector<core::SampledGraph::RegionBoundary> boundaries;
  std::vector<const core::RangeQuery*> resolved_queries;
  size_t boundary_edges = 0;
  for (const core::RangeQuery& q : queries) {
    std::vector<uint32_t> faces = dep.graph().LowerBoundFaces(q.junctions);
    if (faces.empty()) continue;
    boundaries.push_back(dep.graph().BoundaryOfFaces(faces));
    resolved_queries.push_back(&q);
    boundary_edges += boundaries.back().edges.size();
  }

  bench::JsonReport report("kernels");
  report.Note("world", "400j/1200t");
  report.Note("simd", util::simd::ActiveSimdName());
  report.Metric("queries", static_cast<double>(resolved_queries.size()));
  report.Metric("mean_boundary_edges",
                boundaries.empty()
                    ? 0.0
                    : static_cast<double>(boundary_edges) /
                          static_cast<double>(boundaries.size()));
  report.Metric("store_events", static_cast<double>(tracking.TotalEvents()));
  report.Metric("frozen_index_bytes",
                static_cast<double>(frozen.IndexBytes()));

  // Bit-identity first: the speedup numbers are meaningless if the fused
  // kernels drift. Any nonzero drift fails the harness (and CI).
  double drift = 0.0;
  for (size_t i = 0; i < boundaries.size(); ++i) {
    const core::RangeQuery& q = *resolved_queries[i];
    const auto& edges = boundaries[i].edges;
    drift += std::abs(forms::EvaluateStaticCount(frozen, edges, q.t2) -
                      forms::EvaluateStaticCount(virt, edges, q.t2));
    drift += std::abs(
        forms::EvaluateTransientCount(frozen, edges, q.t1, q.t2) -
        forms::EvaluateTransientCount(virt, edges, q.t1, q.t2));
  }
  report.Metric("identity_abs_drift", drift);

  // Static-count integration: virtual per-edge CountUpTo vs fused kernel.
  constexpr size_t kReps = 120;
  double sink = 0.0;
  double static_virtual_ns =
      TimePerCallNs(kReps, boundaries.size(), [&] {
        for (size_t i = 0; i < boundaries.size(); ++i) {
          sink += forms::EvaluateStaticCount(virt, boundaries[i].edges,
                                             resolved_queries[i]->t2);
        }
      });
  double static_fused_ns =
      TimePerCallNs(kReps, boundaries.size(), [&] {
        for (size_t i = 0; i < boundaries.size(); ++i) {
          sink += forms::EvaluateStaticCount(frozen, boundaries[i].edges,
                                             resolved_queries[i]->t2);
        }
      });
  report.Metric("static_count_virtual_ns", static_virtual_ns);
  report.Metric("static_count_fused_ns", static_fused_ns);
  report.Metric("static_count_speedup_x",
                static_virtual_ns / std::max(static_fused_ns, 1e-9));

  // Transient-count integration.
  double transient_virtual_ns =
      TimePerCallNs(kReps, boundaries.size(), [&] {
        for (size_t i = 0; i < boundaries.size(); ++i) {
          sink += forms::EvaluateTransientCount(virt, boundaries[i].edges,
                                                resolved_queries[i]->t1,
                                                resolved_queries[i]->t2);
        }
      });
  double transient_fused_ns =
      TimePerCallNs(kReps, boundaries.size(), [&] {
        for (size_t i = 0; i < boundaries.size(); ++i) {
          sink += forms::EvaluateTransientCount(frozen, boundaries[i].edges,
                                                resolved_queries[i]->t1,
                                                resolved_queries[i]->t2);
        }
      });
  report.Metric("transient_count_virtual_ns", transient_virtual_ns);
  report.Metric("transient_count_fused_ns", transient_fused_ns);
  report.Metric("transient_count_speedup_x",
                transient_virtual_ns / std::max(transient_fused_ns, 1e-9));

  // Point lookups: CountUpTo virtual binary search vs bucketed frozen scan.
  constexpr size_t kProbes = 1 << 15;
  std::vector<graph::EdgeId> probe_edges(kProbes);
  std::vector<bool> probe_dirs(kProbes);
  std::vector<double> probe_times(kProbes);
  util::Rng prng(10);
  for (size_t i = 0; i < kProbes; ++i) {
    probe_edges[i] = static_cast<graph::EdgeId>(
        prng.UniformIndex(framework.network().mobility().NumEdges()));
    probe_dirs[i] = prng.Bernoulli(0.5);
    probe_times[i] = prng.Uniform(0.0, framework.Horizon());
  }
  double lookup_virtual_ns = TimePerCallNs(8, kProbes, [&] {
    for (size_t i = 0; i < kProbes; ++i) {
      sink += virt.CountUpTo(probe_edges[i], probe_dirs[i], probe_times[i]);
    }
  });
  double lookup_fused_ns = TimePerCallNs(8, kProbes, [&] {
    for (size_t i = 0; i < kProbes; ++i) {
      sink += frozen.CountUpToFast(probe_edges[i], probe_dirs[i],
                                   probe_times[i]);
    }
  });
  report.Metric("lookup_virtual_ns", lookup_virtual_ns);
  report.Metric("lookup_fused_ns", lookup_fused_ns);
  report.Metric("lookup_speedup_x",
                lookup_virtual_ns / std::max(lookup_fused_ns, 1e-9));

  // AnswerSeries: per-instant scans vs the single-pass batch merge kernel.
  constexpr size_t kSteps = 256;
  core::SampledQueryProcessor tracking_proc = dep.processor();
  core::SampledQueryProcessor frozen_proc(dep.graph(), frozen);
  double series_virtual_ns =
      TimePerCallNs(4, resolved_queries.size() * kSteps, [&] {
        for (const core::RangeQuery* q : resolved_queries) {
          std::vector<double> s =
              tracking_proc.AnswerSeries(*q, core::BoundMode::kLower, kSteps);
          sink += s.empty() ? 0.0 : s.back();
        }
      });
  double series_batch_ns =
      TimePerCallNs(4, resolved_queries.size() * kSteps, [&] {
        for (const core::RangeQuery* q : resolved_queries) {
          std::vector<double> s =
              frozen_proc.AnswerSeries(*q, core::BoundMode::kLower, kSteps);
          sink += s.empty() ? 0.0 : s.back();
        }
      });
  report.Metric("series_virtual_ns_per_step", series_virtual_ns);
  report.Metric("series_batch_ns_per_step", series_batch_ns);
  report.Metric("series_speedup_x",
                series_virtual_ns / std::max(series_batch_ns, 1e-9));

  // Warm-path allocation count: after warm-up, a workspace-threaded query
  // must not touch the heap (the same invariant tests/workspace_test.cc
  // pins; reported here so the bench artifact records it per commit).
  core::QueryWorkspace workspace;
  for (int round = 0; round < 2; ++round) {
    for (const core::RangeQuery* q : resolved_queries) {
      frozen_proc.Answer(*q, core::CountKind::kStatic, core::BoundMode::kLower,
                         nullptr, nullptr, &workspace);
    }
  }
  util::AllocProbe alloc_probe;
  for (const core::RangeQuery* q : resolved_queries) {
    frozen_proc.Answer(*q, core::CountKind::kStatic, core::BoundMode::kLower,
                       nullptr, nullptr, &workspace);
  }
  const uint64_t warm_allocs = alloc_probe.Delta();
  report.Metric("warm_query_allocs", static_cast<double>(warm_allocs));

  if (sink == -1.0) std::printf("unreachable %f\n", sink);  // Keep sink live.
  std::printf(
      "kernels: static %.1f -> %.1f ns (%.2fx) | transient %.1f -> %.1f ns "
      "(%.2fx) | lookup %.1f -> %.1f ns (%.2fx) | series %.2f -> %.2f "
      "ns/step (%.2fx) | drift %g | warm allocs %.0f\n",
      static_virtual_ns, static_fused_ns,
      static_virtual_ns / std::max(static_fused_ns, 1e-9),
      transient_virtual_ns, transient_fused_ns,
      transient_virtual_ns / std::max(transient_fused_ns, 1e-9),
      lookup_virtual_ns, lookup_fused_ns,
      lookup_virtual_ns / std::max(lookup_fused_ns, 1e-9), series_virtual_ns,
      series_batch_ns, series_virtual_ns / std::max(series_batch_ns, 1e-9),
      drift, static_cast<double>(warm_allocs));

  if (drift != 0.0) {
    std::fprintf(stderr, "FAIL: fused kernels drifted from the virtual path "
                         "(abs drift %g)\n", drift);
    return 1;
  }
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  if (flags.Has("json")) {
    // Deterministic kernel report mode (CI's bench-smoke artifact);
    // google-benchmark never initializes.
    return innet::KernelReport(flags);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
