// Reproduces Fig. 11e: per-edge storage distribution — exact timestamp
// sequences versus constant-size regression models. The paper plots the CDF
// of per-edge storage; we print the CDF at decile storage thresholds plus
// totals (headline: 99.96% storage reduction).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

std::vector<size_t> PerEdgeBytes(const core::Deployment& deployment) {
  std::vector<size_t> bytes;
  for (graph::EdgeId e : deployment.graph().monitored_edges()) {
    bytes.push_back(deployment.store().StorageBytesForEdge(e));
  }
  std::sort(bytes.begin(), bytes.end());
  return bytes;
}

double CdfAt(const std::vector<size_t>& sorted, size_t threshold) {
  auto it = std::upper_bound(sorted.begin(), sorted.end(), threshold);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(std::max<size_t>(1, sorted.size()));
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              network.mobility().NumNodes(), network.NumSensors(),
              network.events().size());
  JsonReport report("fig11_storage");

  sampling::KdTreeSampler sampler;
  size_t m = static_cast<size_t>(0.256 * network.NumSensors());
  util::Rng rng(7);
  std::vector<graph::NodeId> sensors =
      sampler.Select(network.sensing(), m, rng);

  core::DeploymentOptions exact;
  core::Deployment exact_dep = framework.DeployFromSensors(sensors, exact);

  struct Learned {
    const char* name;
    learned::ModelType type;
  };
  std::vector<Learned> models = {
      {"linear", learned::ModelType::kLinear},
      {"cubic", learned::ModelType::kCubic},
      {"pw-linear", learned::ModelType::kPiecewiseLinear},
      {"pw-constant", learned::ModelType::kPiecewiseConstant},
  };

  std::vector<core::Deployment> learned_deps;
  for (const Learned& model : models) {
    core::DeploymentOptions options;
    options.store = core::StoreKind::kLearned;
    options.model_type = model.type;
    options.buffer_capacity = 16;
    options.pla_epsilon = 8.0;
    learned_deps.push_back(framework.DeployFromSensors(sensors, options));
  }

  util::Table table(
      "Fig 11e: CDF of per-edge storage (fraction of monitored edges with "
      "storage <= threshold bytes)");
  std::vector<std::string> header = {"bytes", "exact"};
  for (const Learned& model : models) header.push_back(model.name);
  table.SetHeader(header);

  std::vector<size_t> exact_bytes = PerEdgeBytes(exact_dep);
  std::vector<std::vector<size_t>> learned_bytes;
  for (const core::Deployment& dep : learned_deps) {
    learned_bytes.push_back(PerEdgeBytes(dep));
  }
  for (size_t threshold : {8, 32, 64, 128, 256, 512, 1024, 4096, 16384}) {
    std::vector<std::string> row = {std::to_string(threshold)};
    row.push_back(util::Table::Num(CdfAt(exact_bytes, threshold), 3));
    for (const auto& bytes : learned_bytes) {
      row.push_back(util::Table::Num(CdfAt(bytes, threshold), 3));
    }
    table.AddRow(row);
  }
  table.Print();

  util::Table totals("Total monitored-edge storage and reduction vs exact");
  totals.SetHeader({"store", "bytes", "reduction"});
  size_t exact_total = exact_dep.StorageBytes();
  totals.AddRow({"exact", std::to_string(exact_total), "-"});
  report.Metric("exact_bytes", static_cast<double>(exact_total));
  for (size_t i = 0; i < models.size(); ++i) {
    size_t bytes = learned_deps[i].StorageBytes();
    double reduction =
        1.0 - static_cast<double>(bytes) / static_cast<double>(exact_total);
    totals.AddRow({models[i].name, std::to_string(bytes),
                   Percent(reduction, 2)});
    std::string name = models[i].name;
    report.Metric(name + "_bytes", static_cast<double>(bytes));
    report.Metric(name + "_reduction", reduction);
  }
  totals.Print();
  std::printf("paper headline: 99.96%% storage reduction with constant-size "
              "models\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
