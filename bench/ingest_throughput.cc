// Live-ingestion benchmark: sustained events/sec through the reorder-buffer
// → IngestPipeline → incremental re-freeze path, plus the two invariants CI
// gates on (docs/PERFORMANCE.md §"Live ingestion"):
//
//   refreeze_drift == 0      incremental re-freeze is bit-identical to a
//                            from-scratch Freeze() of the same stream
//   warm_query_allocs == 0   a warm handle-mode reader performs zero heap
//                            allocations while the freezer publishes
//                            generations underneath it
//   recovery_drift == 0      the store recovered from the durable phase's
//                            WAL (snapshot + tail replay) is bit-identical
//                            to the scratch store
//
// The durable phase re-runs the same stream with a WAL group-commit on
// every epoch close (docs/PERFORMANCE.md §"Durability"), reporting
// ingest_events_per_sec_durable, durability_overhead_fraction,
// wal_fsync_p95_micros, wal_bytes_total, and recovery_replay_events.
//
// Flags:
//   --tiny             small world (~120 junctions) for CI smoke runs
//   --json[=PATH]      machine-readable report (default BENCH_ingest.json)
//   --metrics-out=PATH dump the bench's metrics registry on exit
#include <cstdlib>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "bench/bench_common.h"
#include "core/event_buffer.h"
#include "core/query_processor.h"
#include "forms/frozen_tracking_form.h"
#include "forms/tracking_form.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/ingest_pipeline.h"
#include "runtime/recovery.h"
#include "sampling/samplers.h"
#include "util/alloc_probe.h"
#include "util/flags.h"
#include "util/timer.h"

namespace innet::bench {
namespace {

using mobility::CrossingEvent;

// The monitored slice of the network stream in delivery order, deduplicated
// on (time, edge, forward): the reorder buffer suppresses exact duplicates,
// so the scratch reference must see the same admitted set.
std::vector<CrossingEvent> MonitoredStream(const core::SensorNetwork& network,
                                           const core::Deployment& dep) {
  std::vector<CrossingEvent> events;
  for (const CrossingEvent& e : network.events()) {
    if (dep.graph().IsMonitored(e.edge)) events.push_back(e);
  }
  std::sort(events.begin(), events.end(),
            [](const CrossingEvent& a, const CrossingEvent& b) {
              return std::tie(a.time, a.edge, a.forward) <
                     std::tie(b.time, b.edge, b.forward);
            });
  events.erase(std::unique(events.begin(), events.end(),
                           [](const CrossingEvent& a, const CrossingEvent& b) {
                             return a.time == b.time && a.edge == b.edge &&
                                    a.forward == b.forward;
                           }),
               events.end());
  return events;
}

// Exhaustive store comparison: per-slot counts plus the prefix count at
// every stored timestamp and a nudge on each side. Returns the number of
// mismatching probes (the bench's refreeze_drift — must be zero).
uint64_t CountDrift(const forms::FrozenTrackingForm& incremental,
                    const forms::TrackingForm& reference) {
  uint64_t drift = 0;
  if (incremental.TotalEvents() != reference.TotalEvents()) ++drift;
  for (graph::EdgeId e = 0; e < reference.num_edges(); ++e) {
    for (bool forward : {true, false}) {
      if (incremental.EventCount(e, forward) !=
          reference.EventCount(e, forward)) {
        ++drift;
        continue;
      }
      for (double t : reference.Sequence(e, forward)) {
        for (double probe :
             {t, std::nextafter(t, -1e30), std::nextafter(t, 1e30)}) {
          if (incremental.CountUpTo(e, forward, probe) !=
              reference.CountUpTo(e, forward, probe)) {
            ++drift;
          }
        }
      }
    }
  }
  return drift;
}

int Main(const util::FlagParser& flags) {
  bool tiny = flags.GetBool("tiny");
  core::FrameworkOptions world = DefaultWorld();
  size_t num_queries = 40;
  size_t reps = 3;
  if (tiny) {
    world.road.num_junctions = 120;
    world.road.world_size = 8000.0;
    world.traffic.num_trajectories = 300;
    world.traffic.horizon = 1800.0;
    num_queries = 16;
    reps = 2;
  }
  JsonReport report("ingest");
  report.Note("world", tiny ? "tiny" : "default");

  // The bench owns a private registry so the refreeze histogram it reads
  // back is exactly what its own pipelines observed.
  obs::MetricsRegistry registry;

  core::Framework framework(world);
  const core::SensorNetwork& network = framework.network();
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment dep = framework.DeployWithSampler(
      sampler, std::max<size_t>(1, network.NumSensors() / 5),
      core::DeploymentOptions{}, rng);
  std::vector<CrossingEvent> stream = MonitoredStream(network, dep);
  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.05, num_queries, 733);
  size_t num_edges = network.TotalEdgeSpace();
  std::printf("world: %zu junctions, %zu sensors, %zu monitored events\n\n",
              network.mobility().NumNodes(), network.NumSensors(),
              stream.size());
  report.Metric("monitored_events", static_cast<double>(stream.size()));

  // --- Phase 1: sustained ingest throughput. Replay the monitored stream
  // through the live front door (EventReorderBuffer sink → Push), epochs
  // auto-closing every ~1/32 of the stream so incremental re-freezes run
  // CONCURRENTLY with ingestion; the clock stops only after the final
  // drain, so the figure includes every rebuild. ---
  runtime::IngestPipelineOptions pipeline_options;
  pipeline_options.registry = &registry;
  pipeline_options.epoch_event_target = stream.size() / 32 + 1;
  std::unique_ptr<runtime::IngestPipeline> pipeline;
  double ingest_seconds = 0.0;
  uint64_t epochs = 0;
  for (size_t rep = 0; rep < reps; ++rep) {
    pipeline = std::make_unique<runtime::IngestPipeline>(num_edges,
                                                         pipeline_options);
    util::Timer timer;
    {
      core::EventReorderBuffer buffer(5.0, pipeline->MakeSink());
      for (const CrossingEvent& e : stream) buffer.Push(e);
      buffer.Flush();
    }
    pipeline->CloseEpochAndWait();
    ingest_seconds += timer.ElapsedSeconds();
    epochs += pipeline->EpochsPublished();
  }
  double total_events = static_cast<double>(stream.size() * reps);
  double events_per_sec = total_events / std::max(ingest_seconds, 1e-9);
  obs::Histogram& refreeze = registry.GetHistogram(
      "innet_refreeze_duration_micros",
      obs::Histogram::DurationBoundsMicros());
  double refreeze_mean =
      refreeze.Count() > 0
          ? refreeze.Sum() / static_cast<double>(refreeze.Count())
          : 0.0;
  std::printf(
      "ingest: %.0f events in %.3fs over %zu reps -> %.0f events/s | "
      "%llu epochs | refreeze mean=%.1fus p50=%.1fus p95=%.1fus\n",
      total_events, ingest_seconds, reps, events_per_sec,
      static_cast<unsigned long long>(epochs), refreeze_mean,
      refreeze.Percentile(0.5), refreeze.Percentile(0.95));
  report.Metric("ingest_reps", static_cast<double>(reps));
  report.Metric("ingest_wall_seconds", ingest_seconds);
  report.Metric("ingest_events_per_sec", events_per_sec);
  report.Metric("epochs_published", static_cast<double>(epochs));
  report.Metric("refreeze_mean_micros", refreeze_mean);
  report.Metric("refreeze_p50_micros", refreeze.Percentile(0.5));
  report.Metric("refreeze_p95_micros", refreeze.Percentile(0.95));

  // --- Phase 1b: durable ingest. The same front door with a WAL
  // group-commit on every epoch close and a snapshot every 2 commits. Each
  // rep starts from a fresh log (a resumed writer would otherwise append a
  // second copy of the stream); the last rep's directory feeds the
  // recovery-identity check below. ---
  char wal_template[] = "/tmp/innet_bench_wal_XXXXXX";
  const char* wal_root = ::mkdtemp(wal_template);
  if (wal_root == nullptr) {
    std::fprintf(stderr, "FAIL: cannot create WAL scratch directory\n");
    return 1;
  }
  std::string wal_dir = std::string(wal_root) + "/wal";
  runtime::IngestPipelineOptions durable_options = pipeline_options;
  durable_options.durability.wal_dir = wal_dir;
  durable_options.durability.snapshot_every_epochs = 2;
  double durable_seconds = 0.0;
  for (size_t rep = 0; rep < reps; ++rep) {
    std::filesystem::remove_all(wal_dir);
    pipeline = std::make_unique<runtime::IngestPipeline>(num_edges,
                                                         durable_options);
    util::Timer timer;
    {
      core::EventReorderBuffer buffer(5.0, pipeline->MakeSink());
      for (const CrossingEvent& e : stream) buffer.Push(e);
      buffer.Flush();
    }
    pipeline->CloseEpochAndWait();
    durable_seconds += timer.ElapsedSeconds();
  }
  double events_per_sec_durable =
      total_events / std::max(durable_seconds, 1e-9);
  double overhead =
      events_per_sec > 0.0
          ? std::max(0.0, 1.0 - events_per_sec_durable / events_per_sec)
          : 0.0;
  obs::Histogram& fsync_micros = registry.GetHistogram(
      "innet_wal_fsync_micros", obs::Histogram::DurationBoundsMicros());
  uint64_t wal_bytes = registry.GetCounter("innet_wal_bytes_total").Value();
  std::printf(
      "durable: %.0f events/s (%.1f%% overhead) | fsync p50=%.1fus "
      "p95=%.1fus | %llu WAL bytes over %zu reps\n",
      events_per_sec_durable, overhead * 100.0,
      fsync_micros.Percentile(0.5), fsync_micros.Percentile(0.95),
      static_cast<unsigned long long>(wal_bytes), reps);
  report.Metric("ingest_events_per_sec_durable", events_per_sec_durable);
  report.Metric("durability_overhead_fraction", overhead);
  report.Metric("wal_fsync_p50_micros", fsync_micros.Percentile(0.5));
  report.Metric("wal_fsync_p95_micros", fsync_micros.Percentile(0.95));
  report.Metric("wal_bytes_total", static_cast<double>(wal_bytes));

  // --- Phase 2: identity. The last rep's published store must be
  // bit-identical to a from-scratch Freeze() of the admitted stream, and a
  // handle-mode processor must answer exactly like the scratch one. ---
  forms::TrackingForm scratch_tracking(num_edges);
  for (const CrossingEvent& e : stream) {
    scratch_tracking.RecordTraversal(e.edge, e.forward, e.time);
  }
  forms::FrozenStoreHandle::Snapshot published = pipeline->handle().Acquire();
  uint64_t drift = CountDrift(*published.store, scratch_tracking);
  forms::FrozenTrackingForm scratch = scratch_tracking.Freeze();
  core::SampledQueryProcessor reference(dep.graph(), scratch);
  core::SampledQueryProcessor live(dep.graph(), pipeline->handle());
  for (const core::RangeQuery& q : queries) {
    for (core::BoundMode bound :
         {core::BoundMode::kLower, core::BoundMode::kUpper}) {
      double a = reference.Answer(q, core::CountKind::kStatic, bound).estimate;
      double b = live.Answer(q, core::CountKind::kStatic, bound).estimate;
      if (a != b) ++drift;
    }
  }
  std::printf("identity: refreeze drift %llu probes (want 0) at generation "
              "%llu\n",
              static_cast<unsigned long long>(drift),
              static_cast<unsigned long long>(published.generation));
  report.Metric("refreeze_drift", static_cast<double>(drift));
  report.Metric("store_generation", static_cast<double>(published.generation));

  // --- Phase 2b: recovery identity. Recover from the durable phase's WAL
  // (newest snapshot + tail replay) and hold the result to the same
  // exhaustive comparison: recovery_drift must be zero. ---
  runtime::RecoveryOptions recovery_options;
  recovery_options.wal_dir = wal_dir;
  recovery_options.num_edges = num_edges;
  recovery_options.registry = &registry;
  util::Timer recovery_timer;
  util::StatusOr<runtime::RecoveredState> recovered =
      runtime::RecoveryManager(recovery_options).Recover();
  double recovery_seconds = recovery_timer.ElapsedSeconds();
  uint64_t recovery_drift = 1;
  uint64_t recovery_replay_events = 0;
  if (recovered.ok()) {
    recovery_drift = CountDrift(*recovered->store, scratch_tracking);
    recovery_replay_events = recovered->replayed_events;
    std::printf(
        "recovery: epoch %llu generation %llu in %.3fs | %llu events from "
        "snapshot + %llu replayed | drift %llu probes (want 0)\n",
        static_cast<unsigned long long>(recovered->durable_epoch),
        static_cast<unsigned long long>(recovered->generation),
        recovery_seconds,
        static_cast<unsigned long long>(recovered->snapshot_events),
        static_cast<unsigned long long>(recovered->replayed_events),
        static_cast<unsigned long long>(recovery_drift));
  } else {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
  }
  report.Metric("recovery_seconds", recovery_seconds);
  report.Metric("recovery_replay_events",
                static_cast<double>(recovery_replay_events));
  report.Metric("recovery_drift", static_cast<double>(recovery_drift));
  std::filesystem::remove_all(wal_root);

  // --- Phase 3: zero-allocation warm reads under concurrent ingest. A
  // handle-mode processor with a grown workspace serves queries on this
  // thread while a writer thread streams the remaining three quarters of
  // the stream and the freezer publishes generations underneath. The
  // thread-local probe counts only THIS thread's allocations, so freezer
  // rebuild allocations (by design off the read path) don't pollute it. ---
  pipeline = std::make_unique<runtime::IngestPipeline>(num_edges,
                                                       pipeline_options);
  size_t quarter = stream.size() / 4;
  for (size_t i = 0; i < quarter; ++i) pipeline->Push(stream[i]);
  pipeline->CloseEpochAndWait();
  core::SampledQueryProcessor warm(dep.graph(), pipeline->handle());
  core::QueryWorkspace workspace;
  for (int round = 0; round < 2; ++round) {  // Warm-up: grow all scratch.
    for (const core::RangeQuery& q : queries) {
      warm.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower,
                  nullptr, nullptr, &workspace);
    }
  }
  uint64_t generation_before = pipeline->handle().Generation();
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    for (size_t i = quarter; i < stream.size(); ++i) {
      pipeline->Push(stream[i]);
    }
    pipeline->CloseEpochAndWait();
    writer_done.store(true, std::memory_order_release);
  });
  uint64_t warm_queries = 0;
  double warm_sum = 0.0;
  util::ThreadAllocProbe probe;
  while (!writer_done.load(std::memory_order_acquire)) {
    for (const core::RangeQuery& q : queries) {
      warm_sum += warm.Answer(q, core::CountKind::kStatic,
                              core::BoundMode::kLower, nullptr, nullptr,
                              &workspace)
                      .estimate;
      ++warm_queries;
    }
  }
  uint64_t warm_allocs = probe.Delta();
  writer.join();
  uint64_t swaps_seen = pipeline->handle().Generation() - generation_before;
  std::printf(
      "concurrent warm path: %llu queries while ingesting, %llu heap "
      "allocations (want 0), %llu store swaps observed (checksum %.17g)\n",
      static_cast<unsigned long long>(warm_queries),
      static_cast<unsigned long long>(warm_allocs),
      static_cast<unsigned long long>(swaps_seen), warm_sum);
  report.Metric("warm_queries", static_cast<double>(warm_queries));
  report.Metric("warm_query_allocs", static_cast<double>(warm_allocs));
  report.Metric("swaps_during_warm_reads", static_cast<double>(swaps_seen));

  if (!report.WriteFlagged(flags)) return 1;
  std::string metrics_out = flags.GetString("metrics-out");
  if (!metrics_out.empty() &&
      !obs::ExportMetricsToFile(registry, metrics_out)) {
    return 1;
  }
  if (drift != 0) {
    std::fprintf(stderr,
                 "FAIL: incremental re-freeze drifted from the scratch "
                 "freeze on %llu probes\n",
                 static_cast<unsigned long long>(drift));
    return 1;
  }
  if (warm_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu heap allocations on the warm read path during "
                 "concurrent ingest (budget: 0)\n",
                 static_cast<unsigned long long>(warm_allocs));
    return 1;
  }
  if (recovery_drift != 0) {
    std::fprintf(stderr,
                 "FAIL: store recovered from the WAL drifted from the "
                 "scratch freeze on %llu probes\n",
                 static_cast<unsigned long long>(recovery_drift));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
