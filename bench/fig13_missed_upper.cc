// Reproduces Fig. 13: (a, b) fraction of queries missed versus sampled-graph
// size and query size; (c, d) upper-bound approximation ratio (estimate /
// actual, >= 1) versus the same sweeps. The submodular method deploys for
// the known query distribution (the evaluation workload), as in Fig. 12.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueriesPerConfig = 40;
constexpr size_t kReps = 3;

void Sweep(const core::Framework& framework, bool sweep_graph_size,
           JsonReport* report) {
  const core::SensorNetwork& network = framework.network();
  const char* axis = sweep_graph_size ? "graph" : "query";
  util::Table missed(sweep_graph_size
                         ? "Fig 13a: fraction of queries missed vs graph "
                           "size (query area 4%, lower bound)"
                         : "Fig 13b: fraction of queries missed vs query "
                           "size (graph size 6.4%, lower bound)");
  util::Table upper(sweep_graph_size
                        ? "Fig 13c: upper-bound ratio (estimate/actual) vs "
                          "graph size (query area 4%)"
                        : "Fig 13d: upper-bound ratio (estimate/actual) vs "
                          "query size (graph size 6.4%)");
  std::vector<std::string> header = {sweep_graph_size ? "graph_size"
                                                      : "query_size"};
  for (const Method& method : AllMethods(nullptr)) {
    header.push_back(method.name);
  }
  missed.SetHeader(header);
  upper.SetHeader(header);

  std::vector<double> sweep =
      sweep_graph_size ? GraphSizeSweep() : QuerySizeSweep();
  for (double x : sweep) {
    size_t m = std::max<size_t>(
        1, static_cast<size_t>((sweep_graph_size ? x : 0.064) *
                               network.NumSensors()));
    double area = sweep_graph_size ? 0.04 : x;
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueriesPerConfig, 931);
    std::vector<Method> methods = AllMethods(
        std::make_shared<std::vector<core::RangeQuery>>(queries));
    std::vector<std::string> row_missed = {Percent(x)};
    std::vector<std::string> row_upper = {Percent(x)};
    std::string at = "_at_" + Percent(x);
    for (const Method& method : methods) {
      EvalResult lower = EvaluateMethod(
          framework, method, m, core::DeploymentOptions{}, queries,
          core::CountKind::kStatic, core::BoundMode::kLower, kReps);
      EvalResult upper_result = EvaluateMethod(
          framework, method, m, core::DeploymentOptions{}, queries,
          core::CountKind::kStatic, core::BoundMode::kUpper, kReps);
      row_missed.push_back(util::Table::Num(lower.missed_fraction, 3));
      row_upper.push_back(util::Table::Num(upper_result.ratio_mean, 2));
      report->Metric(std::string(axis) + "_missed_" + method.name + at,
                     lower.missed_fraction);
      report->Metric(std::string(axis) + "_upper_ratio_" + method.name + at,
                     upper_result.ratio_mean);
    }
    missed.AddRow(row_missed);
    upper.AddRow(row_upper);
  }
  missed.Print();
  upper.Print();
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              framework.network().mobility().NumNodes(),
              framework.network().NumSensors(),
              framework.network().events().size());
  JsonReport report("fig13_missed_upper");
  Sweep(framework, /*sweep_graph_size=*/true, &report);
  Sweep(framework, /*sweep_graph_size=*/false, &report);
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
