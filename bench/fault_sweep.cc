// Fault-tolerance sweep (docs/FAULTS.md): query error versus sensor failure
// rate and message loss, and the cost of the lossy-channel retransmission
// model.
//
// Grid: dead-sensor fraction x drop probability. For every cell the
// fault-free event stream is corrupted by a seeded FaultModel, re-ingested
// through the reorder buffer into a fresh exact store, and the workload is
// answered twice over that corrupted store:
//   - naive: the ordinary engine, trusting every boundary edge (what a
//     deployment unaware of failures reports);
//   - degraded: the health-aware engine, rerouting boundaries around dead
//     sensors and returning count intervals.
// Both are scored against the fault-free deployment's answers: the naive
// point estimate drifts with the failure rate, while the degraded interval
// should keep containing the truth (>= 95% at the pinned 10%/5% cell — the
// same criterion tests/faults_test.cc enforces).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/dispatch.h"
#include "core/event_buffer.h"
#include "faults/fault_model.h"
#include "forms/tracking_form.h"
#include "runtime/batch_query_engine.h"
#include "util/flags.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueries = 40;
constexpr uint64_t kFaultSeed = 2024;

forms::TrackingForm IngestCorrupted(const core::SensorNetwork& network,
                                    const core::SampledGraph& sampled,
                                    const faults::CorruptedStream& corrupted) {
  forms::TrackingForm store(network.TotalEdgeSpace());
  core::EventReorderBuffer buffer(
      1.0, [&](const mobility::CrossingEvent& event) {
        if (!sampled.IsMonitored(event.edge)) return;
        store.RecordTraversal(event.edge, event.forward, event.time);
      });
  for (const mobility::CrossingEvent& event : corrupted.events) {
    buffer.Push(event);
  }
  buffer.Flush();
  return store;
}

int Main(const util::FlagParser& flags) {
  JsonReport report("fault_sweep");
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();

  sampling::KdTreeSampler sampler;
  util::Rng rng(9);
  size_t m = static_cast<size_t>(0.256 * network.NumSensors());
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, m, core::DeploymentOptions{}, rng);
  std::vector<core::RangeQuery> queries =
      MakeQueries(framework, 0.08, kQueries, 951);

  // Fault-free reference answers (one per query and bound).
  core::SampledQueryProcessor reference = deployment.processor();
  std::vector<std::vector<core::QueryAnswer>> truth;
  for (core::BoundMode bound :
       {core::BoundMode::kLower, core::BoundMode::kUpper}) {
    std::vector<core::QueryAnswer> answers;
    answers.reserve(queries.size());
    for (const core::RangeQuery& q : queries) {
      answers.push_back(reference.Answer(q, core::CountKind::kStatic, bound));
    }
    truth.push_back(std::move(answers));
  }

  util::Table table("Degraded-mode error vs failure rate (static counts)");
  table.SetHeader({"dead%", "drop%", "suppressed%", "degraded%", "contain%",
                   "naive_err", "width", "rerouted"});
  for (double dead : {0.0, 0.05, 0.10, 0.20}) {
    for (double drop : {0.0, 0.05, 0.10}) {
      faults::FaultOptions fault_options;
      fault_options.seed = kFaultSeed;
      fault_options.dead_sensor_fraction = dead;
      fault_options.drop_probability = drop;
      fault_options.horizon = framework.Horizon();
      faults::FaultModel model(network, fault_options);
      faults::CorruptedStream corrupted =
          model.ApplyToStream(network.events());
      forms::TrackingForm store =
          IngestCorrupted(network, deployment.graph(), corrupted);

      runtime::BatchEngineOptions degraded_options;
      degraded_options.health = &model;
      degraded_options.degraded = model.MakeDegradedOptions();
      runtime::BatchQueryEngine degraded_engine(deployment.graph(), store,
                                                degraded_options);
      runtime::BatchQueryEngine naive_engine(deployment.graph(), store, {});

      size_t answered = 0;
      size_t contained = 0;
      size_t degraded_count = 0;
      double rerouted = 0.0;
      double width_sum = 0.0;
      std::vector<double> naive_errors;
      for (size_t b = 0; b < truth.size(); ++b) {
        core::BoundMode bound =
            b == 0 ? core::BoundMode::kLower : core::BoundMode::kUpper;
        std::vector<core::QueryAnswer> degraded_answers =
            degraded_engine.AnswerBatch(queries, core::CountKind::kStatic,
                                        bound);
        std::vector<core::QueryAnswer> naive_answers =
            naive_engine.AnswerBatch(queries, core::CountKind::kStatic,
                                     bound);
        for (size_t i = 0; i < queries.size(); ++i) {
          if (truth[b][i].missed || degraded_answers[i].missed) continue;
          ++answered;
          double expect = truth[b][i].estimate;
          if (degraded_answers[i].interval.Contains(expect)) ++contained;
          if (degraded_answers[i].degraded) {
            ++degraded_count;
            rerouted +=
                static_cast<double>(degraded_answers[i].rerouted_faces);
          }
          width_sum += degraded_answers[i].interval.Width();
          double denom = expect > 1.0 ? expect : 1.0;
          naive_errors.push_back(
              std::abs(naive_answers[i].estimate - expect) / denom);
        }
      }
      double total_events = static_cast<double>(network.events().size());
      {
        char cell[48];
        std::snprintf(cell, sizeof(cell), "dead%.0f_drop%.0f", dead * 100.0,
                      drop * 100.0);
        std::string prefix = cell;
        report.Metric(prefix + "_contain_fraction",
                      static_cast<double>(contained) /
                          static_cast<double>(answered));
        report.Metric(prefix + "_naive_err_median",
                      util::Percentile(naive_errors, 0.5));
        report.Metric(prefix + "_degraded_fraction",
                      static_cast<double>(degraded_count) /
                          static_cast<double>(answered));
      }
      table.AddRow(
          {Percent(dead, 0), Percent(drop, 0),
           Percent(static_cast<double>(corrupted.suppressed) / total_events,
                   1),
           Percent(static_cast<double>(degraded_count) /
                       static_cast<double>(answered),
                   1),
           Percent(static_cast<double>(contained) /
                       static_cast<double>(answered),
                   1),
           util::Table::Num(util::Percentile(naive_errors, 0.5), 4),
           util::Table::Num(width_sum / static_cast<double>(answered), 1),
           util::Table::Num(
               degraded_count == 0
                   ? 0.0
                   : rerouted / static_cast<double>(degraded_count),
               1)});
    }
  }
  table.Print();
  std::printf(
      "contain%% = fault-free answer inside the degraded interval; naive_err "
      "= median relative error of the point estimate that ignores failures; "
      "width = mean interval width; rerouted = mean faces deformed per "
      "degraded answer.\n\n");

  // Retransmission overhead of the lossy dispatch channel on a
  // representative perimeter.
  core::RangeQuery probe = queries.front();
  for (const core::RangeQuery& q : queries) {
    if (q.junctions.size() > probe.junctions.size()) probe = q;
  }
  std::vector<uint32_t> faces =
      deployment.graph().UpperBoundFaces(probe.junctions);
  std::vector<graph::NodeId> perimeter =
      deployment.graph().BoundaryOfFaces(faces).sensors;

  util::Table retry("Retry overhead vs loss rate (perimeter dispatch)");
  retry.SetHeader({"loss%", "mode", "messages", "retrans", "deliver%",
                   "latency_ms", "energy_x"});
  for (double loss : {0.0, 0.02, 0.05, 0.10}) {
    core::ChannelModel channel;
    channel.loss_rate = loss;
    for (core::DispatchMode mode : {core::DispatchMode::kServerDirect,
                                    core::DispatchMode::kPerimeterTraversal}) {
      core::DispatchCost ideal =
          core::SimulateDispatch(network, perimeter, mode);
      core::DispatchCost cost =
          core::SimulateDispatch(network, perimeter, mode, channel);
      retry.AddRow({Percent(loss, 0), core::DispatchModeName(mode),
                    std::to_string(cost.Messages()),
                    util::Table::Num(cost.expected_retransmissions, 1),
                    Percent(cost.delivery_probability, 2),
                    util::Table::Num(cost.expected_latency_ms, 1),
                    util::Table::Num(cost.Energy() / ideal.Energy(), 3)});
    }
  }
  retry.Print();
  std::printf(
      "%zu perimeter sensors; energy_x = lossy-channel energy relative to "
      "the ideal channel (retransmissions charged pro rata).\n",
      perimeter.size());
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
