// Reproduces Fig. 14: (a) lower-bound relative error of k-NN connectivity
// (k = 3, 5, 8) versus triangulation, (b) boundary edges accessed for the
// same configurations, and (c, d) the additional error introduced by each
// regression model relative to the exact timestamp store on the same
// sampled graph.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace innet::bench {
namespace {

constexpr size_t kQueriesPerConfig = 40;

void ConnectivitySweep(const core::Framework& framework, JsonReport* report) {
  const core::SensorNetwork& network = framework.network();
  sampling::QuadTreeSampler sampler;  // Paper: QuadTree sampling for Fig 14a.
  size_t m = static_cast<size_t>(0.064 * network.NumSensors());
  util::Rng rng(5);
  std::vector<graph::NodeId> sensors =
      sampler.Select(network.sensing(), m, rng);

  struct Config {
    std::string name;
    core::DeploymentOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"triangulation", {}});
  for (size_t k : {3, 5, 8}) {
    core::DeploymentOptions options;
    options.graph.connectivity = core::Connectivity::kKnn;
    options.graph.knn_k = k;
    configs.push_back({"knn_k=" + std::to_string(k), options});
  }

  std::vector<core::Deployment> deployments;
  for (const Config& config : configs) {
    deployments.push_back(
        framework.DeployFromSensors(sensors, config.options));
  }

  util::Table err("Fig 14a: static lower-bound relative error, k-NN vs "
                  "triangulation (graph size 6.4%)");
  util::Table edges("Fig 14b: boundary edges accessed, k-NN vs "
                    "triangulation");
  std::vector<std::string> header = {"query_size"};
  for (const Config& config : configs) header.push_back(config.name);
  err.SetHeader(header);
  edges.SetHeader(header);

  for (double area : QuerySizeSweep()) {
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueriesPerConfig, 941);
    std::vector<std::string> row_err = {Percent(area)};
    std::vector<std::string> row_edges = {Percent(area)};
    std::string at = "_at_" + Percent(area);
    for (size_t i = 0; i < deployments.size(); ++i) {
      EvalResult result = EvaluateDeployment(network, deployments[i], queries,
                                             core::CountKind::kStatic,
                                             core::BoundMode::kLower);
      row_err.push_back(util::Table::Num(result.err_median, 3));
      row_edges.push_back(util::Table::Num(result.mean_edges_accessed, 1));
      report->Metric("err_" + configs[i].name + at, result.err_median);
      report->Metric("edges_" + configs[i].name + at,
                     result.mean_edges_accessed);
    }
    err.AddRow(row_err);
    edges.AddRow(row_edges);
  }
  err.Print();
  edges.Print();
}

// Fig 14c/d: error of the regression stores RELATIVE to the exact store on
// the same graph (not relative to the unsampled truth).
void RegressionSweep(const core::Framework& framework, JsonReport* report) {
  const core::SensorNetwork& network = framework.network();
  sampling::KdTreeSampler sampler;
  size_t m = static_cast<size_t>(0.128 * network.NumSensors());
  util::Rng rng(6);
  std::vector<graph::NodeId> sensors =
      sampler.Select(network.sensing(), m, rng);
  core::Deployment exact_dep =
      framework.DeployFromSensors(sensors, core::DeploymentOptions{});

  struct Model {
    const char* name;
    learned::ModelType type;
  };
  std::vector<Model> models = {
      {"linear", learned::ModelType::kLinear},
      {"quadratic", learned::ModelType::kQuadratic},
      {"cubic", learned::ModelType::kCubic},
      {"pw-linear", learned::ModelType::kPiecewiseLinear},
      {"pw-constant", learned::ModelType::kPiecewiseConstant},
  };
  std::vector<core::Deployment> learned_deps;
  for (const Model& model : models) {
    core::DeploymentOptions options;
    options.store = core::StoreKind::kLearned;
    options.model_type = model.type;
    options.buffer_capacity = 16;
    options.pla_epsilon = 8.0;
    learned_deps.push_back(framework.DeployFromSensors(sensors, options));
  }

  util::Table table("Fig 14c/d: additional relative error of regression "
                    "models vs the exact store (graph size 12.8%)");
  std::vector<std::string> header = {"query_size"};
  for (const Model& model : models) header.push_back(model.name);
  table.SetHeader(header);

  for (double area : QuerySizeSweep()) {
    std::vector<core::RangeQuery> queries =
        MakeQueries(framework, area, kQueriesPerConfig, 942);
    std::vector<std::string> row = {Percent(area)};
    std::string at = "_at_" + Percent(area);
    core::SampledQueryProcessor exact_proc = exact_dep.processor();
    for (size_t i = 0; i < models.size(); ++i) {
      core::SampledQueryProcessor learned_proc = learned_deps[i].processor();
      util::Accumulator err;
      for (const core::RangeQuery& q : queries) {
        core::QueryAnswer a =
            exact_proc.Answer(q, core::CountKind::kStatic,
                              core::BoundMode::kLower);
        core::QueryAnswer b =
            learned_proc.Answer(q, core::CountKind::kStatic,
                                core::BoundMode::kLower);
        if (a.missed) continue;
        err.Add(util::RelativeError(a.estimate, b.estimate));
      }
      double median = err.empty() ? 0.0 : err.Summarize().median;
      row.push_back(util::Table::Num(median, 4));
      report->Metric(std::string("model_err_") + models[i].name + at, median);
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("paper: regression models add ~2.5%% error on average\n");
}

int Main(const util::FlagParser& flags) {
  core::Framework framework(DefaultWorld());
  std::printf("world: %zu junctions, %zu sensors, %zu events\n\n",
              framework.network().mobility().NumNodes(),
              framework.network().NumSensors(),
              framework.network().events().size());
  JsonReport report("fig14_knn_regression");
  ConnectivitySweep(framework, &report);
  RegressionSweep(framework, &report);
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
