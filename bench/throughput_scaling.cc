// Batch-engine throughput scaling: queries/sec at 1/2/4/8 worker threads
// on the headline workload, against a serial SampledQueryProcessor loop.
//
// Every parallel run is checked answer-by-answer against the serial
// reference (estimates compared bit-for-bit): the engine must buy
// throughput without perturbing a single count. Cache-cold and cache-warm
// passes are reported separately — warm passes skip face resolution and
// boundary derivation entirely, which is the serving regime of repeated /
// overlapping monitoring queries.
//
// Thread scaling only shows on multicore hosts; on a single-core container
// the cold rows stay ~1x and the warm rows isolate the cache win.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "runtime/batch_query_engine.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/timer.h"

namespace innet::bench {
namespace {

constexpr size_t kBaseQueries = 60;
constexpr size_t kRepeats = 32;  // Dashboard-style repetition of the workload.

bool Identical(const std::vector<core::QueryAnswer>& a,
               const std::vector<core::QueryAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i].estimate, &b[i].estimate, sizeof(double)) != 0 ||
        a[i].missed != b[i].missed ||
        a[i].nodes_accessed != b[i].nodes_accessed ||
        a[i].edges_accessed != b[i].edges_accessed) {
      return false;
    }
  }
  return true;
}

int Main(const util::FlagParser& flags) {
  JsonReport report("throughput_scaling");
  core::Framework framework(DefaultWorld());
  const core::SensorNetwork& network = framework.network();

  // The headline evaluation deployment: kd-tree sampler at 25.6% sensors.
  sampling::KdTreeSampler sampler;
  util::Rng rng(9);
  size_t m = static_cast<size_t>(0.256 * network.NumSensors());
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, m, core::DeploymentOptions{}, rng);

  std::vector<core::RangeQuery> base =
      MakeQueries(framework, 0.08, kBaseQueries, 951);
  std::vector<core::RangeQuery> batch;
  batch.reserve(base.size() * kRepeats);
  for (size_t r = 0; r < kRepeats; ++r) {
    batch.insert(batch.end(), base.begin(), base.end());
  }
  std::printf("workload: %zu queries (%zu distinct regions x %zu), "
              "deployment %.1f%% sensors\n\n",
              batch.size(), base.size(), kRepeats,
              25.6);

  // Serial reference: the plain per-query processor, no pool, no cache.
  core::SampledQueryProcessor processor = deployment.processor();
  std::vector<core::QueryAnswer> reference(batch.size());
  util::Timer serial_timer;
  for (size_t i = 0; i < batch.size(); ++i) {
    reference[i] = processor.Answer(batch[i], core::CountKind::kStatic,
                                    core::BoundMode::kLower);
  }
  double serial_seconds = serial_timer.ElapsedSeconds();
  double serial_qps = static_cast<double>(batch.size()) / serial_seconds;
  std::printf("serial processor: %.0f q/s (%.3fs)\n\n", serial_qps,
              serial_seconds);
  report.Metric("queries", static_cast<double>(batch.size()));
  report.Metric("serial_qps", serial_qps);

  util::Table table("Batch engine throughput vs serial processor");
  table.SetHeader({"threads", "cold_qps", "cold_x", "warm_qps", "warm_x",
                   "identical", "cache_hit%"});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    runtime::BatchEngineOptions options;
    options.num_threads = threads;
    runtime::BatchQueryEngine engine(deployment.graph(), deployment.store(),
                                     options);

    util::Timer cold_timer;
    std::vector<core::QueryAnswer> cold = engine.AnswerBatch(
        batch, core::CountKind::kStatic, core::BoundMode::kLower);
    double cold_seconds = cold_timer.ElapsedSeconds();

    util::Timer warm_timer;
    std::vector<core::QueryAnswer> warm = engine.AnswerBatch(
        batch, core::CountKind::kStatic, core::BoundMode::kLower);
    double warm_seconds = warm_timer.ElapsedSeconds();

    bool identical = Identical(cold, reference) && Identical(warm, reference);
    double cold_qps = static_cast<double>(batch.size()) / cold_seconds;
    double warm_qps = static_cast<double>(batch.size()) / warm_seconds;
    runtime::BatchEngineSnapshot snap = engine.Snapshot();
    double hit_rate =
        static_cast<double>(snap.cache_hits) /
        static_cast<double>(snap.cache_hits + snap.cache_misses);
    char cold_x[32], warm_x[32];
    std::snprintf(cold_x, sizeof(cold_x), "%.2fx", cold_qps / serial_qps);
    std::snprintf(warm_x, sizeof(warm_x), "%.2fx", warm_qps / serial_qps);
    table.AddRow({std::to_string(threads), util::Table::Num(cold_qps, 0),
                  cold_x, util::Table::Num(warm_qps, 0), warm_x,
                  identical ? "yes" : "NO", Percent(hit_rate, 1)});
    std::string prefix = "threads_" + std::to_string(threads);
    report.Metric(prefix + "_cold_qps", cold_qps);
    report.Metric(prefix + "_warm_qps", warm_qps);
    report.Metric(prefix + "_cache_hit_rate", hit_rate);
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: %zu-thread batch answers diverge from serial\n",
                   threads);
      std::exit(1);
    }
  }
  table.Print();
  std::printf(
      "cold = first pass (cache filling), warm = second pass (boundary "
      "resolution fully cached). Thread speedups require physical cores; "
      "warm-vs-serial also holds on one core.\n");
  return report.WriteFlagged(flags) ? 0 : 1;
}

}  // namespace
}  // namespace innet::bench

int main(int argc, char** argv) {
  innet::util::FlagParser flags(argc, argv);
  return innet::bench::Main(flags);
}
