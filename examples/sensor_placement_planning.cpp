// Sensor placement planning: given a candidate sensor field and an expected
// query mix, compare deployment strategies under the same budget — the
// planning workflow §4.3/§4.4 targets ("aid sensor deployment to achieve the
// best cost-saving and query accuracy").
//
// Prints, per strategy: deployment footprint (relays, monitored edges,
// faces), median relative error on the expected queries, and per-query
// communication cost, so an operator can pick the budget/accuracy trade-off.
#include <cstdio>
#include <memory>

#include "core/budget_planner.h"
#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

struct StrategyReport {
  std::string name;
  innet::core::SampledGraphStats stats;
  double err_median = 0.0;
  double missed = 0.0;
  double mean_nodes = 0.0;
  size_t storage_bytes = 0;
};

StrategyReport Evaluate(const innet::core::Framework& framework,
                        const std::string& name,
                        const innet::core::Deployment& deployment,
                        const std::vector<innet::core::RangeQuery>& queries) {
  using namespace innet;
  StrategyReport report;
  report.name = name;
  report.stats = deployment.graph().stats();
  report.storage_bytes = deployment.StorageBytes();
  core::SampledQueryProcessor processor = deployment.processor();
  util::Accumulator err;
  util::Accumulator nodes;
  size_t missed = 0;
  for (const core::RangeQuery& q : queries) {
    double truth = framework.network().GroundTruthStatic(q.junctions, q.t2);
    core::QueryAnswer a =
        processor.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower);
    err.Add(util::RelativeError(truth, a.estimate));
    nodes.Add(static_cast<double>(a.nodes_accessed));
    if (a.missed) ++missed;
  }
  report.err_median = err.Summarize().median;
  report.mean_nodes = nodes.Summarize().mean;
  report.missed =
      static_cast<double>(missed) / static_cast<double>(queries.size());
  return report;
}

}  // namespace

int main() {
  using namespace innet;

  core::FrameworkOptions options;
  options.road.num_junctions = 1500;
  options.traffic.num_trajectories = 5000;
  options.seed = 44;
  core::Framework framework(options);
  const core::SensorNetwork& network = framework.network();
  std::printf("candidate sensor field: %zu sensors over %zu junctions\n\n",
              network.NumSensors(), network.mobility().NumNodes());

  // The operator's expected query mix: mid-sized district queries.
  core::WorkloadOptions workload;
  workload.area_fraction = 0.05;
  workload.horizon = framework.Horizon();
  util::Rng qrng = framework.ForkRng();
  std::vector<core::RangeQuery> expected =
      core::GenerateWorkload(network, workload, 40, qrng);

  size_t budget = network.NumSensors() / 8;  // 12.5% of sensors.
  std::printf("budget: %zu communication sensors (12.5%%)\n\n", budget);

  std::vector<StrategyReport> reports;
  for (const auto& sampler : sampling::AllSamplers()) {
    util::Rng rng(7);
    core::Deployment deployment = framework.DeployWithSampler(
        *sampler, budget, core::DeploymentOptions{}, rng);
    reports.push_back(Evaluate(framework, std::string(sampler->Name()),
                               deployment, expected));
  }
  // Query-adaptive placement for the expected mix.
  core::Deployment adaptive =
      framework.DeployAdaptive(expected, budget, core::DeploymentOptions{});
  reports.push_back(Evaluate(framework, "submodular", adaptive, expected));

  // k-NN connectivity variant of the best hierarchical sampler.
  core::DeploymentOptions knn;
  knn.graph.connectivity = core::Connectivity::kKnn;
  knn.graph.knn_k = 5;
  sampling::KdTreeSampler kd;
  util::Rng rng(7);
  core::Deployment knn_dep =
      framework.DeployWithSampler(kd, budget, knn, rng);
  reports.push_back(Evaluate(framework, "kd-tree+knn5", knn_dep, expected));

  util::Table table("Deployment planning report (12.5% budget, 5% queries)");
  table.SetHeader({"strategy", "relays", "mon_edges", "faces", "median_err",
                   "missed", "nodes/query", "storage_kb"});
  for (const StrategyReport& r : reports) {
    table.AddRow({r.name, std::to_string(r.stats.num_relay_sensors),
                  std::to_string(r.stats.num_monitored_edges),
                  std::to_string(r.stats.num_faces),
                  util::Table::Num(r.err_median, 3),
                  util::Table::Num(r.missed, 2),
                  util::Table::Num(r.mean_nodes, 1),
                  std::to_string(r.storage_bytes / 1024)});
  }
  table.Print();

  std::printf(
      "reading guide: pick the strategy with the lowest error whose relay "
      "and storage footprint fits the hardware plan; submodular wins when "
      "the query mix is known, hierarchical samplers when it is not.\n\n");

  // Inverse planning: instead of fixing the budget, fix the accuracy target
  // and let the planner find the smallest budget that achieves it.
  core::BudgetPlanOptions plan_options;
  plan_options.target_error = 0.25;
  sampling::KdTreeSampler planner_sampler;
  core::BudgetPlan plan =
      core::PlanBudget(framework, planner_sampler, expected, plan_options);
  if (plan.feasible) {
    std::printf(
        "budget planner: %.0f%% median error needs %zu sensors (%.1f%% of "
        "the field; achieved %.3f, %zu probe deployments)\n",
        plan_options.target_error * 100.0, plan.recommended_budget,
        100.0 * static_cast<double>(plan.recommended_budget) /
            static_cast<double>(network.NumSensors()),
        plan.achieved_error, plan.probes.size());
  } else {
    std::printf("budget planner: target %.2f unreachable (best %.3f)\n",
                plan_options.target_error, plan.achieved_error);
  }
  return 0;
}
