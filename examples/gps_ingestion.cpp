// GPS ingestion pipeline: raw noisy GPS traces -> map matching (§5.1.3) ->
// crossing events -> tracking forms -> queries. This is the preprocessing
// path used for datasets like T-Drive/Geolife.
#include <cstdio>

#include "core/framework.h"
#include "core/workload.h"
#include "graph/weighted_adjacency.h"
#include "mobility/map_matching.h"
#include "mobility/road_network.h"
#include "mobility/trajectory_generator.h"
#include "spatial/kdtree.h"
#include "util/stats.h"

int main() {
  using namespace innet;

  // Build just the road network; trajectories will come from "GPS".
  util::Rng rng(55);
  mobility::RoadNetworkOptions road;
  road.num_junctions = 900;
  graph::PlanarGraph mobility_graph = mobility::GenerateRoadNetwork(road, rng);
  graph::WeightedAdjacency adjacency =
      graph::EuclideanAdjacency(mobility_graph);
  spatial::KdTree junction_index(mobility_graph.positions());

  // Simulate a fleet logging noisy GPS fixes: ground-truth trips are driven,
  // sampled every 15 s with 40 m standard deviation noise.
  mobility::TrajectoryOptions traffic;
  traffic.num_trajectories = 1500;
  traffic.horizon = 4.0 * 3600.0;
  util::Rng trip_rng = rng.Fork();
  std::vector<mobility::Trajectory> truth_trips =
      mobility::GenerateTrajectories(mobility_graph, traffic, trip_rng);

  util::Rng noise_rng = rng.Fork();
  std::vector<mobility::GpsTrace> traces;
  traces.reserve(truth_trips.size());
  for (const mobility::Trajectory& trip : truth_trips) {
    traces.push_back(mobility::SynthesizeGpsTrace(
        mobility_graph, trip, /*sample_interval=*/15.0,
        /*noise_stddev=*/40.0, noise_rng));
  }
  std::printf("synthesized %zu GPS traces\n", traces.size());

  // Map-match every trace back onto the network.
  std::vector<mobility::Trajectory> matched;
  size_t dropped = 0;
  util::Accumulator length_ratio;
  for (size_t i = 0; i < traces.size(); ++i) {
    mobility::Trajectory t = mobility::MapMatch(mobility_graph, adjacency,
                                                junction_index, traces[i]);
    if (t.nodes.size() < 2) {
      ++dropped;
      continue;
    }
    length_ratio.Add(static_cast<double>(t.nodes.size()) /
                     static_cast<double>(truth_trips[i].nodes.size()));
    matched.push_back(std::move(t));
  }
  std::printf(
      "map-matched %zu traces (%zu dropped); matched/true path length "
      "ratio: median %.2f\n\n",
      matched.size(), dropped, length_ratio.Summarize().median);

  // Ingest the matched trajectories and query as usual. Map-matched GPS
  // fleets start mid-network (no ⋆v_ext entry), so counts are exact for
  // regions the objects cross into and lower bounds elsewhere.
  core::SensorNetwork network(std::move(mobility_graph));
  network.IngestTrajectories(matched);

  core::UnsampledQueryProcessor processor(network);
  core::WorkloadOptions workload;
  workload.area_fraction = 0.06;
  workload.horizon = traffic.horizon;
  util::Rng qrng = rng.Fork();
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(network, workload, 8, qrng);

  std::printf("%-10s %-10s %-10s\n", "static", "transient", "nodes");
  for (const core::RangeQuery& q : queries) {
    core::QueryAnswer st = processor.Answer(q, core::CountKind::kStatic);
    core::QueryAnswer tr = processor.Answer(q, core::CountKind::kTransient);
    std::printf("%-10.0f %-+10.0f %-10zu\n", st.estimate, tr.estimate,
                st.nodes_accessed);
  }
  return 0;
}
