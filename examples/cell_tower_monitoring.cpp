// Cell-tower load monitoring (the paper's Fig. 1 scenario): track how many
// users are inside each tower's coverage region over time, without any party
// ever seeing a full mobility trace.
//
// Towers are modeled as rectangular coverage regions; each is mapped to a
// union of sensing-graph faces, and its load is read at a sequence of
// timestamps via static counts plus transient deltas per interval.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/framework.h"
#include "core/live_monitor.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/table.h"

namespace {

struct Tower {
  const char* name;
  double cx_frac;  // Center as a fraction of the world size.
  double cy_frac;
  double radius_frac;
};

}  // namespace

int main() {
  using namespace innet;

  core::FrameworkOptions options;
  options.road.num_junctions = 1000;
  options.traffic.num_trajectories = 5000;
  options.traffic.horizon = 4.0 * 3600.0;
  options.seed = 22;
  core::Framework framework(options);
  const core::SensorNetwork& network = framework.network();

  // Deploy a modest in-network configuration.
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, network.NumSensors() / 5, core::DeploymentOptions{}, rng);
  core::SampledQueryProcessor processor = deployment.processor();

  // Three towers with overlapping urban coverage.
  const geometry::Rect& world = network.DomainBounds();
  std::vector<Tower> towers = {
      {"tower-A", 0.35, 0.40, 0.12},
      {"tower-B", 0.55, 0.55, 0.15},
      {"tower-C", 0.70, 0.35, 0.10},
  };

  util::Table table("Per-tower user load over time (static count; + = net "
                    "arrivals in the previous 30 min)");
  std::vector<std::string> header = {"time"};
  for (const Tower& tower : towers) {
    header.push_back(tower.name);
    header.push_back("truth");
  }
  table.SetHeader(header);

  // Materialize each tower's query region once.
  std::vector<core::RangeQuery> regions;
  for (const Tower& tower : towers) {
    geometry::Point center(world.min_x + tower.cx_frac * world.Width(),
                           world.min_y + tower.cy_frac * world.Height());
    double r = tower.radius_frac * world.Width();
    core::RangeQuery query;
    query.rect = geometry::Rect(center.x - r, center.y - r, center.x + r,
                                center.y + r);
    query.junctions = network.JunctionsInRect(query.rect);
    regions.push_back(std::move(query));
  }

  double step = 1800.0;  // 30-minute reporting interval.
  for (double t = step; t <= framework.Horizon(); t += step) {
    std::vector<std::string> row = {
        util::Table::Num(t / 3600.0, 1) + "h"};
    for (core::RangeQuery& region : regions) {
      region.t1 = t - step;
      region.t2 = t;
      core::QueryAnswer load = processor.Answer(
          region, core::CountKind::kStatic, core::BoundMode::kLower);
      core::QueryAnswer delta = processor.Answer(
          region, core::CountKind::kTransient, core::BoundMode::kLower);
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%.0f (%+.0f)", load.estimate,
                    delta.estimate);
      row.push_back(cell);
      row.push_back(util::Table::Num(
          network.GroundTruthStatic(region.junctions, t), 0));
    }
    table.AddRow(row);
  }
  table.Print();

  std::printf(
      "privacy note: every number above was aggregated from boundary-edge "
      "counters; no sensor or server ever stored a user identifier or a "
      "full trace.\n\n");

  // Continuous mode: a standing LiveRegionMonitor per tower processes the
  // event stream with O(1) work per crossing and can alert the moment a
  // load threshold is exceeded — no polling.
  std::vector<core::LiveRegionMonitor> monitors;
  for (const core::RangeQuery& region : regions) {
    monitors.emplace_back(
        deployment.graph(),
        deployment.graph().LowerBoundFaces(region.junctions));
  }
  std::vector<int64_t> peak(monitors.size(), 0);
  std::vector<double> peak_time(monitors.size(), 0.0);
  for (const mobility::CrossingEvent& event : network.events()) {
    for (size_t i = 0; i < monitors.size(); ++i) {
      monitors[i].OnEvent(event);
      if (monitors[i].CurrentCount() > peak[i]) {
        peak[i] = monitors[i].CurrentCount();
        peak_time[i] = event.time;
      }
    }
  }
  std::printf("live monitoring (streaming, O(1)/event):\n");
  for (size_t i = 0; i < monitors.size(); ++i) {
    std::printf(
        "  %s: watches %zu boundary edges; peak load %lld users at %.1fh\n",
        towers[i].name, monitors[i].WatchedEdges(),
        static_cast<long long>(peak[i]), peak_time[i] / 3600.0);
  }
  return 0;
}
