// Renders the network, a sampled deployment, and a query region to SVG —
// the repository's analogue of the paper's map figures (Figs. 2, 4, 6).
//
// Produces in the working directory:
//   network.svg            the mobility graph
//   deployment_kdtree.svg  kd-tree deployment (comm sensors + monitored
//                          edges) with a query rectangle
//   deployment_submodular.svg  query-adaptive deployment for the same query
#include <cstdio>

#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "viz/network_render.h"

int main() {
  using namespace innet;

  core::FrameworkOptions options;
  options.road.num_junctions = 700;
  options.traffic.num_trajectories = 1500;
  options.seed = 66;
  core::Framework framework(options);
  const core::SensorNetwork& network = framework.network();

  // Plain network.
  viz::RenderOptions plain;
  plain.draw_sensors = true;
  plain.draw_monitored_edges = false;
  plain.draw_comm_sensors = false;
  util::Status status =
      viz::RenderNetwork(network, nullptr, plain, "network.svg");
  std::printf("network.svg: %s\n", status.ToString().c_str());

  // A query to overlay.
  core::WorkloadOptions workload;
  workload.area_fraction = 0.06;
  workload.horizon = framework.Horizon();
  util::Rng qrng = framework.ForkRng();
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(network, workload, 1, qrng);

  // kd-tree deployment.
  sampling::KdTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment kd = framework.DeployWithSampler(
      sampler, network.NumSensors() / 8, core::DeploymentOptions{}, rng);
  viz::RenderOptions overlay;
  if (!queries.empty()) overlay.query_rect = queries[0].rect;
  status = viz::RenderNetwork(network, &kd.graph(), overlay,
                              "deployment_kdtree.svg");
  std::printf("deployment_kdtree.svg: %s (faces=%u, monitored=%zu)\n",
              status.ToString().c_str(), kd.graph().NumFaces(),
              kd.graph().monitored_edges().size());

  // Query-adaptive deployment for the same workload distribution.
  std::vector<core::RangeQuery> history =
      core::GenerateWorkload(network, workload, 40, qrng);
  core::Deployment adaptive = framework.DeployAdaptive(
      history, network.NumSensors() / 8, core::DeploymentOptions{});
  status = viz::RenderNetwork(network, &adaptive.graph(), overlay,
                              "deployment_submodular.svg");
  std::printf("deployment_submodular.svg: %s (faces=%u, monitored=%zu)\n",
              status.ToString().c_str(), adaptive.graph().NumFaces(),
              adaptive.graph().monitored_edges().size());
  return 0;
}
