// Quickstart: build an in-network sensing system over a synthetic city,
// deploy a sampled sensor configuration, and answer spatiotemporal range
// count queries.
//
//   $ ./quickstart
//
// Walks through the full public API surface: Framework construction,
// sampler-based deployment, workload generation, lower/upper-bound query
// answering, and accuracy/cost introspection.
#include <cstdio>

#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/stats.h"

int main() {
  using namespace innet;

  // 1. Build the world: a planar road network (the mobility graph ⋆G), its
  //    dual sensing graph G, and a moving-object workload whose crossing
  //    events are ingested into per-edge tracking forms.
  core::FrameworkOptions options;
  options.road.num_junctions = 800;       // City size.
  options.traffic.num_trajectories = 3000; // Trips over a 6 h horizon.
  options.seed = 1;
  core::Framework framework(options);
  const core::SensorNetwork& network = framework.network();
  std::printf("built network: %zu junctions, %zu roads, %zu sensors\n",
              network.mobility().NumNodes(), network.mobility().NumEdges(),
              network.NumSensors());
  std::printf("ingested %zu crossing events from %zu trajectories\n\n",
              network.events().size(), framework.trajectories().size());

  // 2. Deploy 15% of the sensors as communication sensors, selected by
  //    QuadTree sampling and connected by Delaunay triangulation with
  //    shortest-path relays (the sampled graph G̃).
  sampling::QuadTreeSampler sampler;
  util::Rng rng = framework.ForkRng();
  size_t budget = network.NumSensors() * 15 / 100;
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, budget, core::DeploymentOptions{}, rng);
  const core::SampledGraphStats& stats = deployment.graph().stats();
  std::printf(
      "deployment: %zu comm sensors, %zu relays, %zu monitored edges, "
      "%zu faces\n\n",
      stats.num_comm_sensors, stats.num_relay_sensors,
      stats.num_monitored_edges, stats.num_faces);

  // 3. Ask spatiotemporal range count queries: "how many objects are inside
  //    this rectangle at the end of the interval?" (static) and "what is the
  //    net population change?" (transient).
  core::WorkloadOptions workload;
  workload.area_fraction = 0.05;
  workload.horizon = framework.Horizon();
  util::Rng qrng = framework.ForkRng();
  std::vector<core::RangeQuery> queries =
      core::GenerateWorkload(network, workload, 10, qrng);

  core::SampledQueryProcessor processor = deployment.processor();
  std::printf("%-8s %-8s %-8s %-8s %-8s %s\n", "truth", "lower", "upper",
              "nodes", "edges", "transient");
  for (const core::RangeQuery& q : queries) {
    double truth = network.GroundTruthStatic(q.junctions, q.t2);
    core::QueryAnswer lower =
        processor.Answer(q, core::CountKind::kStatic, core::BoundMode::kLower);
    core::QueryAnswer upper =
        processor.Answer(q, core::CountKind::kStatic, core::BoundMode::kUpper);
    core::QueryAnswer transient = processor.Answer(
        q, core::CountKind::kTransient, core::BoundMode::kLower);
    std::printf("%-8.0f %-8.0f %-8.0f %-8zu %-8zu %+.0f\n", truth,
                lower.estimate, upper.estimate, lower.nodes_accessed,
                lower.edges_accessed, transient.estimate);
  }

  // 4. The lower/upper estimates always bracket the exact count; accuracy
  //    improves with the sensor budget. Storage is proportional to the
  //    monitored edges only:
  std::printf("\nsampled storage: %zu bytes (full graph would use %zu)\n",
              deployment.StorageBytes(),
              network.reference_store().StorageBytes());
  return 0;
}
