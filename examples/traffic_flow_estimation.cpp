// Traffic flow estimation (§3.3): use TRANSIENT object counts to estimate
// net flow through district-sized regions — the net count / time quantity
// that [35] uses for regional velocity estimation — and compare morning
// inbound flow across districts.
#include <cstdio>
#include <vector>

#include "core/framework.h"
#include "core/workload.h"
#include "sampling/samplers.h"
#include "util/table.h"

int main() {
  using namespace innet;

  core::FrameworkOptions options;
  options.road.num_junctions = 1200;
  options.traffic.num_trajectories = 6000;
  options.traffic.horizon = 3.0 * 3600.0;
  // Strong hotspot pull: commuters converge on a few centers, producing
  // positive net inflow there.
  options.traffic.num_hotspots = 3;
  options.traffic.hotspot_bias = 0.75;
  options.seed = 33;
  core::Framework framework(options);
  const core::SensorNetwork& network = framework.network();

  sampling::SystematicSampler sampler;
  util::Rng rng = framework.ForkRng();
  core::Deployment deployment = framework.DeployWithSampler(
      sampler, network.NumSensors() / 4, core::DeploymentOptions{}, rng);
  core::SampledQueryProcessor processor = deployment.processor();

  // Districts: a 3x3 tiling of the city core.
  const geometry::Rect& world = network.DomainBounds();
  geometry::Rect core_area(world.min_x + 0.15 * world.Width(),
                           world.min_y + 0.15 * world.Height(),
                           world.min_x + 0.85 * world.Width(),
                           world.min_y + 0.85 * world.Height());

  util::Table table(
      "District net flow per hour (positive = net inflow), with exact "
      "reference");
  table.SetHeader({"district", "junctions", "h1_est", "h1_true", "h2_est",
                   "h2_true", "h3_est", "h3_true"});

  for (int gy = 0; gy < 3; ++gy) {
    for (int gx = 0; gx < 3; ++gx) {
      geometry::Rect cell(
          core_area.min_x + gx * core_area.Width() / 3.0,
          core_area.min_y + gy * core_area.Height() / 3.0,
          core_area.min_x + (gx + 1) * core_area.Width() / 3.0,
          core_area.min_y + (gy + 1) * core_area.Height() / 3.0);
      core::RangeQuery query;
      query.rect = cell;
      query.junctions = network.JunctionsInRect(cell);
      if (query.junctions.empty()) continue;

      char name[16];
      std::snprintf(name, sizeof(name), "D%d%d", gx, gy);
      std::vector<std::string> row = {
          name, std::to_string(query.junctions.size())};
      for (int hour = 0; hour < 3; ++hour) {
        query.t1 = hour * 3600.0;
        query.t2 = (hour + 1) * 3600.0;
        core::QueryAnswer flow = processor.Answer(
            query, core::CountKind::kTransient, core::BoundMode::kLower);
        double truth =
            network.GroundTruthTransient(query.junctions, query.t1, query.t2);
        row.push_back(util::Table::Num(flow.estimate, 0));
        row.push_back(util::Table::Num(truth, 0));
      }
      table.AddRow(row);
    }
  }
  table.Print();

  std::printf(
      "districts containing commuter hotspots show sustained positive net "
      "inflow; the estimates track the exact net flows from boundary "
      "tracking forms alone (Thm 4.3).\n");
  return 0;
}
