# Empty dependencies file for innet_query.
# This may be replaced when dependencies are built.
