file(REMOVE_RECURSE
  "CMakeFiles/innet_query.dir/innet_query.cc.o"
  "CMakeFiles/innet_query.dir/innet_query.cc.o.d"
  "innet_query"
  "innet_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
