file(REMOVE_RECURSE
  "CMakeFiles/innet_dataset.dir/innet_dataset.cc.o"
  "CMakeFiles/innet_dataset.dir/innet_dataset.cc.o.d"
  "innet_dataset"
  "innet_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
