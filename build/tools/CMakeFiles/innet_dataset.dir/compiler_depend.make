# Empty compiler generated dependencies file for innet_dataset.
# This may be replaced when dependencies are built.
