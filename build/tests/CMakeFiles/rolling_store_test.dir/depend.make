# Empty dependencies file for rolling_store_test.
# This may be replaced when dependencies are built.
