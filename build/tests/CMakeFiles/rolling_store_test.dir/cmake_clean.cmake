file(REMOVE_RECURSE
  "CMakeFiles/rolling_store_test.dir/rolling_store_test.cc.o"
  "CMakeFiles/rolling_store_test.dir/rolling_store_test.cc.o.d"
  "rolling_store_test"
  "rolling_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rolling_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
