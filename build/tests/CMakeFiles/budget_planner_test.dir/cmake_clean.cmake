file(REMOVE_RECURSE
  "CMakeFiles/budget_planner_test.dir/budget_planner_test.cc.o"
  "CMakeFiles/budget_planner_test.dir/budget_planner_test.cc.o.d"
  "budget_planner_test"
  "budget_planner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
