file(REMOVE_RECURSE
  "CMakeFiles/event_buffer_test.dir/event_buffer_test.cc.o"
  "CMakeFiles/event_buffer_test.dir/event_buffer_test.cc.o.d"
  "event_buffer_test"
  "event_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
