# Empty compiler generated dependencies file for forms_test.
# This may be replaced when dependencies are built.
