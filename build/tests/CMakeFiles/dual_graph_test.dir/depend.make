# Empty dependencies file for dual_graph_test.
# This may be replaced when dependencies are built.
