file(REMOVE_RECURSE
  "CMakeFiles/dual_graph_test.dir/dual_graph_test.cc.o"
  "CMakeFiles/dual_graph_test.dir/dual_graph_test.cc.o.d"
  "dual_graph_test"
  "dual_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
