file(REMOVE_RECURSE
  "CMakeFiles/planarize_test.dir/planarize_test.cc.o"
  "CMakeFiles/planarize_test.dir/planarize_test.cc.o.d"
  "planarize_test"
  "planarize_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planarize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
