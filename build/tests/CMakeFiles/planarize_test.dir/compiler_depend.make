# Empty compiler generated dependencies file for planarize_test.
# This may be replaced when dependencies are built.
