# Empty dependencies file for sampled_graph_test.
# This may be replaced when dependencies are built.
