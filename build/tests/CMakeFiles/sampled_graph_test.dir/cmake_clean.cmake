file(REMOVE_RECURSE
  "CMakeFiles/sampled_graph_test.dir/sampled_graph_test.cc.o"
  "CMakeFiles/sampled_graph_test.dir/sampled_graph_test.cc.o.d"
  "sampled_graph_test"
  "sampled_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
