file(REMOVE_RECURSE
  "CMakeFiles/planar_graph_test.dir/planar_graph_test.cc.o"
  "CMakeFiles/planar_graph_test.dir/planar_graph_test.cc.o.d"
  "planar_graph_test"
  "planar_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planar_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
