# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for planar_graph_test.
