# Empty dependencies file for planar_graph_test.
# This may be replaced when dependencies are built.
