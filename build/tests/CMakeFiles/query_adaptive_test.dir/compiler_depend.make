# Empty compiler generated dependencies file for query_adaptive_test.
# This may be replaced when dependencies are built.
