file(REMOVE_RECURSE
  "CMakeFiles/query_adaptive_test.dir/query_adaptive_test.cc.o"
  "CMakeFiles/query_adaptive_test.dir/query_adaptive_test.cc.o.d"
  "query_adaptive_test"
  "query_adaptive_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_adaptive_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
