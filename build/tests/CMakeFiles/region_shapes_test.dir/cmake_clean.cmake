file(REMOVE_RECURSE
  "CMakeFiles/region_shapes_test.dir/region_shapes_test.cc.o"
  "CMakeFiles/region_shapes_test.dir/region_shapes_test.cc.o.d"
  "region_shapes_test"
  "region_shapes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
