file(REMOVE_RECURSE
  "CMakeFiles/dead_space_test.dir/dead_space_test.cc.o"
  "CMakeFiles/dead_space_test.dir/dead_space_test.cc.o.d"
  "dead_space_test"
  "dead_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dead_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
