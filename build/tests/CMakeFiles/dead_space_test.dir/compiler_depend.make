# Empty compiler generated dependencies file for dead_space_test.
# This may be replaced when dependencies are built.
