file(REMOVE_RECURSE
  "CMakeFiles/live_monitor_test.dir/live_monitor_test.cc.o"
  "CMakeFiles/live_monitor_test.dir/live_monitor_test.cc.o.d"
  "live_monitor_test"
  "live_monitor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/live_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
