# Empty dependencies file for headline.
# This may be replaced when dependencies are built.
