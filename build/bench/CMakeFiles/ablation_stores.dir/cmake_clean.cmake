file(REMOVE_RECURSE
  "CMakeFiles/ablation_stores.dir/ablation_stores.cc.o"
  "CMakeFiles/ablation_stores.dir/ablation_stores.cc.o.d"
  "ablation_stores"
  "ablation_stores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
