# Empty dependencies file for ablation_stores.
# This may be replaced when dependencies are built.
