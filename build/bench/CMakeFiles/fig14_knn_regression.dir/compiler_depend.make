# Empty compiler generated dependencies file for fig14_knn_regression.
# This may be replaced when dependencies are built.
