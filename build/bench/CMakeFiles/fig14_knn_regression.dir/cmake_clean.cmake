file(REMOVE_RECURSE
  "CMakeFiles/fig14_knn_regression.dir/fig14_knn_regression.cc.o"
  "CMakeFiles/fig14_knn_regression.dir/fig14_knn_regression.cc.o.d"
  "fig14_knn_regression"
  "fig14_knn_regression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_knn_regression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
