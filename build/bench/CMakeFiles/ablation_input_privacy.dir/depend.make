# Empty dependencies file for ablation_input_privacy.
# This may be replaced when dependencies are built.
