file(REMOVE_RECURSE
  "CMakeFiles/ablation_input_privacy.dir/ablation_input_privacy.cc.o"
  "CMakeFiles/ablation_input_privacy.dir/ablation_input_privacy.cc.o.d"
  "ablation_input_privacy"
  "ablation_input_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_input_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
