# Empty compiler generated dependencies file for ablation_deadspace.
# This may be replaced when dependencies are built.
