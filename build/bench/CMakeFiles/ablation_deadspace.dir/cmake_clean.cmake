file(REMOVE_RECURSE
  "CMakeFiles/ablation_deadspace.dir/ablation_deadspace.cc.o"
  "CMakeFiles/ablation_deadspace.dir/ablation_deadspace.cc.o.d"
  "ablation_deadspace"
  "ablation_deadspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_deadspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
