# Empty dependencies file for ablation_privacy.
# This may be replaced when dependencies are built.
