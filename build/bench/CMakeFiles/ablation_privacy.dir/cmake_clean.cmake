file(REMOVE_RECURSE
  "CMakeFiles/ablation_privacy.dir/ablation_privacy.cc.o"
  "CMakeFiles/ablation_privacy.dir/ablation_privacy.cc.o.d"
  "ablation_privacy"
  "ablation_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
