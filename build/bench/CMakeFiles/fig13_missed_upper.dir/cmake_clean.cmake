file(REMOVE_RECURSE
  "CMakeFiles/fig13_missed_upper.dir/fig13_missed_upper.cc.o"
  "CMakeFiles/fig13_missed_upper.dir/fig13_missed_upper.cc.o.d"
  "fig13_missed_upper"
  "fig13_missed_upper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_missed_upper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
