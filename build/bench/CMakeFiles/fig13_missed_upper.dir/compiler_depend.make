# Empty compiler generated dependencies file for fig13_missed_upper.
# This may be replaced when dependencies are built.
