# Empty dependencies file for fig11_storage.
# This may be replaced when dependencies are built.
