file(REMOVE_RECURSE
  "CMakeFiles/innet_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/innet_bench_common.dir/bench_common.cc.o.d"
  "libinnet_bench_common.a"
  "libinnet_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
