# Empty dependencies file for innet_bench_common.
# This may be replaced when dependencies are built.
