file(REMOVE_RECURSE
  "libinnet_bench_common.a"
)
