file(REMOVE_RECURSE
  "CMakeFiles/fig11_transient_error.dir/fig11_transient_error.cc.o"
  "CMakeFiles/fig11_transient_error.dir/fig11_transient_error.cc.o.d"
  "fig11_transient_error"
  "fig11_transient_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_transient_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
