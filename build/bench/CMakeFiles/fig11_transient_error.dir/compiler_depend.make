# Empty compiler generated dependencies file for fig11_transient_error.
# This may be replaced when dependencies are built.
