
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_transient_error.cc" "bench/CMakeFiles/fig11_transient_error.dir/fig11_transient_error.cc.o" "gcc" "bench/CMakeFiles/fig11_transient_error.dir/fig11_transient_error.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/innet_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/innet_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/innet_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/innet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/innet_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/learned/CMakeFiles/innet_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/forms/CMakeFiles/innet_forms.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/innet_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/innet_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/innet_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
