# Empty dependencies file for fig4_samplers.
# This may be replaced when dependencies are built.
