file(REMOVE_RECURSE
  "CMakeFiles/fig4_samplers.dir/fig4_samplers.cc.o"
  "CMakeFiles/fig4_samplers.dir/fig4_samplers.cc.o.d"
  "fig4_samplers"
  "fig4_samplers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_samplers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
