# Empty compiler generated dependencies file for ablation_celf.
# This may be replaced when dependencies are built.
