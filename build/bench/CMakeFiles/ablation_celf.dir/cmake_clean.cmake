file(REMOVE_RECURSE
  "CMakeFiles/ablation_celf.dir/ablation_celf.cc.o"
  "CMakeFiles/ablation_celf.dir/ablation_celf.cc.o.d"
  "ablation_celf"
  "ablation_celf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_celf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
