# Empty dependencies file for fig12_static_error.
# This may be replaced when dependencies are built.
