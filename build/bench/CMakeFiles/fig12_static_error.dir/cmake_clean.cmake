file(REMOVE_RECURSE
  "CMakeFiles/fig12_static_error.dir/fig12_static_error.cc.o"
  "CMakeFiles/fig12_static_error.dir/fig12_static_error.cc.o.d"
  "fig12_static_error"
  "fig12_static_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_static_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
