# Empty dependencies file for innet_core.
# This may be replaced when dependencies are built.
