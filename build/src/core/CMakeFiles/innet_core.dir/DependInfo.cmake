
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_weights.cc" "src/core/CMakeFiles/innet_core.dir/adaptive_weights.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/adaptive_weights.cc.o.d"
  "/root/repo/src/core/budget_planner.cc" "src/core/CMakeFiles/innet_core.dir/budget_planner.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/budget_planner.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/innet_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/dead_space.cc" "src/core/CMakeFiles/innet_core.dir/dead_space.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/dead_space.cc.o.d"
  "/root/repo/src/core/dispatch.cc" "src/core/CMakeFiles/innet_core.dir/dispatch.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/dispatch.cc.o.d"
  "/root/repo/src/core/event_buffer.cc" "src/core/CMakeFiles/innet_core.dir/event_buffer.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/event_buffer.cc.o.d"
  "/root/repo/src/core/framework.cc" "src/core/CMakeFiles/innet_core.dir/framework.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/framework.cc.o.d"
  "/root/repo/src/core/live_monitor.cc" "src/core/CMakeFiles/innet_core.dir/live_monitor.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/live_monitor.cc.o.d"
  "/root/repo/src/core/query_processor.cc" "src/core/CMakeFiles/innet_core.dir/query_processor.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/query_processor.cc.o.d"
  "/root/repo/src/core/sampled_graph.cc" "src/core/CMakeFiles/innet_core.dir/sampled_graph.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/sampled_graph.cc.o.d"
  "/root/repo/src/core/sensor_network.cc" "src/core/CMakeFiles/innet_core.dir/sensor_network.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/sensor_network.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/core/CMakeFiles/innet_core.dir/workload.cc.o" "gcc" "src/core/CMakeFiles/innet_core.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forms/CMakeFiles/innet_forms.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/innet_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/mobility/CMakeFiles/innet_mobility.dir/DependInfo.cmake"
  "/root/repo/build/src/learned/CMakeFiles/innet_learned.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/innet_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/innet_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
