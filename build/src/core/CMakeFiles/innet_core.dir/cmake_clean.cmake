file(REMOVE_RECURSE
  "CMakeFiles/innet_core.dir/adaptive_weights.cc.o"
  "CMakeFiles/innet_core.dir/adaptive_weights.cc.o.d"
  "CMakeFiles/innet_core.dir/budget_planner.cc.o"
  "CMakeFiles/innet_core.dir/budget_planner.cc.o.d"
  "CMakeFiles/innet_core.dir/cost_model.cc.o"
  "CMakeFiles/innet_core.dir/cost_model.cc.o.d"
  "CMakeFiles/innet_core.dir/dead_space.cc.o"
  "CMakeFiles/innet_core.dir/dead_space.cc.o.d"
  "CMakeFiles/innet_core.dir/dispatch.cc.o"
  "CMakeFiles/innet_core.dir/dispatch.cc.o.d"
  "CMakeFiles/innet_core.dir/event_buffer.cc.o"
  "CMakeFiles/innet_core.dir/event_buffer.cc.o.d"
  "CMakeFiles/innet_core.dir/framework.cc.o"
  "CMakeFiles/innet_core.dir/framework.cc.o.d"
  "CMakeFiles/innet_core.dir/live_monitor.cc.o"
  "CMakeFiles/innet_core.dir/live_monitor.cc.o.d"
  "CMakeFiles/innet_core.dir/query_processor.cc.o"
  "CMakeFiles/innet_core.dir/query_processor.cc.o.d"
  "CMakeFiles/innet_core.dir/sampled_graph.cc.o"
  "CMakeFiles/innet_core.dir/sampled_graph.cc.o.d"
  "CMakeFiles/innet_core.dir/sensor_network.cc.o"
  "CMakeFiles/innet_core.dir/sensor_network.cc.o.d"
  "CMakeFiles/innet_core.dir/workload.cc.o"
  "CMakeFiles/innet_core.dir/workload.cc.o.d"
  "libinnet_core.a"
  "libinnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
