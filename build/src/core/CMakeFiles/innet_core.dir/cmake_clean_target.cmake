file(REMOVE_RECURSE
  "libinnet_core.a"
)
