
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mobility/map_matching.cc" "src/mobility/CMakeFiles/innet_mobility.dir/map_matching.cc.o" "gcc" "src/mobility/CMakeFiles/innet_mobility.dir/map_matching.cc.o.d"
  "/root/repo/src/mobility/perturbation.cc" "src/mobility/CMakeFiles/innet_mobility.dir/perturbation.cc.o" "gcc" "src/mobility/CMakeFiles/innet_mobility.dir/perturbation.cc.o.d"
  "/root/repo/src/mobility/road_network.cc" "src/mobility/CMakeFiles/innet_mobility.dir/road_network.cc.o" "gcc" "src/mobility/CMakeFiles/innet_mobility.dir/road_network.cc.o.d"
  "/root/repo/src/mobility/trajectory.cc" "src/mobility/CMakeFiles/innet_mobility.dir/trajectory.cc.o" "gcc" "src/mobility/CMakeFiles/innet_mobility.dir/trajectory.cc.o.d"
  "/root/repo/src/mobility/trajectory_generator.cc" "src/mobility/CMakeFiles/innet_mobility.dir/trajectory_generator.cc.o" "gcc" "src/mobility/CMakeFiles/innet_mobility.dir/trajectory_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/innet_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
