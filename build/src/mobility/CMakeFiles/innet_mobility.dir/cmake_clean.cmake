file(REMOVE_RECURSE
  "CMakeFiles/innet_mobility.dir/map_matching.cc.o"
  "CMakeFiles/innet_mobility.dir/map_matching.cc.o.d"
  "CMakeFiles/innet_mobility.dir/perturbation.cc.o"
  "CMakeFiles/innet_mobility.dir/perturbation.cc.o.d"
  "CMakeFiles/innet_mobility.dir/road_network.cc.o"
  "CMakeFiles/innet_mobility.dir/road_network.cc.o.d"
  "CMakeFiles/innet_mobility.dir/trajectory.cc.o"
  "CMakeFiles/innet_mobility.dir/trajectory.cc.o.d"
  "CMakeFiles/innet_mobility.dir/trajectory_generator.cc.o"
  "CMakeFiles/innet_mobility.dir/trajectory_generator.cc.o.d"
  "libinnet_mobility.a"
  "libinnet_mobility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_mobility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
