file(REMOVE_RECURSE
  "libinnet_mobility.a"
)
