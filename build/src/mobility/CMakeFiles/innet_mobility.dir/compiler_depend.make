# Empty compiler generated dependencies file for innet_mobility.
# This may be replaced when dependencies are built.
