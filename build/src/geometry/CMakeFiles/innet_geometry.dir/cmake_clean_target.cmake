file(REMOVE_RECURSE
  "libinnet_geometry.a"
)
