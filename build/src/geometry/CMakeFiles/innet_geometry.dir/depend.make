# Empty dependencies file for innet_geometry.
# This may be replaced when dependencies are built.
