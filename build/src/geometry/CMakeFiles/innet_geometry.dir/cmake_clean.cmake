file(REMOVE_RECURSE
  "CMakeFiles/innet_geometry.dir/convex_hull.cc.o"
  "CMakeFiles/innet_geometry.dir/convex_hull.cc.o.d"
  "CMakeFiles/innet_geometry.dir/delaunay.cc.o"
  "CMakeFiles/innet_geometry.dir/delaunay.cc.o.d"
  "CMakeFiles/innet_geometry.dir/polygon.cc.o"
  "CMakeFiles/innet_geometry.dir/polygon.cc.o.d"
  "CMakeFiles/innet_geometry.dir/predicates.cc.o"
  "CMakeFiles/innet_geometry.dir/predicates.cc.o.d"
  "CMakeFiles/innet_geometry.dir/segment.cc.o"
  "CMakeFiles/innet_geometry.dir/segment.cc.o.d"
  "libinnet_geometry.a"
  "libinnet_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
