
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/convex_hull.cc" "src/geometry/CMakeFiles/innet_geometry.dir/convex_hull.cc.o" "gcc" "src/geometry/CMakeFiles/innet_geometry.dir/convex_hull.cc.o.d"
  "/root/repo/src/geometry/delaunay.cc" "src/geometry/CMakeFiles/innet_geometry.dir/delaunay.cc.o" "gcc" "src/geometry/CMakeFiles/innet_geometry.dir/delaunay.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/geometry/CMakeFiles/innet_geometry.dir/polygon.cc.o" "gcc" "src/geometry/CMakeFiles/innet_geometry.dir/polygon.cc.o.d"
  "/root/repo/src/geometry/predicates.cc" "src/geometry/CMakeFiles/innet_geometry.dir/predicates.cc.o" "gcc" "src/geometry/CMakeFiles/innet_geometry.dir/predicates.cc.o.d"
  "/root/repo/src/geometry/segment.cc" "src/geometry/CMakeFiles/innet_geometry.dir/segment.cc.o" "gcc" "src/geometry/CMakeFiles/innet_geometry.dir/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
