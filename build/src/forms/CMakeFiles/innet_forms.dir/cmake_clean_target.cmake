file(REMOVE_RECURSE
  "libinnet_forms.a"
)
