file(REMOVE_RECURSE
  "CMakeFiles/innet_forms.dir/differential_form.cc.o"
  "CMakeFiles/innet_forms.dir/differential_form.cc.o.d"
  "CMakeFiles/innet_forms.dir/region_count.cc.o"
  "CMakeFiles/innet_forms.dir/region_count.cc.o.d"
  "CMakeFiles/innet_forms.dir/tracking_form.cc.o"
  "CMakeFiles/innet_forms.dir/tracking_form.cc.o.d"
  "libinnet_forms.a"
  "libinnet_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
