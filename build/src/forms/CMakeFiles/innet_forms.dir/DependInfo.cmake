
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/forms/differential_form.cc" "src/forms/CMakeFiles/innet_forms.dir/differential_form.cc.o" "gcc" "src/forms/CMakeFiles/innet_forms.dir/differential_form.cc.o.d"
  "/root/repo/src/forms/region_count.cc" "src/forms/CMakeFiles/innet_forms.dir/region_count.cc.o" "gcc" "src/forms/CMakeFiles/innet_forms.dir/region_count.cc.o.d"
  "/root/repo/src/forms/tracking_form.cc" "src/forms/CMakeFiles/innet_forms.dir/tracking_form.cc.o" "gcc" "src/forms/CMakeFiles/innet_forms.dir/tracking_form.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
