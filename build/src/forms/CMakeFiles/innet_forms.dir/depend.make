# Empty dependencies file for innet_forms.
# This may be replaced when dependencies are built.
