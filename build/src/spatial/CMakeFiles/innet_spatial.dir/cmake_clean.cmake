file(REMOVE_RECURSE
  "CMakeFiles/innet_spatial.dir/grid.cc.o"
  "CMakeFiles/innet_spatial.dir/grid.cc.o.d"
  "CMakeFiles/innet_spatial.dir/kdtree.cc.o"
  "CMakeFiles/innet_spatial.dir/kdtree.cc.o.d"
  "CMakeFiles/innet_spatial.dir/quadtree.cc.o"
  "CMakeFiles/innet_spatial.dir/quadtree.cc.o.d"
  "CMakeFiles/innet_spatial.dir/rtree.cc.o"
  "CMakeFiles/innet_spatial.dir/rtree.cc.o.d"
  "libinnet_spatial.a"
  "libinnet_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
