# Empty dependencies file for innet_spatial.
# This may be replaced when dependencies are built.
