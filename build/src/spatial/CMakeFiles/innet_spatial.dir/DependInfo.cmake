
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spatial/grid.cc" "src/spatial/CMakeFiles/innet_spatial.dir/grid.cc.o" "gcc" "src/spatial/CMakeFiles/innet_spatial.dir/grid.cc.o.d"
  "/root/repo/src/spatial/kdtree.cc" "src/spatial/CMakeFiles/innet_spatial.dir/kdtree.cc.o" "gcc" "src/spatial/CMakeFiles/innet_spatial.dir/kdtree.cc.o.d"
  "/root/repo/src/spatial/quadtree.cc" "src/spatial/CMakeFiles/innet_spatial.dir/quadtree.cc.o" "gcc" "src/spatial/CMakeFiles/innet_spatial.dir/quadtree.cc.o.d"
  "/root/repo/src/spatial/rtree.cc" "src/spatial/CMakeFiles/innet_spatial.dir/rtree.cc.o" "gcc" "src/spatial/CMakeFiles/innet_spatial.dir/rtree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
