file(REMOVE_RECURSE
  "libinnet_spatial.a"
)
