# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geometry")
subdirs("graph")
subdirs("spatial")
subdirs("mobility")
subdirs("forms")
subdirs("learned")
subdirs("sampling")
subdirs("placement")
subdirs("privacy")
subdirs("io")
subdirs("baseline")
subdirs("core")
subdirs("viz")
