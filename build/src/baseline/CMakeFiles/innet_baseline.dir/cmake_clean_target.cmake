file(REMOVE_RECURSE
  "libinnet_baseline.a"
)
