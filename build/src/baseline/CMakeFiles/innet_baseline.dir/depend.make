# Empty dependencies file for innet_baseline.
# This may be replaced when dependencies are built.
