file(REMOVE_RECURSE
  "CMakeFiles/innet_baseline.dir/euler_histogram.cc.o"
  "CMakeFiles/innet_baseline.dir/euler_histogram.cc.o.d"
  "CMakeFiles/innet_baseline.dir/face_occupancy.cc.o"
  "CMakeFiles/innet_baseline.dir/face_occupancy.cc.o.d"
  "CMakeFiles/innet_baseline.dir/face_sampling.cc.o"
  "CMakeFiles/innet_baseline.dir/face_sampling.cc.o.d"
  "libinnet_baseline.a"
  "libinnet_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
