file(REMOVE_RECURSE
  "CMakeFiles/innet_io.dir/serialize.cc.o"
  "CMakeFiles/innet_io.dir/serialize.cc.o.d"
  "libinnet_io.a"
  "libinnet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
