file(REMOVE_RECURSE
  "libinnet_io.a"
)
