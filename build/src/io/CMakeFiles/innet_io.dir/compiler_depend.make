# Empty compiler generated dependencies file for innet_io.
# This may be replaced when dependencies are built.
