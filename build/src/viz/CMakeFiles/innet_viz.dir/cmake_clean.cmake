file(REMOVE_RECURSE
  "CMakeFiles/innet_viz.dir/network_render.cc.o"
  "CMakeFiles/innet_viz.dir/network_render.cc.o.d"
  "CMakeFiles/innet_viz.dir/svg.cc.o"
  "CMakeFiles/innet_viz.dir/svg.cc.o.d"
  "libinnet_viz.a"
  "libinnet_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
