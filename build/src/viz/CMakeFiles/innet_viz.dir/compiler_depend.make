# Empty compiler generated dependencies file for innet_viz.
# This may be replaced when dependencies are built.
