file(REMOVE_RECURSE
  "libinnet_viz.a"
)
