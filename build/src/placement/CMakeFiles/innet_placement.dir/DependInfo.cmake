
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/query_adaptive.cc" "src/placement/CMakeFiles/innet_placement.dir/query_adaptive.cc.o" "gcc" "src/placement/CMakeFiles/innet_placement.dir/query_adaptive.cc.o.d"
  "/root/repo/src/placement/submodular.cc" "src/placement/CMakeFiles/innet_placement.dir/submodular.cc.o" "gcc" "src/placement/CMakeFiles/innet_placement.dir/submodular.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
