file(REMOVE_RECURSE
  "libinnet_placement.a"
)
