# Empty dependencies file for innet_placement.
# This may be replaced when dependencies are built.
