file(REMOVE_RECURSE
  "CMakeFiles/innet_placement.dir/query_adaptive.cc.o"
  "CMakeFiles/innet_placement.dir/query_adaptive.cc.o.d"
  "CMakeFiles/innet_placement.dir/submodular.cc.o"
  "CMakeFiles/innet_placement.dir/submodular.cc.o.d"
  "libinnet_placement.a"
  "libinnet_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
