file(REMOVE_RECURSE
  "CMakeFiles/innet_graph.dir/connectivity.cc.o"
  "CMakeFiles/innet_graph.dir/connectivity.cc.o.d"
  "CMakeFiles/innet_graph.dir/dual_graph.cc.o"
  "CMakeFiles/innet_graph.dir/dual_graph.cc.o.d"
  "CMakeFiles/innet_graph.dir/planar_graph.cc.o"
  "CMakeFiles/innet_graph.dir/planar_graph.cc.o.d"
  "CMakeFiles/innet_graph.dir/planarize.cc.o"
  "CMakeFiles/innet_graph.dir/planarize.cc.o.d"
  "CMakeFiles/innet_graph.dir/shortest_path.cc.o"
  "CMakeFiles/innet_graph.dir/shortest_path.cc.o.d"
  "CMakeFiles/innet_graph.dir/weighted_adjacency.cc.o"
  "CMakeFiles/innet_graph.dir/weighted_adjacency.cc.o.d"
  "libinnet_graph.a"
  "libinnet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
