file(REMOVE_RECURSE
  "libinnet_graph.a"
)
