
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/connectivity.cc" "src/graph/CMakeFiles/innet_graph.dir/connectivity.cc.o" "gcc" "src/graph/CMakeFiles/innet_graph.dir/connectivity.cc.o.d"
  "/root/repo/src/graph/dual_graph.cc" "src/graph/CMakeFiles/innet_graph.dir/dual_graph.cc.o" "gcc" "src/graph/CMakeFiles/innet_graph.dir/dual_graph.cc.o.d"
  "/root/repo/src/graph/planar_graph.cc" "src/graph/CMakeFiles/innet_graph.dir/planar_graph.cc.o" "gcc" "src/graph/CMakeFiles/innet_graph.dir/planar_graph.cc.o.d"
  "/root/repo/src/graph/planarize.cc" "src/graph/CMakeFiles/innet_graph.dir/planarize.cc.o" "gcc" "src/graph/CMakeFiles/innet_graph.dir/planarize.cc.o.d"
  "/root/repo/src/graph/shortest_path.cc" "src/graph/CMakeFiles/innet_graph.dir/shortest_path.cc.o" "gcc" "src/graph/CMakeFiles/innet_graph.dir/shortest_path.cc.o.d"
  "/root/repo/src/graph/weighted_adjacency.cc" "src/graph/CMakeFiles/innet_graph.dir/weighted_adjacency.cc.o" "gcc" "src/graph/CMakeFiles/innet_graph.dir/weighted_adjacency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
