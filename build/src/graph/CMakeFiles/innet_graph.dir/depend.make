# Empty dependencies file for innet_graph.
# This may be replaced when dependencies are built.
