file(REMOVE_RECURSE
  "CMakeFiles/innet_sampling.dir/sampler.cc.o"
  "CMakeFiles/innet_sampling.dir/sampler.cc.o.d"
  "CMakeFiles/innet_sampling.dir/samplers.cc.o"
  "CMakeFiles/innet_sampling.dir/samplers.cc.o.d"
  "libinnet_sampling.a"
  "libinnet_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
