file(REMOVE_RECURSE
  "libinnet_sampling.a"
)
