# Empty dependencies file for innet_sampling.
# This may be replaced when dependencies are built.
