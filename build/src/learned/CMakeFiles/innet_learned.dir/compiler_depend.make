# Empty compiler generated dependencies file for innet_learned.
# This may be replaced when dependencies are built.
