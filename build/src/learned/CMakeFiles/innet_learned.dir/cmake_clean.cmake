file(REMOVE_RECURSE
  "CMakeFiles/innet_learned.dir/buffered_edge_store.cc.o"
  "CMakeFiles/innet_learned.dir/buffered_edge_store.cc.o.d"
  "CMakeFiles/innet_learned.dir/count_model.cc.o"
  "CMakeFiles/innet_learned.dir/count_model.cc.o.d"
  "CMakeFiles/innet_learned.dir/piecewise_model.cc.o"
  "CMakeFiles/innet_learned.dir/piecewise_model.cc.o.d"
  "CMakeFiles/innet_learned.dir/polynomial_model.cc.o"
  "CMakeFiles/innet_learned.dir/polynomial_model.cc.o.d"
  "CMakeFiles/innet_learned.dir/rolling_store.cc.o"
  "CMakeFiles/innet_learned.dir/rolling_store.cc.o.d"
  "libinnet_learned.a"
  "libinnet_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
