file(REMOVE_RECURSE
  "libinnet_learned.a"
)
