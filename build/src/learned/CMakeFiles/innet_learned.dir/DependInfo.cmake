
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learned/buffered_edge_store.cc" "src/learned/CMakeFiles/innet_learned.dir/buffered_edge_store.cc.o" "gcc" "src/learned/CMakeFiles/innet_learned.dir/buffered_edge_store.cc.o.d"
  "/root/repo/src/learned/count_model.cc" "src/learned/CMakeFiles/innet_learned.dir/count_model.cc.o" "gcc" "src/learned/CMakeFiles/innet_learned.dir/count_model.cc.o.d"
  "/root/repo/src/learned/piecewise_model.cc" "src/learned/CMakeFiles/innet_learned.dir/piecewise_model.cc.o" "gcc" "src/learned/CMakeFiles/innet_learned.dir/piecewise_model.cc.o.d"
  "/root/repo/src/learned/polynomial_model.cc" "src/learned/CMakeFiles/innet_learned.dir/polynomial_model.cc.o" "gcc" "src/learned/CMakeFiles/innet_learned.dir/polynomial_model.cc.o.d"
  "/root/repo/src/learned/rolling_store.cc" "src/learned/CMakeFiles/innet_learned.dir/rolling_store.cc.o" "gcc" "src/learned/CMakeFiles/innet_learned.dir/rolling_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forms/CMakeFiles/innet_forms.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
