
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/noise.cc" "src/privacy/CMakeFiles/innet_privacy.dir/noise.cc.o" "gcc" "src/privacy/CMakeFiles/innet_privacy.dir/noise.cc.o.d"
  "/root/repo/src/privacy/private_store.cc" "src/privacy/CMakeFiles/innet_privacy.dir/private_store.cc.o" "gcc" "src/privacy/CMakeFiles/innet_privacy.dir/private_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/forms/CMakeFiles/innet_forms.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/innet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/innet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/innet_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
