file(REMOVE_RECURSE
  "CMakeFiles/innet_privacy.dir/noise.cc.o"
  "CMakeFiles/innet_privacy.dir/noise.cc.o.d"
  "CMakeFiles/innet_privacy.dir/private_store.cc.o"
  "CMakeFiles/innet_privacy.dir/private_store.cc.o.d"
  "libinnet_privacy.a"
  "libinnet_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
