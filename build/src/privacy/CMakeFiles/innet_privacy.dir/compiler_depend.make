# Empty compiler generated dependencies file for innet_privacy.
# This may be replaced when dependencies are built.
