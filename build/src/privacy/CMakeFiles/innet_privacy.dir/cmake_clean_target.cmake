file(REMOVE_RECURSE
  "libinnet_privacy.a"
)
