file(REMOVE_RECURSE
  "CMakeFiles/innet_util.dir/flags.cc.o"
  "CMakeFiles/innet_util.dir/flags.cc.o.d"
  "CMakeFiles/innet_util.dir/rng.cc.o"
  "CMakeFiles/innet_util.dir/rng.cc.o.d"
  "CMakeFiles/innet_util.dir/stats.cc.o"
  "CMakeFiles/innet_util.dir/stats.cc.o.d"
  "CMakeFiles/innet_util.dir/status.cc.o"
  "CMakeFiles/innet_util.dir/status.cc.o.d"
  "CMakeFiles/innet_util.dir/table.cc.o"
  "CMakeFiles/innet_util.dir/table.cc.o.d"
  "libinnet_util.a"
  "libinnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/innet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
