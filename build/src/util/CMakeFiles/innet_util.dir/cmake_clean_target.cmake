file(REMOVE_RECURSE
  "libinnet_util.a"
)
