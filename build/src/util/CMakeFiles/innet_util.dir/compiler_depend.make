# Empty compiler generated dependencies file for innet_util.
# This may be replaced when dependencies are built.
