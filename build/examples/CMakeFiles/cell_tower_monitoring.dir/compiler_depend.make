# Empty compiler generated dependencies file for cell_tower_monitoring.
# This may be replaced when dependencies are built.
