file(REMOVE_RECURSE
  "CMakeFiles/cell_tower_monitoring.dir/cell_tower_monitoring.cpp.o"
  "CMakeFiles/cell_tower_monitoring.dir/cell_tower_monitoring.cpp.o.d"
  "cell_tower_monitoring"
  "cell_tower_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_tower_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
