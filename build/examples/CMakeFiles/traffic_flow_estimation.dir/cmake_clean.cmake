file(REMOVE_RECURSE
  "CMakeFiles/traffic_flow_estimation.dir/traffic_flow_estimation.cpp.o"
  "CMakeFiles/traffic_flow_estimation.dir/traffic_flow_estimation.cpp.o.d"
  "traffic_flow_estimation"
  "traffic_flow_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_flow_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
