# Empty dependencies file for traffic_flow_estimation.
# This may be replaced when dependencies are built.
