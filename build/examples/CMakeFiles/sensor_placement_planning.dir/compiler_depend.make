# Empty compiler generated dependencies file for sensor_placement_planning.
# This may be replaced when dependencies are built.
