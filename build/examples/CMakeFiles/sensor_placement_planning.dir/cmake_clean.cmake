file(REMOVE_RECURSE
  "CMakeFiles/sensor_placement_planning.dir/sensor_placement_planning.cpp.o"
  "CMakeFiles/sensor_placement_planning.dir/sensor_placement_planning.cpp.o.d"
  "sensor_placement_planning"
  "sensor_placement_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_placement_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
