file(REMOVE_RECURSE
  "CMakeFiles/gps_ingestion.dir/gps_ingestion.cpp.o"
  "CMakeFiles/gps_ingestion.dir/gps_ingestion.cpp.o.d"
  "gps_ingestion"
  "gps_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gps_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
