# Empty dependencies file for gps_ingestion.
# This may be replaced when dependencies are built.
