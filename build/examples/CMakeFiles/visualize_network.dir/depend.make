# Empty dependencies file for visualize_network.
# This may be replaced when dependencies are built.
