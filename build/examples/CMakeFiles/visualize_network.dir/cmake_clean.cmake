file(REMOVE_RECURSE
  "CMakeFiles/visualize_network.dir/visualize_network.cpp.o"
  "CMakeFiles/visualize_network.dir/visualize_network.cpp.o.d"
  "visualize_network"
  "visualize_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
