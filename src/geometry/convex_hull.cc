#include "geometry/convex_hull.h"

#include <algorithm>

#include "geometry/predicates.h"

namespace innet::geometry {

std::vector<Point> ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  size_t n = points.size();
  if (n < 3) return points;

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           SignedArea2(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  // Upper hull.
  size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           SignedArea2(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

}  // namespace innet::geometry
