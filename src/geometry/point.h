// 2-D point/vector type used throughout the library.
#ifndef INNET_GEOMETRY_POINT_H_
#define INNET_GEOMETRY_POINT_H_

#include <cmath>

namespace innet::geometry {

/// A 2-D point (or free vector) with double coordinates.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  constexpr Point operator+(const Point& o) const {
    return Point(x + o.x, y + o.y);
  }
  constexpr Point operator-(const Point& o) const {
    return Point(x - o.x, y - o.y);
  }
  constexpr Point operator*(double s) const { return Point(x * s, y * s); }
  constexpr Point operator/(double s) const { return Point(x / s, y / s); }

  constexpr bool operator==(const Point& o) const {
    return x == o.x && y == o.y;
  }
  constexpr bool operator!=(const Point& o) const { return !(*this == o); }
};

/// Dot product.
constexpr double Dot(const Point& a, const Point& b) {
  return a.x * b.x + a.y * b.y;
}

/// 2-D cross product (z-component of the 3-D cross product).
constexpr double Cross(const Point& a, const Point& b) {
  return a.x * b.y - a.y * b.x;
}

/// Squared Euclidean distance between a and b.
constexpr double DistanceSquared(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance between a and b.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(DistanceSquared(a, b));
}

/// Euclidean norm of v.
inline double Norm(const Point& v) { return std::sqrt(Dot(v, v)); }

/// Midpoint of segment ab.
constexpr Point Midpoint(const Point& a, const Point& b) {
  return Point((a.x + b.x) * 0.5, (a.y + b.y) * 0.5);
}

/// Angle of the vector a->b in radians, in (-pi, pi].
inline double AngleOf(const Point& a, const Point& b) {
  return std::atan2(b.y - a.y, b.x - a.x);
}

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_POINT_H_
