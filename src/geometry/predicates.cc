#include "geometry/predicates.h"

#include <cmath>

#include "util/logging.h"

namespace innet::geometry {

namespace {
// Relative tolerance for the collinearity band. The magnitude of the cross
// product scales with the product of the edge lengths, so the band must too.
constexpr double kEpsilon = 1e-12;
}  // namespace

Orient Orientation(const Point& a, const Point& b, const Point& c) {
  double det = SignedArea2(a, b, c);
  double scale = Norm(b - a) * Norm(c - a);
  if (std::abs(det) <= kEpsilon * scale) return Orient::kCollinear;
  return det > 0 ? Orient::kCounterClockwise : Orient::kClockwise;
}

bool InCircle(const Point& a, const Point& b, const Point& c, const Point& d) {
  // Standard 3x3 determinant of the lifted points relative to d.
  double adx = a.x - d.x, ady = a.y - d.y;
  double bdx = b.x - d.x, bdy = b.y - d.y;
  double cdx = c.x - d.x, cdy = c.y - d.y;
  double ad = adx * adx + ady * ady;
  double bd = bdx * bdx + bdy * bdy;
  double cd = cdx * cdx + cdy * cdy;
  double det = adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) +
               ad * (bdx * cdy - bdy * cdx);
  return det > 0;
}

Point Circumcenter(const Point& a, const Point& b, const Point& c) {
  double d = 2.0 * SignedArea2(a, b, c);
  INNET_CHECK(d != 0.0);
  double a2 = Dot(a, a);
  double b2 = Dot(b, b);
  double c2 = Dot(c, c);
  double ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  double uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  return Point(ux, uy);
}

}  // namespace innet::geometry
