// Convex hull, used for query-region envelopes and sampler diagnostics.
#ifndef INNET_GEOMETRY_CONVEX_HULL_H_
#define INNET_GEOMETRY_CONVEX_HULL_H_

#include <vector>

#include "geometry/point.h"

namespace innet::geometry {

/// Convex hull of `points` (Andrew's monotone chain), returned in
/// counter-clockwise order without the repeated closing vertex. Collinear
/// boundary points are dropped. Handles n < 3 by returning the deduplicated
/// input.
std::vector<Point> ConvexHull(std::vector<Point> points);

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_CONVEX_HULL_H_
