// Simple polygons: face geometry of the planar graphs (§3.2) and strata for
// stratified sampling (§4.3).
#ifndef INNET_GEOMETRY_POLYGON_H_
#define INNET_GEOMETRY_POLYGON_H_

#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace innet::geometry {

/// A simple polygon given by its vertex ring (no repeated closing vertex).
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices)
      : vertices_(std::move(vertices)) {}

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }

  /// Signed area: positive for counter-clockwise winding.
  double SignedArea() const;

  /// Absolute area.
  double Area() const;

  /// Perimeter length.
  double Perimeter() const;

  /// Area centroid. For degenerate (zero-area) polygons falls back to the
  /// vertex average.
  Point Centroid() const;

  /// True when the ring winds counter-clockwise.
  bool IsCounterClockwise() const { return SignedArea() > 0.0; }

  /// Reverses the vertex order in place (flips orientation).
  void Reverse();

  /// Even-odd point-in-polygon test; boundary points count as inside.
  bool Contains(const Point& p) const;

  /// Axis-aligned bounding box. Requires a non-empty polygon.
  Rect Bounds() const;

 private:
  std::vector<Point> vertices_;
};

/// True when `rect` lies entirely inside `polygon`: all four corners are
/// inside and no polygon edge crosses the rectangle. Works for concave
/// simple polygons.
bool PolygonContainsRect(const Polygon& polygon, const Rect& rect);

/// Regular n-gon approximation of an ellipse, counter-clockwise.
Polygon ApproximateEllipse(const Point& center, double radius_x,
                           double radius_y, size_t segments = 24);

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_POLYGON_H_
