// Axis-aligned rectangles: spatial query ranges (§4.6) and index bounds.
#ifndef INNET_GEOMETRY_RECT_H_
#define INNET_GEOMETRY_RECT_H_

#include <algorithm>

#include "geometry/point.h"

namespace innet::geometry {

/// Closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double min_x_in, double min_y_in, double max_x_in,
                 double max_y_in)
      : min_x(min_x_in), min_y(min_y_in), max_x(max_x_in), max_y(max_y_in) {}

  /// Smallest rectangle containing both corner points.
  static constexpr Rect FromCorners(const Point& a, const Point& b) {
    return Rect(a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y,
                a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y);
  }

  constexpr double Width() const { return max_x - min_x; }
  constexpr double Height() const { return max_y - min_y; }
  constexpr double Area() const { return Width() * Height(); }
  constexpr Point Center() const {
    return Point((min_x + max_x) * 0.5, (min_y + max_y) * 0.5);
  }

  constexpr bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  constexpr bool Contains(const Rect& o) const {
    return o.min_x >= min_x && o.max_x <= max_x && o.min_y >= min_y &&
           o.max_y <= max_y;
  }

  constexpr bool Intersects(const Rect& o) const {
    return !(o.min_x > max_x || o.max_x < min_x || o.min_y > max_y ||
             o.max_y < min_y);
  }

  /// Grows the rectangle to include p.
  void ExpandToInclude(const Point& p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  /// Grows each side outward by `margin`.
  constexpr Rect Inflated(double margin) const {
    return Rect(min_x - margin, min_y - margin, max_x + margin,
                max_y + margin);
  }
};

/// Bounding box of a point range. Requires non-empty input.
template <typename Iterator>
Rect BoundingBox(Iterator first, Iterator last) {
  Rect box(first->x, first->y, first->x, first->y);
  for (Iterator it = first; it != last; ++it) box.ExpandToInclude(*it);
  return box;
}

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_RECT_H_
