// Geometric predicates: orientation and in-circle tests.
//
// These are floating-point predicates with an epsilon collinearity band. The
// library avoids degenerate inputs by jittering generated coordinates, so
// exact arithmetic (as in CGAL) is not required; see DESIGN.md §2.
#ifndef INNET_GEOMETRY_PREDICATES_H_
#define INNET_GEOMETRY_PREDICATES_H_

#include "geometry/point.h"

namespace innet::geometry {

/// Sign of the orientation test, see Orientation().
enum class Orient {
  kClockwise = -1,
  kCollinear = 0,
  kCounterClockwise = 1,
};

/// Twice the signed area of triangle (a, b, c); positive when the triangle
/// winds counter-clockwise.
constexpr double SignedArea2(const Point& a, const Point& b, const Point& c) {
  return Cross(b - a, c - a);
}

/// Orientation of point c relative to directed line a->b, with a relative
/// epsilon band treated as collinear.
Orient Orientation(const Point& a, const Point& b, const Point& c);

/// True if point d lies strictly inside the circumcircle of the
/// counter-clockwise triangle (a, b, c).
bool InCircle(const Point& a, const Point& b, const Point& c, const Point& d);

/// Circumcenter of triangle (a, b, c). Requires the triangle to be
/// non-degenerate.
Point Circumcenter(const Point& a, const Point& b, const Point& c);

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_PREDICATES_H_
