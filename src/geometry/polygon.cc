#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"
#include "geometry/segment.h"
#include "util/logging.h"

namespace innet::geometry {

double Polygon::SignedArea() const {
  double twice = 0.0;
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    twice += Cross(a, b);
  }
  return 0.5 * twice;
}

double Polygon::Area() const { return std::abs(SignedArea()); }

double Polygon::Perimeter() const {
  double total = 0.0;
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    total += Distance(vertices_[i], vertices_[(i + 1) % n]);
  }
  return total;
}

Point Polygon::Centroid() const {
  INNET_CHECK(!vertices_.empty());
  double twice_area = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  size_t n = vertices_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[(i + 1) % n];
    double w = Cross(a, b);
    twice_area += w;
    cx += (a.x + b.x) * w;
    cy += (a.y + b.y) * w;
  }
  if (std::abs(twice_area) < 1e-300) {
    Point mean;
    for (const Point& p : vertices_) mean = mean + p;
    return mean / static_cast<double>(n);
  }
  double scale = 1.0 / (3.0 * twice_area);
  return Point(cx * scale, cy * scale);
}

void Polygon::Reverse() { std::reverse(vertices_.begin(), vertices_.end()); }

bool Polygon::Contains(const Point& p) const {
  size_t n = vertices_.size();
  if (n < 3) return false;
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = vertices_[i];
    const Point& b = vertices_[j];
    // Boundary check: point on edge counts as inside.
    if (PointSegmentDistanceSquared(p, Segment(a, b)) < 1e-18) return true;
    bool straddles = (a.y > p.y) != (b.y > p.y);
    if (straddles) {
      double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

Rect Polygon::Bounds() const {
  INNET_CHECK(!vertices_.empty());
  return BoundingBox(vertices_.begin(), vertices_.end());
}

bool PolygonContainsRect(const Polygon& polygon, const Rect& rect) {
  if (polygon.size() < 3) return false;
  const Point corners[4] = {{rect.min_x, rect.min_y},
                            {rect.max_x, rect.min_y},
                            {rect.max_x, rect.max_y},
                            {rect.min_x, rect.max_y}};
  for (const Point& corner : corners) {
    if (!polygon.Contains(corner)) return false;
  }
  // A polygon edge crossing the rectangle would leave some rectangle point
  // outside even though all corners are inside (concave notches).
  const Segment sides[4] = {{corners[0], corners[1]},
                            {corners[1], corners[2]},
                            {corners[2], corners[3]},
                            {corners[3], corners[0]}};
  const std::vector<Point>& ring = polygon.vertices();
  for (size_t i = 0; i < ring.size(); ++i) {
    Segment edge(ring[i], ring[(i + 1) % ring.size()]);
    if (!edge.Bounds().Intersects(rect)) continue;
    for (const Segment& side : sides) {
      if (SegmentsIntersect(edge, side)) return false;
    }
    // Edge fully interior to the rectangle also breaks containment.
    if (rect.Contains(edge.a) && rect.Contains(edge.b)) return false;
  }
  return true;
}

Polygon ApproximateEllipse(const Point& center, double radius_x,
                           double radius_y, size_t segments) {
  INNET_CHECK(segments >= 3);
  std::vector<Point> ring;
  ring.reserve(segments);
  for (size_t i = 0; i < segments; ++i) {
    double angle =
        2.0 * 3.14159265358979323846 * static_cast<double>(i) /
        static_cast<double>(segments);
    ring.emplace_back(center.x + radius_x * std::cos(angle),
                      center.y + radius_y * std::sin(angle));
  }
  return Polygon(std::move(ring));
}

}  // namespace innet::geometry
