// Delaunay triangulation (Bowyer-Watson). Used (a) to generate planar street
// meshes in the synthetic mobility domain and (b) for triangulation-based
// connectivity between sampled sensors (§4.5, Fig. 6a).
#ifndef INNET_GEOMETRY_DELAUNAY_H_
#define INNET_GEOMETRY_DELAUNAY_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.h"

namespace innet::geometry {

/// A triangle of the triangulation, as indices into the input point vector,
/// in counter-clockwise order.
struct Triangle {
  std::array<uint32_t, 3> v;
};

/// Result of triangulating a point set.
struct Triangulation {
  std::vector<Triangle> triangles;

  /// Unique undirected edges (i < j), sorted lexicographically.
  std::vector<std::pair<uint32_t, uint32_t>> Edges() const;
};

/// Computes the Delaunay triangulation of `points` via Bowyer-Watson.
/// Duplicate points must not be present. Returns an empty triangulation for
/// fewer than 3 points.
Triangulation DelaunayTriangulate(const std::vector<Point>& points);

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_DELAUNAY_H_
