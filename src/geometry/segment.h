// Line segments and segment intersection tests, used when materializing
// sampled-graph edges and checking planarity (§4.5).
#ifndef INNET_GEOMETRY_SEGMENT_H_
#define INNET_GEOMETRY_SEGMENT_H_

#include <optional>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace innet::geometry {

/// Closed line segment from a to b.
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(const Point& a_in, const Point& b_in) : a(a_in), b(b_in) {}

  double Length() const { return Distance(a, b); }
  Rect Bounds() const { return Rect::FromCorners(a, b); }
};

/// True if segments s and t intersect (including endpoint touching and
/// collinear overlap).
bool SegmentsIntersect(const Segment& s, const Segment& t);

/// True if s and t properly cross: they intersect at a single interior point
/// of both segments. Shared endpoints do not count.
bool SegmentsProperlyCross(const Segment& s, const Segment& t);

/// Intersection point of properly crossing segments; nullopt when the
/// segments do not properly cross (parallel, disjoint, or touching only at
/// endpoints).
std::optional<Point> CrossingPoint(const Segment& s, const Segment& t);

/// Squared distance from point p to segment s.
double PointSegmentDistanceSquared(const Point& p, const Segment& s);

}  // namespace innet::geometry

#endif  // INNET_GEOMETRY_SEGMENT_H_
