#include "geometry/segment.h"

#include <algorithm>

#include "geometry/predicates.h"

namespace innet::geometry {

namespace {

// True if point c, known collinear with segment ab, lies on ab.
bool OnSegment(const Point& a, const Point& b, const Point& c) {
  return c.x >= std::min(a.x, b.x) && c.x <= std::max(a.x, b.x) &&
         c.y >= std::min(a.y, b.y) && c.y <= std::max(a.y, b.y);
}

}  // namespace

bool SegmentsIntersect(const Segment& s, const Segment& t) {
  Orient o1 = Orientation(s.a, s.b, t.a);
  Orient o2 = Orientation(s.a, s.b, t.b);
  Orient o3 = Orientation(t.a, t.b, s.a);
  Orient o4 = Orientation(t.a, t.b, s.b);

  if (o1 != o2 && o3 != o4 && o1 != Orient::kCollinear &&
      o2 != Orient::kCollinear && o3 != Orient::kCollinear &&
      o4 != Orient::kCollinear) {
    return true;
  }
  if (o1 == Orient::kCollinear && OnSegment(s.a, s.b, t.a)) return true;
  if (o2 == Orient::kCollinear && OnSegment(s.a, s.b, t.b)) return true;
  if (o3 == Orient::kCollinear && OnSegment(t.a, t.b, s.a)) return true;
  if (o4 == Orient::kCollinear && OnSegment(t.a, t.b, s.b)) return true;
  return false;
}

bool SegmentsProperlyCross(const Segment& s, const Segment& t) {
  Orient o1 = Orientation(s.a, s.b, t.a);
  Orient o2 = Orientation(s.a, s.b, t.b);
  Orient o3 = Orientation(t.a, t.b, s.a);
  Orient o4 = Orientation(t.a, t.b, s.b);
  if (o1 == Orient::kCollinear || o2 == Orient::kCollinear ||
      o3 == Orient::kCollinear || o4 == Orient::kCollinear) {
    return false;
  }
  return o1 != o2 && o3 != o4;
}

std::optional<Point> CrossingPoint(const Segment& s, const Segment& t) {
  if (!SegmentsProperlyCross(s, t)) return std::nullopt;
  Point r = s.b - s.a;
  Point q = t.b - t.a;
  double denom = Cross(r, q);
  if (denom == 0.0) return std::nullopt;
  double u = Cross(t.a - s.a, q) / denom;
  return s.a + r * u;
}

double PointSegmentDistanceSquared(const Point& p, const Segment& s) {
  Point d = s.b - s.a;
  double len2 = Dot(d, d);
  if (len2 == 0.0) return DistanceSquared(p, s.a);
  double t = Dot(p - s.a, d) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point proj = s.a + d * t;
  return DistanceSquared(p, proj);
}

}  // namespace innet::geometry
