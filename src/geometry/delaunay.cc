#include "geometry/delaunay.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "geometry/predicates.h"
#include "geometry/rect.h"
#include "util/logging.h"

namespace innet::geometry {

namespace {

// Triangle with cached circumcircle for the incremental algorithm. Vertices
// may refer to the three synthetic super-triangle points (indices >= n).
struct WorkTriangle {
  std::array<uint32_t, 3> v;
  Point center;
  double radius2;
  bool alive = true;
};

WorkTriangle MakeWorkTriangle(const std::vector<Point>& pts, uint32_t a,
                              uint32_t b, uint32_t c) {
  WorkTriangle t;
  // Enforce counter-clockwise order.
  if (SignedArea2(pts[a], pts[b], pts[c]) < 0.0) std::swap(b, c);
  t.v = {a, b, c};
  t.center = Circumcenter(pts[a], pts[b], pts[c]);
  t.radius2 = DistanceSquared(t.center, pts[a]);
  return t;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> Triangulation::Edges() const {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(triangles.size() * 3);
  for (const Triangle& t : triangles) {
    for (int i = 0; i < 3; ++i) {
      uint32_t a = t.v[i];
      uint32_t b = t.v[(i + 1) % 3];
      if (a > b) std::swap(a, b);
      edges.emplace_back(a, b);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

Triangulation DelaunayTriangulate(const std::vector<Point>& points) {
  Triangulation result;
  size_t n = points.size();
  if (n < 3) return result;

  // Working copy with three super-triangle vertices appended.
  std::vector<Point> pts = points;
  Rect box = BoundingBox(points.begin(), points.end());
  double span = std::max(box.Width(), box.Height());
  if (span == 0.0) span = 1.0;
  Point center = box.Center();
  double m = 20.0 * span;
  uint32_t s0 = static_cast<uint32_t>(n);
  uint32_t s1 = static_cast<uint32_t>(n + 1);
  uint32_t s2 = static_cast<uint32_t>(n + 2);
  pts.push_back(Point(center.x - 2.0 * m, center.y - m));
  pts.push_back(Point(center.x + 2.0 * m, center.y - m));
  pts.push_back(Point(center.x, center.y + 2.0 * m));

  std::vector<WorkTriangle> tris;
  tris.push_back(MakeWorkTriangle(pts, s0, s1, s2));

  // Insert points one at a time; a spatial insertion order keeps the cavity
  // search local in practice, but the simple O(n * T) scan is robust and
  // sufficient at our problem sizes.
  for (uint32_t p = 0; p < n; ++p) {
    const Point& q = pts[p];
    // Cavity: all triangles whose circumcircle contains q.
    std::map<std::pair<uint32_t, uint32_t>, int> edge_count;
    for (WorkTriangle& t : tris) {
      if (!t.alive) continue;
      if (DistanceSquared(t.center, q) <= t.radius2) {
        t.alive = false;
        for (int i = 0; i < 3; ++i) {
          uint32_t a = t.v[i];
          uint32_t b = t.v[(i + 1) % 3];
          if (a > b) std::swap(a, b);
          edge_count[{a, b}]++;
        }
      }
    }
    // Boundary edges of the cavity appear exactly once; re-triangulate the
    // cavity by fanning from q.
    std::vector<WorkTriangle> fresh;
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;
      fresh.push_back(MakeWorkTriangle(pts, edge.first, edge.second, p));
    }
    // Compact dead triangles periodically to bound the scan cost.
    if (tris.size() > 4 * n + 16) {
      std::vector<WorkTriangle> compacted;
      compacted.reserve(tris.size());
      for (const WorkTriangle& t : tris) {
        if (t.alive) compacted.push_back(t);
      }
      tris = std::move(compacted);
    }
    tris.insert(tris.end(), fresh.begin(), fresh.end());
  }

  for (const WorkTriangle& t : tris) {
    if (!t.alive) continue;
    // Drop triangles touching the super-triangle.
    if (t.v[0] >= n || t.v[1] >= n || t.v[2] >= n) continue;
    result.triangles.push_back(Triangle{t.v});
  }
  return result;
}

}  // namespace innet::geometry
