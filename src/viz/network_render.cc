#include "viz/network_render.h"

#include "viz/svg.h"

namespace innet::viz {

util::Status RenderNetwork(const core::SensorNetwork& network,
                           const core::SampledGraph* sampled,
                           const RenderOptions& options,
                           const std::string& path) {
  const graph::PlanarGraph& mobility = network.mobility();
  const graph::DualGraph& dual = network.sensing();
  SvgCanvas canvas(network.DomainBounds().Inflated(
                       0.02 * network.DomainBounds().Width()),
                   options.pixel_width);

  if (options.draw_roads) {
    for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
      canvas.DrawLine(mobility.Position(mobility.Edge(e).u),
                      mobility.Position(mobility.Edge(e).v), "#bbbbbb", 1.0,
                      0.8);
    }
  }
  if (options.draw_sensors) {
    for (graph::NodeId s = 0; s < dual.NumNodes(); ++s) {
      if (s == dual.ExtNode()) continue;
      canvas.DrawCircle(dual.Position(s), 1.5, "#999999", 0.6);
    }
  }
  if (sampled != nullptr && options.draw_monitored_edges) {
    // A monitored sensing edge is drawn as the link between the two sensor
    // positions it connects (its dual endpoints).
    for (graph::EdgeId e : sampled->monitored_edges()) {
      graph::NodeId a = mobility.Edge(e).left;
      graph::NodeId b = mobility.Edge(e).right;
      if (a == dual.ExtNode() || b == dual.ExtNode()) continue;
      canvas.DrawLine(dual.Position(a), dual.Position(b), "#3366cc", 1.4,
                      0.9);
    }
  }
  if (sampled != nullptr && options.draw_comm_sensors) {
    for (graph::NodeId s : sampled->comm_sensors()) {
      canvas.DrawCircle(dual.Position(s), 3.5, "#cc3333", 0.95);
    }
  }
  if (options.query_rect.has_value()) {
    canvas.DrawRect(*options.query_rect, "#22aa44", "#22aa44", 2.5, 0.12);
  }
  return canvas.WriteToFile(path);
}

}  // namespace innet::viz
