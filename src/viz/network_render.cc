#include "viz/network_render.h"

#include <cstdio>
#include <unordered_set>

#include "viz/svg.h"

namespace innet::viz {

util::Status RenderNetwork(const core::SensorNetwork& network,
                           const core::SampledGraph* sampled,
                           const RenderOptions& options,
                           const std::string& path) {
  const graph::PlanarGraph& mobility = network.mobility();
  const graph::DualGraph& dual = network.sensing();
  SvgCanvas canvas(network.DomainBounds().Inflated(
                       0.02 * network.DomainBounds().Width()),
                   options.pixel_width);

  if (options.draw_roads) {
    for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
      canvas.DrawLine(mobility.Position(mobility.Edge(e).u),
                      mobility.Position(mobility.Edge(e).v), "#bbbbbb", 1.0,
                      0.8);
    }
  }
  if (options.draw_sensors) {
    for (graph::NodeId s = 0; s < dual.NumNodes(); ++s) {
      if (s == dual.ExtNode()) continue;
      canvas.DrawCircle(dual.Position(s), 1.5, "#999999", 0.6);
    }
  }
  if (sampled != nullptr && options.draw_monitored_edges) {
    // A monitored sensing edge is drawn as the link between the two sensor
    // positions it connects (its dual endpoints).
    for (graph::EdgeId e : sampled->monitored_edges()) {
      graph::NodeId a = mobility.Edge(e).left;
      graph::NodeId b = mobility.Edge(e).right;
      if (a == dual.ExtNode() || b == dual.ExtNode()) continue;
      canvas.DrawLine(dual.Position(a), dual.Position(b), "#3366cc", 1.4,
                      0.9);
    }
  }
  if (sampled != nullptr && options.draw_comm_sensors) {
    for (graph::NodeId s : sampled->comm_sensors()) {
      canvas.DrawCircle(dual.Position(s), 3.5, "#cc3333", 0.95);
    }
  }
  if (options.query_rect.has_value()) {
    canvas.DrawRect(*options.query_rect, "#22aa44", "#22aa44", 2.5, 0.12);
  }
  return canvas.WriteToFile(path);
}

util::Status RenderExplainOverlay(
    const core::SensorNetwork& network, const core::SampledGraph& sampled,
    const obs::ExplainRecord& explain,
    const std::optional<geometry::Rect>& query_rect,
    const std::string& path) {
  const graph::PlanarGraph& mobility = network.mobility();
  const graph::DualGraph& dual = network.sensing();
  geometry::Rect world = network.DomainBounds().Inflated(
      0.02 * network.DomainBounds().Width());
  SvgCanvas canvas(world, 1000.0);

  // Base layers, dimmed so the overlay reads on top.
  for (graph::EdgeId e = 0; e < mobility.NumEdges(); ++e) {
    canvas.DrawLine(mobility.Position(mobility.Edge(e).u),
                    mobility.Position(mobility.Edge(e).v), "#cccccc", 0.8,
                    0.6);
  }
  for (graph::EdgeId e : sampled.monitored_edges()) {
    graph::NodeId a = mobility.Edge(e).left;
    graph::NodeId b = mobility.Edge(e).right;
    if (a == dual.ExtNode() || b == dual.ExtNode()) continue;
    canvas.DrawLine(dual.Position(a), dual.Position(b), "#99b3dd", 1.0, 0.6);
  }
  if (query_rect.has_value()) {
    canvas.DrawRect(*query_rect, "#22aa44", "#22aa44", 2.5, 0.12);
  }

  // Resolved face union: every junction cell the answer actually covered.
  std::unordered_set<uint32_t> face_set(explain.faces.begin(),
                                        explain.faces.end());
  if (!face_set.empty()) {
    for (graph::NodeId j = 0; j < mobility.NumNodes(); ++j) {
      if (face_set.count(sampled.FaceOfJunction(j)) > 0) {
        canvas.DrawCircle(mobility.Position(j), 2.5, "#ff8800", 0.7);
      }
    }
    // Integrated boundary: the monitored edges the count summed over.
    core::SampledGraph::RegionBoundary boundary =
        sampled.BoundaryOfFaces(explain.faces);
    for (const forms::BoundaryEdge& be : boundary.edges) {
      if (be.edge >= mobility.NumEdges()) continue;  // virtual ext edges
      graph::NodeId a = mobility.Edge(be.edge).left;
      graph::NodeId b = mobility.Edge(be.edge).right;
      if (a == dual.ExtNode() || b == dual.ExtNode()) continue;
      canvas.DrawLine(dual.Position(a), dual.Position(b), "#ee5500", 2.5,
                      0.95);
    }
  }

  char caption[256];
  std::snprintf(caption, sizeof(caption),
                "%s/%s via %s: answer=%.1f  deadspace=%.3f  faces=%zu  "
                "boundary=%zu",
                explain.kind.c_str(), explain.bound.c_str(),
                explain.path.c_str(), explain.answer,
                explain.deadspace_fraction, explain.faces.size(),
                explain.boundary_edges);
  canvas.DrawText({world.min_x + 0.01 * world.Width(),
                   world.max_y - 0.03 * world.Height()},
                  caption, "#222", 16.0);
  return canvas.WriteToFile(path);
}

}  // namespace innet::viz
