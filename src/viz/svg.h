// Minimal SVG canvas for rendering networks, deployments, and query regions
// (the repository's stand-in for the paper's map figures).
#ifndef INNET_VIZ_SVG_H_
#define INNET_VIZ_SVG_H_

#include <string>

#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "util/status.h"

namespace innet::viz {

/// An SVG document mapping a world rectangle onto a pixel canvas (y axis
/// flipped so larger world-y renders upward).
class SvgCanvas {
 public:
  /// `world` is the region drawn; `pixel_width` fixes the scale (height
  /// follows the aspect ratio).
  SvgCanvas(const geometry::Rect& world, double pixel_width = 1000.0);

  void DrawLine(const geometry::Point& a, const geometry::Point& b,
                const std::string& color, double stroke_width = 1.0,
                double opacity = 1.0);

  void DrawCircle(const geometry::Point& center, double radius_px,
                  const std::string& fill, double opacity = 1.0);

  void DrawRect(const geometry::Rect& rect, const std::string& stroke,
                const std::string& fill = "none", double stroke_width = 2.0,
                double fill_opacity = 0.15);

  void DrawPolygon(const geometry::Polygon& polygon, const std::string& stroke,
                   const std::string& fill = "none", double stroke_width = 1.5,
                   double fill_opacity = 0.2);

  void DrawText(const geometry::Point& at, const std::string& text,
                const std::string& color = "#333", double size_px = 14.0);

  /// Finished document markup.
  std::string ToString() const;

  /// Writes the document to `path`.
  util::Status WriteToFile(const std::string& path) const;

 private:
  geometry::Point ToPixels(const geometry::Point& world_point) const;

  geometry::Rect world_;
  double width_;
  double height_;
  std::string body_;
};

}  // namespace innet::viz

#endif  // INNET_VIZ_SVG_H_
