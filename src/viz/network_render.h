// Renders a sensor network (and optionally a sampled deployment and query
// region) to SVG — the library's analogue of the paper's Figs. 2, 4, and 6.
#ifndef INNET_VIZ_NETWORK_RENDER_H_
#define INNET_VIZ_NETWORK_RENDER_H_

#include <optional>
#include <string>

#include "core/sampled_graph.h"
#include "core/sensor_network.h"
#include "obs/explain.h"
#include "util/status.h"

namespace innet::viz {

/// Rendering options: layers are drawn in the listed order.
struct RenderOptions {
  bool draw_roads = true;            // Mobility graph ⋆G (gray).
  bool draw_sensors = false;         // All sensor positions (light dots).
  bool draw_monitored_edges = true;  // Sensing edges of G̃ (blue).
  bool draw_comm_sensors = true;     // Selected communication sensors (red).
  std::optional<geometry::Rect> query_rect;  // Query region (green).
  double pixel_width = 1000.0;
};

/// Writes the rendering to `path` (.svg).
util::Status RenderNetwork(const core::SensorNetwork& network,
                           const core::SampledGraph* sampled,
                           const RenderOptions& options,
                           const std::string& path);

/// EXPLAIN overlay (docs/OBSERVABILITY.md §"Accuracy & EXPLAIN"): the base
/// network and monitored edges, the query rectangle, the junction cells of
/// the resolved face union (orange dots — the visual dead-space gap against
/// the green region), and the integrated boundary edges (bold orange). A
/// caption summarizes answer, dead-space fraction, and path.
util::Status RenderExplainOverlay(const core::SensorNetwork& network,
                                  const core::SampledGraph& sampled,
                                  const obs::ExplainRecord& explain,
                                  const std::optional<geometry::Rect>& query_rect,
                                  const std::string& path);

}  // namespace innet::viz

#endif  // INNET_VIZ_NETWORK_RENDER_H_
