#include "viz/svg.h"

#include <cstdio>

#include "util/logging.h"

namespace innet::viz {

namespace {

std::string Fmt(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  return buf;
}

}  // namespace

SvgCanvas::SvgCanvas(const geometry::Rect& world, double pixel_width)
    : world_(world), width_(pixel_width) {
  INNET_CHECK(world_.Width() > 0.0 && world_.Height() > 0.0);
  height_ = pixel_width * world_.Height() / world_.Width();
}

geometry::Point SvgCanvas::ToPixels(const geometry::Point& p) const {
  double x = (p.x - world_.min_x) / world_.Width() * width_;
  double y = height_ - (p.y - world_.min_y) / world_.Height() * height_;
  return geometry::Point(x, y);
}

void SvgCanvas::DrawLine(const geometry::Point& a, const geometry::Point& b,
                         const std::string& color, double stroke_width,
                         double opacity) {
  geometry::Point pa = ToPixels(a);
  geometry::Point pb = ToPixels(b);
  body_ += "<line x1=\"" + Fmt(pa.x) + "\" y1=\"" + Fmt(pa.y) + "\" x2=\"" +
           Fmt(pb.x) + "\" y2=\"" + Fmt(pb.y) + "\" stroke=\"" + color +
           "\" stroke-width=\"" + Fmt(stroke_width) + "\" stroke-opacity=\"" +
           Fmt(opacity) + "\"/>\n";
}

void SvgCanvas::DrawCircle(const geometry::Point& center, double radius_px,
                           const std::string& fill, double opacity) {
  geometry::Point p = ToPixels(center);
  body_ += "<circle cx=\"" + Fmt(p.x) + "\" cy=\"" + Fmt(p.y) + "\" r=\"" +
           Fmt(radius_px) + "\" fill=\"" + fill + "\" fill-opacity=\"" +
           Fmt(opacity) + "\"/>\n";
}

void SvgCanvas::DrawRect(const geometry::Rect& rect, const std::string& stroke,
                         const std::string& fill, double stroke_width,
                         double fill_opacity) {
  geometry::Point top_left = ToPixels({rect.min_x, rect.max_y});
  double w = rect.Width() / world_.Width() * width_;
  double h = rect.Height() / world_.Height() * height_;
  body_ += "<rect x=\"" + Fmt(top_left.x) + "\" y=\"" + Fmt(top_left.y) +
           "\" width=\"" + Fmt(w) + "\" height=\"" + Fmt(h) + "\" stroke=\"" +
           stroke + "\" stroke-width=\"" + Fmt(stroke_width) + "\" fill=\"" +
           fill + "\" fill-opacity=\"" + Fmt(fill_opacity) + "\"/>\n";
}

void SvgCanvas::DrawPolygon(const geometry::Polygon& polygon,
                            const std::string& stroke, const std::string& fill,
                            double stroke_width, double fill_opacity) {
  if (polygon.empty()) return;
  std::string points;
  for (const geometry::Point& v : polygon.vertices()) {
    geometry::Point p = ToPixels(v);
    points += Fmt(p.x) + "," + Fmt(p.y) + " ";
  }
  body_ += "<polygon points=\"" + points + "\" stroke=\"" + stroke +
           "\" stroke-width=\"" + Fmt(stroke_width) + "\" fill=\"" + fill +
           "\" fill-opacity=\"" + Fmt(fill_opacity) + "\"/>\n";
}

void SvgCanvas::DrawText(const geometry::Point& at, const std::string& text,
                         const std::string& color, double size_px) {
  geometry::Point p = ToPixels(at);
  body_ += "<text x=\"" + Fmt(p.x) + "\" y=\"" + Fmt(p.y) + "\" fill=\"" +
           color + "\" font-size=\"" + Fmt(size_px) +
           "\" font-family=\"sans-serif\">" + text + "</text>\n";
}

std::string SvgCanvas::ToString() const {
  std::string doc = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    Fmt(width_) + "\" height=\"" + Fmt(height_) +
                    "\" viewBox=\"0 0 " + Fmt(width_) + " " + Fmt(height_) +
                    "\">\n<rect width=\"100%\" height=\"100%\" "
                    "fill=\"white\"/>\n";
  doc += body_;
  doc += "</svg>\n";
  return doc;
}

util::Status SvgCanvas::WriteToFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::InvalidArgumentError("cannot open for writing: " + path);
  }
  std::string doc = ToString();
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return util::InternalError("short write: " + path);
  }
  return util::Status::Ok();
}

}  // namespace innet::viz
