#include "placement/query_adaptive.h"

#include <algorithm>
#include <map>
#include <queue>

#include "util/logging.h"

namespace innet::placement {

std::vector<Atom> PartitionIntoAtoms(
    const graph::PlanarGraph& graph,
    const std::vector<QueryRegionHistory>& history) {
  // Signature of each junction: the sorted set of queries containing it.
  std::vector<std::vector<uint32_t>> signature(graph.NumNodes());
  std::vector<size_t> region_size(history.size(), 0);
  for (uint32_t q = 0; q < history.size(); ++q) {
    region_size[q] = history[q].junctions.size();
    for (graph::NodeId n : history[q].junctions) {
      INNET_CHECK(n < graph.NumNodes());
      signature[n].push_back(q);
    }
  }
  for (auto& sig : signature) {
    std::sort(sig.begin(), sig.end());
    sig.erase(std::unique(sig.begin(), sig.end()), sig.end());
  }

  // Atoms: connected components of equal non-empty signature.
  std::vector<Atom> atoms;
  std::vector<bool> visited(graph.NumNodes(), false);
  for (graph::NodeId start = 0; start < graph.NumNodes(); ++start) {
    if (visited[start] || signature[start].empty()) continue;
    Atom atom;
    atom.queries = signature[start];
    std::queue<graph::NodeId> queue;
    visited[start] = true;
    queue.push(start);
    while (!queue.empty()) {
      graph::NodeId u = queue.front();
      queue.pop();
      atom.junctions.push_back(u);
      for (const graph::Neighbor& nb : graph.NeighborsOf(u)) {
        if (visited[nb.node]) continue;
        if (signature[nb.node] != signature[start]) continue;
        visited[nb.node] = true;
        queue.push(nb.node);
      }
    }
    // Boundary edges: roads leaving the atom's junction set.
    std::vector<bool> inside(graph.NumNodes(), false);
    for (graph::NodeId n : atom.junctions) inside[n] = true;
    for (graph::NodeId n : atom.junctions) {
      for (const graph::Neighbor& nb : graph.NeighborsOf(n)) {
        if (!inside[nb.node]) atom.boundary_edges.push_back(nb.edge);
      }
    }
    std::sort(atom.boundary_edges.begin(), atom.boundary_edges.end());
    atom.boundary_edges.erase(
        std::unique(atom.boundary_edges.begin(), atom.boundary_edges.end()),
        atom.boundary_edges.end());
    // Eq. 6 over the covering queries.
    for (uint32_t q : atom.queries) {
      atom.utility += static_cast<double>(atom.junctions.size()) /
                      static_cast<double>(std::max<size_t>(1, region_size[q]));
    }
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

AdaptivePlacement SelectAtoms(const graph::DualGraph& dual,
                              const std::vector<Atom>& atoms,
                              size_t edge_budget) {
  const graph::PlanarGraph& primal = dual.primal();
  // Cost-benefit order: utility / |∂σ| descending (Eq. 4 with the Eq. 5
  // uniform edge cost); ties by fewer boundary edges, then index for
  // determinism.
  std::vector<size_t> order(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) order[i] = i;
  auto ratio = [&atoms](size_t i) {
    return atoms[i].utility /
           static_cast<double>(std::max<size_t>(1, atoms[i].boundary_edges.size()));
  };
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double ra = ratio(a);
    double rb = ratio(b);
    if (ra != rb) return ra > rb;
    if (atoms[a].boundary_edges.size() != atoms[b].boundary_edges.size()) {
      return atoms[a].boundary_edges.size() < atoms[b].boundary_edges.size();
    }
    return a < b;
  });

  AdaptivePlacement placement;
  std::vector<bool> edge_monitored(primal.NumEdges(), false);
  size_t edges_used = 0;
  for (size_t idx : order) {
    const Atom& atom = atoms[idx];
    // Marginal edge cost: boundary edges not yet monitored (shared
    // boundaries between selected atoms are free — the |∂Q3 ∩ ∂Q1| > 0
    // observation of §4.4.2).
    size_t new_edges = 0;
    for (graph::EdgeId e : atom.boundary_edges) {
      if (!edge_monitored[e]) ++new_edges;
    }
    if (edges_used + new_edges > edge_budget) continue;
    placement.selected_atoms.push_back(idx);
    placement.utility += atom.utility;
    edges_used += new_edges;
    for (graph::EdgeId e : atom.boundary_edges) edge_monitored[e] = true;
  }

  std::vector<bool> node_touched(dual.NumNodes(), false);
  for (graph::EdgeId e = 0; e < primal.NumEdges(); ++e) {
    if (!edge_monitored[e]) continue;
    placement.monitored_edges.push_back(e);
    node_touched[dual.EndpointA(e)] = true;
    node_touched[dual.EndpointB(e)] = true;
  }
  for (graph::NodeId n = 0; n < dual.NumNodes(); ++n) {
    if (node_touched[n]) placement.sensor_nodes.push_back(n);
  }
  return placement;
}

}  // namespace innet::placement
