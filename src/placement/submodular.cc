#include "placement/submodular.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"

namespace innet::placement {

namespace {

// Lazy-queue entry: the gain is an upper bound until `round` matches the
// current selection size.
struct LazyEntry {
  double key;
  size_t item;
  size_t round;
  // Ties break toward the smaller item index so lazy and plain greedy make
  // identical selections.
  bool operator<(const LazyEntry& o) const {
    if (key != o.key) return key < o.key;
    return item > o.item;
  }
};

}  // namespace

GreedyResult GreedyMaximize(SubmodularFunction& f,
                            const std::vector<double>& costs,
                            const GreedyOptions& options) {
  INNET_CHECK(costs.size() == f.NumItems());
  for (double c : costs) INNET_CHECK(c > 0.0);
  f.Reset();
  GreedyResult result;
  std::vector<bool> selected(f.NumItems(), false);

  auto key_of = [&](size_t item, double gain) {
    return options.cost_benefit ? gain / costs[item] : gain;
  };

  if (!options.lazy) {
    // Plain greedy: full re-evaluation each round (Eq. 2 / Eq. 4).
    while (true) {
      double best_key = 0.0;
      size_t best_item = f.NumItems();
      double best_gain = 0.0;
      for (size_t i = 0; i < f.NumItems(); ++i) {
        if (selected[i]) continue;
        if (result.cost + costs[i] > options.budget) continue;
        double gain = f.MarginalGain(i);
        ++result.evaluations;
        double key = key_of(i, gain);
        if (best_item == f.NumItems() || key > best_key) {
          best_key = key;
          best_item = i;
          best_gain = gain;
        }
      }
      if (best_item == f.NumItems() || best_gain <= 0.0) break;
      f.Commit(best_item);
      selected[best_item] = true;
      result.selected.push_back(best_item);
      result.utility += best_gain;
      result.cost += costs[best_item];
    }
    return result;
  }

  // CELF: keys only shrink as the selection grows, so a stale key is an
  // upper bound; re-evaluate the top until it is fresh.
  std::priority_queue<LazyEntry> queue;
  for (size_t i = 0; i < f.NumItems(); ++i) {
    double gain = f.MarginalGain(i);
    ++result.evaluations;
    queue.push({key_of(i, gain), i, 0});
  }
  size_t round = 0;
  while (!queue.empty()) {
    LazyEntry top = queue.top();
    queue.pop();
    if (selected[top.item]) continue;
    if (result.cost + costs[top.item] > options.budget) continue;
    if (top.round != round) {
      double gain = f.MarginalGain(top.item);
      ++result.evaluations;
      queue.push({key_of(top.item, gain), top.item, round});
      continue;
    }
    double gain = options.cost_benefit ? top.key * costs[top.item] : top.key;
    if (gain <= 0.0) break;
    f.Commit(top.item);
    selected[top.item] = true;
    result.selected.push_back(top.item);
    result.utility += gain;
    result.cost += costs[top.item];
    ++round;
  }
  return result;
}

CoverageFunction::CoverageFunction(std::vector<std::vector<size_t>> covers,
                                   std::vector<double> element_weights,
                                   size_t universe_size)
    : covers_(std::move(covers)),
      weights_(std::move(element_weights)),
      covered_(universe_size, false) {
  if (weights_.empty()) weights_.assign(universe_size, 1.0);
  INNET_CHECK(weights_.size() == universe_size);
  for (const auto& cover : covers_) {
    for (size_t e : cover) INNET_CHECK(e < universe_size);
  }
}

double CoverageFunction::MarginalGain(size_t item) const {
  double gain = 0.0;
  for (size_t e : covers_[item]) {
    if (!covered_[e]) gain += weights_[e];
  }
  return gain;
}

void CoverageFunction::Commit(size_t item) {
  for (size_t e : covers_[item]) covered_[e] = true;
}

void CoverageFunction::Reset() {
  std::fill(covered_.begin(), covered_.end(), false);
}

double CoverageFunction::Evaluate(const std::vector<size_t>& set) const {
  std::vector<bool> covered(covered_.size(), false);
  double total = 0.0;
  for (size_t item : set) {
    for (size_t e : covers_[item]) {
      if (!covered[e]) {
        covered[e] = true;
        total += weights_[e];
      }
    }
  }
  return total;
}

}  // namespace innet::placement
