// Monotone submodular maximization with greedy and lazy-greedy (CELF)
// solvers (§4.4.1, Eq. 2 and Eq. 4).
//
// The greedy solver achieves the classical (1 - 1/e) bound under a
// cardinality constraint and the 1/2 (1 - 1/e) bound for the cost-benefit
// rule under a knapsack constraint (Leskovec et al. 2007). The lazy solver
// exploits submodularity (marginal gains only shrink) to skip most
// re-evaluations while selecting exactly the same set.
#ifndef INNET_PLACEMENT_SUBMODULAR_H_
#define INNET_PLACEMENT_SUBMODULAR_H_

#include <cstddef>
#include <vector>

namespace innet::placement {

/// A monotone submodular set function with incremental marginal-gain
/// evaluation. The solver drives it as: MarginalGain(i) any number of times,
/// then Commit(i) for the chosen item.
class SubmodularFunction {
 public:
  virtual ~SubmodularFunction() = default;

  /// Ground-set size; items are 0..NumItems()-1.
  virtual size_t NumItems() const = 0;

  /// f(S ∪ {item}) - f(S) for the currently committed S.
  virtual double MarginalGain(size_t item) const = 0;

  /// Adds `item` to the committed selection.
  virtual void Commit(size_t item) = 0;

  /// Clears the committed selection.
  virtual void Reset() = 0;
};

/// Solver configuration.
struct GreedyOptions {
  /// Knapsack budget on the summed item costs.
  double budget = 0.0;

  /// Use the cost-benefit rule Δf/c (Eq. 4) instead of plain Δf (Eq. 2).
  bool cost_benefit = false;

  /// Use lazy evaluation (CELF) instead of full re-evaluation each round.
  bool lazy = false;
};

/// Outcome of a greedy run.
struct GreedyResult {
  std::vector<size_t> selected;  // In selection order.
  double utility = 0.0;          // Sum of realized marginal gains.
  double cost = 0.0;             // Sum of selected item costs.
  size_t evaluations = 0;        // MarginalGain calls (lazy-vs-plain metric).
};

/// Maximizes `f` subject to sum of costs <= budget. `costs` must have one
/// positive entry per item. The function is Reset() before the run.
GreedyResult GreedyMaximize(SubmodularFunction& f,
                            const std::vector<double>& costs,
                            const GreedyOptions& options);

/// Reference coverage function for tests and demos: items cover fixed
/// element subsets of a universe; f(S) is the total weight covered.
class CoverageFunction : public SubmodularFunction {
 public:
  /// `covers[i]` lists the universe elements item i covers;
  /// `element_weights` gives each element's weight (empty = all 1.0).
  CoverageFunction(std::vector<std::vector<size_t>> covers,
                   std::vector<double> element_weights, size_t universe_size);

  size_t NumItems() const override { return covers_.size(); }
  double MarginalGain(size_t item) const override;
  void Commit(size_t item) override;
  void Reset() override;

  /// f(S) evaluated from scratch (brute-force checks in tests).
  double Evaluate(const std::vector<size_t>& set) const;

 private:
  std::vector<std::vector<size_t>> covers_;
  std::vector<double> weights_;
  std::vector<bool> covered_;
};

}  // namespace innet::placement

#endif  // INNET_PLACEMENT_SUBMODULAR_H_
