// Query-adaptive sensor selection via submodular maximization (§4.4.2).
//
// Historical query regions (junction-cell unions on the sensing graph) are
// maximally partitioned into disjoint "atoms": connected groups of junctions
// sharing the same query-membership signature (Fig. 5b). Each atom σ has
//   utility f(σ) = Σ_{Q ⊇ σ} ω(σ) / ω(Q)    (Eq. 6, ω = cell count)
//   cost    c(σ) = |∂σ|                      (Eq. 5, boundary edge count)
// Atoms are selected by the cost-benefit greedy rule (Eq. 4) until the
// sensor-node budget m is exhausted; the monitored edge set is the union of
// the selected atoms' boundaries.
#ifndef INNET_PLACEMENT_QUERY_ADAPTIVE_H_
#define INNET_PLACEMENT_QUERY_ADAPTIVE_H_

#include <vector>

#include "graph/dual_graph.h"
#include "graph/planar_graph.h"

namespace innet::placement {

/// A historical query region: the junctions whose cells form the region.
struct QueryRegionHistory {
  std::vector<graph::NodeId> junctions;
};

/// One disjoint region of the maximal partition.
struct Atom {
  std::vector<graph::NodeId> junctions;      // Connected, same signature.
  std::vector<graph::EdgeId> boundary_edges;  // Roads with one endpoint in.
  std::vector<uint32_t> queries;              // Indices of covering queries.
  double utility = 0.0;                       // Eq. 6.
};

/// Partitions the union of historical regions into atoms.
std::vector<Atom> PartitionIntoAtoms(
    const graph::PlanarGraph& graph,
    const std::vector<QueryRegionHistory>& history);

/// Result of the adaptive placement.
struct AdaptivePlacement {
  std::vector<size_t> selected_atoms;         // Indices into the atom list.
  std::vector<graph::EdgeId> monitored_edges; // Union of atom boundaries.
  std::vector<graph::NodeId> sensor_nodes;    // Dual nodes incident to them.
  double utility = 0.0;
};

/// Greedily selects atoms by utility / boundary-edge-count ratio (Eq. 4 with
/// the Eq. 5 uniform edge cost), admitting an atom only while the union of
/// monitored edges stays within `edge_budget`. Boundary edges shared with
/// already-selected atoms are free (the |∂Q3 ∩ ∂Q1| > 0 observation of
/// §4.4.2). Skipped atoms do not stop the scan: smaller atoms may still fit.
///
/// The budget is in monitored EDGES, the in-network footprint unit that is
/// directly comparable with the query-oblivious sampled graphs (whose
/// shortest-path relays are free); see core::Framework::DeployAdaptive for
/// the sensor-count-to-edge-budget conversion.
AdaptivePlacement SelectAtoms(const graph::DualGraph& dual,
                              const std::vector<Atom>& atoms,
                              size_t edge_budget);

}  // namespace innet::placement

#endif  // INNET_PLACEMENT_QUERY_ADAPTIVE_H_
