// Noise primitives for differential privacy.
#ifndef INNET_PRIVACY_NOISE_H_
#define INNET_PRIVACY_NOISE_H_

#include <cstdint>

namespace innet::privacy {

/// Deterministic Laplace(0, scale) deviate keyed by `key`: the same key
/// always yields the same noise. Re-using noise across queries of the same
/// statistic is required for differential privacy under continual
/// observation (fresh noise per query would leak through averaging).
double KeyedLaplace(uint64_t key, double scale);

/// Stable 64-bit mix of the components identifying one noisy statistic.
uint64_t NoiseKey(uint64_t seed, uint32_t edge, bool forward, uint32_t level,
                  uint64_t index);

}  // namespace innet::privacy

#endif  // INNET_PRIVACY_NOISE_H_
