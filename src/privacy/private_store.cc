#include "privacy/private_store.h"

#include <algorithm>
#include <cmath>

#include "privacy/noise.h"
#include "util/logging.h"

namespace innet::privacy {

PrivateEdgeStore::PrivateEdgeStore(const forms::EdgeCountStore& base,
                                   double epsilon, double horizon, int levels,
                                   uint64_t seed)
    : base_(&base),
      epsilon_(epsilon),
      horizon_(horizon),
      levels_(levels),
      seed_(seed) {
  INNET_CHECK(epsilon_ > 0.0);
  INNET_CHECK(horizon_ > 0.0);
  INNET_CHECK(levels_ >= 1 && levels_ <= 30);
}

double PrivateEdgeStore::NoiseScale() const {
  return static_cast<double>(levels_) / epsilon_;
}

double PrivateEdgeStore::ExactRange(graph::EdgeId road, bool forward,
                                    uint64_t begin, uint64_t end) const {
  double leaves = static_cast<double>(uint64_t{1} << levels_);
  double t0 = horizon_ * static_cast<double>(begin) / leaves;
  double t1 = horizon_ * static_cast<double>(end) / leaves;
  return base_->CountInRange(road, forward, t0, t1);
}

double PrivateEdgeStore::CountUpTo(graph::EdgeId road, bool forward,
                                   double t) const {
  if (t < 0.0) return 0.0;
  uint64_t leaves = uint64_t{1} << levels_;
  // Leaf buckets [0, prefix) cover (0, t]; clamp beyond the horizon.
  uint64_t prefix = t >= horizon_
                        ? leaves
                        : static_cast<uint64_t>(
                              std::floor(t / horizon_ *
                                         static_cast<double>(leaves))) +
                              1;
  prefix = std::min(prefix, leaves);

  // Dyadic decomposition of [0, prefix): walk the binary representation,
  // summing one noisy node per set bit.
  double total = 0.0;
  uint64_t covered = 0;
  for (int level = levels_; level >= 0; --level) {
    uint64_t span = uint64_t{1} << level;
    if (covered + span > prefix) continue;
    uint64_t index = covered / span;
    double exact = ExactRange(road, forward, covered, covered + span);
    double noise =
        KeyedLaplace(NoiseKey(seed_, road, forward, level, index),
                     NoiseScale());
    total += exact + noise;
    covered += span;
  }
  INNET_DCHECK(covered == prefix);
  // Counts are non-negative; clamping only improves accuracy.
  return std::max(total, 0.0);
}

}  // namespace innet::privacy
