// Differentially private edge-count store (§4.1's extension hook, after
// Ghosh et al., "Differentially Private Range Counting in Planar Graphs for
// Spatial Sensing", INFOCOM 2020).
//
// Mechanism: the continual-counting binary tree. Time [0, horizon] is split
// into 2^levels dyadic leaf intervals; every dyadic node (level, index)
// carries Laplace(levels / epsilon) noise, fixed once (keyed PRNG). A
// prefix count C(e, d, t) is answered as the sum of at most `levels` noisy
// dyadic interval counts. One crossing event lands in exactly one node per
// level, so its L1 sensitivity across all published statistics is `levels`,
// giving event-level epsilon-differential privacy for the temporal stream of
// every edge. Expected absolute error per prefix query is
// O(levels^{3/2} / epsilon), independent of the count magnitude.
#ifndef INNET_PRIVACY_PRIVATE_STORE_H_
#define INNET_PRIVACY_PRIVATE_STORE_H_

#include "forms/edge_count_store.h"

namespace innet::privacy {

/// EdgeCountStore decorator adding epsilon-DP noise to every lookup. The
/// base store must outlive this object.
class PrivateEdgeStore : public forms::EdgeCountStore {
 public:
  /// `epsilon`: privacy budget (smaller = more private = noisier).
  /// `horizon`: the time domain covered by the dyadic tree; queries beyond
  /// it clamp to the last leaf. `levels`: tree depth (2^levels leaves).
  PrivateEdgeStore(const forms::EdgeCountStore& base, double epsilon,
                   double horizon, int levels = 10, uint64_t seed = 0x9d5);

  double epsilon() const { return epsilon_; }
  int levels() const { return levels_; }

  /// Noise scale of each dyadic node (levels / epsilon).
  double NoiseScale() const;

  // EdgeCountStore:
  double CountUpTo(graph::EdgeId road, bool forward, double t) const override;
  size_t StorageBytes() const override { return base_->StorageBytes(); }
  size_t StorageBytesForEdge(graph::EdgeId road) const override {
    return base_->StorageBytesForEdge(road);
  }

 private:
  /// Exact count of events in leaf-bucket range [begin, end) via the base
  /// store.
  double ExactRange(graph::EdgeId road, bool forward, uint64_t begin,
                    uint64_t end) const;

  const forms::EdgeCountStore* base_;
  double epsilon_;
  double horizon_;
  int levels_;
  uint64_t seed_;
};

}  // namespace innet::privacy

#endif  // INNET_PRIVACY_PRIVATE_STORE_H_
