#include "privacy/noise.h"

#include <cmath>

namespace innet::privacy {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t NoiseKey(uint64_t seed, uint32_t edge, bool forward, uint32_t level,
                  uint64_t index) {
  uint64_t key = SplitMix64(seed ^ (static_cast<uint64_t>(edge) << 1 |
                                    (forward ? 1u : 0u)));
  key = SplitMix64(key ^ (static_cast<uint64_t>(level) << 48) ^ index);
  return key;
}

double KeyedLaplace(uint64_t key, double scale) {
  // Uniform in (0, 1) from the mixed key; inverse-CDF Laplace sampling.
  uint64_t bits = SplitMix64(key);
  double u = (static_cast<double>(bits >> 11) + 0.5) / 9007199254740992.0;
  // Map u in (0,1) to signed uniform in (-0.5, 0.5).
  double centered = u - 0.5;
  double magnitude = std::log(1.0 - 2.0 * std::abs(centered));
  return (centered < 0 ? scale : -scale) * magnitude;
}

}  // namespace innet::privacy
