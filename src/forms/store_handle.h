// RCU-style published handle over an immutable frozen store.
//
// The live-ingest write path (runtime::IngestPipeline) rebuilds a
// FrozenTrackingForm off the hot path and swaps it in by bumping a
// generation counter; readers pin a snapshot with one shared_ptr copy and
// keep serving from it — the swap never blocks a reader and a reader never
// blocks the swap. Reclamation is the shared_ptr refcount: an old epoch's
// store is destroyed when the last reader snapshot holding it drops.
//
// Read protocol (the generation-stamped acquire used by
// core::SampledQueryProcessor and runtime::BatchQueryEngine):
//
//   if (handle.Generation() != cached_generation)   // one atomic load
//     snapshot = handle.Acquire();                  // refcount bump, no heap
//   ... answer queries against snapshot.store ...
//
// The cheap-path check allocates nothing and touches one cache line, so it
// is safe inside the zero-alloc warm query loop.
#ifndef INNET_FORMS_STORE_HANDLE_H_
#define INNET_FORMS_STORE_HANDLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "forms/frozen_tracking_form.h"

namespace innet::forms {

/// Generation-stamped double-buffer handle. Publish() installs a new store
/// and bumps the generation; Acquire() returns a consistent {store,
/// generation} pair. Generation 0 means "nothing published yet".
class FrozenStoreHandle {
 public:
  struct Snapshot {
    std::shared_ptr<const FrozenTrackingForm> store;
    uint64_t generation = 0;
  };

  FrozenStoreHandle() = default;
  /// Publishes `initial` as generation 1.
  explicit FrozenStoreHandle(
      std::shared_ptr<const FrozenTrackingForm> initial) {
    Publish(std::move(initial));
  }

  FrozenStoreHandle(const FrozenStoreHandle&) = delete;
  FrozenStoreHandle& operator=(const FrozenStoreHandle&) = delete;

  /// Current generation; acquire-ordered so a reader that observes a new
  /// generation also observes the store published with it.
  uint64_t Generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  /// Pins the current store. The returned shared_ptr keeps the epoch alive
  /// for as long as the caller holds it, independent of later Publish()es.
  Snapshot Acquire() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {store_, generation_.load(std::memory_order_relaxed)};
  }

  /// Installs `store` as the next generation and returns that generation.
  /// The previous store stays alive until its last snapshot drops.
  uint64_t Publish(std::shared_ptr<const FrozenTrackingForm> store) {
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = std::move(store);
    uint64_t next = generation_.load(std::memory_order_relaxed) + 1;
    generation_.store(next, std::memory_order_release);
    return next;
  }

  /// Recovery seeding ONLY (runtime::RecoveryManager): installs `store`
  /// at an explicit `generation` so a restarted pipeline resumes the
  /// generation sequence of the run it is restoring. Must not be used while
  /// readers may hold this handle — it rewinds the monotone generation
  /// contract that Publish() maintains.
  void Restore(std::shared_ptr<const FrozenTrackingForm> store,
               uint64_t generation) {
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = std::move(store);
    generation_.store(generation, std::memory_order_release);
  }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const FrozenTrackingForm> store_;
  std::atomic<uint64_t> generation_{0};
};

}  // namespace innet::forms

#endif  // INNET_FORMS_STORE_HANDLE_H_
