#include "forms/region_count.h"

#include "util/logging.h"

namespace innet::forms {

std::vector<BoundaryEdge> RegionBoundary(const graph::PlanarGraph& graph,
                                         const std::vector<bool>& in_region) {
  INNET_CHECK(in_region.size() == graph.NumNodes());
  std::vector<BoundaryEdge> boundary;
  for (graph::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const graph::EdgeRecord& rec = graph.Edge(e);
    bool u_in = in_region[rec.u];
    bool v_in = in_region[rec.v];
    if (u_in == v_in) continue;
    boundary.push_back({e, /*inward_is_forward=*/v_in});
  }
  return boundary;
}

double EvaluateStaticCount(const EdgeCountStore& store,
                           const std::vector<BoundaryEdge>& boundary,
                           double t) {
  double total = 0.0;
  for (const BoundaryEdge& b : boundary) {
    total += store.CountUpTo(b.edge, b.inward_is_forward, t);
    total -= store.CountUpTo(b.edge, !b.inward_is_forward, t);
  }
  return total;
}

double EvaluateTransientCount(const EdgeCountStore& store,
                              const std::vector<BoundaryEdge>& boundary,
                              double t0, double t1) {
  double total = 0.0;
  for (const BoundaryEdge& b : boundary) {
    total += store.CountInRange(b.edge, b.inward_is_forward, t0, t1);
    total -= store.CountInRange(b.edge, !b.inward_is_forward, t0, t1);
  }
  return total;
}

}  // namespace innet::forms
