// Discrete differential 1-forms over the sensing graph (§3.4, §4.7.1).
//
// Crossing semantics. Every road (primal mobility edge) e = (u, v) is dual to
// one sensor edge separating the junction cell of u from the junction cell of
// v. An object traversing the road u -> v crosses that sensor edge "forward";
// v -> u is "backward". SnapshotForm stores the two directional crossing
// totals per edge — exactly the ξ⁺/ξ⁻ pair of Eq. 7 — and exposes the signed
// 1-form ξ(e) with ξ(-e) = -ξ(e).
//
// Theorem 4.1: the number of objects currently inside a union of junction
// cells equals the sum over boundary edges of (crossings into the region -
// crossings out of the region). See CountInside().
#ifndef INNET_FORMS_DIFFERENTIAL_FORM_H_
#define INNET_FORMS_DIFFERENTIAL_FORM_H_

#include <cstdint>
#include <vector>

#include "graph/planar_graph.h"

namespace innet::forms {

/// Snapshot differential form: directional crossing counters per sensor edge
/// (identified by the primal road's EdgeId).
class SnapshotForm {
 public:
  explicit SnapshotForm(size_t num_edges);

  size_t num_edges() const { return forward_.size(); }

  /// Records one traversal of `road`; `forward` means from the road's
  /// canonical u endpoint to v.
  void RecordTraversal(graph::EdgeId road, bool forward);

  /// Total crossings u -> v.
  int64_t Forward(graph::EdgeId road) const { return forward_[road]; }
  /// Total crossings v -> u.
  int64_t Backward(graph::EdgeId road) const { return backward_[road]; }

  /// ξ⁺ viewed from `junction`'s cell: crossings of `road` INTO the cell.
  /// Requires `junction` to be an endpoint of `road` in `graph`.
  int64_t PlusInto(const graph::PlanarGraph& graph, graph::EdgeId road,
                   graph::NodeId junction) const;

  /// ξ⁻ viewed from `junction`'s cell: crossings of `road` OUT of the cell.
  int64_t MinusOutOf(const graph::PlanarGraph& graph, graph::EdgeId road,
                     graph::NodeId junction) const;

  /// Signed form value toward `junction`: PlusInto - MinusOutOf. Negating the
  /// viewpoint (the other endpoint) negates the value: ξ(-e) = -ξ(e).
  int64_t SignedToward(const graph::PlanarGraph& graph, graph::EdgeId road,
                       graph::NodeId junction) const;

  /// Theorem 4.1: current object count inside the union of junction cells
  /// flagged by `in_region` (indexed by NodeId). Integrates the form along
  /// the region boundary only.
  int64_t CountInside(const graph::PlanarGraph& graph,
                      const std::vector<bool>& in_region) const;

 private:
  std::vector<int64_t> forward_;
  std::vector<int64_t> backward_;
};

}  // namespace innet::forms

#endif  // INNET_FORMS_DIFFERENTIAL_FORM_H_
