// Tracking forms (§4.7.2): per directed sensor edge, the sequence of
// crossing-event timestamps γ⁺/γ⁻. This is the exact (non-learned) store.
#ifndef INNET_FORMS_TRACKING_FORM_H_
#define INNET_FORMS_TRACKING_FORM_H_

#include <vector>

#include "forms/edge_count_store.h"
#include "graph/planar_graph.h"

namespace innet::forms {

class FrozenTrackingForm;

/// Exact temporal tracking form: sorted timestamp sequences per edge and
/// direction, with binary-search count lookups. Lookups are pure const
/// reads (read-safe across threads once ingestion stops); RecordTraversal
/// needs external synchronization.
class TrackingForm : public EdgeCountStore {
 public:
  explicit TrackingForm(size_t num_edges);

  size_t num_edges() const { return forward_.size(); }

  /// Appends a crossing event (Eq. 8). Events on the same edge and direction
  /// must arrive in non-decreasing time order.
  void RecordTraversal(graph::EdgeId road, bool forward, double t);

  /// Number of events recorded on `road` in the given direction.
  size_t EventCount(graph::EdgeId road, bool forward) const {
    return Sequence(road, forward).size();
  }

  /// The raw timestamp sequence (sorted ascending).
  const std::vector<double>& Sequence(graph::EdgeId road, bool forward) const {
    return forward ? forward_[road] : backward_[road];
  }

  /// Total number of stored timestamps across all edges.
  size_t TotalEvents() const;

  /// Read-optimized snapshot for the serving hot path: contiguous CSR
  /// timestamps plus a bucketed prefix-count index, with bit-identical
  /// counts (forms/frozen_tracking_form.h). Call after ingestion stops;
  /// later RecordTraversal calls do NOT propagate into the frozen copy.
  FrozenTrackingForm Freeze() const;

  // EdgeCountStore:
  StoreProvenance Provenance() const override {
    return {"exact", 0, TotalEvents()};
  }
  double CountUpTo(graph::EdgeId road, bool forward, double t) const override;
  size_t StorageBytes() const override;
  size_t StorageBytesForEdge(graph::EdgeId road) const override;

 private:
  std::vector<std::vector<double>> forward_;
  std::vector<std::vector<double>> backward_;
};

}  // namespace innet::forms

#endif  // INNET_FORMS_TRACKING_FORM_H_
