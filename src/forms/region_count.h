// Region count evaluation: Theorems 4.2 (static) and 4.3 (transient) over an
// explicit boundary-edge list and any EdgeCountStore.
//
// The query processor reduces every region (exact junction set on G, or
// union of sampled faces on G̃) to a list of boundary edges with an
// inward-direction flag; the theorems then integrate the tracking forms
// along that boundary.
#ifndef INNET_FORMS_REGION_COUNT_H_
#define INNET_FORMS_REGION_COUNT_H_

#include <vector>

#include "forms/edge_count_store.h"
#include "graph/planar_graph.h"

namespace innet::forms {

/// One boundary edge of a region. `inward_is_forward` is true when the
/// canonical u -> v traversal of the road crosses INTO the region.
struct BoundaryEdge {
  graph::EdgeId edge = graph::kInvalidEdge;
  bool inward_is_forward = true;
};

/// Closed interval of count values. Degraded-mode answers (docs/FAULTS.md)
/// report one of these instead of a point estimate: the true count is
/// claimed to lie in [lo, hi]. Fault-free answers carry the degenerate
/// interval [estimate, estimate].
struct CountInterval {
  double lo = 0.0;
  double hi = 0.0;

  static CountInterval Point(double value) { return {value, value}; }

  bool Contains(double value) const { return lo <= value && value <= hi; }
  double Width() const { return hi - lo; }
  double Mid() const { return 0.5 * (lo + hi); }

  /// Symmetric widening by `slack >= 0` on each side.
  CountInterval Widened(double slack) const {
    return {lo - slack, hi + slack};
  }

  /// Clamps the lower end at `floor` (static occupancy counts are >= 0).
  CountInterval ClampedBelow(double floor) const {
    return {lo < floor ? floor : lo, hi < floor ? floor : hi};
  }
};

/// Builds the boundary-edge list of the junction-cell union flagged by
/// `in_region` (indexed by NodeId).
std::vector<BoundaryEdge> RegionBoundary(const graph::PlanarGraph& graph,
                                         const std::vector<bool>& in_region);

/// Theorem 4.2 — static object count: the number of objects inside the
/// region at time `t` (net inflow from -inf to t), evaluated along
/// `boundary`.
double EvaluateStaticCount(const EdgeCountStore& store,
                           const std::vector<BoundaryEdge>& boundary,
                           double t);

/// Theorem 4.3 — transient object count: the net change of the region's
/// population over (t0, t1]. Negative values mean net outflow.
double EvaluateTransientCount(const EdgeCountStore& store,
                              const std::vector<BoundaryEdge>& boundary,
                              double t0, double t1);

}  // namespace innet::forms

#endif  // INNET_FORMS_REGION_COUNT_H_
