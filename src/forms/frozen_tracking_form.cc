#include "forms/frozen_tracking_form.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace innet::forms {

FrozenTrackingForm::FrozenTrackingForm(const TrackingForm& source) {
  size_t num_slots = 2 * source.num_edges();
  offsets_.assign(num_slots + 1, 0);
  times_.reserve(source.TotalEvents());
  hot_index_.assign(num_slots, {});
  first_bucket_.assign(num_slots, 0);

  for (graph::EdgeId road = 0; road < source.num_edges(); ++road) {
    for (bool forward : {true, false}) {
      size_t slot = Slot(road, forward);
      const std::vector<double>& seq = source.Sequence(road, forward);
      offsets_[slot] = times_.size();
      times_.insert(times_.end(), seq.begin(), seq.end());
    }
  }
  offsets_[num_slots] = times_.size();

  for (size_t slot = 0; slot < num_slots; ++slot) IndexSlot(slot);
}

FrozenTrackingForm::FrozenTrackingForm(std::vector<double> times,
                                       std::vector<uint64_t> offsets)
    : times_(std::move(times)), offsets_(std::move(offsets)) {
  INNET_CHECK(offsets_.size() >= 1 && offsets_.size() % 2 == 1);
  size_t num_slots = offsets_.size() - 1;
  INNET_CHECK(offsets_.front() == 0);
  INNET_CHECK(offsets_.back() == times_.size());
  for (size_t s = 0; s < num_slots; ++s) {
    INNET_CHECK(offsets_[s] <= offsets_[s + 1]);
    INNET_CHECK(std::is_sorted(times_.begin() + offsets_[s],
                               times_.begin() + offsets_[s + 1]));
  }
  hot_index_.assign(num_slots, {});
  first_bucket_.assign(num_slots, 0);
  for (size_t slot = 0; slot < num_slots; ++slot) IndexSlot(slot);
}

FrozenTrackingForm::FrozenTrackingForm(const FrozenTrackingForm& previous,
                                       const EpochDelta& delta) {
  size_t num_slots = previous.offsets_.size() - 1;
  INNET_CHECK(delta.NumSlots() == num_slots);
  offsets_.assign(num_slots + 1, 0);
  times_.reserve(previous.times_.size() + delta.times.size());
  hot_index_.assign(num_slots, {});
  first_bucket_.assign(num_slots, 0);
  bucket_starts_.reserve(previous.bucket_starts_.size() +
                         delta.times.size() / kEventsPerBucket + num_slots);

  size_t slot = 0;
  while (slot < num_slots) {
    size_t d_begin = delta.offsets[slot];
    size_t d_end = delta.offsets[slot + 1];
    if (d_begin == d_end) {
      // Maximal clean run [slot, run_end): previous timestamps of
      // consecutive slots are contiguous, so the whole run is one bulk copy.
      // Bucket indexes carry over with only first_bucket rebased.
      size_t run_end = slot;
      while (run_end < num_slots &&
             delta.offsets[run_end] == delta.offsets[run_end + 1]) {
        ++run_end;
      }
      size_t shift = times_.size() - previous.offsets_[slot];
      times_.insert(times_.end(),
                    previous.times_.begin() + previous.offsets_[slot],
                    previous.times_.begin() + previous.offsets_[run_end]);
      for (size_t s = slot; s < run_end; ++s) {
        offsets_[s] = previous.offsets_[s] + shift;
        size_t n = previous.offsets_[s + 1] - previous.offsets_[s];
        if (n == 0) continue;
        const HotIndex hot = previous.hot_index_[s];
        const uint32_t* starts =
            previous.bucket_starts_.data() + previous.first_bucket_[s];
        INNET_CHECK(bucket_starts_.size() <=
                    std::numeric_limits<uint32_t>::max());
        first_bucket_[s] = static_cast<uint32_t>(bucket_starts_.size());
        bucket_starts_.insert(bucket_starts_.end(), starts,
                              starts + NumBuckets(n, hot.inv_width) + 1);
        hot_index_[s] = hot;
      }
      slot = run_end;
      continue;
    }
    // Dirty slot: merge the previous span with the epoch's new events. The
    // common live-ingest case appends strictly after the stored history; a
    // true merge keeps multi-source streams with skewed watermarks correct.
    offsets_[slot] = times_.size();
    const double* old_begin = previous.SlotBegin(slot);
    const double* old_end = previous.SlotEnd(slot);
    const double* new_begin = delta.times.data() + d_begin;
    const double* new_end = delta.times.data() + d_end;
    INNET_DCHECK(std::is_sorted(new_begin, new_end));
    if (old_begin == old_end || *(old_end - 1) <= *new_begin) {
      times_.insert(times_.end(), old_begin, old_end);
      times_.insert(times_.end(), new_begin, new_end);
    } else {
      size_t at = times_.size();
      times_.resize(at + (old_end - old_begin) + (new_end - new_begin));
      std::merge(old_begin, old_end, new_begin, new_end, times_.begin() + at);
    }
    offsets_[slot + 1] = times_.size();  // Overwritten unless last slot.
    IndexSlot(slot);
    ++slot;
  }
  offsets_[num_slots] = times_.size();
}

// Bucketed prefix-count index: per slot, cut [first, last] event times
// into ceil(n / kEventsPerBucket) uniform buckets and precompute the
// cumulative event count at every bucket boundary (the index of the first
// event at or past the boundary). bucket_starts_ holds num_buckets + 1
// entries per non-empty slot; starts[0] == 0 and starts[num_buckets] == n.
void FrozenTrackingForm::IndexSlot(size_t slot) {
  size_t n = offsets_[slot + 1] - offsets_[slot];
  if (n == 0) return;
  // bucket_starts_ entries and first_bucket_ offsets are uint32: a slot
  // whose event count (or whose index position) no longer fits would
  // silently corrupt every lookup, so freezing refuses it outright.
  INNET_CHECK(n <= std::numeric_limits<uint32_t>::max());
  INNET_CHECK(bucket_starts_.size() <= std::numeric_limits<uint32_t>::max());
  const double* seq = times_.data() + offsets_[slot];
  HotIndex hot;
  hot.t0 = seq[0];
  hot.last = seq[n - 1];
  double span = seq[n - 1] - seq[0];
  size_t nb = (n + kEventsPerBucket - 1) / kEventsPerBucket;
  if (span <= 0.0) nb = 1;  // All events share one timestamp.
  hot.inv_width = span > 0.0 ? static_cast<double>(nb) / span : 0.0;
  INNET_DCHECK(NumBuckets(n, hot.inv_width) == nb);
  first_bucket_[slot] = static_cast<uint32_t>(bucket_starts_.size());
  double width = span > 0.0 ? span / static_cast<double>(nb) : 0.0;
  size_t cursor = 0;
  bucket_starts_.push_back(0);
  for (size_t b = 1; b < nb; ++b) {
    double boundary = hot.t0 + width * static_cast<double>(b);
    while (cursor < n && seq[cursor] < boundary) ++cursor;
    bucket_starts_.push_back(static_cast<uint32_t>(cursor));
  }
  bucket_starts_.push_back(static_cast<uint32_t>(n));
  hot_index_[slot] = hot;
}

void FrozenTrackingForm::CountUpToSlots(const size_t* slots, size_t count,
                                        double t, size_t* out) const {
  if (count == 0) return;
  // Software pipeline. Stage(slot) does the index half of a lookup — row
  // pointers, hot entry, bucket estimate, out-of-range early-outs — and
  // issues prefetches for the lines the resolve half will read (the
  // bucket_starts_ entry and the estimated in-bucket window). Resolving
  // slot i one iteration later gives those fetches a full lookup's worth
  // of work to hide behind, and the staged struct carries the results
  // forward so nothing is computed twice. Two iterations further out, the
  // next slots' index lines themselves are hinted.
  struct Staged {
    const double* seq;
    const uint32_t* starts;  // nullptr = resolved at stage time: answer is n.
    size_t n;
    size_t b;
  };
  auto stage = [&](size_t slot) {
    size_t begin = offsets_[slot];
    Staged s{times_.data() + begin, nullptr, offsets_[slot + 1] - begin, 0};
    if (s.n == 0) return s;
    const HotIndex& hot = hot_index_[slot];
    if (t < hot.t0) {
      s.n = 0;
      return s;
    }
    if (t >= hot.last) return s;  // Whole slot counts; no line touched.
    s.b = BucketEstimate((t - hot.t0) * hot.inv_width,
                         NumBuckets(s.n, hot.inv_width));
    s.starts = bucket_starts_.data() + first_bucket_[slot];
    __builtin_prefetch(s.starts + s.b);
    // b * kEventsPerBucket over-approximates starts[b] (buckets average
    // kEventsPerBucket events) without waiting on the starts load; clamped
    // by construction: b <= ceil(n/8) - 1, so b * 8 <= n - 1.
    __builtin_prefetch(s.seq + s.b * kEventsPerBucket);
    return s;
  };
  auto resolve = [&](const Staged& s) -> size_t {
    if (s.starts == nullptr) return s.n;
    size_t b = s.b;
    size_t lo = s.starts[b];
    while (lo > 0 && s.seq[lo - 1] > t) lo = s.starts[--b];
    size_t bh = s.b;
    size_t hi = s.starts[bh + 1];
    while (hi < s.n && s.seq[hi] <= t) hi = s.starts[++bh + 1];
    return lo + util::simd::CountLessEqual(s.seq + lo, hi - lo, t);
  };
  Staged cur = stage(slots[0]);
  for (size_t i = 0; i + 1 < count; ++i) {
    if (i + 2 < count) {
      size_t s = slots[i + 2];
      __builtin_prefetch(&hot_index_[s]);
      __builtin_prefetch(&first_bucket_[s]);
      __builtin_prefetch(&offsets_[s]);
    }
    Staged next = stage(slots[i + 1]);
    out[i] = resolve(cur);
    cur = next;
  }
  out[count - 1] = resolve(cur);
}

namespace {

// Shared ascending-instants precondition of the batch kernels.
void DCheckAscending(const double* times, size_t count) {
  for (size_t k = 0; k + 1 < count; ++k) {
    INNET_DCHECK(times[k] <= times[k + 1]);
  }
}

// Boundary edges per batched-lookup chunk. 128 edges = 256 slots keeps the
// scratch on the stack (allocation-free warm path) while giving the
// prefetch pipeline a long runway.
constexpr size_t kEdgeChunk = 128;

}  // namespace

double EvaluateStaticCount(const FrozenTrackingForm& store,
                           const std::vector<BoundaryEdge>& boundary,
                           double t) {
  // Counts are integers well inside double's exact range, so the running
  // sum is exact and matches the virtual path bit-for-bit.
  double total = 0.0;
  size_t slots[2 * kEdgeChunk];
  size_t counts[2 * kEdgeChunk];
  size_t num_edges = boundary.size();
  for (size_t base = 0; base < num_edges; base += kEdgeChunk) {
    size_t m = std::min(kEdgeChunk, num_edges - base);
    for (size_t j = 0; j < m; ++j) {
      const BoundaryEdge& b = boundary[base + j];
      slots[2 * j] = FrozenTrackingForm::Slot(b.edge, b.inward_is_forward);
      slots[2 * j + 1] =
          FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward);
    }
    store.CountUpToSlots(slots, 2 * m, t, counts);
    for (size_t j = 0; j < m; ++j) {
      total += static_cast<double>(counts[2 * j]);
      total -= static_cast<double>(counts[2 * j + 1]);
    }
  }
  return total;
}

double EvaluateTransientCount(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              double t0, double t1) {
  // Mirrors EdgeCountStore::CountInRange term by term: the virtual path
  // accumulates (in(t1) - in(t0)) - (out(t1) - out(t0)) per edge.
  double total = 0.0;
  size_t slots[2 * kEdgeChunk];
  size_t at_t1[2 * kEdgeChunk];
  size_t at_t0[2 * kEdgeChunk];
  size_t num_edges = boundary.size();
  for (size_t base = 0; base < num_edges; base += kEdgeChunk) {
    size_t m = std::min(kEdgeChunk, num_edges - base);
    for (size_t j = 0; j < m; ++j) {
      const BoundaryEdge& b = boundary[base + j];
      slots[2 * j] = FrozenTrackingForm::Slot(b.edge, b.inward_is_forward);
      slots[2 * j + 1] =
          FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward);
    }
    store.CountUpToSlots(slots, 2 * m, t1, at_t1);
    store.CountUpToSlots(slots, 2 * m, t0, at_t0);
    for (size_t j = 0; j < m; ++j) {
      total += static_cast<double>(at_t1[2 * j]) -
               static_cast<double>(at_t0[2 * j]);
      total -= static_cast<double>(at_t1[2 * j + 1]) -
               static_cast<double>(at_t0[2 * j + 1]);
    }
  }
  return total;
}

namespace {

// Adds sign * (events <= times[k]) of one slot into out[0..count): a single
// merge pass — the cursor only ever advances because `times` is ascending.
// Each advance is a galloped, vector-counted upper bound (util/simd.h), so
// dense series steps cost a couple of compares and sparse ones skip whole
// vector widths at a time.
void AccumulateSlotSeries(const FrozenTrackingForm& store, size_t slot,
                          double sign, const double* times, size_t count,
                          double* out) {
  const double* seq = store.SlotBegin(slot);
  size_t n = static_cast<size_t>(store.SlotEnd(slot) - seq);
  size_t cursor = 0;
  for (size_t k = 0; k < count; ++k) {
    cursor += util::simd::CountLeadingLessEqualSorted(seq + cursor,
                                                      n - cursor, times[k]);
    out[k] += sign * static_cast<double>(cursor);
  }
}

}  // namespace

void EvaluateStaticCountBatch(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              const double* times, size_t count,
                              double* out) {
  DCheckAscending(times, count);
  for (size_t k = 0; k < count; ++k) out[k] = 0.0;
  size_t num_edges = boundary.size();
  for (size_t i = 0; i < num_edges; ++i) {
    if (i + 1 < num_edges) {
      const BoundaryEdge& next = boundary[i + 1];
      store.PrefetchSlot(FrozenTrackingForm::Slot(next.edge, true));
      store.PrefetchSlot(FrozenTrackingForm::Slot(next.edge, false));
    }
    const BoundaryEdge& b = boundary[i];
    AccumulateSlotSeries(store,
                         FrozenTrackingForm::Slot(b.edge, b.inward_is_forward),
                         1.0, times, count, out);
    AccumulateSlotSeries(
        store, FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward), -1.0,
        times, count, out);
  }
}

void EvaluateTransientCountBatch(const FrozenTrackingForm& store,
                                 const std::vector<BoundaryEdge>& boundary,
                                 double t0, const double* times, size_t count,
                                 double* out) {
  DCheckAscending(times, count);
  for (size_t k = 0; k < count; ++k) out[k] = 0.0;
  // The per-edge t0 bases accumulate into one total subtracted after the
  // edge loop — a single O(steps) pass instead of O(edges * steps)
  // redundant writes. Bases and series values are exact integers, so the
  // regrouped arithmetic is bit-identical to per-edge subtraction.
  double base_total = 0.0;
  size_t num_edges = boundary.size();
  for (size_t i = 0; i < num_edges; ++i) {
    if (i + 1 < num_edges) {
      const BoundaryEdge& next = boundary[i + 1];
      store.PrefetchSlot(FrozenTrackingForm::Slot(next.edge, true));
      store.PrefetchSlot(FrozenTrackingForm::Slot(next.edge, false));
    }
    const BoundaryEdge& b = boundary[i];
    size_t slot_in = FrozenTrackingForm::Slot(b.edge, b.inward_is_forward);
    size_t slot_out = FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward);
    base_total += static_cast<double>(store.CountUpToSlot(slot_in, t0)) -
                  static_cast<double>(store.CountUpToSlot(slot_out, t0));
    AccumulateSlotSeries(store, slot_in, 1.0, times, count, out);
    AccumulateSlotSeries(store, slot_out, -1.0, times, count, out);
  }
  if (base_total != 0.0) {
    for (size_t k = 0; k < count; ++k) out[k] -= base_total;
  }
}

// Defined here (not tracking_form.cc) so TrackingForm's translation unit
// does not depend on the frozen layout.
FrozenTrackingForm TrackingForm::Freeze() const {
  return FrozenTrackingForm(*this);
}

}  // namespace innet::forms
