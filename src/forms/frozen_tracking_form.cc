#include "forms/frozen_tracking_form.h"

#include <cmath>

#include "util/logging.h"

namespace innet::forms {

FrozenTrackingForm::FrozenTrackingForm(const TrackingForm& source) {
  size_t num_slots = 2 * source.num_edges();
  offsets_.assign(num_slots + 1, 0);
  times_.reserve(source.TotalEvents());
  index_.assign(num_slots, {});

  for (graph::EdgeId road = 0; road < source.num_edges(); ++road) {
    for (bool forward : {true, false}) {
      size_t slot = Slot(road, forward);
      const std::vector<double>& seq = source.Sequence(road, forward);
      offsets_[slot] = times_.size();
      times_.insert(times_.end(), seq.begin(), seq.end());
    }
  }
  offsets_[num_slots] = times_.size();

  for (size_t slot = 0; slot < num_slots; ++slot) IndexSlot(slot);
}

FrozenTrackingForm::FrozenTrackingForm(std::vector<double> times,
                                       std::vector<uint64_t> offsets)
    : times_(std::move(times)), offsets_(std::move(offsets)) {
  INNET_CHECK(offsets_.size() >= 1 && offsets_.size() % 2 == 1);
  size_t num_slots = offsets_.size() - 1;
  INNET_CHECK(offsets_.front() == 0);
  INNET_CHECK(offsets_.back() == times_.size());
  for (size_t s = 0; s < num_slots; ++s) {
    INNET_CHECK(offsets_[s] <= offsets_[s + 1]);
    INNET_CHECK(std::is_sorted(times_.begin() + offsets_[s],
                               times_.begin() + offsets_[s + 1]));
  }
  index_.assign(num_slots, {});
  for (size_t slot = 0; slot < num_slots; ++slot) IndexSlot(slot);
}

FrozenTrackingForm::FrozenTrackingForm(const FrozenTrackingForm& previous,
                                       const EpochDelta& delta) {
  size_t num_slots = previous.offsets_.size() - 1;
  INNET_CHECK(delta.NumSlots() == num_slots);
  offsets_.assign(num_slots + 1, 0);
  times_.reserve(previous.times_.size() + delta.times.size());
  index_.assign(num_slots, {});
  bucket_starts_.reserve(previous.bucket_starts_.size() +
                         delta.times.size() / kEventsPerBucket + num_slots);

  size_t slot = 0;
  while (slot < num_slots) {
    size_t d_begin = delta.offsets[slot];
    size_t d_end = delta.offsets[slot + 1];
    if (d_begin == d_end) {
      // Maximal clean run [slot, run_end): previous timestamps of
      // consecutive slots are contiguous, so the whole run is one bulk copy.
      // Bucket indexes carry over with only first_bucket rebased.
      size_t run_end = slot;
      while (run_end < num_slots &&
             delta.offsets[run_end] == delta.offsets[run_end + 1]) {
        ++run_end;
      }
      size_t shift = times_.size() - previous.offsets_[slot];
      times_.insert(times_.end(),
                    previous.times_.begin() + previous.offsets_[slot],
                    previous.times_.begin() + previous.offsets_[run_end]);
      for (size_t s = slot; s < run_end; ++s) {
        offsets_[s] = previous.offsets_[s] + shift;
        size_t n = previous.offsets_[s + 1] - previous.offsets_[s];
        if (n == 0) continue;
        BucketIndex ix = previous.index_[s];
        const uint32_t* starts =
            previous.bucket_starts_.data() + ix.first_bucket;
        ix.first_bucket = static_cast<uint32_t>(bucket_starts_.size());
        bucket_starts_.insert(bucket_starts_.end(), starts,
                              starts + ix.num_buckets + 1);
        index_[s] = ix;
      }
      slot = run_end;
      continue;
    }
    // Dirty slot: merge the previous span with the epoch's new events. The
    // common live-ingest case appends strictly after the stored history; a
    // true merge keeps multi-source streams with skewed watermarks correct.
    offsets_[slot] = times_.size();
    const double* old_begin = previous.SlotBegin(slot);
    const double* old_end = previous.SlotEnd(slot);
    const double* new_begin = delta.times.data() + d_begin;
    const double* new_end = delta.times.data() + d_end;
    INNET_DCHECK(std::is_sorted(new_begin, new_end));
    if (old_begin == old_end || *(old_end - 1) <= *new_begin) {
      times_.insert(times_.end(), old_begin, old_end);
      times_.insert(times_.end(), new_begin, new_end);
    } else {
      size_t at = times_.size();
      times_.resize(at + (old_end - old_begin) + (new_end - new_begin));
      std::merge(old_begin, old_end, new_begin, new_end, times_.begin() + at);
    }
    offsets_[slot + 1] = times_.size();  // Overwritten unless last slot.
    IndexSlot(slot);
    ++slot;
  }
  offsets_[num_slots] = times_.size();
}

// Bucketed prefix-count index: per slot, cut [first, last] event times
// into ceil(n / kEventsPerBucket) uniform buckets and precompute the
// cumulative event count at every bucket boundary (the index of the first
// event at or past the boundary). bucket_starts_ holds num_buckets + 1
// entries per non-empty slot; starts[0] == 0 and starts[num_buckets] == n.
void FrozenTrackingForm::IndexSlot(size_t slot) {
  size_t n = offsets_[slot + 1] - offsets_[slot];
  if (n == 0) return;
  const double* seq = times_.data() + offsets_[slot];
  BucketIndex ix;
  ix.t0 = seq[0];
  double span = seq[n - 1] - seq[0];
  size_t nb = (n + kEventsPerBucket - 1) / kEventsPerBucket;
  if (span <= 0.0) nb = 1;  // All events share one timestamp.
  ix.num_buckets = static_cast<uint32_t>(nb);
  ix.inv_width = span > 0.0 ? static_cast<double>(nb) / span : 0.0;
  ix.first_bucket = static_cast<uint32_t>(bucket_starts_.size());
  double width = span > 0.0 ? span / static_cast<double>(nb) : 0.0;
  size_t cursor = 0;
  bucket_starts_.push_back(0);
  for (size_t b = 1; b < nb; ++b) {
    double boundary = ix.t0 + width * static_cast<double>(b);
    while (cursor < n && seq[cursor] < boundary) ++cursor;
    bucket_starts_.push_back(static_cast<uint32_t>(cursor));
  }
  bucket_starts_.push_back(static_cast<uint32_t>(n));
  index_[slot] = ix;
}

double EvaluateStaticCount(const FrozenTrackingForm& store,
                           const std::vector<BoundaryEdge>& boundary,
                           double t) {
  // Counts are integers well inside double's exact range, so the running
  // sum is exact and matches the virtual path bit-for-bit.
  double total = 0.0;
  for (const BoundaryEdge& b : boundary) {
    size_t in = store.CountUpToSlot(
        FrozenTrackingForm::Slot(b.edge, b.inward_is_forward), t);
    size_t out = store.CountUpToSlot(
        FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward), t);
    total += static_cast<double>(in);
    total -= static_cast<double>(out);
  }
  return total;
}

double EvaluateTransientCount(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              double t0, double t1) {
  // Mirrors EdgeCountStore::CountInRange term by term: the virtual path
  // accumulates (in(t1) - in(t0)) - (out(t1) - out(t0)) per edge.
  double total = 0.0;
  for (const BoundaryEdge& b : boundary) {
    size_t slot_in = FrozenTrackingForm::Slot(b.edge, b.inward_is_forward);
    size_t slot_out = FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward);
    total += static_cast<double>(store.CountUpToSlot(slot_in, t1)) -
             static_cast<double>(store.CountUpToSlot(slot_in, t0));
    total -= static_cast<double>(store.CountUpToSlot(slot_out, t1)) -
             static_cast<double>(store.CountUpToSlot(slot_out, t0));
  }
  return total;
}

namespace {

// Adds sign * (events <= times[k]) of one slot into out[0..count): a single
// merge pass — the cursor only ever advances because `times` is ascending.
void AccumulateSlotSeries(const FrozenTrackingForm& store, size_t slot,
                          double sign, const double* times, size_t count,
                          double* out) {
  const double* seq = store.SlotBegin(slot);
  const double* end = store.SlotEnd(slot);
  const double* cursor = seq;
  for (size_t k = 0; k < count; ++k) {
    double t = times[k];
    while (cursor != end && *cursor <= t) ++cursor;
    out[k] += sign * static_cast<double>(cursor - seq);
  }
}

}  // namespace

void EvaluateStaticCountBatch(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              const double* times, size_t count,
                              double* out) {
  for (size_t k = 0; k + 1 < count; ++k) {
    INNET_DCHECK(times[k] <= times[k + 1]);
  }
  for (size_t k = 0; k < count; ++k) out[k] = 0.0;
  for (const BoundaryEdge& b : boundary) {
    AccumulateSlotSeries(store,
                         FrozenTrackingForm::Slot(b.edge, b.inward_is_forward),
                         1.0, times, count, out);
    AccumulateSlotSeries(
        store, FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward), -1.0,
        times, count, out);
  }
}

void EvaluateTransientCountBatch(const FrozenTrackingForm& store,
                                 const std::vector<BoundaryEdge>& boundary,
                                 double t0, const double* times, size_t count,
                                 double* out) {
  for (size_t k = 0; k + 1 < count; ++k) {
    INNET_DCHECK(times[k] <= times[k + 1]);
  }
  for (size_t k = 0; k < count; ++k) out[k] = 0.0;
  for (const BoundaryEdge& b : boundary) {
    size_t slot_in = FrozenTrackingForm::Slot(b.edge, b.inward_is_forward);
    size_t slot_out = FrozenTrackingForm::Slot(b.edge, !b.inward_is_forward);
    double base = static_cast<double>(store.CountUpToSlot(slot_in, t0)) -
                  static_cast<double>(store.CountUpToSlot(slot_out, t0));
    AccumulateSlotSeries(store, slot_in, 1.0, times, count, out);
    AccumulateSlotSeries(store, slot_out, -1.0, times, count, out);
    for (size_t k = 0; k < count; ++k) out[k] -= base;
  }
}

// Defined here (not tracking_form.cc) so TrackingForm's translation unit
// does not depend on the frozen layout.
FrozenTrackingForm TrackingForm::Freeze() const {
  return FrozenTrackingForm(*this);
}

}  // namespace innet::forms
