#include "forms/differential_form.h"

#include "util/logging.h"

namespace innet::forms {

SnapshotForm::SnapshotForm(size_t num_edges)
    : forward_(num_edges, 0), backward_(num_edges, 0) {}

void SnapshotForm::RecordTraversal(graph::EdgeId road, bool forward) {
  INNET_DCHECK(road < forward_.size());
  if (forward) {
    ++forward_[road];
  } else {
    ++backward_[road];
  }
}

int64_t SnapshotForm::PlusInto(const graph::PlanarGraph& graph,
                               graph::EdgeId road,
                               graph::NodeId junction) const {
  const graph::EdgeRecord& rec = graph.Edge(road);
  INNET_DCHECK(junction == rec.u || junction == rec.v);
  return junction == rec.v ? forward_[road] : backward_[road];
}

int64_t SnapshotForm::MinusOutOf(const graph::PlanarGraph& graph,
                                 graph::EdgeId road,
                                 graph::NodeId junction) const {
  const graph::EdgeRecord& rec = graph.Edge(road);
  INNET_DCHECK(junction == rec.u || junction == rec.v);
  return junction == rec.u ? forward_[road] : backward_[road];
}

int64_t SnapshotForm::SignedToward(const graph::PlanarGraph& graph,
                                   graph::EdgeId road,
                                   graph::NodeId junction) const {
  return PlusInto(graph, road, junction) - MinusOutOf(graph, road, junction);
}

int64_t SnapshotForm::CountInside(const graph::PlanarGraph& graph,
                                  const std::vector<bool>& in_region) const {
  INNET_CHECK(in_region.size() == graph.NumNodes());
  int64_t total = 0;
  for (graph::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    const graph::EdgeRecord& rec = graph.Edge(e);
    bool u_in = in_region[rec.u];
    bool v_in = in_region[rec.v];
    if (u_in == v_in) continue;  // Interior or exterior edge: cancels out.
    if (v_in) {
      total += forward_[e] - backward_[e];  // Inflow through u -> v.
    } else {
      total += backward_[e] - forward_[e];  // Inflow through v -> u.
    }
  }
  return total;
}

}  // namespace innet::forms
