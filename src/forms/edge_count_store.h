// Abstraction over "how many crossings happened on this edge, in this
// direction, up to time t" — the count function C(γ_t(e), t) of §4.7.3.
//
// Two implementations exist: the exact TrackingForm (sorted timestamp
// sequences, binary-searched) and learned::BufferedEdgeStore (constant-size
// regression models + bounded buffer, §4.8).
#ifndef INNET_FORMS_EDGE_COUNT_STORE_H_
#define INNET_FORMS_EDGE_COUNT_STORE_H_

#include <cstddef>

#include "graph/planar_graph.h"

namespace innet::forms {

/// Read interface for per-edge directional event counts.
///
/// Thread safety: every implementation in this repo keeps CountUpTo (and
/// the StorageBytes accessors) a PURE const read — no lazily-mutated
/// caches, no mutable members touched on lookup. Once ingestion has
/// stopped, any number of threads may query one store concurrently
/// (runtime::BatchQueryEngine relies on this). Mutating calls
/// (RecordTraversal on the concrete types) require external
/// synchronization and must not overlap reads.
/// How a store derives its counts, for answer provenance (obs/explain.h):
/// the store family plus the split between events folded into constant-size
/// count models and events still held raw (exact sequences or buffers).
struct StoreProvenance {
  const char* kind = "exact";
  size_t modeled_events = 0;
  size_t raw_events = 0;
};

class EdgeCountStore {
 public:
  virtual ~EdgeCountStore() = default;

  /// Provenance of this store's counts. The default describes a fully
  /// exact store with an unknown event total; concrete stores override.
  virtual StoreProvenance Provenance() const { return {}; }

  /// Estimated number of traversals of `road` in the given direction with
  /// timestamp <= t. Exact stores return integers; learned stores may return
  /// fractional estimates.
  virtual double CountUpTo(graph::EdgeId road, bool forward,
                           double t) const = 0;

  /// C(γ, t0, t1) = C(γ, t1) - C(γ, t0): traversals in (t0, t1].
  double CountInRange(graph::EdgeId road, bool forward, double t0,
                      double t1) const {
    return CountUpTo(road, forward, t1) - CountUpTo(road, forward, t0);
  }

  /// Bytes needed to persist the store's per-edge state (the storage metric
  /// of Fig. 11e).
  virtual size_t StorageBytes() const = 0;

  /// Storage attributable to one edge (both directions).
  virtual size_t StorageBytesForEdge(graph::EdgeId road) const = 0;
};

}  // namespace innet::forms

#endif  // INNET_FORMS_EDGE_COUNT_STORE_H_
