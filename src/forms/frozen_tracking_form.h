// Frozen (read-optimized) tracking forms: the CSR counterpart of
// TrackingForm for the serving hot path.
//
// TrackingForm stores one std::vector<double> per (edge, direction) — ideal
// for append-order ingestion, hostile to query scans: every CountUpTo pays
// a virtual call, two pointer dereferences, and a full binary search over a
// heap block that shares no cache lines with its neighbours. Freezing
// rewrites the store into
//
//   - ONE contiguous timestamp array (`times_`, CSR values) with
//     per-(edge, direction) offsets (`offsets_`, CSR row pointers), and
//   - an epoch-bucketed PREFIX-COUNT index: each slot's event span is cut
//     into fixed-width time buckets (~kEventsPerBucket events each) and the
//     cumulative event count at every bucket boundary is precomputed, so a
//     lookup is one O(1) bucket computation plus a short vectorized count
//     inside the bucket instead of a log2(n) pointer chase.
//
// The derived index is stored structure-of-arrays: the HOT per-slot pair
// {t0, inv_width} (everything a probe needs to early-out or aim at its
// bucket — four slots per cache line) lives apart from the COLD per-slot
// bucket_starts_ offset, so the common probe touches one index line. The
// in-bucket resolution is a branchless vector count (util/simd.h: AVX2 /
// NEON / scalar, runtime-dispatched), and CountUpToSlots pipelines
// software prefetches across a batch of slots so DRAM latency overlaps
// across a boundary loop instead of serializing per edge.
//
// Counts are EXACTLY those of the source TrackingForm — integer-valued
// doubles, so every evaluation over a frozen store is bit-identical to the
// virtual path (tests/frozen_form_test.cc pins this). The frozen store is
// immutable: all reads are pure const and race-free across threads.
//
// The free-function kernels at the bottom are the devirtualized fast paths
// used by the query processors and runtime::BatchQueryEngine whenever the
// store they were handed is (dynamically) a FrozenTrackingForm; see
// docs/PERFORMANCE.md for layout diagrams and measured speedups.
#ifndef INNET_FORMS_FROZEN_TRACKING_FORM_H_
#define INNET_FORMS_FROZEN_TRACKING_FORM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "forms/edge_count_store.h"
#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "graph/planar_graph.h"
#include "util/simd.h"

namespace innet::forms {

/// Immutable CSR tracking store with a bucketed prefix-count time index.
/// Build with TrackingForm::Freeze() (or the constructor) after ingestion
/// has stopped.
/// One epoch's worth of new crossing events in slot-major CSR layout:
/// `times[offsets[s] .. offsets[s+1])` are the sorted-ascending new
/// timestamps for slot s (see FrozenTrackingForm::Slot). A slot with an
/// empty span is CLEAN — the incremental constructor reuses its previous
/// CSR range and bucket index verbatim. Built by runtime::IngestPipeline's
/// scatter→sort pass; kept per-epoch so the delta stays proportional to
/// the epoch's event count, not the store size.
struct EpochDelta {
  std::vector<double> times;
  std::vector<uint64_t> offsets;  // num_slots + 1 row pointers.

  size_t NumSlots() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t TotalEvents() const { return times.size(); }
};

class FrozenTrackingForm : public EdgeCountStore {
 public:
  /// Target events per time bucket; the per-slot bucket count is
  /// ceil(n / kEventsPerBucket), so the index costs ~1/8 uint32 per stored
  /// timestamp.
  static constexpr size_t kEventsPerBucket = 8;

  explicit FrozenTrackingForm(const TrackingForm& source);

  /// Rehydrates a frozen store from its persisted CSR arrays (snapshot
  /// load, io::LoadFrozenSnapshot). `offsets` must be monotone row pointers
  /// over an even slot count with offsets.back() == times.size(), and every
  /// slot's span must be sorted ascending — CHECK-enforced, so loaders
  /// validate before constructing. The bucket index is derived state and is
  /// rebuilt deterministically, making the result bit-identical to the
  /// store the arrays were copied out of.
  FrozenTrackingForm(std::vector<double> times,
                     std::vector<uint64_t> offsets);

  /// Incremental re-freeze: `previous` extended by one epoch of new events.
  /// Clean slots (no delta events) reuse the previous CSR range and bucket
  /// index with a bulk copy; dirty slots merge the old span with the delta
  /// span (a straight append when the epoch starts at or after the slot's
  /// last stored timestamp) and rebuild only their own index. The result is
  /// bit-identical to a from-scratch Freeze() of the combined stream
  /// (tests/ingest_pipeline_test.cc pins this).
  FrozenTrackingForm(const FrozenTrackingForm& previous,
                     const EpochDelta& delta);

  size_t num_edges() const { return offsets_.size() / 2; }
  size_t TotalEvents() const { return times_.size(); }

  /// CSR slot of (road, direction). Forward and backward sequences of one
  /// road are adjacent, so both directions of a boundary edge share cache
  /// lines.
  static size_t Slot(graph::EdgeId road, bool forward) {
    return 2 * static_cast<size_t>(road) + (forward ? 0 : 1);
  }

  /// Events recorded on `road` in the given direction.
  size_t EventCount(graph::EdgeId road, bool forward) const {
    size_t s = Slot(road, forward);
    return offsets_[s + 1] - offsets_[s];
  }

  /// Begin/end of one slot's sorted timestamp span.
  const double* SlotBegin(size_t slot) const {
    return times_.data() + offsets_[slot];
  }
  const double* SlotEnd(size_t slot) const {
    return times_.data() + offsets_[slot + 1];
  }

  /// Devirtualized count lookup: events on `slot` with timestamp <= t.
  /// O(1) bucket lookup plus a branchless vectorized count over the bucket
  /// span (util/simd.h); exact (bit-identical to the source TrackingForm's
  /// binary search) at every dispatch level.
  size_t CountUpToSlot(size_t slot, double t) const {
    size_t begin = offsets_[slot];
    size_t n = offsets_[slot + 1] - begin;
    if (n == 0) return 0;
    // Both early-outs resolve on the hot entry alone — no timestamp line.
    const HotIndex& hot = hot_index_[slot];
    if (t < hot.t0) return 0;
    if (t >= hot.last) return n;
    const double* seq = times_.data() + begin;
    // Bucket estimate. The floating-point computation may land a bucket off
    // at exact boundaries; the bucket-granularity guard loops below restore
    // the exact bracket, typically in zero iterations.
    size_t nb = NumBuckets(n, hot.inv_width);
    size_t b = BucketEstimate((t - hot.t0) * hot.inv_width, nb);
    const uint32_t* starts = bucket_starts_.data() + first_bucket_[slot];
    size_t lo = starts[b];
    size_t bh = b;
    while (lo > 0 && seq[lo - 1] > t) lo = starts[--b];
    size_t hi = starts[bh + 1];
    while (hi < n && seq[hi] <= t) hi = starts[++bh + 1];
    // Every index < lo holds a value <= t and every index >= hi a value
    // > t, so the answer is lo plus a vector count over [lo, hi).
    return lo + util::simd::CountLessEqual(seq + lo, hi - lo, t);
  }

  /// Batched multi-slot lookup: out[i] = CountUpToSlot(slots[i], t), with
  /// the next slots' index entries, bucket line, and first timestamp line
  /// software-prefetched ~2 iterations ahead so their DRAM fetches overlap
  /// across the batch. Callers get the most out of the pipeline by passing
  /// slots in ascending id order (SampledGraph emits boundaries that way);
  /// any order is correct.
  void CountUpToSlots(const size_t* slots, size_t count, double t,
                      size_t* out) const;

  /// Hints the lines a CountUpToSlot / series walk of `slot` touches first.
  void PrefetchSlot(size_t slot) const {
    __builtin_prefetch(&hot_index_[slot]);
    __builtin_prefetch(&first_bucket_[slot]);
    __builtin_prefetch(times_.data() + offsets_[slot]);
  }

  /// Devirtualized per-edge count (the non-virtual twin of
  /// EdgeCountStore::CountUpTo).
  double CountUpToFast(graph::EdgeId road, bool forward, double t) const {
    return static_cast<double>(CountUpToSlot(Slot(road, forward), t));
  }

  // EdgeCountStore. Provenance and storage report the PERSISTED form — the
  // timestamp sequences, identical to the source TrackingForm — so frozen
  // and unfrozen deployments explain and account identically (the bucket
  // index is derived state; IndexBytes() reports its in-memory overhead).
  StoreProvenance Provenance() const override {
    return {"exact", 0, TotalEvents()};
  }
  double CountUpTo(graph::EdgeId road, bool forward,
                   double t) const override {
    return CountUpToFast(road, forward, t);
  }
  size_t StorageBytes() const override {
    return TotalEvents() * sizeof(double);
  }
  size_t StorageBytesForEdge(graph::EdgeId road) const override {
    return (EventCount(road, true) + EventCount(road, false)) *
           sizeof(double);
  }

  /// In-memory footprint of the derived prefix-count index.
  size_t IndexBytes() const {
    return bucket_starts_.size() * sizeof(uint32_t) +
           hot_index_.size() * sizeof(HotIndex) +
           first_bucket_.size() * sizeof(uint32_t);
  }

  /// The persisted representation (snapshot save): raw CSR arrays. The
  /// bucket index is intentionally NOT exposed — it is derived state,
  /// rebuilt on load.
  const std::vector<double>& RawTimes() const { return times_; }
  const std::vector<uint64_t>& RawOffsets() const { return offsets_; }

 private:
  /// Builds the bucketed prefix-count index for one slot whose timestamp
  /// span is already in place; appends to bucket_starts_, so callers must
  /// index slots in ascending order.
  void IndexSlot(size_t slot);

  // SoA derived index. The hot entry is everything a probe reads before it
  // knows which bucket line to touch — including both range bounds, so the
  // out-of-range early-outs (below the first event, at/after the last)
  // resolve WITHOUT touching a timestamp cache line. The bucket_starts_
  // offset is cold (read once per in-range probe), and num_buckets is NOT
  // stored — it is derivable (see NumBuckets).
  struct HotIndex {
    double t0 = 0.0;         // First event time of the slot.
    double inv_width = 0.0;  // num_buckets / (t_last - t0); 0 if zero span.
    double last = 0.0;       // Last event time of the slot.
  };

  /// Bucket count of a slot with `n` events (n > 0): one bucket when all
  /// events share a timestamp (inv_width == 0), ceil(n / kEventsPerBucket)
  /// otherwise. Matches what IndexSlot built, so it need not be stored.
  static size_t NumBuckets(size_t n, double inv_width) {
    return inv_width == 0.0 ? 1
                            : (n + kEventsPerBucket - 1) / kEventsPerBucket;
  }

  /// Clamped bucket estimate from the scaled probe offset `x`; safe for
  /// negative, oversized, and NaN x (NaN arises from +inf probes against
  /// zero-span slots, where the single bucket 0 is always correct).
  static size_t BucketEstimate(double x, size_t nb) {
    if (!(x > 0.0)) return 0;
    if (x >= static_cast<double>(nb)) return nb - 1;
    return static_cast<size_t>(x);
  }

  std::vector<double> times_;     // CSR values: all timestamps, slot-major.
  std::vector<uint64_t> offsets_; // CSR row pointers, size 2*num_edges + 1.
  std::vector<HotIndex> hot_index_;     // Per slot (hot probe state).
  std::vector<uint32_t> first_bucket_;  // Per slot: start into bucket_starts_.
  std::vector<uint32_t> bucket_starts_; // Concatenated per-slot boundaries.
};

/// Fused static count (Thm 4.2) over a frozen store: one non-virtual,
/// cache-resident pass over the boundary, chunked through the prefetch-
/// pipelined CountUpToSlots. Bit-identical to the EdgeCountStore overload
/// in region_count.h (counts are integer-valued doubles, so the sum is
/// order-independent-exact).
double EvaluateStaticCount(const FrozenTrackingForm& store,
                           const std::vector<BoundaryEdge>& boundary,
                           double t);

/// Fused transient count (Thm 4.3) over a frozen store.
double EvaluateTransientCount(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              double t0, double t1);

/// Batch static-count kernel: evaluates the boundary at `count` query times
/// in ASCENDING order, writing out[k] = static count at times[k]. One merge
/// pass per (edge, direction) — each slot's event array is walked once for
/// the whole series instead of `count` independent searches. Exactly equals
/// calling EvaluateStaticCount per time (integer arithmetic, no rounding).
void EvaluateStaticCountBatch(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              const double* times, size_t count, double* out);

/// Batch transient-count kernel: out[k] = net change over (t0, times[k]]
/// for ASCENDING times.
void EvaluateTransientCountBatch(const FrozenTrackingForm& store,
                                 const std::vector<BoundaryEdge>& boundary,
                                 double t0, const double* times, size_t count,
                                 double* out);

}  // namespace innet::forms

#endif  // INNET_FORMS_FROZEN_TRACKING_FORM_H_
