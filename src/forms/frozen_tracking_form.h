// Frozen (read-optimized) tracking forms: the CSR counterpart of
// TrackingForm for the serving hot path.
//
// TrackingForm stores one std::vector<double> per (edge, direction) — ideal
// for append-order ingestion, hostile to query scans: every CountUpTo pays
// a virtual call, two pointer dereferences, and a full binary search over a
// heap block that shares no cache lines with its neighbours. Freezing
// rewrites the store into
//
//   - ONE contiguous timestamp array (`times_`, CSR values) with
//     per-(edge, direction) offsets (`offsets_`, CSR row pointers), and
//   - an epoch-bucketed PREFIX-COUNT index: each slot's event span is cut
//     into fixed-width time buckets (~kEventsPerBucket events each) and the
//     cumulative event count at every bucket boundary is precomputed, so a
//     lookup is one O(1) bucket computation plus a short scan inside the
//     bucket instead of a log2(n) pointer chase.
//
// Counts are EXACTLY those of the source TrackingForm — integer-valued
// doubles, so every evaluation over a frozen store is bit-identical to the
// virtual path (tests/frozen_form_test.cc pins this). The frozen store is
// immutable: all reads are pure const and race-free across threads.
//
// The free-function kernels at the bottom are the devirtualized fast paths
// used by the query processors and runtime::BatchQueryEngine whenever the
// store they were handed is (dynamically) a FrozenTrackingForm; see
// docs/PERFORMANCE.md for layout diagrams and measured speedups.
#ifndef INNET_FORMS_FROZEN_TRACKING_FORM_H_
#define INNET_FORMS_FROZEN_TRACKING_FORM_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "forms/edge_count_store.h"
#include "forms/region_count.h"
#include "forms/tracking_form.h"
#include "graph/planar_graph.h"

namespace innet::forms {

/// Immutable CSR tracking store with a bucketed prefix-count time index.
/// Build with TrackingForm::Freeze() (or the constructor) after ingestion
/// has stopped.
/// One epoch's worth of new crossing events in slot-major CSR layout:
/// `times[offsets[s] .. offsets[s+1])` are the sorted-ascending new
/// timestamps for slot s (see FrozenTrackingForm::Slot). A slot with an
/// empty span is CLEAN — the incremental constructor reuses its previous
/// CSR range and bucket index verbatim. Built by runtime::IngestPipeline's
/// scatter→sort pass; kept per-epoch so the delta stays proportional to
/// the epoch's event count, not the store size.
struct EpochDelta {
  std::vector<double> times;
  std::vector<uint64_t> offsets;  // num_slots + 1 row pointers.

  size_t NumSlots() const { return offsets.empty() ? 0 : offsets.size() - 1; }
  size_t TotalEvents() const { return times.size(); }
};

class FrozenTrackingForm : public EdgeCountStore {
 public:
  /// Target events per time bucket; the per-slot bucket count is
  /// ceil(n / kEventsPerBucket), so the index costs ~1/8 uint32 per stored
  /// timestamp.
  static constexpr size_t kEventsPerBucket = 8;

  explicit FrozenTrackingForm(const TrackingForm& source);

  /// Rehydrates a frozen store from its persisted CSR arrays (snapshot
  /// load, io::LoadFrozenSnapshot). `offsets` must be monotone row pointers
  /// over an even slot count with offsets.back() == times.size(), and every
  /// slot's span must be sorted ascending — CHECK-enforced, so loaders
  /// validate before constructing. The bucket index is derived state and is
  /// rebuilt deterministically, making the result bit-identical to the
  /// store the arrays were copied out of.
  FrozenTrackingForm(std::vector<double> times,
                     std::vector<uint64_t> offsets);

  /// Incremental re-freeze: `previous` extended by one epoch of new events.
  /// Clean slots (no delta events) reuse the previous CSR range and bucket
  /// index with a bulk copy; dirty slots merge the old span with the delta
  /// span (a straight append when the epoch starts at or after the slot's
  /// last stored timestamp) and rebuild only their own index. The result is
  /// bit-identical to a from-scratch Freeze() of the combined stream
  /// (tests/ingest_pipeline_test.cc pins this).
  FrozenTrackingForm(const FrozenTrackingForm& previous,
                     const EpochDelta& delta);

  size_t num_edges() const { return offsets_.size() / 2; }
  size_t TotalEvents() const { return times_.size(); }

  /// CSR slot of (road, direction). Forward and backward sequences of one
  /// road are adjacent, so both directions of a boundary edge share cache
  /// lines.
  static size_t Slot(graph::EdgeId road, bool forward) {
    return 2 * static_cast<size_t>(road) + (forward ? 0 : 1);
  }

  /// Events recorded on `road` in the given direction.
  size_t EventCount(graph::EdgeId road, bool forward) const {
    size_t s = Slot(road, forward);
    return offsets_[s + 1] - offsets_[s];
  }

  /// Begin/end of one slot's sorted timestamp span.
  const double* SlotBegin(size_t slot) const {
    return times_.data() + offsets_[slot];
  }
  const double* SlotEnd(size_t slot) const {
    return times_.data() + offsets_[slot + 1];
  }

  /// Devirtualized count lookup: events on `slot` with timestamp <= t.
  /// O(1) bucket lookup plus a bounded scan; exact (bit-identical to the
  /// source TrackingForm's binary search).
  size_t CountUpToSlot(size_t slot, double t) const {
    size_t begin = offsets_[slot];
    size_t n = offsets_[slot + 1] - begin;
    if (n == 0) return 0;
    const double* seq = times_.data() + begin;
    if (t < seq[0]) return 0;
    if (t >= seq[n - 1]) return n;
    // Bucket bracket. The floating-point bucket computation may land one
    // bucket off at exact boundaries; the two guard loops below restore the
    // exact bracket in at most one bucket's worth of steps.
    const BucketIndex& ix = index_[slot];
    size_t b = static_cast<size_t>((t - ix.t0) * ix.inv_width);
    if (b >= ix.num_buckets) b = ix.num_buckets - 1;
    const uint32_t* starts = bucket_starts_.data() + ix.first_bucket;
    size_t lo = starts[b];
    size_t hi = starts[b + 1];
    while (lo > 0 && seq[lo - 1] > t) --lo;
    while (hi < n && seq[hi] <= t) ++hi;
    // Within the bracket every index < lo holds a value <= t and every
    // index >= hi a value > t; resolve the remainder with a short search.
    const double* it = std::upper_bound(seq + lo, seq + hi, t);
    return static_cast<size_t>(it - seq);
  }

  /// Devirtualized per-edge count (the non-virtual twin of
  /// EdgeCountStore::CountUpTo).
  double CountUpToFast(graph::EdgeId road, bool forward, double t) const {
    return static_cast<double>(CountUpToSlot(Slot(road, forward), t));
  }

  // EdgeCountStore. Provenance and storage report the PERSISTED form — the
  // timestamp sequences, identical to the source TrackingForm — so frozen
  // and unfrozen deployments explain and account identically (the bucket
  // index is derived state; IndexBytes() reports its in-memory overhead).
  StoreProvenance Provenance() const override {
    return {"exact", 0, TotalEvents()};
  }
  double CountUpTo(graph::EdgeId road, bool forward,
                   double t) const override {
    return CountUpToFast(road, forward, t);
  }
  size_t StorageBytes() const override {
    return TotalEvents() * sizeof(double);
  }
  size_t StorageBytesForEdge(graph::EdgeId road) const override {
    return (EventCount(road, true) + EventCount(road, false)) *
           sizeof(double);
  }

  /// In-memory footprint of the derived prefix-count index.
  size_t IndexBytes() const {
    return bucket_starts_.size() * sizeof(uint32_t) +
           index_.size() * sizeof(BucketIndex);
  }

  /// The persisted representation (snapshot save): raw CSR arrays. The
  /// bucket index is intentionally NOT exposed — it is derived state,
  /// rebuilt on load.
  const std::vector<double>& RawTimes() const { return times_; }
  const std::vector<uint64_t>& RawOffsets() const { return offsets_; }

 private:
  /// Builds the bucketed prefix-count index for one slot whose timestamp
  /// span is already in place; appends to bucket_starts_, so callers must
  /// index slots in ascending order.
  void IndexSlot(size_t slot);

  struct BucketIndex {
    double t0 = 0.0;         // First event time of the slot.
    double inv_width = 0.0;  // 1 / bucket width (0 for empty slots).
    uint32_t first_bucket = 0;  // Start into bucket_starts_.
    uint32_t num_buckets = 0;
  };

  std::vector<double> times_;     // CSR values: all timestamps, slot-major.
  std::vector<uint64_t> offsets_; // CSR row pointers, size 2*num_edges + 1.
  std::vector<BucketIndex> index_;      // Per slot.
  std::vector<uint32_t> bucket_starts_; // Concatenated per-slot boundaries.
};

/// Fused static count (Thm 4.2) over a frozen store: one non-virtual,
/// cache-resident pass over the boundary. Bit-identical to the
/// EdgeCountStore overload in region_count.h.
double EvaluateStaticCount(const FrozenTrackingForm& store,
                           const std::vector<BoundaryEdge>& boundary,
                           double t);

/// Fused transient count (Thm 4.3) over a frozen store.
double EvaluateTransientCount(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              double t0, double t1);

/// Batch static-count kernel: evaluates the boundary at `count` query times
/// in ASCENDING order, writing out[k] = static count at times[k]. One merge
/// pass per (edge, direction) — each slot's event array is walked once for
/// the whole series instead of `count` independent searches. Exactly equals
/// calling EvaluateStaticCount per time (integer arithmetic, no rounding).
void EvaluateStaticCountBatch(const FrozenTrackingForm& store,
                              const std::vector<BoundaryEdge>& boundary,
                              const double* times, size_t count, double* out);

/// Batch transient-count kernel: out[k] = net change over (t0, times[k]]
/// for ASCENDING times.
void EvaluateTransientCountBatch(const FrozenTrackingForm& store,
                                 const std::vector<BoundaryEdge>& boundary,
                                 double t0, const double* times, size_t count,
                                 double* out);

}  // namespace innet::forms

#endif  // INNET_FORMS_FROZEN_TRACKING_FORM_H_
