#include "forms/tracking_form.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::forms {

TrackingForm::TrackingForm(size_t num_edges)
    : forward_(num_edges), backward_(num_edges) {}

void TrackingForm::RecordTraversal(graph::EdgeId road, bool forward,
                                   double t) {
  INNET_DCHECK(road < forward_.size());
  std::vector<double>& seq = forward ? forward_[road] : backward_[road];
  INNET_DCHECK(seq.empty() || seq.back() <= t);
  seq.push_back(t);
}

size_t TrackingForm::TotalEvents() const {
  size_t total = 0;
  for (const auto& seq : forward_) total += seq.size();
  for (const auto& seq : backward_) total += seq.size();
  return total;
}

double TrackingForm::CountUpTo(graph::EdgeId road, bool forward,
                               double t) const {
  const std::vector<double>& seq = Sequence(road, forward);
  auto it = std::upper_bound(seq.begin(), seq.end(), t);
  return static_cast<double>(it - seq.begin());
}

size_t TrackingForm::StorageBytes() const {
  return TotalEvents() * sizeof(double);
}

size_t TrackingForm::StorageBytesForEdge(graph::EdgeId road) const {
  return (forward_[road].size() + backward_[road].size()) * sizeof(double);
}

}  // namespace innet::forms
