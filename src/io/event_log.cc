#include "io/event_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "faults/crash_points.h"
#include "util/logging.h"

namespace innet::io {

namespace {

// ---- Record framing -------------------------------------------------------
//
//   [u32 crc32c(payload)] [u32 payload_len] [payload]
//
// payload[0] is the record type; the body is little-endian host layout like
// every other artifact in io/. A reader that fails to parse a frame (short
// read, absurd length, CRC mismatch) treats everything from that byte on as
// a torn tail.

constexpr uint8_t kRecordSegmentHeader = 1;
constexpr uint8_t kRecordEvent = 2;
constexpr uint8_t kRecordCommit = 3;

constexpr uint64_t kSegmentMagic = 0x696e6e657457411ULL;  // "innetWA" + v1.

// Records are tiny (events: 14 bytes, commits: 33); anything near this cap
// is a corrupt length field, rejected before allocation.
constexpr uint32_t kMaxRecordBytes = 1u << 16;

constexpr size_t kFrameBytes = 2 * sizeof(uint32_t);

struct SegmentHeaderBody {
  uint64_t magic;
  uint64_t seq;
  uint64_t first_event_index;  // Event records in all prior segments.
};

struct EventBody {
  uint32_t edge;
  uint8_t forward;
  double time;
};

struct CommitBody {
  uint64_t epoch;
  uint64_t events_in_epoch;
  uint64_t total_events_after;
  uint64_t generation;
};

template <typename T>
size_t PackPayload(uint8_t type, const T& body, uint8_t* out) {
  out[0] = type;
  std::memcpy(out + 1, &body, sizeof(T));
  return 1 + sizeof(T);
}

template <typename T>
bool UnpackPayload(const uint8_t* payload, size_t len, T* body) {
  if (len != 1 + sizeof(T)) return false;
  std::memcpy(body, payload + 1, sizeof(T));
  return true;
}

std::string SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%08llu.seg",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

// RAII stdio handle (same idiom as serialize.cc).
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

util::Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return util::InternalError("cannot open dir for fsync: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::InternalError("fsync failed on dir: " + dir);
  return util::Status::Ok();
}

// Segment files under `dir`, sorted by sequence number.
struct SegmentFile {
  uint64_t seq = 0;
  std::string path;
};

util::StatusOr<std::vector<SegmentFile>> ListSegments(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return util::NotFoundError("cannot open log dir: " + dir);
  std::vector<SegmentFile> segments;
  while (struct dirent* entry = ::readdir(d)) {
    unsigned long long seq = 0;
    int consumed = 0;
    if (std::sscanf(entry->d_name, "wal-%8llu.seg%n", &seq, &consumed) == 1 &&
        entry->d_name[consumed] == '\0') {
      segments.push_back({seq, dir + "/" + entry->d_name});
    }
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const SegmentFile& a, const SegmentFile& b) {
              return a.seq < b.seq;
            });
  for (size_t i = 0; i < segments.size(); ++i) {
    if (segments[i].seq != i + 1) {
      return util::InvalidArgumentError(
          "missing or out-of-order WAL segment under " + dir + " (want seq " +
          std::to_string(i + 1) + ", found " +
          std::to_string(segments[i].seq) + ")");
    }
  }
  return segments;
}

// Outcome of scanning one frame.
enum class FrameResult { kOk, kEndOfFile, kTorn };

// Reads one frame at the current position. On kTorn the stream position is
// unspecified; callers stop consuming the segment.
FrameResult ReadFrame(std::FILE* f, std::vector<uint8_t>* payload) {
  uint32_t crc = 0;
  uint32_t len = 0;
  size_t got = std::fread(&crc, 1, sizeof(crc), f);
  if (got == 0) return FrameResult::kEndOfFile;
  if (got != sizeof(crc) ||
      std::fread(&len, 1, sizeof(len), f) != sizeof(len)) {
    return FrameResult::kTorn;
  }
  if (len == 0 || len > kMaxRecordBytes) return FrameResult::kTorn;
  payload->resize(len);
  if (std::fread(payload->data(), 1, len, f) != len) {
    return FrameResult::kTorn;
  }
  if (Crc32c(payload->data(), len) != crc) return FrameResult::kTorn;
  return FrameResult::kOk;
}

// Full scan state shared by the tolerant reader and the writer's resume
// path: the durable prefix plus where it physically ends.
struct LogScan {
  ReplayedEventLog replay;
  bool any_commit = false;
  uint64_t last_commit_seq = 0;     // Segment holding the last commit.
  uint64_t last_commit_end = 0;     // Byte offset just past that commit.
  uint64_t total_event_records = 0; // Including uncommitted ones.
  std::vector<SegmentFile> segments;
};

util::StatusOr<LogScan> ScanLog(const std::string& dir,
                                uint64_t skip_events) {
  util::StatusOr<std::vector<SegmentFile>> segments = ListSegments(dir);
  if (!segments.ok()) return segments.status();

  LogScan scan;
  scan.segments = *segments;
  std::vector<mobility::CrossingEvent> pending;  // Current (open) epoch.
  uint64_t skipped = 0;
  std::vector<uint8_t> payload;

  for (size_t i = 0; i < scan.segments.size(); ++i) {
    const SegmentFile& seg = scan.segments[i];
    bool last_segment = i + 1 == scan.segments.size();
    File file(std::fopen(seg.path.c_str(), "rb"));
    if (file == nullptr) {
      return util::NotFoundError("cannot open segment: " + seg.path);
    }
    std::FILE* f = file.get();

    bool saw_header = false;
    for (;;) {
      long before = std::ftell(f);
      FrameResult frame = ReadFrame(f, &payload);
      if (frame == FrameResult::kEndOfFile) break;
      if (frame == FrameResult::kTorn) {
        std::fseek(f, 0, SEEK_END);
        uint64_t torn = static_cast<uint64_t>(std::ftell(f) - before);
        if (!last_segment) {
          return util::InvalidArgumentError(
              "corrupt record mid-log in " + seg.path + " at offset " +
              std::to_string(before) +
              " (only the final segment may have a torn tail)");
        }
        scan.replay.torn_bytes = torn;
        INNET_LOG(WARN) << "WAL torn tail: discarding " << torn
                        << " unparseable bytes of " << seg.path
                        << " at offset " << before
                        << " (recovered through epoch "
                        << scan.replay.durable_epoch << ")";
        break;
      }
      uint8_t type = payload[0];
      if (!saw_header) {
        SegmentHeaderBody header;
        if (type != kRecordSegmentHeader ||
            !UnpackPayload(payload.data(), payload.size(), &header) ||
            header.magic != kSegmentMagic || header.seq != seg.seq ||
            header.first_event_index != scan.total_event_records) {
          return util::InvalidArgumentError("bad segment header: " +
                                            seg.path);
        }
        saw_header = true;
        continue;
      }
      if (type == kRecordEvent) {
        EventBody body;
        if (!UnpackPayload(payload.data(), payload.size(), &body)) {
          return util::InvalidArgumentError("malformed event record in " +
                                            seg.path);
        }
        pending.push_back({static_cast<graph::EdgeId>(body.edge),
                           body.forward != 0, body.time});
        ++scan.total_event_records;
      } else if (type == kRecordCommit) {
        CommitBody body;
        if (!UnpackPayload(payload.data(), payload.size(), &body)) {
          return util::InvalidArgumentError("malformed commit record in " +
                                            seg.path);
        }
        if (body.events_in_epoch != pending.size() ||
            body.total_events_after != scan.total_event_records ||
            body.epoch <= scan.replay.durable_epoch) {
          return util::InvalidArgumentError(
              "inconsistent commit record in " + seg.path + " (epoch " +
              std::to_string(body.epoch) + ")");
        }
        for (const mobility::CrossingEvent& e : pending) {
          if (skipped < skip_events) {
            ++skipped;
          } else {
            scan.replay.events.push_back(e);
          }
        }
        pending.clear();
        scan.replay.commits.push_back(
            {body.epoch, body.events_in_epoch, body.generation});
        scan.replay.durable_events = body.total_events_after;
        scan.replay.durable_epoch = body.epoch;
        scan.replay.generation = body.generation;
        scan.any_commit = true;
        scan.last_commit_seq = seg.seq;
        scan.last_commit_end = static_cast<uint64_t>(std::ftell(f));
      } else {
        return util::InvalidArgumentError(
            "unknown record type " + std::to_string(type) + " in " +
            seg.path);
      }
    }
  }

  scan.replay.discarded_events = pending.size();
  if (!pending.empty()) {
    INNET_LOG(WARN) << "WAL: discarding " << pending.size()
                    << " uncommitted event records past epoch "
                    << scan.replay.durable_epoch
                    << " (their epoch never committed)";
  }
  if (skip_events > scan.replay.durable_events) {
    return util::InvalidArgumentError(
        "snapshot covers " + std::to_string(skip_events) +
        " events but the WAL only holds " +
        std::to_string(scan.replay.durable_events) + " durable ones");
  }
  return scan;
}

}  // namespace

// CRC-32C, reflected polynomial 0x82f63b78, one 256-entry table. The
// Castagnoli polynomial detects all torn-tail burst errors this framing
// cares about and matches what hardware CRC32 instructions compute, should
// a future sweep vectorize this.
uint32_t Crc32cExtend(uint32_t state, const void* data, size_t bytes) {
  static const uint32_t* const kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return table;
  }();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    state = kTable[(state ^ p[i]) & 0xffu] ^ (state >> 8);
  }
  return state;
}

uint32_t Crc32c(const void* data, size_t bytes) {
  return Crc32cFinish(Crc32cExtend(kCrc32cInit, data, bytes));
}

util::StatusOr<ReplayedEventLog> ReplayEventLog(const std::string& dir,
                                                uint64_t skip_events) {
  util::StatusOr<LogScan> scan = ScanLog(dir, skip_events);
  if (!scan.ok()) return scan.status();
  return std::move(scan->replay);
}

EventLogWriter::EventLogWriter(std::string dir, EventLogOptions options)
    : dir_(std::move(dir)), options_(options) {
  obs::MetricsRegistry& registry =
      options_.registry ? *options_.registry : obs::MetricsRegistry::Global();
  bytes_counter_ = &registry.GetCounter(
      "innet_wal_bytes_total", "Bytes appended to write-ahead log segments");
  commits_counter_ = &registry.GetCounter(
      "innet_wal_epochs_committed", "Epoch commit records fsync'd to the WAL");
  fsync_micros_ = &registry.GetHistogram(
      "innet_wal_fsync_micros", obs::Histogram::DurationBoundsMicros(),
      "Wall time of one epoch-commit flush+fsync");
}

EventLogWriter::~EventLogWriter() {
  if (segment_ != nullptr) std::fclose(segment_);
}

util::StatusOr<std::unique_ptr<EventLogWriter>> EventLogWriter::Open(
    const std::string& dir, EventLogOptions options) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return util::InvalidArgumentError("cannot create WAL dir: " + dir);
  }
  util::StatusOr<LogScan> scan = ScanLog(dir, 0);
  if (!scan.ok()) return scan.status();

  std::unique_ptr<EventLogWriter> writer(
      new EventLogWriter(dir, options));

  if (!scan->any_commit) {
    // Nothing durable: whatever segments exist hold only a lost in-flight
    // epoch. Start over from segment 1.
    for (const SegmentFile& seg : scan->segments) {
      std::remove(seg.path.c_str());
    }
    util::Status status = writer->OpenSegment(1, 0);
    if (!status.ok()) return status;
    return writer;
  }

  // Durable prefix ends inside segment last_commit_seq at last_commit_end:
  // drop later segments wholesale, truncate the tail of that one, and
  // resume appending to it. New epochs can then never inherit a dead
  // epoch's events.
  for (const SegmentFile& seg : scan->segments) {
    if (seg.seq > scan->last_commit_seq) std::remove(seg.path.c_str());
  }
  std::string resume_path = SegmentPath(dir, scan->last_commit_seq);
  if (::truncate(resume_path.c_str(),
                 static_cast<off_t>(scan->last_commit_end)) != 0) {
    return util::InternalError("cannot truncate torn WAL tail: " +
                               resume_path);
  }
  writer->segment_ = std::fopen(resume_path.c_str(), "ab");
  if (writer->segment_ == nullptr) {
    return util::InternalError("cannot reopen WAL segment: " + resume_path);
  }
  writer->segment_seq_ = scan->last_commit_seq;
  writer->segment_bytes_ = scan->last_commit_end;
  writer->durable_events_ = scan->replay.durable_events;
  writer->durable_epoch_ = scan->replay.durable_epoch;
  if (scan->replay.discarded_events > 0 || scan->replay.torn_bytes > 0) {
    INNET_LOG(WARN) << "WAL resume: truncated "
                    << scan->replay.discarded_events
                    << " uncommitted events and "
                    << scan->replay.torn_bytes << " torn bytes from " << dir;
  }
  return writer;
}

util::Status EventLogWriter::OpenSegment(uint64_t seq,
                                         uint64_t start_offset) {
  std::string path = SegmentPath(dir_, seq);
  segment_ = std::fopen(path.c_str(), "wb");
  if (segment_ == nullptr) {
    return util::InternalError("cannot create WAL segment: " + path);
  }
  segment_seq_ = seq;
  segment_bytes_ = 0;
  SegmentHeaderBody header{kSegmentMagic, seq, start_offset};
  uint8_t payload[1 + sizeof(header)];
  size_t len = PackPayload(kRecordSegmentHeader, header, payload);
  util::Status status = WriteRecord(payload, len);
  if (!status.ok()) return status;
  // Make the new directory entry durable so recovery after a crash sees
  // the segment chain it is about to be part of.
  return FsyncDir(dir_);
}

util::Status EventLogWriter::WriteRecord(const void* payload, size_t bytes) {
  uint32_t crc = Crc32c(payload, bytes);
  uint32_t len = static_cast<uint32_t>(bytes);
  bool ok = std::fwrite(&crc, 1, sizeof(crc), segment_) == sizeof(crc) &&
            std::fwrite(&len, 1, sizeof(len), segment_) == sizeof(len) &&
            std::fwrite(payload, 1, bytes, segment_) == bytes;
  if (!ok) {
    return util::InternalError("short write on WAL segment " +
                               SegmentPath(dir_, segment_seq_));
  }
  uint64_t total = kFrameBytes + bytes;
  segment_bytes_ += total;
  bytes_written_ += total;
  bytes_counter_->Increment(total);
  return util::Status::Ok();
}

util::Status EventLogWriter::Append(const mobility::CrossingEvent& event) {
  INNET_DCHECK(segment_ != nullptr);
  EventBody body{static_cast<uint32_t>(event.edge),
                 static_cast<uint8_t>(event.forward ? 1 : 0), event.time};
  uint8_t payload[1 + sizeof(body)];
  size_t len = PackPayload(kRecordEvent, body, payload);
  util::Status status = WriteRecord(payload, len);
  if (!status.ok()) return status;
  ++pending_events_;
  INNET_CRASH_POINT("wal:mid-segment");
  return util::Status::Ok();
}

util::Status EventLogWriter::CommitEpoch(uint64_t epoch,
                                         uint64_t generation) {
  INNET_DCHECK(segment_ != nullptr);
  INNET_CHECK(epoch > durable_epoch_);
  auto start = std::chrono::steady_clock::now();
  CommitBody body{epoch, pending_events_, durable_events_ + pending_events_,
                  generation};
  uint8_t payload[1 + sizeof(body)];
  size_t len = PackPayload(kRecordCommit, body, payload);
  util::Status status = WriteRecord(payload, len);
  if (!status.ok()) return status;
  if (std::fflush(segment_) != 0) {
    return util::InternalError("fflush failed on WAL segment");
  }
  INNET_CRASH_POINT("wal:pre-fsync");
  if (options_.fsync_on_commit &&
      ::fsync(::fileno(segment_)) != 0) {
    return util::InternalError("fsync failed on WAL segment");
  }
  durable_events_ += pending_events_;
  pending_events_ = 0;
  durable_epoch_ = epoch;
  commits_counter_->Increment();
  fsync_micros_->Observe(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return RotateIfNeeded();
}

util::Status EventLogWriter::RotateIfNeeded() {
  // Rotation happens only on epoch boundaries, so every sealed segment ends
  // with a commit record and the resume truncation point is always inside
  // the newest segment.
  if (segment_bytes_ < options_.segment_bytes) return util::Status::Ok();
  std::fclose(segment_);
  segment_ = nullptr;
  return OpenSegment(segment_seq_ + 1, durable_events_);
}

}  // namespace innet::io
