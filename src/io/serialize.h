// Binary persistence for the dataset artifacts: road networks and
// trajectory sets. Errors are reported through util::Status (no exceptions,
// no aborts on corrupt files).
//
// Format: little-endian host layout with a magic tag and version per file
// type; loaders validate counts, id ranges, duplicate edges, monotone
// timestamps, and connectivity before handing data to constructors that
// enforce invariants with CHECKs.
#ifndef INNET_IO_SERIALIZE_H_
#define INNET_IO_SERIALIZE_H_

#include <string>
#include <vector>

#include "graph/planar_graph.h"
#include "mobility/trajectory.h"
#include "util/status.h"

namespace innet::io {

/// Writes the mobility graph (positions + edges) to `path`.
util::Status SaveRoadNetwork(const graph::PlanarGraph& graph,
                             const std::string& path);

/// Reads a mobility graph. Fails with InvalidArgument on malformed content
/// (bad magic, out-of-range ids, duplicate or self-loop edges, disconnected
/// graphs). The file is trusted to contain a valid planar embedding; that
/// property is re-checked structurally (Euler's formula) on construction.
util::StatusOr<graph::PlanarGraph> LoadRoadNetwork(const std::string& path);

/// Writes a trajectory set to `path`.
util::Status SaveTrajectories(
    const std::vector<mobility::Trajectory>& trajectories,
    const std::string& path);

/// Reads a trajectory set, validating monotone timestamps and (when
/// `graph` is non-null) adjacency of consecutive nodes.
util::StatusOr<std::vector<mobility::Trajectory>> LoadTrajectories(
    const std::string& path, const graph::PlanarGraph* graph = nullptr);

/// Text import for external road data (e.g., OSM extracts). Format, one
/// record per line, comma separated, `#` comments and blank lines ignored:
///   node,<id>,<x>,<y>
///   edge,<node-id>,<node-id>
/// Node ids must be dense 0..n-1 (any order). The geometry need NOT be
/// planar: crossings are resolved via graph::Planarize (§4.2's flyover /
/// underpass handling), and the report of inserted junctions is returned
/// alongside the graph.
struct CsvImportResult {
  graph::PlanarGraph graph;
  size_t inserted_crossings = 0;
};
util::StatusOr<CsvImportResult> ImportRoadNetworkCsv(const std::string& path);

/// Text export matching ImportRoadNetworkCsv's format.
util::Status ExportRoadNetworkCsv(const graph::PlanarGraph& graph,
                                  const std::string& path);

}  // namespace innet::io

#endif  // INNET_IO_SERIALIZE_H_
