// Binary persistence for the dataset artifacts: road networks and
// trajectory sets. Errors are reported through util::Status (no exceptions,
// no aborts on corrupt files).
//
// Format: little-endian host layout with a magic tag and version per file
// type; loaders validate counts, id ranges, duplicate edges, monotone
// timestamps, and connectivity before handing data to constructors that
// enforce invariants with CHECKs.
#ifndef INNET_IO_SERIALIZE_H_
#define INNET_IO_SERIALIZE_H_

#include <string>
#include <vector>

#include "forms/frozen_tracking_form.h"
#include "graph/planar_graph.h"
#include "mobility/trajectory.h"
#include "util/status.h"

namespace innet::io {

/// Writes the mobility graph (positions + edges) to `path`.
util::Status SaveRoadNetwork(const graph::PlanarGraph& graph,
                             const std::string& path);

/// Reads a mobility graph. Fails with InvalidArgument on malformed content
/// (bad magic, out-of-range ids, duplicate or self-loop edges, disconnected
/// graphs). The file is trusted to contain a valid planar embedding; that
/// property is re-checked structurally (Euler's formula) on construction.
util::StatusOr<graph::PlanarGraph> LoadRoadNetwork(const std::string& path);

/// Writes a trajectory set to `path`.
util::Status SaveTrajectories(
    const std::vector<mobility::Trajectory>& trajectories,
    const std::string& path);

/// Reads a trajectory set, validating monotone timestamps and (when
/// `graph` is non-null) adjacency of consecutive nodes.
util::StatusOr<std::vector<mobility::Trajectory>> LoadTrajectories(
    const std::string& path, const graph::PlanarGraph* graph = nullptr);

/// Text import for external road data (e.g., OSM extracts). Format, one
/// record per line, comma separated, `#` comments and blank lines ignored:
///   node,<id>,<x>,<y>
///   edge,<node-id>,<node-id>
/// Node ids must be dense 0..n-1 (any order). The geometry need NOT be
/// planar: crossings are resolved via graph::Planarize (§4.2's flyover /
/// underpass handling), and the report of inserted junctions is returned
/// alongside the graph.
struct CsvImportResult {
  graph::PlanarGraph graph;
  size_t inserted_crossings = 0;
};
util::StatusOr<CsvImportResult> ImportRoadNetworkCsv(const std::string& path);

/// Text export matching ImportRoadNetworkCsv's format.
util::Status ExportRoadNetworkCsv(const graph::PlanarGraph& graph,
                                  const std::string& path);

/// Positions a frozen-store snapshot against the write-ahead log it was cut
/// from (io/event_log.h): recovery loads the snapshot and replays only the
/// WAL tail past `covered_events` instead of the full stream.
struct FrozenSnapshotMeta {
  uint64_t generation = 0;      ///< Store generation the snapshot captured.
  uint64_t covered_epoch = 0;   ///< Last WAL epoch folded into the store.
  uint64_t covered_events = 0;  ///< Durable WAL events folded in.
};

/// Writes `store` (its persisted CSR form — the slot-major timestamp array
/// and row pointers; the bucket index is derived and rebuilt on load) plus
/// `meta`, CRC-sealed, to `path` atomically: the bytes land in `path`.tmp,
/// are fsync'd, and are renamed over `path` only when complete — a crash
/// mid-snapshot (crash point "snapshot:post-header") leaves at worst a
/// stale .tmp that loaders never look at.
util::Status SaveFrozenSnapshot(const forms::FrozenTrackingForm& store,
                                const FrozenSnapshotMeta& meta,
                                const std::string& path);

struct LoadedFrozenSnapshot {
  forms::FrozenTrackingForm store;
  FrozenSnapshotMeta meta;
};

/// Reads a snapshot back, validating the CRC, the header counts, and every
/// CSR invariant (monotone row pointers, per-slot sorted timestamps)
/// BEFORE constructing, so a corrupt or truncated file fails with
/// InvalidArgument instead of aborting. The rebuilt store is bit-identical
/// to the one that was saved.
util::StatusOr<LoadedFrozenSnapshot> LoadFrozenSnapshot(
    const std::string& path);

}  // namespace innet::io

#endif  // INNET_IO_SERIALIZE_H_
