// Segmented, checksummed write-ahead log for crossing events
// (docs/FAULTS.md §"Process & storage faults").
//
// The live ingest path (runtime::IngestPipeline) buffers events in memory
// and publishes a new frozen store per epoch; without a log a process
// crash loses the entire stream. The WAL makes epochs durable with
// group-commit semantics:
//
//   Append(event)        frames one record into the current segment's
//                        stdio buffer — no syscall per event
//   CommitEpoch(...)     appends an epoch-commit record, flushes, fsyncs
//
// An event is DURABLE iff the commit record of its epoch survived. The
// reader enforces exactly that: records after the last valid commit (a
// torn epoch, a half-written record, a flipped bit caught by the CRC) are
// discarded with a WARN — never a crash, never silently attributed to a
// later epoch. Reopening a log for writing truncates that same tail so new
// epochs can never be contaminated by a predecessor's in-flight events.
//
// On-disk layout: numbered segment files `wal-%08llu.seg`, each starting
// with a header record, rotated once a segment exceeds
// EventLogOptions::segment_bytes. Every record is CRC-framed
// ([crc32][len][payload]); the format constants live in event_log.cc.
// The compact self-indexed trip structures of Brisaboa et al. motivate
// keeping the REPLAY representation separate: the log stores raw events,
// snapshots (io/serialize.h, SaveFrozenSnapshot) store the compacted CSR
// form, and recovery is snapshot-load + short tail replay instead of
// full-stream replay.
#ifndef INNET_IO_EVENT_LOG_H_
#define INNET_IO_EVENT_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mobility/trajectory.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace innet::io {

/// CRC-32C (Castagnoli, software table) over `bytes`. Exposed for the
/// snapshot writer and for tests that hand-corrupt files.
uint32_t Crc32c(const void* data, size_t bytes);

/// Streaming form for multi-chunk payloads (the snapshot writer seals
/// header + arrays without buffering them twice):
///   uint32_t s = kCrc32cInit;
///   s = Crc32cExtend(s, a, na); s = Crc32cExtend(s, b, nb);
///   uint32_t crc = Crc32cFinish(s);
inline constexpr uint32_t kCrc32cInit = 0xffffffffu;
uint32_t Crc32cExtend(uint32_t state, const void* data, size_t bytes);
inline uint32_t Crc32cFinish(uint32_t state) { return state ^ 0xffffffffu; }

struct EventLogOptions {
  /// Rotate to a new segment once the current one exceeds this many bytes.
  size_t segment_bytes = 8u << 20;
  /// fsync on every CommitEpoch. Turning this off trades the durability
  /// guarantee for throughput (data survives process death but not OS
  /// death); the torn-tail tolerance is unaffected.
  bool fsync_on_commit = true;
  /// Metrics sink; nullptr = the process-global registry. Exposes
  /// innet_wal_bytes_total, innet_wal_fsync_micros,
  /// innet_wal_epochs_committed.
  obs::MetricsRegistry* registry = nullptr;
};

/// One epoch-commit marker as seen by the reader, in log order.
struct EventLogCommit {
  uint64_t epoch = 0;        ///< Writer-assigned epoch id (monotone).
  uint64_t events = 0;       ///< Event records in this epoch.
  uint64_t generation = 0;   ///< Store generation the epoch published.
};

/// Result of a tolerant replay: everything durable, nothing torn.
struct ReplayedEventLog {
  /// Committed events in log order, AFTER skipping `skip_events` (the
  /// snapshot-covered prefix). Log order is per-epoch shard-major — NOT
  /// globally time-sorted; consumers scatter-sort per slot exactly like
  /// the ingest freezer.
  std::vector<mobility::CrossingEvent> events;
  std::vector<EventLogCommit> commits;  ///< All valid commits, in order.
  uint64_t durable_events = 0;    ///< Committed event records in the log.
  uint64_t durable_epoch = 0;     ///< Last committed epoch id (0 = none).
  uint64_t generation = 0;        ///< Generation of the last commit.
  uint64_t discarded_events = 0;  ///< Whole records past the last commit.
  uint64_t torn_bytes = 0;        ///< Unparseable tail bytes discarded.
};

/// Reads every segment of the log under `dir`, validating CRCs. A torn or
/// corrupt tail (half-written record, flipped bits) in the LAST segment
/// stops the scan at the last whole record with a WARN; the same damage in
/// an earlier segment is real corruption and fails with InvalidArgument.
/// `skip_events` committed event records are decoded but not materialized
/// (snapshot catch-up). Fails if skip_events exceeds the durable count.
util::StatusOr<ReplayedEventLog> ReplayEventLog(const std::string& dir,
                                                uint64_t skip_events = 0);

/// Append-side of the log. NOT thread-safe: the ingest freezer thread is
/// the only writer (Push() buffers in memory; the WAL sees events only at
/// epoch close).
class EventLogWriter {
 public:
  /// Opens `dir` (created if missing) for appending. An existing log is
  /// scanned first: the torn/uncommitted tail is truncated away and the
  /// writer resumes after the last commit, so recovery + resume round-trips
  /// (tests/recovery_test.cc). Fails only on I/O errors or mid-log
  /// corruption, same contract as ReplayEventLog.
  static util::StatusOr<std::unique_ptr<EventLogWriter>> Open(
      const std::string& dir, EventLogOptions options = {});

  ~EventLogWriter();
  EventLogWriter(const EventLogWriter&) = delete;
  EventLogWriter& operator=(const EventLogWriter&) = delete;

  /// Frames one event record into the current segment buffer. Crash point
  /// "wal:mid-segment" fires after the record is written.
  util::Status Append(const mobility::CrossingEvent& event);

  /// Seals the epoch: commit record + flush + (optionally) fsync, rotating
  /// segments afterwards when the size threshold is crossed. `generation`
  /// is the store generation this epoch publishes (recovery restores it).
  /// Crash point "wal:pre-fsync" fires between flush and fsync.
  util::Status CommitEpoch(uint64_t epoch, uint64_t generation);

  /// Events covered by committed epochs (durable once fsync returned).
  uint64_t DurableEvents() const { return durable_events_; }
  /// Events appended since the last commit (volatile until committed).
  uint64_t PendingEvents() const { return pending_events_; }
  /// Last committed epoch id (0 = none).
  uint64_t DurableEpoch() const { return durable_epoch_; }
  /// Bytes appended to segments by this writer instance.
  uint64_t BytesWritten() const { return bytes_written_; }

 private:
  EventLogWriter(std::string dir, EventLogOptions options);

  util::Status OpenSegment(uint64_t seq, uint64_t start_offset);
  util::Status RotateIfNeeded();
  util::Status WriteRecord(const void* payload, size_t bytes);

  std::string dir_;
  EventLogOptions options_;
  std::FILE* segment_ = nullptr;
  uint64_t segment_seq_ = 0;
  uint64_t segment_bytes_ = 0;
  uint64_t durable_events_ = 0;
  uint64_t pending_events_ = 0;
  uint64_t durable_epoch_ = 0;
  uint64_t bytes_written_ = 0;

  obs::Counter* bytes_counter_;
  obs::Counter* commits_counter_;
  obs::Histogram* fsync_micros_;
};

}  // namespace innet::io

#endif  // INNET_IO_EVENT_LOG_H_
