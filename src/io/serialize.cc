#include "io/serialize.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>

#include "faults/crash_points.h"
#include "graph/connectivity.h"
#include "graph/planarize.h"
#include "graph/weighted_adjacency.h"
#include "io/event_log.h"

namespace innet::io {

namespace {

constexpr uint64_t kGraphMagic = 0x696e6e657447521ULL;  // "innetGR" + v1.
constexpr uint64_t kTrajMagic = 0x696e6e657454521ULL;   // "innetTR" + v1.

// RAII stdio handle.
struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t bytes) {
  return std::fwrite(data, 1, bytes, f) == bytes;
}

bool ReadBytes(std::FILE* f, void* data, size_t bytes) {
  return std::fread(data, 1, bytes, f) == bytes;
}

template <typename T>
bool WriteValue(std::FILE* f, T value) {
  return WriteBytes(f, &value, sizeof(T));
}

template <typename T>
bool ReadValue(std::FILE* f, T* value) {
  return ReadBytes(f, value, sizeof(T));
}

// Guards against absurd counts from corrupt headers before allocating.
constexpr uint64_t kMaxReasonableCount = 1ull << 32;

}  // namespace

util::Status SaveRoadNetwork(const graph::PlanarGraph& graph,
                             const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return util::InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  bool ok = WriteValue(f, kGraphMagic) &&
            WriteValue<uint64_t>(f, graph.NumNodes()) &&
            WriteValue<uint64_t>(f, graph.NumEdges());
  for (graph::NodeId n = 0; ok && n < graph.NumNodes(); ++n) {
    ok = WriteValue(f, graph.Position(n).x) &&
         WriteValue(f, graph.Position(n).y);
  }
  for (graph::EdgeId e = 0; ok && e < graph.NumEdges(); ++e) {
    ok = WriteValue<uint32_t>(f, graph.Edge(e).u) &&
         WriteValue<uint32_t>(f, graph.Edge(e).v);
  }
  if (!ok) return util::InternalError("short write: " + path);
  return util::Status::Ok();
}

util::StatusOr<graph::PlanarGraph> LoadRoadNetwork(const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::NotFoundError("cannot open: " + path);
  }
  std::FILE* f = file.get();
  uint64_t magic = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!ReadValue(f, &magic) || magic != kGraphMagic) {
    return util::InvalidArgumentError("not a road-network file: " + path);
  }
  if (!ReadValue(f, &num_nodes) || !ReadValue(f, &num_edges) ||
      num_nodes > kMaxReasonableCount || num_edges > kMaxReasonableCount) {
    return util::InvalidArgumentError("corrupt header: " + path);
  }
  std::vector<geometry::Point> positions(num_nodes);
  for (auto& p : positions) {
    if (!ReadValue(f, &p.x) || !ReadValue(f, &p.y)) {
      return util::InvalidArgumentError("truncated positions: " + path);
    }
  }
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges(num_edges);
  std::set<std::pair<graph::NodeId, graph::NodeId>> seen;
  for (auto& [u, v] : edges) {
    uint32_t a = 0;
    uint32_t b = 0;
    if (!ReadValue(f, &a) || !ReadValue(f, &b)) {
      return util::InvalidArgumentError("truncated edges: " + path);
    }
    if (a >= num_nodes || b >= num_nodes || a == b) {
      return util::InvalidArgumentError("invalid edge endpoints: " + path);
    }
    auto key = std::minmax(a, b);
    if (!seen.insert({key.first, key.second}).second) {
      return util::InvalidArgumentError("duplicate edge: " + path);
    }
    u = a;
    v = b;
  }
  // Connectivity must hold before the PlanarGraph constructor asserts it.
  {
    graph::WeightedAdjacency adjacency(num_nodes);
    for (const auto& [u, v] : edges) {
      adjacency[u].push_back({v, 0, 1.0});
      adjacency[v].push_back({u, 0, 1.0});
    }
    if (!graph::IsConnected(adjacency)) {
      return util::InvalidArgumentError("graph is not connected: " + path);
    }
  }
  return graph::PlanarGraph(std::move(positions), std::move(edges));
}

util::Status SaveTrajectories(
    const std::vector<mobility::Trajectory>& trajectories,
    const std::string& path) {
  File file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return util::InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  bool ok = WriteValue(f, kTrajMagic) &&
            WriteValue<uint64_t>(f, trajectories.size());
  for (const mobility::Trajectory& t : trajectories) {
    if (!ok) break;
    if (t.nodes.size() != t.times.size()) {
      return util::InvalidArgumentError(
          "trajectory nodes/times length mismatch");
    }
    ok = WriteValue<uint64_t>(f, t.nodes.size());
    for (size_t i = 0; ok && i < t.nodes.size(); ++i) {
      ok = WriteValue<uint32_t>(f, t.nodes[i]) && WriteValue(f, t.times[i]);
    }
  }
  if (!ok) return util::InternalError("short write: " + path);
  return util::Status::Ok();
}

util::StatusOr<std::vector<mobility::Trajectory>> LoadTrajectories(
    const std::string& path, const graph::PlanarGraph* graph) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::NotFoundError("cannot open: " + path);
  }
  std::FILE* f = file.get();
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!ReadValue(f, &magic) || magic != kTrajMagic) {
    return util::InvalidArgumentError("not a trajectory file: " + path);
  }
  if (!ReadValue(f, &count) || count > kMaxReasonableCount) {
    return util::InvalidArgumentError("corrupt header: " + path);
  }
  std::vector<mobility::Trajectory> trajectories;
  trajectories.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t length = 0;
    if (!ReadValue(f, &length) || length > kMaxReasonableCount) {
      return util::InvalidArgumentError("corrupt trajectory header: " + path);
    }
    mobility::Trajectory t;
    t.nodes.resize(length);
    t.times.resize(length);
    for (uint64_t j = 0; j < length; ++j) {
      uint32_t node = 0;
      if (!ReadValue(f, &node) || !ReadValue(f, &t.times[j])) {
        return util::InvalidArgumentError("truncated trajectory: " + path);
      }
      if (graph != nullptr && node >= graph->NumNodes()) {
        return util::InvalidArgumentError("node id out of range: " + path);
      }
      if (j > 0 && t.times[j] <= t.times[j - 1]) {
        return util::InvalidArgumentError("non-increasing timestamps: " +
                                          path);
      }
      t.nodes[j] = node;
    }
    if (graph != nullptr && !t.Valid(*graph)) {
      return util::InvalidArgumentError(
          "trajectory hops between non-adjacent junctions: " + path);
    }
    trajectories.push_back(std::move(t));
  }
  return trajectories;
}

}  // namespace innet::io

namespace innet::io {

namespace {

// Splits a CSV line on commas (no quoting needed for this format).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      break;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
  return fields;
}

}  // namespace

util::StatusOr<CsvImportResult> ImportRoadNetworkCsv(
    const std::string& path) {
  File file(std::fopen(path.c_str(), "r"));
  if (file == nullptr) return util::NotFoundError("cannot open: " + path);

  std::vector<std::pair<uint64_t, geometry::Point>> raw_nodes;
  std::vector<std::pair<uint64_t, uint64_t>> raw_edges;
  char buffer[512];
  size_t line_number = 0;
  while (std::fgets(buffer, sizeof(buffer), file.get()) != nullptr) {
    ++line_number;
    std::string line(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitCsv(line);
    auto bad = [&](const char* what) {
      return util::InvalidArgumentError(
          path + ":" + std::to_string(line_number) + ": " + what);
    };
    if (fields[0] == "node") {
      if (fields.size() != 4) return bad("node wants id,x,y");
      char* end = nullptr;
      uint64_t id = std::strtoull(fields[1].c_str(), &end, 10);
      if (*end != '\0') return bad("bad node id");
      double x = std::strtod(fields[2].c_str(), &end);
      if (*end != '\0') return bad("bad x");
      double y = std::strtod(fields[3].c_str(), &end);
      if (*end != '\0') return bad("bad y");
      raw_nodes.emplace_back(id, geometry::Point(x, y));
    } else if (fields[0] == "edge") {
      if (fields.size() != 3) return bad("edge wants two node ids");
      char* end = nullptr;
      uint64_t u = std::strtoull(fields[1].c_str(), &end, 10);
      if (*end != '\0') return bad("bad edge endpoint");
      uint64_t v = std::strtoull(fields[2].c_str(), &end, 10);
      if (*end != '\0') return bad("bad edge endpoint");
      raw_edges.emplace_back(u, v);
    } else {
      return bad("unknown record type");
    }
  }

  // Dense id check + position table.
  std::vector<geometry::Point> positions(raw_nodes.size());
  std::vector<bool> seen(raw_nodes.size(), false);
  for (const auto& [id, point] : raw_nodes) {
    if (id >= raw_nodes.size() || seen[id]) {
      return util::InvalidArgumentError(
          "node ids must be dense 0..n-1 without repeats: " + path);
    }
    seen[id] = true;
    positions[id] = point;
  }
  std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
  edges.reserve(raw_edges.size());
  for (const auto& [u, v] : raw_edges) {
    if (u >= positions.size() || v >= positions.size()) {
      return util::InvalidArgumentError("edge endpoint out of range: " + path);
    }
    edges.emplace_back(static_cast<graph::NodeId>(u),
                       static_cast<graph::NodeId>(v));
  }

  util::StatusOr<graph::PlanarizeResult> planarized =
      graph::Planarize(std::move(positions), std::move(edges));
  if (!planarized.ok()) return planarized.status();
  return CsvImportResult{std::move(planarized->graph),
                         planarized->inserted_nodes};
}

util::Status ExportRoadNetworkCsv(const graph::PlanarGraph& graph,
                                  const std::string& path) {
  File file(std::fopen(path.c_str(), "w"));
  if (file == nullptr) {
    return util::InvalidArgumentError("cannot open for writing: " + path);
  }
  std::FILE* f = file.get();
  std::fprintf(f, "# innet road network: %zu nodes, %zu edges\n",
               graph.NumNodes(), graph.NumEdges());
  for (graph::NodeId n = 0; n < graph.NumNodes(); ++n) {
    std::fprintf(f, "node,%u,%.9g,%.9g\n", n, graph.Position(n).x,
                 graph.Position(n).y);
  }
  for (graph::EdgeId e = 0; e < graph.NumEdges(); ++e) {
    std::fprintf(f, "edge,%u,%u\n", graph.Edge(e).u, graph.Edge(e).v);
  }
  return util::Status::Ok();
}

}  // namespace innet::io

namespace innet::io {

namespace {

constexpr uint64_t kSnapshotMagic = 0x696e6e6574465a1ULL;  // "innetFZ" + v1.

// fsyncs the directory holding `path` so the rename that published a
// snapshot is itself durable.
util::Status FsyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return util::InternalError("cannot open directory: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::InternalError("fsync failed: " + dir);
  return util::Status::Ok();
}

}  // namespace

util::Status SaveFrozenSnapshot(const forms::FrozenTrackingForm& store,
                                const FrozenSnapshotMeta& meta,
                                const std::string& path) {
  const std::vector<double>& times = store.RawTimes();
  const std::vector<uint64_t>& offsets = store.RawOffsets();
  std::string tmp = path + ".tmp";
  File file(std::fopen(tmp.c_str(), "wb"));
  if (file == nullptr) {
    return util::InvalidArgumentError("cannot open for writing: " + tmp);
  }
  std::FILE* f = file.get();

  // Everything after the magic is covered by one streaming CRC so a torn
  // write anywhere in the body is caught on load.
  uint32_t crc = kCrc32cInit;
  auto put = [&](const void* data, size_t bytes) {
    crc = Crc32cExtend(crc, data, bytes);
    return WriteBytes(f, data, bytes);
  };
  auto put_u64 = [&](uint64_t v) { return put(&v, sizeof(v)); };

  uint64_t num_slots = offsets.size() - 1;
  bool ok = WriteValue(f, kSnapshotMagic) && put_u64(meta.generation) &&
            put_u64(meta.covered_epoch) && put_u64(meta.covered_events) &&
            put_u64(num_slots) && put_u64(times.size());
  if (!ok) return util::InternalError("short write: " + tmp);
  INNET_CRASH_POINT("snapshot:post-header");
  ok = put(offsets.data(), offsets.size() * sizeof(uint64_t)) &&
       put(times.data(), times.size() * sizeof(double)) &&
       WriteValue(f, Crc32cFinish(crc));
  if (!ok || std::fflush(f) != 0) {
    return util::InternalError("short write: " + tmp);
  }
  if (::fsync(::fileno(f)) != 0) {
    return util::InternalError("fsync failed: " + tmp);
  }
  file.reset();  // Close before rename.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return util::InternalError("rename failed: " + tmp + " -> " + path);
  }
  return FsyncParentDir(path);
}

util::StatusOr<LoadedFrozenSnapshot> LoadFrozenSnapshot(
    const std::string& path) {
  File file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return util::NotFoundError("cannot open: " + path);
  }
  std::FILE* f = file.get();

  uint32_t crc = kCrc32cInit;
  auto get = [&](void* data, size_t bytes) {
    if (!ReadBytes(f, data, bytes)) return false;
    crc = Crc32cExtend(crc, data, bytes);
    return true;
  };
  auto get_u64 = [&](uint64_t* v) { return get(v, sizeof(*v)); };

  uint64_t magic = 0;
  if (!ReadValue(f, &magic) || magic != kSnapshotMagic) {
    return util::InvalidArgumentError("not a frozen snapshot: " + path);
  }
  FrozenSnapshotMeta meta;
  uint64_t num_slots = 0;
  uint64_t total_events = 0;
  if (!get_u64(&meta.generation) || !get_u64(&meta.covered_epoch) ||
      !get_u64(&meta.covered_events) || !get_u64(&num_slots) ||
      !get_u64(&total_events) || num_slots > kMaxReasonableCount ||
      total_events > kMaxReasonableCount || num_slots % 2 != 0) {
    return util::InvalidArgumentError("corrupt snapshot header: " + path);
  }
  std::vector<uint64_t> offsets(num_slots + 1);
  std::vector<double> times(total_events);
  uint32_t stored_crc = 0;
  if (!get(offsets.data(), offsets.size() * sizeof(uint64_t)) ||
      !get(times.data(), times.size() * sizeof(double)) ||
      !ReadValue(f, &stored_crc)) {
    return util::InvalidArgumentError("truncated snapshot: " + path);
  }
  if (Crc32cFinish(crc) != stored_crc) {
    return util::InvalidArgumentError("snapshot checksum mismatch: " + path);
  }
  // Re-validate every invariant the FrozenTrackingForm constructor CHECKs,
  // as Statuses: a corrupt file must never abort the process.
  if (offsets.front() != 0 || offsets.back() != total_events) {
    return util::InvalidArgumentError("corrupt snapshot offsets: " + path);
  }
  for (uint64_t s = 0; s < num_slots; ++s) {
    if (offsets[s] > offsets[s + 1]) {
      return util::InvalidArgumentError("non-monotone snapshot offsets: " +
                                        path);
    }
    if (!std::is_sorted(times.begin() + offsets[s],
                        times.begin() + offsets[s + 1])) {
      return util::InvalidArgumentError("unsorted snapshot slot: " + path);
    }
  }
  return LoadedFrozenSnapshot{
      forms::FrozenTrackingForm(std::move(times), std::move(offsets)), meta};
}

}  // namespace innet::io
