// Summary statistics used by the benchmark harnesses: the paper reports the
// median of 50 runs with a 25th-75th percentile band.
#ifndef INNET_UTIL_STATS_H_
#define INNET_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace innet::util {

/// Median / inter-quartile summary of a set of observations.
struct Summary {
  size_t count = 0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Linear-interpolated percentile of an ascending-sorted `sorted`, q in
/// [0, 1]. Requires non-empty input. The single shared quantile kernel:
/// Percentile and Summarize both delegate here.
double PercentileSorted(const std::vector<double>& sorted, double q);

/// Linear-interpolated percentile of `values`, q in [0, 1]. `values` need
/// not be sorted; the copy is partially ordered with std::nth_element (a
/// single quantile does not pay for a full sort). Requires non-empty
/// input. Callers needing several quantiles should sort once and use
/// PercentileSorted.
double Percentile(std::vector<double> values, double q);

/// Computes the full Summary for `values`. Requires non-empty input.
Summary Summarize(const std::vector<double>& values);

/// Relative error |actual - approx| / actual as used in §5.1.4. When the
/// actual count is zero the error is defined as 0 if approx is also zero and
/// 1 otherwise (a miss of a nonzero estimate over an empty region).
double RelativeError(double actual, double approx);

/// Accumulates observations and produces a Summary. Convenience wrapper used
/// by the benchmark drivers.
class Accumulator {
 public:
  void Add(double value) { values_.push_back(value); }
  bool empty() const { return values_.empty(); }
  size_t count() const { return values_.size(); }
  Summary Summarize() const;
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_STATS_H_
