// Wall-clock stopwatch for query-latency measurements.
#ifndef INNET_UTIL_TIMER_H_
#define INNET_UTIL_TIMER_H_

#include <chrono>

namespace innet::util {

/// Monotonic stopwatch. Starts on construction; Restart() resets the origin.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_TIMER_H_
