// Error handling without exceptions: Status carries an error code and
// message, StatusOr<T> carries either a value or a Status.
#ifndef INNET_UTIL_STATUS_H_
#define INNET_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace innet::util {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name for `code` ("OK", "INVALID_ARGUMENT",
/// ...).
const char* StatusCodeName(StatusCode code);

/// Value-semantic error descriptor. Default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Constructs an OK status.
  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
inline Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}

/// Either a value of type T or a non-OK Status explaining its absence.
///
/// `value()` aborts if the StatusOr holds an error; call `ok()` first on
/// fallible paths.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions from T and Status mirror absl::StatusOr and keep
  // call sites readable (`return value;` / `return SomeError();`).
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    INNET_CHECK(!status_.ok());
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    INNET_CHECK(ok());
    return *value_;
  }
  T& value() & {
    INNET_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    INNET_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_STATUS_H_
