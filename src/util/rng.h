// Deterministic random number generation for reproducible experiments.
//
// All randomized components of the library (samplers, generators, query
// workloads) take an explicit Rng so that a single seed reproduces an entire
// experiment end to end.
#ifndef INNET_UTIL_RNG_H_
#define INNET_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace innet::util {

/// Deterministic pseudo-random generator. Wraps std::mt19937_64 seeded
/// through SplitMix64 so that nearby seeds produce uncorrelated streams.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(SplitMix64(seed)) {}

  /// Derives an independent child generator; used to give each component of
  /// an experiment its own stream without coupling their consumption rates.
  Rng Fork() { return Rng(engine_()); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    INNET_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n). Requires n > 0.
  size_t UniformIndex(size_t n) {
    INNET_DCHECK(n > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal deviate.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Exponential deviate with the given rate (events per unit time).
  double Exponential(double rate) {
    INNET_DCHECK(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly (k <= n). Order is
  /// randomized. Runs in O(n) time.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  static uint64_t SplitMix64(uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_RNG_H_
