// Debug heap-allocation probe.
//
// Linking this translation unit REPLACES the global operator new/delete
// with counting wrappers around malloc/free, so a test or benchmark can
// assert how many heap allocations a code path performs (the workspace
// tests pin the warm query path at ZERO; bench/headline reports the count
// as `warm_query_allocs`).
//
// The replacement happens only in binaries that actually reference a
// symbol from alloc_probe.cc — innet_util is a static library, so the
// linker pulls the object (and with it the operator new override) solely
// into executables that call AllocationCount()/use AllocProbe. Production
// tools that never reference the probe keep the stock allocator.
//
// Counting is a single relaxed atomic increment per allocation: cheap,
// thread-safe, and deterministic for single-threaded measurement windows.
// Under ASan/TSan the override still counts our operator new calls while
// the sanitizer keeps interposing malloc underneath, so assertions about
// "zero allocations" stay valid in sanitizer jobs.
#ifndef INNET_UTIL_ALLOC_PROBE_H_
#define INNET_UTIL_ALLOC_PROBE_H_

#include <cstdint>

namespace innet::util {

/// Number of global operator new / new[] calls since process start (in
/// binaries linking the probe; see file comment).
uint64_t AllocationCount();

/// Allocations made by the CALLING thread since it started. Lets a
/// measurement window assert zero allocations on a query thread while a
/// background writer (e.g. the ingest freezer) allocates freely — the
/// process-wide AllocationCount() cannot separate the two.
uint64_t ThreadAllocationCount();

/// Scoped per-thread delta counter over ThreadAllocationCount().
class ThreadAllocProbe {
 public:
  ThreadAllocProbe() : start_(ThreadAllocationCount()) {}

  uint64_t Delta() const { return ThreadAllocationCount() - start_; }

  void Reset() { start_ = ThreadAllocationCount(); }

 private:
  uint64_t start_;
};

/// Scoped delta counter over AllocationCount().
class AllocProbe {
 public:
  AllocProbe() : start_(AllocationCount()) {}

  /// Allocations since construction (or the last Reset).
  uint64_t Delta() const { return AllocationCount() - start_; }

  void Reset() { start_ = AllocationCount(); }

 private:
  uint64_t start_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_ALLOC_PROBE_H_
