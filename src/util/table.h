// Aligned table printer for benchmark output. Each bench binary prints the
// same rows/series as the corresponding paper figure, both as an aligned
// human-readable table and (optionally) as CSV for plotting.
#ifndef INNET_UTIL_TABLE_H_
#define INNET_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace innet::util {

/// Column-aligned text table with a title and header row.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void SetHeader(std::vector<std::string> header);

  /// Appends a pre-formatted row; must match the header width.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals, passing strings
  /// through unchanged.
  static std::string Num(double value, int precision = 4);

  /// Renders the aligned table (with title and separator rules).
  std::string ToString() const;

  /// Renders the table as CSV (header + rows, no title).
  std::string ToCsv() const;

  /// Prints ToString() to stdout followed by a blank line.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_TABLE_H_
