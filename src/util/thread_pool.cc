#include "util/thread_pool.h"

#include <atomic>
#include <memory>

#include "util/logging.h"

namespace innet::util {

ThreadPool::ThreadPool(size_t num_threads) {
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  INNET_CHECK(task != nullptr);
  if (threads_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  if (threads_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (threads_.empty()) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  // One claiming task per worker; dynamic index claiming balances skewed
  // per-item costs (query regions vary widely in boundary size).
  auto next = std::make_shared<std::atomic<size_t>>(0);
  size_t tasks = std::min(threads_.size(), count);
  for (size_t w = 0; w < tasks; ++w) {
    Submit([next, count, &fn] {
      for (size_t i = next->fetch_add(1, std::memory_order_relaxed); i < count;
           i = next->fetch_add(1, std::memory_order_relaxed)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace innet::util
