#include "util/alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<uint64_t> g_allocation_count{0};
// Per-thread tally. A plain trivially-constructible thread_local: its
// initialization allocates nothing, so the counting operator new below can
// touch it without recursing.
thread_local uint64_t t_allocation_count = 0;

void CountOne() {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  ++t_allocation_count;
}

void* CountedAllocate(std::size_t size) {
  CountOne();
  if (size == 0) size = 1;
  for (;;) {
    if (void* p = std::malloc(size)) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* CountedAllocateAligned(std::size_t size, std::size_t alignment) {
  CountOne();
  if (size == 0) size = 1;
  if (alignment < sizeof(void*)) alignment = sizeof(void*);
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, alignment, size) == 0) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

}  // namespace

namespace innet::util {

uint64_t AllocationCount() {
  return g_allocation_count.load(std::memory_order_relaxed);
}

uint64_t ThreadAllocationCount() { return t_allocation_count; }

}  // namespace innet::util

// Global replacements (usual-form operator new/delete; [new.delete] allows a
// program to define these). Every variant funnels into the two counted
// allocators above so the count covers scalar, array, nothrow, and aligned
// allocations alike.
void* operator new(std::size_t size) { return CountedAllocate(size); }
void* operator new[](std::size_t size) { return CountedAllocate(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  CountOne();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  CountOne();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return CountedAllocateAligned(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return CountedAllocateAligned(size, static_cast<std::size_t>(alignment));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
