// Runtime SIMD dispatch for the frozen-store read path.
//
// The frozen CSR kernels (forms/frozen_tracking_form.h) spend their time in
// one primitive: counting how many timestamps in a short contiguous span are
// <= a probe time. This header resolves that primitive to the widest vector
// unit the host actually has — AVX2 on x86-64, NEON on aarch64, a branchless
// scalar loop everywhere else — picked once at startup via cpuid
// (`__builtin_cpu_supports`) / `getauxval(AT_HWCAP)` and overridable with
// the `INNET_SIMD` environment variable (`avx2`, `neon`, `scalar`, or
// `native` for the detected best). Every path computes the IDENTICAL result:
// the comparison `p[i] <= t` is exact in every width, so dispatch never
// changes a count (tests/simd_test.cc pins all levels against each other).
//
// The active level is observable through `ActiveSimdName()` — surfaced as
// the `simd` label on `innet_build_info` and in `/varz` (docs/
// OBSERVABILITY.md) — and forceable per-scope in tests with ScopedSimdLevel.
#ifndef INNET_UTIL_SIMD_H_
#define INNET_UTIL_SIMD_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace innet::util::simd {

enum class SimdLevel : uint8_t { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// "scalar" / "avx2" / "neon".
const char* SimdLevelName(SimdLevel level);

/// Parses "scalar" / "avx2" / "neon" (case-sensitive) into `out`. "native"
/// resolves to the detected best level. Returns false on anything else.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// Widest level this hardware supports (cpuid / hwcaps; cached).
SimdLevel DetectedSimdLevel();

/// Whether `level` can run on this hardware (kScalar always can).
bool SimdLevelSupported(SimdLevel level);

/// The level the dispatched kernels currently run at. Resolved on first use:
/// the `INNET_SIMD` override when set and supported (unsupported or
/// malformed values WARN once and fall back), else the detected best.
SimdLevel ActiveSimdLevel();

/// SimdLevelName(ActiveSimdLevel()).
const char* ActiveSimdName();

/// Forces the dispatched kernels to `level`. Returns false (and changes
/// nothing) if the hardware cannot run it. Swaps one atomic function
/// pointer — safe against concurrent readers, but intended for startup and
/// test scopes, not steady-state toggling.
bool SetActiveSimdLevel(SimdLevel level);

/// RAII dispatch override for tests: forces `level` if supported, restores
/// the previous level on destruction. `ok()` reports whether the force took.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(ActiveSimdLevel()), ok_(SetActiveSimdLevel(level)) {}
  ~ScopedSimdLevel() { SetActiveSimdLevel(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
  bool ok() const { return ok_; }

 private:
  SimdLevel previous_;
  bool ok_;
};

using CountLessEqualFn = size_t (*)(const double*, size_t, double);

namespace detail {
// Starts at a resolver trampoline that installs the active level's kernel
// on first call; after that it is a direct pointer to the level's entry.
extern std::atomic<CountLessEqualFn> g_count_less_equal;
}  // namespace detail

/// Number of elements of [p, p+n) with value <= t. No ordering assumption;
/// NaN elements and NaN probes never count (IEEE ordered-compare
/// semantics, matching the scalar `p[i] <= t`). Exact at every level.
inline size_t CountLessEqual(const double* p, size_t n, double t) {
  return detail::g_count_less_equal.load(std::memory_order_relaxed)(p, n, t);
}

/// Direct per-level entry, bypassing dispatch — for property tests that
/// cross-check levels against each other. CHECK-fails if `level` is not
/// supported on this hardware (guard with SimdLevelSupported).
size_t CountLessEqualAt(SimdLevel level, const double* p, size_t n, double t);

/// Number of leading elements of the SORTED span [p, p+n) with value <= t —
/// equivalently std::upper_bound(p, p+n, t) - p, but computed with an
/// exponential gallop to bracket the crossing followed by one vectorized
/// window count, so dense series steps (small advances) cost a couple of
/// compares and sparse ones stay O(log gap + window/width). NaN probes
/// return 0 (nothing is <= NaN).
inline size_t CountLeadingLessEqualSorted(const double* p, size_t n,
                                          double t) {
  if (n == 0 || !(p[0] <= t)) return 0;
  if (p[n - 1] <= t) return n;
  // p[0] <= t < p[n-1]: gallop until an element > t brackets the crossing.
  size_t bound = 1;
  while (bound < n && p[bound] <= t) bound <<= 1;
  size_t lo = (bound >> 1) + 1;  // Everything below lo is known <= t.
  size_t hi = bound < n ? bound : n;  // Everything at/after hi is > t.
  return lo + CountLessEqual(p + lo, hi - lo, t);
}

}  // namespace innet::util::simd

#endif  // INNET_UTIL_SIMD_H_
