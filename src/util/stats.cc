#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace innet::util {

double PercentileSorted(const std::vector<double>& sorted, double q) {
  INNET_CHECK(!sorted.empty());
  INNET_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> values, double q) {
  INNET_CHECK(!values.empty());
  INNET_CHECK(q >= 0.0 && q <= 1.0);
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(lo),
                   values.end());
  double v_lo = values[lo];
  if (frac == 0.0) return v_lo;
  // The interpolation partner is the minimum of the (unordered) suffix.
  double v_hi = *std::min_element(
      values.begin() + static_cast<ptrdiff_t>(lo) + 1, values.end());
  return v_lo * (1.0 - frac) + v_hi * frac;
}

Summary Summarize(const std::vector<double>& values) {
  INNET_CHECK(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  s.p25 = PercentileSorted(sorted, 0.25);
  s.median = PercentileSorted(sorted, 0.5);
  s.p75 = PercentileSorted(sorted, 0.75);
  return s;
}

double RelativeError(double actual, double approx) {
  if (actual == 0.0) {
    return approx == 0.0 ? 0.0 : 1.0;
  }
  return std::abs(actual - approx) / std::abs(actual);
}

Summary Accumulator::Summarize() const { return util::Summarize(values_); }

}  // namespace innet::util
