#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace innet::util {

double Percentile(std::vector<double> values, double q) {
  INNET_CHECK(!values.empty());
  INNET_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary Summarize(const std::vector<double>& values) {
  INNET_CHECK(!values.empty());
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  Summary s;
  s.count = sorted.size();
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
           static_cast<double>(sorted.size());
  auto at = [&sorted](double q) {
    if (sorted.size() == 1) return sorted[0];
    double pos = q * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.p25 = at(0.25);
  s.median = at(0.5);
  s.p75 = at(0.75);
  return s;
}

double RelativeError(double actual, double approx) {
  if (actual == 0.0) {
    return approx == 0.0 ? 0.0 : 1.0;
  }
  return std::abs(actual - approx) / std::abs(actual);
}

Summary Accumulator::Summarize() const { return util::Summarize(values_); }

}  // namespace innet::util
