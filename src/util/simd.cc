#include "util/simd.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/logging.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMD
#define HWCAP_ASIMD (1 << 1)
#endif
#endif
#endif

namespace innet::util::simd {

namespace {

size_t CountLessEqualScalarImpl(const double* p, size_t n, double t) {
  // Branchless: the comparison lowers to setcc/cset, no data-dependent
  // branches for the predictor to miss on duplicate-heavy spans.
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) count += p[i] <= t ? 1 : 0;
  return count;
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("avx2,popcnt"))) size_t CountLessEqualAvx2Impl(
    const double* p, size_t n, double t) {
  const __m256d vt = _mm256_set1_pd(t);
  size_t count = 0;
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    int m0 = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(p + i), vt, _CMP_LE_OQ));
    int m1 = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(p + i + 4), vt, _CMP_LE_OQ));
    count += static_cast<unsigned>(__builtin_popcount((m1 << 4) | m0));
  }
  if (i + 4 <= n) {
    count += static_cast<unsigned>(__builtin_popcount(_mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(p + i), vt, _CMP_LE_OQ))));
    i += 4;
  }
  for (; i < n; ++i) count += p[i] <= t ? 1 : 0;
  return count;
}
#endif

#if defined(__aarch64__)
size_t CountLessEqualNeonImpl(const double* p, size_t n, double t) {
  const float64x2_t vt = vdupq_n_f64(t);
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Lane mask is all-ones (== uint64 -1) where p[i] <= t; subtracting
    // accumulates +1 per matching lane.
    acc = vsubq_u64(acc, vcleq_f64(vld1q_f64(p + i), vt));
  }
  size_t count = vgetq_lane_u64(acc, 0) + vgetq_lane_u64(acc, 1);
  for (; i < n; ++i) count += p[i] <= t ? 1 : 0;
  return count;
}
#endif

CountLessEqualFn KernelFor(SimdLevel level) {
  switch (level) {
#if defined(__x86_64__) || defined(__i386__)
    case SimdLevel::kAvx2:
      return &CountLessEqualAvx2Impl;
#endif
#if defined(__aarch64__)
    case SimdLevel::kNeon:
      return &CountLessEqualNeonImpl;
#endif
    default:
      return &CountLessEqualScalarImpl;
  }
}

// -1 until the first resolve (env override + detection); >= 0 afterwards.
std::atomic<int> g_active_level{-1};
std::once_flag g_resolve_once;

void Install(SimdLevel level) {
  detail::g_count_less_equal.store(KernelFor(level),
                                   std::memory_order_relaxed);
  g_active_level.store(static_cast<int>(level), std::memory_order_release);
}

void ResolveActiveLevel() {
  SimdLevel level = DetectedSimdLevel();
  const char* env = std::getenv("INNET_SIMD");
  if (env != nullptr && env[0] != '\0') {
    SimdLevel requested;
    if (!ParseSimdLevel(env, &requested)) {
      INNET_LOG(WARN) << "INNET_SIMD=" << env
                      << " is not scalar|avx2|neon|native; using detected "
                      << SimdLevelName(level);
    } else if (!SimdLevelSupported(requested)) {
      INNET_LOG(WARN) << "INNET_SIMD=" << env
                      << " is not supported on this hardware; using detected "
                      << SimdLevelName(level);
    } else {
      level = requested;
    }
  }
  Install(level);
}

size_t CountLessEqualResolve(const double* p, size_t n, double t) {
  ActiveSimdLevel();  // Installs the real kernel pointer as a side effect.
  return detail::g_count_less_equal.load(std::memory_order_relaxed)(p, n, t);
}

}  // namespace

namespace detail {
std::atomic<CountLessEqualFn> g_count_less_equal{&CountLessEqualResolve};
}  // namespace detail

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
  } else if (std::strcmp(name, "neon") == 0) {
    *out = SimdLevel::kNeon;
  } else if (std::strcmp(name, "native") == 0) {
    *out = DetectedSimdLevel();
  } else {
    return false;
  }
  return true;
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel kDetected = [] {
#if defined(__x86_64__) || defined(__i386__)
    if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
    return SimdLevel::kScalar;
#elif defined(__aarch64__) && defined(__linux__)
    if (getauxval(AT_HWCAP) & HWCAP_ASIMD) return SimdLevel::kNeon;
    return SimdLevel::kScalar;
#elif defined(__aarch64__)
    return SimdLevel::kNeon;  // NEON is architecturally baseline on v8-A.
#else
    return SimdLevel::kScalar;
#endif
  }();
  return kDetected;
}

bool SimdLevelSupported(SimdLevel level) {
  return level == SimdLevel::kScalar || level == DetectedSimdLevel();
}

SimdLevel ActiveSimdLevel() {
  if (g_active_level.load(std::memory_order_acquire) < 0) {
    std::call_once(g_resolve_once, ResolveActiveLevel);
  }
  return static_cast<SimdLevel>(
      g_active_level.load(std::memory_order_acquire));
}

const char* ActiveSimdName() { return SimdLevelName(ActiveSimdLevel()); }

bool SetActiveSimdLevel(SimdLevel level) {
  if (!SimdLevelSupported(level)) return false;
  Install(level);
  return true;
}

size_t CountLessEqualAt(SimdLevel level, const double* p, size_t n,
                        double t) {
  INNET_CHECK(SimdLevelSupported(level));
  return KernelFor(level)(p, n, t);
}

}  // namespace innet::util::simd
