#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace innet::util {

void Table::SetHeader(std::vector<std::string> header) {
  INNET_CHECK(rows_.empty());
  header_ = std::move(header);
}

void Table::AddRow(std::vector<std::string> row) {
  INNET_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::Print() const {
  std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace innet::util
