#include "util/flags.h"

#include <cstdlib>

namespace innet::util {

namespace {
constexpr const char* kBareMarker = "\x01" "bare";
}  // namespace

FlagParser::FlagParser(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  Parse(args);
}

FlagParser::FlagParser(const std::vector<std::string>& args) { Parse(args); }

void FlagParser::Parse(const std::vector<std::string>& args) {
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0 || arg.size() == 2) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another flag (then bare).
    if (i + 1 < args.size() && args[i + 1].rfind("--", 0) != 0) {
      flags_[body] = args[i + 1];
      ++i;
    } else {
      flags_[body] = kBareMarker;
    }
  }
}

const std::string* FlagParser::Find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return nullptr;
  queried_[name] = true;
  return &it->second;
}

bool FlagParser::Has(const std::string& name) const {
  return Find(name) != nullptr;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& fallback) const {
  const std::string* value = Find(name);
  if (value == nullptr || *value == kBareMarker) return fallback;
  return *value;
}

double FlagParser::GetDouble(const std::string& name, double fallback) const {
  const std::string* value = Find(name);
  if (value == nullptr || *value == kBareMarker) return fallback;
  char* end = nullptr;
  double parsed = std::strtod(value->c_str(), &end);
  return (end == nullptr || *end != '\0') ? fallback : parsed;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t fallback) const {
  const std::string* value = Find(name);
  if (value == nullptr || *value == kBareMarker) return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(value->c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : parsed;
}

bool FlagParser::GetBool(const std::string& name, bool fallback) const {
  const std::string* value = Find(name);
  if (value == nullptr) return fallback;
  if (*value == kBareMarker || *value == "true" || *value == "1" ||
      *value == "yes") {
    return true;
  }
  if (*value == "false" || *value == "0" || *value == "no") return false;
  return fallback;
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : flags_) {
    if (queried_.find(name) == queried_.end()) unused.push_back(name);
  }
  return unused;
}

}  // namespace innet::util
