// Minimal command-line flag parsing for the tools and benchmark binaries.
//
// Supported syntax: `--name=value`, `--name value`, and bare boolean
// `--name`. Everything else is collected as positional arguments.
#ifndef INNET_UTIL_FLAGS_H_
#define INNET_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace innet::util {

/// Parsed command line.
class FlagParser {
 public:
  FlagParser(int argc, const char* const* argv);
  explicit FlagParser(const std::vector<std::string>& args);

  /// True when --name was given (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of --name, or `fallback` when absent.
  std::string GetString(const std::string& name,
                        const std::string& fallback = "") const;

  /// Numeric value of --name; `fallback` when absent or unparsable.
  double GetDouble(const std::string& name, double fallback) const;
  int64_t GetInt(const std::string& name, int64_t fallback) const;

  /// Boolean: bare `--name` and values true/1/yes are true; false/0/no are
  /// false; anything else returns `fallback`.
  bool GetBool(const std::string& name, bool fallback = false) const;

  /// Non-flag arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were provided but never queried — typo detection for tools.
  std::vector<std::string> UnusedFlags() const;

 private:
  void Parse(const std::vector<std::string>& args);
  const std::string* Find(const std::string& name) const;

  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace innet::util

#endif  // INNET_UTIL_FLAGS_H_
