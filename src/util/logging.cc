#include "util/logging.h"

#include <atomic>
#include <cstring>

namespace innet {

namespace {

void StderrSink(LogLevel level, const char* file, int line,
                const std::string& message) {
  // Basename only: full build paths add noise without aiding grep.
  const char* base = std::strrchr(file, '/');
  base = base == nullptr ? file : base + 1;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LogLevelName(level), base, line,
               message.c_str());
}

LogLevel InitialLevelFromEnv() {
  const char* env = std::getenv("INNET_LOG_LEVEL");
  LogLevel level = LogLevel::kInfo;
  if (env != nullptr) ParseLogLevel(env, &level);
  return level;
}

std::atomic<int>& MinLevelStorage() {
  static std::atomic<int> level{static_cast<int>(InitialLevelFromEnv())};
  return level;
}

std::atomic<LogSink>& SinkStorage() {
  static std::atomic<LogSink> sink{&StderrSink};
  return sink;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "LOG";
}

bool ParseLogLevel(const std::string& text, LogLevel* level) {
  if (text == "info") {
    *level = LogLevel::kInfo;
  } else if (text == "warn") {
    *level = LogLevel::kWarn;
  } else if (text == "error") {
    *level = LogLevel::kError;
  } else if (text == "off") {
    *level = static_cast<LogLevel>(static_cast<int>(LogLevel::kError) + 1);
  } else {
    return false;
  }
  return true;
}

void SetMinLogLevel(LogLevel level) {
  MinLevelStorage().store(static_cast<int>(level),
                          std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(
      MinLevelStorage().load(std::memory_order_relaxed));
}

bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         MinLevelStorage().load(std::memory_order_relaxed);
}

void SetLogSink(LogSink sink) {
  SinkStorage().store(sink == nullptr ? &StderrSink : sink,
                      std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::~LogMessage() {
  SinkStorage().load(std::memory_order_relaxed)(level_, file_, line_,
                                                stream_.str());
}

}  // namespace internal_logging

}  // namespace innet
