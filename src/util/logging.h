// Lightweight CHECK/DCHECK macros for invariant enforcement.
//
// The project does not use C++ exceptions; programmer errors abort with a
// diagnostic, recoverable errors flow through util::Status.
#ifndef INNET_UTIL_LOGGING_H_
#define INNET_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace innet {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace innet

// Aborts the process when `expr` evaluates to false. Enabled in all builds:
// violated invariants in a counting framework silently corrupt results, so
// the cost of the branch is worth paying even in release binaries.
#define INNET_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::innet::internal_logging::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (false)

// Debug-only variant for hot paths.
#ifdef NDEBUG
#define INNET_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define INNET_DCHECK(expr) INNET_CHECK(expr)
#endif

#endif  // INNET_UTIL_LOGGING_H_
