// Lightweight CHECK/DCHECK macros for invariant enforcement, plus leveled
// diagnostic logging (INNET_LOG).
//
// The project does not use C++ exceptions; programmer errors abort with a
// diagnostic, recoverable errors flow through util::Status. Operational
// diagnostics go through INNET_LOG(INFO/WARN/ERROR):
//
//   INNET_LOG(WARN) << "skipped " << n << " queries";
//
// Verbosity is controlled by SetMinLogLevel (tools expose --log-level) or
// the INNET_LOG_LEVEL environment variable (info|warn|error|off; the env
// sets the initial level only). The sink is pluggable via SetLogSink; the
// default writes "[LEVEL file:line] message" to stderr.
#ifndef INNET_UTIL_LOGGING_H_
#define INNET_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace innet {

enum class LogLevel : int { kInfo = 0, kWarn = 1, kError = 2 };

const char* LogLevelName(LogLevel level);

/// Messages below `level` are dropped at the call site.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// True when a message at `level` would be emitted.
bool LogLevelEnabled(LogLevel level);

/// Parses "info" | "warn" | "error" | "off" (the spellings INNET_LOG_LEVEL
/// and the tools' --log-level accept). Returns false on anything else;
/// "off" yields a level above kError that disables every message.
bool ParseLogLevel(const std::string& text, LogLevel* level);

/// Receives every emitted message. `message` is the formatted payload
/// without the level/location prefix. Passing nullptr restores the default
/// stderr sink.
using LogSink = void (*)(LogLevel level, const char* file, int line,
                         const std::string& message);
void SetLogSink(LogSink sink);

namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

/// Accumulates one log statement and dispatches it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Lets the disabled branch of INNET_LOG have type void. `&` binds looser
/// than `<<`, so the whole streamed expression is swallowed.
struct Voidify {
  void operator&(std::ostream&) {}
};

// Severity spellings used by the INNET_LOG(severity) macro.
inline constexpr LogLevel kSeverityINFO = LogLevel::kInfo;
inline constexpr LogLevel kSeverityWARN = LogLevel::kWarn;
inline constexpr LogLevel kSeverityERROR = LogLevel::kError;

}  // namespace internal_logging
}  // namespace innet

// Leveled logging with lazy argument evaluation: the streamed operands are
// not evaluated when the level is disabled.
#define INNET_LOG(severity)                                               \
  !::innet::LogLevelEnabled(                                              \
      ::innet::internal_logging::kSeverity##severity)                     \
      ? (void)0                                                           \
      : ::innet::internal_logging::Voidify() &                            \
            ::innet::internal_logging::LogMessage(                        \
                ::innet::internal_logging::kSeverity##severity, __FILE__, \
                __LINE__)                                                 \
                .stream()

// Aborts the process when `expr` evaluates to false. Enabled in all builds:
// violated invariants in a counting framework silently corrupt results, so
// the cost of the branch is worth paying even in release binaries.
#define INNET_CHECK(expr)                                             \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::innet::internal_logging::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (false)

// Debug-only variant for hot paths.
#ifdef NDEBUG
#define INNET_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define INNET_DCHECK(expr) INNET_CHECK(expr)
#endif

#endif  // INNET_UTIL_LOGGING_H_
