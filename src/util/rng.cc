#include "util/rng.h"

#include <numeric>

namespace innet::util {

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    INNET_DCHECK(w >= 0.0);
    total += w;
  }
  INNET_CHECK(total > 0.0);
  double target = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i > 0; --i) {
    if (weights[i - 1] > 0.0) return i - 1;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  INNET_CHECK(k <= n);
  std::vector<size_t> indices(n);
  std::iota(indices.begin(), indices.end(), size_t{0});
  // Partial Fisher-Yates: the first k slots become the sample.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformIndex(n - i);
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

}  // namespace innet::util
