// Fixed-size worker pool over a shared work queue.
//
// The pool exists for CPU-bound fan-out of independent read-only work
// (batches of range queries against a frozen deployment). Tasks are plain
// std::function<void()>; exceptions are not used in this codebase, so a
// task that fails aborts via INNET_CHECK like everything else.
#ifndef INNET_UTIL_THREAD_POOL_H_
#define INNET_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace innet::util {

/// Fixed-size thread pool. Threads are spawned in the constructor and
/// joined in the destructor; Submit() enqueues a task, Wait() blocks until
/// every submitted task has finished.
///
/// With `num_threads == 0` the pool is SERIAL: Submit() runs the task
/// inline on the caller's thread. This gives callers a single code path
/// whose serial execution is byte-for-byte the sequential algorithm — the
/// property the batch-engine determinism tests rely on.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task (runs it inline when the pool is serial).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Worker threads owned by the pool (0 = serial inline execution).
  size_t NumThreads() const { return threads_.size(); }

  /// Splits [0, count) across the pool: each worker repeatedly claims the
  /// next unprocessed index until the range is exhausted, then Wait()s.
  /// `fn(i)` must be safe to invoke concurrently for distinct i. On a
  /// serial pool the indices run 0..count-1 in order on the caller.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued + currently executing tasks.
  bool stopping_ = false;
};

}  // namespace innet::util

#endif  // INNET_UTIL_THREAD_POOL_H_
