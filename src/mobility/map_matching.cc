#include "mobility/map_matching.h"

#include <algorithm>
#include <cmath>

#include "graph/shortest_path.h"
#include "util/logging.h"

namespace innet::mobility {

Trajectory MapMatch(const graph::PlanarGraph& graph,
                    const graph::WeightedAdjacency& adjacency,
                    const spatial::KdTree& junction_index,
                    const GpsTrace& trace) {
  Trajectory result;
  INNET_CHECK(trace.points.size() == trace.times.size());
  if (trace.points.empty()) return result;

  // Snap samples and drop consecutive duplicates.
  std::vector<graph::NodeId> anchors;
  std::vector<double> anchor_times;
  for (size_t i = 0; i < trace.points.size(); ++i) {
    graph::NodeId snapped = static_cast<graph::NodeId>(
        junction_index.NearestNeighbor(trace.points[i]));
    if (!anchors.empty() && anchors.back() == snapped) continue;
    anchors.push_back(snapped);
    anchor_times.push_back(trace.times[i]);
  }
  if (anchors.size() < 2) return result;

  result.nodes.push_back(anchors[0]);
  result.times.push_back(anchor_times[0]);
  for (size_t i = 0; i + 1 < anchors.size(); ++i) {
    std::optional<graph::Path> path =
        graph::ShortestPath(adjacency, anchors[i], anchors[i + 1]);
    if (!path.has_value()) return Trajectory{};  // Disconnected graph.
    // Interpolate arrival times along the path proportionally to length.
    double total = std::max(path->cost, 1e-9);
    double t0 = result.times.back();
    double span = std::max(anchor_times[i + 1] - t0, 1e-6);
    double walked = 0.0;
    for (size_t leg = 0; leg + 1 < path->nodes.size(); ++leg) {
      walked += graph.EdgeLength(path->edges[leg]);
      double t = t0 + span * (walked / total);
      // Guard against non-increasing times from degenerate geometry.
      t = std::max(t, result.times.back() + 1e-6);
      result.nodes.push_back(path->nodes[leg + 1]);
      result.times.push_back(t);
    }
  }
  return result;
}

GpsTrace SynthesizeGpsTrace(const graph::PlanarGraph& graph,
                            const Trajectory& trajectory,
                            double sample_interval, double noise_stddev,
                            util::Rng& rng) {
  GpsTrace trace;
  INNET_CHECK(sample_interval > 0.0);
  if (trajectory.nodes.size() < 2) return trace;
  double start = trajectory.times.front();
  double end = trajectory.times.back();
  size_t leg = 0;
  for (double t = start; t <= end; t += sample_interval) {
    while (leg + 1 < trajectory.times.size() - 1 &&
           trajectory.times[leg + 1] < t) {
      ++leg;
    }
    const geometry::Point& a = graph.Position(trajectory.nodes[leg]);
    const geometry::Point& b = graph.Position(trajectory.nodes[leg + 1]);
    double t0 = trajectory.times[leg];
    double t1 = trajectory.times[leg + 1];
    double frac = std::clamp((t - t0) / std::max(t1 - t0, 1e-9), 0.0, 1.0);
    geometry::Point p = a + (b - a) * frac;
    trace.points.emplace_back(p.x + rng.Normal(0.0, noise_stddev),
                              p.y + rng.Normal(0.0, noise_stddev));
    trace.times.push_back(t);
  }
  return trace;
}

}  // namespace innet::mobility
