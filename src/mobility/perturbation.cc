#include "mobility/perturbation.h"

#include <algorithm>
#include <queue>

#include "graph/shortest_path.h"
#include "graph/weighted_adjacency.h"
#include "util/logging.h"

namespace innet::mobility {

namespace {

// Junctions within `max_hops` of `center`, grouped by hop distance.
std::vector<std::vector<graph::NodeId>> HopRings(
    const graph::PlanarGraph& graph, graph::NodeId center, int max_hops) {
  std::vector<std::vector<graph::NodeId>> rings(max_hops + 1);
  std::vector<int> dist(graph.NumNodes(), -1);
  std::queue<graph::NodeId> queue;
  dist[center] = 0;
  rings[0].push_back(center);
  queue.push(center);
  while (!queue.empty()) {
    graph::NodeId u = queue.front();
    queue.pop();
    if (dist[u] >= max_hops) continue;
    for (const graph::Neighbor& nb : graph.NeighborsOf(u)) {
      if (dist[nb.node] >= 0) continue;
      dist[nb.node] = dist[u] + 1;
      rings[dist[nb.node]].push_back(nb.node);
      queue.push(nb.node);
    }
  }
  return rings;
}

graph::NodeId PerturbAnchor(const graph::PlanarGraph& graph,
                            graph::NodeId anchor,
                            const PerturbationOptions& options,
                            util::Rng& rng) {
  if (options.max_hops <= 0) return anchor;
  std::vector<std::vector<graph::NodeId>> rings =
      HopRings(graph, anchor, options.max_hops);
  // Geometric decay over non-empty rings.
  std::vector<double> ring_weights;
  double w = 1.0;
  for (const auto& ring : rings) {
    ring_weights.push_back(ring.empty() ? 0.0 : w);
    w *= options.alpha;
  }
  size_t ring = rng.WeightedIndex(ring_weights);
  return rings[ring][rng.UniformIndex(rings[ring].size())];
}

}  // namespace

std::vector<Trajectory> PerturbTrajectories(
    const graph::PlanarGraph& graph,
    const std::vector<Trajectory>& trajectories,
    const PerturbationOptions& options, util::Rng& rng) {
  INNET_CHECK(options.anchor_stride >= 1);
  INNET_CHECK(options.alpha > 0.0 && options.alpha <= 1.0);
  graph::WeightedAdjacency adjacency = graph::EuclideanAdjacency(graph);

  std::vector<Trajectory> perturbed;
  perturbed.reserve(trajectories.size());
  for (const Trajectory& trajectory : trajectories) {
    if (trajectory.nodes.size() < 2) continue;

    // Anchor subsampling (always keep the endpoints), then perturbation.
    std::vector<graph::NodeId> anchors;
    for (size_t i = 0; i < trajectory.nodes.size();
         i += options.anchor_stride) {
      anchors.push_back(
          PerturbAnchor(graph, trajectory.nodes[i], options, rng));
    }
    graph::NodeId last = PerturbAnchor(graph, trajectory.nodes.back(),
                                       options, rng);
    if (anchors.empty() || anchors.back() != last) anchors.push_back(last);

    // Reconnect through shortest paths.
    std::vector<graph::NodeId> nodes = {anchors[0]};
    for (size_t i = 0; i + 1 < anchors.size(); ++i) {
      if (anchors[i] == anchors[i + 1]) continue;
      std::optional<graph::Path> leg =
          graph::ShortestPath(adjacency, anchors[i], anchors[i + 1]);
      if (!leg.has_value()) continue;
      nodes.insert(nodes.end(), leg->nodes.begin() + 1, leg->nodes.end());
    }
    if (nodes.size() < 2) continue;

    // Re-time along the new path, preserving the trip's time span.
    double start = trajectory.times.front();
    double span = std::max(trajectory.times.back() - start, 1e-3);
    double total_length = 0.0;
    for (size_t i = 0; i + 1 < nodes.size(); ++i) {
      total_length += geometry::Distance(graph.Position(nodes[i]),
                                         graph.Position(nodes[i + 1]));
    }
    total_length = std::max(total_length, 1e-9);
    Trajectory out;
    out.nodes = std::move(nodes);
    out.times.resize(out.nodes.size());
    out.times[0] = start;
    double walked = 0.0;
    for (size_t i = 0; i + 1 < out.nodes.size(); ++i) {
      walked += geometry::Distance(graph.Position(out.nodes[i]),
                                   graph.Position(out.nodes[i + 1]));
      out.times[i + 1] = std::max(
          start + span * walked / total_length, out.times[i] + 1e-4);
    }
    perturbed.push_back(std::move(out));
  }
  return perturbed;
}

}  // namespace innet::mobility
