#include "mobility/road_network.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "geometry/delaunay.h"
#include "geometry/point.h"
#include "util/logging.h"

namespace innet::mobility {

namespace {

// Union-find over node ids for spanning-tree extraction.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(size_t a, size_t b) {
    size_t ra = Find(a);
    size_t rb = Find(b);
    if (ra == rb) return false;
    parent_[ra] = rb;
    return true;
  }

 private:
  std::vector<size_t> parent_;
};

// Draws junction positions with density skew and a minimum separation so
// that the Delaunay step stays well conditioned.
std::vector<geometry::Point> DrawJunctions(const RoadNetworkOptions& options,
                                           util::Rng& rng) {
  double world = options.world_size;
  std::vector<geometry::Point> centers;
  for (size_t d = 0; d < options.num_districts; ++d) {
    centers.emplace_back(rng.Uniform(0.15 * world, 0.85 * world),
                         rng.Uniform(0.15 * world, 0.85 * world));
  }
  double sigma = options.district_sigma_fraction * world;
  double min_sep =
      0.35 * world / std::sqrt(static_cast<double>(options.num_junctions));
  double min_sep2 = min_sep * min_sep;

  std::vector<geometry::Point> points;
  points.reserve(options.num_junctions);
  size_t attempts = 0;
  const size_t max_attempts = options.num_junctions * 200;
  while (points.size() < options.num_junctions && attempts < max_attempts) {
    ++attempts;
    geometry::Point p;
    if (!centers.empty() && rng.Bernoulli(options.district_weight)) {
      const geometry::Point& c = centers[rng.UniformIndex(centers.size())];
      p = geometry::Point(std::clamp(c.x + rng.Normal(0.0, sigma), 0.0, world),
                          std::clamp(c.y + rng.Normal(0.0, sigma), 0.0, world));
    } else {
      p = geometry::Point(rng.Uniform(0.0, world), rng.Uniform(0.0, world));
    }
    bool too_close = false;
    // Linear scan is acceptable at generation time (thousands of points).
    for (const geometry::Point& q : points) {
      if (geometry::DistanceSquared(p, q) < min_sep2) {
        too_close = true;
        break;
      }
    }
    if (!too_close) points.push_back(p);
  }
  INNET_CHECK(points.size() >= 8);
  return points;
}

}  // namespace

graph::PlanarGraph GenerateRoadNetwork(const RoadNetworkOptions& options,
                                       util::Rng& rng) {
  INNET_CHECK(options.num_junctions >= 8);
  INNET_CHECK(options.extra_edge_fraction >= 0.0 &&
              options.extra_edge_fraction <= 1.0);
  std::vector<geometry::Point> points = DrawJunctions(options, rng);
  geometry::Triangulation tri = geometry::DelaunayTriangulate(points);
  std::vector<std::pair<uint32_t, uint32_t>> candidates = tri.Edges();
  INNET_CHECK(!candidates.empty());
  rng.Shuffle(candidates);

  // Random spanning tree keeps the network connected; a fraction of the
  // remaining Delaunay edges provides road redundancy (rings, grids).
  DisjointSets sets(points.size());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> roads;
  std::vector<std::pair<uint32_t, uint32_t>> leftovers;
  for (const auto& [u, v] : candidates) {
    if (sets.Union(u, v)) {
      roads.emplace_back(u, v);
    } else {
      leftovers.push_back({u, v});
    }
  }
  INNET_CHECK(roads.size() == points.size() - 1);  // Tree of a connected mesh.
  size_t extra = static_cast<size_t>(
      options.extra_edge_fraction * static_cast<double>(leftovers.size()));
  for (size_t i = 0; i < extra; ++i) {
    roads.emplace_back(leftovers[i].first, leftovers[i].second);
  }
  return graph::PlanarGraph(std::move(points), std::move(roads));
}

}  // namespace innet::mobility
