// Synthetic planar road-network generator.
//
// Substitution for the Beijing OSM road network of §5.1 (see DESIGN.md §2):
// junctions are drawn from a mixture of uniform background and Gaussian
// "district" clusters (density skew), meshed by Delaunay triangulation, and
// thinned to road density by keeping a random spanning tree plus a fraction
// of the remaining Delaunay edges. The result is guaranteed planar (subset
// of a triangulation), connected, and irregular (non-axis-aligned faces) —
// the properties that drive dead-space behaviour in the paper.
#ifndef INNET_MOBILITY_ROAD_NETWORK_H_
#define INNET_MOBILITY_ROAD_NETWORK_H_

#include "graph/planar_graph.h"
#include "util/rng.h"

namespace innet::mobility {

/// Generator knobs. Defaults produce a mid-size city-like network.
struct RoadNetworkOptions {
  /// Number of junctions to place.
  size_t num_junctions = 600;

  /// Side length of the square world, in meters.
  double world_size = 10000.0;

  /// Fraction of non-spanning-tree Delaunay edges kept as roads. 0 gives a
  /// tree (maximal dead ends); 1 gives the full triangulation.
  double extra_edge_fraction = 0.6;

  /// Number of Gaussian density clusters ("districts").
  size_t num_districts = 4;

  /// Fraction of junctions drawn from districts rather than the uniform
  /// background.
  double district_weight = 0.45;

  /// District standard deviation as a fraction of world_size.
  double district_sigma_fraction = 0.08;
};

/// Generates the mobility graph. Requires num_junctions >= 8.
graph::PlanarGraph GenerateRoadNetwork(const RoadNetworkOptions& options,
                                       util::Rng& rng);

}  // namespace innet::mobility

#endif  // INNET_MOBILITY_ROAD_NETWORK_H_
