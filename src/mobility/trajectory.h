// Moving-object trajectories on the mobility graph, the crossing events they
// induce on the sensing graph, and a brute-force occupancy oracle used as
// independent ground truth in tests.
//
// Visibility convention. Objects enter the domain through the infinity node
// ⋆v_ext (Fig. 8a): a trajectory starting at a gateway junction (a junction
// on the domain's outer boundary) is detected entering that junction's cell
// at its start time via the virtual ⋆v_ext sensing edge, and occupies cells
// from nodes[0] onward. A trajectory starting in the interior cannot be
// detected appearing, so it becomes visible only with its first road
// traversal (arriving at nodes[1]). In both cases the object remains
// assigned to its final junction cell after the trajectory ends (it entered
// and never left, like u_r in Fig. 2). Differential-form counts and
// OccupancyOracle share this convention, so they agree exactly on the
// unsampled graph whenever all trajectories start at gateways.
#ifndef INNET_MOBILITY_TRAJECTORY_H_
#define INNET_MOBILITY_TRAJECTORY_H_

#include <vector>

#include "graph/planar_graph.h"

namespace innet::mobility {

/// A path through the mobility graph: consecutive nodes must be adjacent in
/// the graph, and times (arrival time at each node) strictly increase.
struct Trajectory {
  std::vector<graph::NodeId> nodes;
  std::vector<double> times;

  bool Valid(const graph::PlanarGraph& graph) const;
};

/// One sensor-edge crossing: a traversal of road `edge` at time `time`,
/// `forward` meaning from the road's canonical u endpoint to v.
struct CrossingEvent {
  graph::EdgeId edge = graph::kInvalidEdge;
  bool forward = true;
  double time = 0.0;
};

/// Crossing events of one trajectory, in trajectory order.
std::vector<CrossingEvent> ExtractCrossingEvents(
    const graph::PlanarGraph& graph, const Trajectory& trajectory);

/// Crossing events of all trajectories, merged and sorted by time (the order
/// in which the sensor network observes them).
std::vector<CrossingEvent> ExtractAllCrossingEvents(
    const graph::PlanarGraph& graph,
    const std::vector<Trajectory>& trajectories);

/// Gateway junctions: the junctions on the outer face of the mobility graph,
/// through which objects enter the domain from ⋆v_ext.
std::vector<graph::NodeId> GatewayJunctions(const graph::PlanarGraph& graph);

/// Junction mask of GatewayJunctions().
std::vector<bool> GatewayMask(const graph::PlanarGraph& graph);

/// Brute-force per-object ground truth, independent of the differential-form
/// machinery. O(total trajectory length) per query; test/validation use only.
class OccupancyOracle {
 public:
  /// `visible_from_start` (optional, indexed by NodeId) marks gateway
  /// junctions: trajectories starting there occupy their first cell from
  /// their start time (⋆v_ext entry); others from their first crossing.
  OccupancyOracle(const graph::PlanarGraph& graph,
                  const std::vector<Trajectory>& trajectories,
                  const std::vector<bool>* visible_from_start = nullptr);

  /// Number of objects whose current junction cell is flagged in `in_region`
  /// at time t (visibility convention above).
  int64_t OccupancyAt(const std::vector<bool>& in_region, double t) const;

  /// OccupancyAt(t1) - OccupancyAt(t0): the transient count of Thm 4.3.
  int64_t NetChange(const std::vector<bool>& in_region, double t0,
                    double t1) const;

  /// Number of distinct objects that were inside the region at any moment
  /// during [t0, t1] (used by the Euler-histogram baseline discussion).
  int64_t DistinctVisitors(const std::vector<bool>& in_region, double t0,
                           double t1) const;

 private:
  // Per object: the visible cells with their occupancy start times
  // (cells[i] occupied during [starts[i], starts[i+1]), last one to +inf).
  struct VisibleTrack {
    std::vector<graph::NodeId> cells;
    std::vector<double> starts;
  };
  std::vector<VisibleTrack> tracks_;
};

}  // namespace innet::mobility

#endif  // INNET_MOBILITY_TRAJECTORY_H_
