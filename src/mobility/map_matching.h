// Map matching: GPS traces -> mobility-graph trajectories (§5.1.3: "we
// map-match the trajectories to the road network by mapping each trajectory
// location to the nearest node and connecting them via the shortest path").
#ifndef INNET_MOBILITY_MAP_MATCHING_H_
#define INNET_MOBILITY_MAP_MATCHING_H_

#include <vector>

#include "geometry/point.h"
#include "graph/planar_graph.h"
#include "graph/weighted_adjacency.h"
#include "mobility/trajectory.h"
#include "spatial/kdtree.h"
#include "util/rng.h"

namespace innet::mobility {

/// A raw GPS trace: sampled positions with strictly increasing timestamps.
struct GpsTrace {
  std::vector<geometry::Point> points;
  std::vector<double> times;
};

/// Snaps a GPS trace to the mobility graph. Each sample maps to its nearest
/// junction; consecutive distinct junctions are connected by the shortest
/// path, with arrival times interpolated along the path proportionally to
/// edge length. Returns an empty trajectory for traces matching fewer than
/// two distinct junctions.
Trajectory MapMatch(const graph::PlanarGraph& graph,
                    const graph::WeightedAdjacency& adjacency,
                    const spatial::KdTree& junction_index,
                    const GpsTrace& trace);

/// Synthesizes a noisy GPS trace from a ground-truth trajectory: samples
/// positions every `sample_interval` seconds along the path and perturbs
/// them with Gaussian noise of the given standard deviation. Used to test
/// the map-matching round trip and by the examples.
GpsTrace SynthesizeGpsTrace(const graph::PlanarGraph& graph,
                            const Trajectory& trajectory,
                            double sample_interval, double noise_stddev,
                            util::Rng& rng);

}  // namespace innet::mobility

#endif  // INNET_MOBILITY_MAP_MATCHING_H_
