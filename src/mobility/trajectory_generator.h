// Synthetic moving-object workload: origin-destination trips routed over the
// mobility graph (substitution for the T-Drive/Geolife traces, DESIGN.md §2).
//
// Trips start at random times over a multi-hour horizon; origins and
// destinations are biased toward "hotspot" junctions to reproduce the
// density skew of urban GPS data. Travel times follow per-trip speeds with
// jitter.
#ifndef INNET_MOBILITY_TRAJECTORY_GENERATOR_H_
#define INNET_MOBILITY_TRAJECTORY_GENERATOR_H_

#include <vector>

#include "graph/planar_graph.h"
#include "mobility/trajectory.h"
#include "util/rng.h"

namespace innet::mobility {

/// Workload knobs.
struct TrajectoryOptions {
  /// Number of trips to generate.
  size_t num_trajectories = 4000;

  /// Time horizon in seconds; trips depart in [0, 0.8 * horizon].
  double horizon = 6.0 * 3600.0;

  /// Mean and standard deviation of per-trip speed (m/s); clamped below at
  /// 1 m/s.
  double speed_mean = 12.0;
  double speed_stddev = 4.0;

  /// Number of hotspot junctions and the probability that a trip endpoint is
  /// drawn near a hotspot instead of uniformly.
  size_t num_hotspots = 6;
  double hotspot_bias = 0.55;

  /// Endpoints "near" a hotspot are drawn from its this-many nearest
  /// junctions.
  size_t hotspot_spread = 25;

  /// Route every object into the domain from its nearest gateway junction
  /// (the ⋆v_ext entry of Fig. 8a) before starting its trip. Required for
  /// exact differential-form counting; see mobility/trajectory.h.
  bool enter_from_boundary = true;
};

/// Generates trips over `graph`. Every returned trajectory has at least two
/// nodes (trips whose origin equals their destination are redrawn).
std::vector<Trajectory> GenerateTrajectories(const graph::PlanarGraph& graph,
                                             const TrajectoryOptions& options,
                                             util::Rng& rng);

}  // namespace innet::mobility

#endif  // INNET_MOBILITY_TRAJECTORY_GENERATOR_H_
