#include "mobility/trajectory.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace innet::mobility {

bool Trajectory::Valid(const graph::PlanarGraph& graph) const {
  if (nodes.size() != times.size()) return false;
  for (size_t i = 0; i + 1 < nodes.size(); ++i) {
    if (times[i + 1] <= times[i]) return false;
    if (graph.EdgeBetween(nodes[i], nodes[i + 1]) == graph::kInvalidEdge) {
      return false;
    }
  }
  return true;
}

std::vector<CrossingEvent> ExtractCrossingEvents(
    const graph::PlanarGraph& graph, const Trajectory& trajectory) {
  std::vector<CrossingEvent> events;
  if (trajectory.nodes.size() < 2) return events;
  events.reserve(trajectory.nodes.size() - 1);
  for (size_t i = 0; i + 1 < trajectory.nodes.size(); ++i) {
    graph::NodeId a = trajectory.nodes[i];
    graph::NodeId b = trajectory.nodes[i + 1];
    graph::EdgeId e = graph.EdgeBetween(a, b);
    INNET_CHECK(e != graph::kInvalidEdge);
    // The crossing is stamped with the arrival time at the next junction.
    events.push_back({e, graph.Edge(e).u == a, trajectory.times[i + 1]});
  }
  return events;
}

std::vector<CrossingEvent> ExtractAllCrossingEvents(
    const graph::PlanarGraph& graph,
    const std::vector<Trajectory>& trajectories) {
  std::vector<CrossingEvent> all;
  for (const Trajectory& trajectory : trajectories) {
    std::vector<CrossingEvent> events =
        ExtractCrossingEvents(graph, trajectory);
    all.insert(all.end(), events.begin(), events.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const CrossingEvent& a, const CrossingEvent& b) {
                     return a.time < b.time;
                   });
  return all;
}

std::vector<graph::NodeId> GatewayJunctions(const graph::PlanarGraph& graph) {
  const graph::FaceRecord& outer = graph.Face(graph.OuterFace());
  std::vector<graph::NodeId> gateways = outer.boundary_nodes;
  std::sort(gateways.begin(), gateways.end());
  gateways.erase(std::unique(gateways.begin(), gateways.end()),
                 gateways.end());
  return gateways;
}

std::vector<bool> GatewayMask(const graph::PlanarGraph& graph) {
  std::vector<bool> mask(graph.NumNodes(), false);
  for (graph::NodeId n : GatewayJunctions(graph)) mask[n] = true;
  return mask;
}

OccupancyOracle::OccupancyOracle(const graph::PlanarGraph& graph,
                                 const std::vector<Trajectory>& trajectories,
                                 const std::vector<bool>* visible_from_start) {
  (void)graph;
  tracks_.reserve(trajectories.size());
  for (const Trajectory& trajectory : trajectories) {
    if (trajectory.nodes.empty()) continue;
    INNET_CHECK(trajectory.nodes.size() == trajectory.times.size());
    bool gateway_start = visible_from_start != nullptr &&
                         (*visible_from_start)[trajectory.nodes.front()];
    // Gateway starts are visible from nodes[0] (⋆v_ext entry); interior
    // starts from the first crossing (nodes[1]).
    size_t first = gateway_start ? 0 : 1;
    if (trajectory.nodes.size() <= first) continue;  // Never visible.
    VisibleTrack track;
    track.cells.assign(trajectory.nodes.begin() + first,
                       trajectory.nodes.end());
    track.starts.assign(trajectory.times.begin() + first,
                        trajectory.times.end());
    tracks_.push_back(std::move(track));
  }
}

int64_t OccupancyOracle::OccupancyAt(const std::vector<bool>& in_region,
                                     double t) const {
  int64_t count = 0;
  for (const VisibleTrack& track : tracks_) {
    if (t < track.starts.front()) continue;  // Not yet visible.
    auto it = std::upper_bound(track.starts.begin(), track.starts.end(), t);
    size_t idx = static_cast<size_t>(it - track.starts.begin()) - 1;
    if (in_region[track.cells[idx]]) ++count;
  }
  return count;
}

int64_t OccupancyOracle::NetChange(const std::vector<bool>& in_region,
                                   double t0, double t1) const {
  return OccupancyAt(in_region, t1) - OccupancyAt(in_region, t0);
}

int64_t OccupancyOracle::DistinctVisitors(const std::vector<bool>& in_region,
                                          double t0, double t1) const {
  int64_t count = 0;
  for (const VisibleTrack& track : tracks_) {
    bool visited = false;
    for (size_t i = 0; i < track.cells.size() && !visited; ++i) {
      double start = track.starts[i];
      double end = (i + 1 < track.starts.size())
                       ? track.starts[i + 1]
                       : std::numeric_limits<double>::infinity();
      // Cell occupied during [start, end); overlap with [t0, t1]?
      if (in_region[track.cells[i]] && start <= t1 && end > t0) {
        visited = true;
      }
    }
    if (visited) ++count;
  }
  return count;
}

}  // namespace innet::mobility
