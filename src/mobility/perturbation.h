// Local trajectory perturbation, the input-privacy baseline of the related
// work ([11] Cunningham et al., local differential privacy for trajectory
// sharing): each reported anchor junction is replaced by a junction within a
// hop radius (probability decaying geometrically with hop distance), and the
// trajectory is re-routed through the perturbed anchors.
//
// Contrast with privacy::PrivateEdgeStore (output noise on aggregates): here
// the data themselves are perturbed before ever reaching the network, so no
// honest count exists downstream. bench/ablation_privacy compares the two
// accuracy regimes.
#ifndef INNET_MOBILITY_PERTURBATION_H_
#define INNET_MOBILITY_PERTURBATION_H_

#include <vector>

#include "graph/planar_graph.h"
#include "mobility/trajectory.h"
#include "util/rng.h"

namespace innet::mobility {

/// Perturbation knobs.
struct PerturbationOptions {
  /// Maximum hop distance of a perturbed anchor from the true junction.
  /// 0 disables perturbation.
  int max_hops = 2;

  /// P(distance = d) ∝ alpha^d for d in [0, max_hops]; smaller alpha keeps
  /// anchors closer to the truth.
  double alpha = 0.7;

  /// Every anchor_stride-th junction of the trajectory is used as an
  /// anchor; intermediate junctions are re-derived by shortest-path
  /// reconnection.
  size_t anchor_stride = 4;
};

/// Perturbs each trajectory independently. Timestamps are re-assigned along
/// the re-routed path preserving each trip's start and end times. Returned
/// trajectories are valid paths of `graph`; trips that collapse to a single
/// junction are dropped.
std::vector<Trajectory> PerturbTrajectories(
    const graph::PlanarGraph& graph,
    const std::vector<Trajectory>& trajectories,
    const PerturbationOptions& options, util::Rng& rng);

}  // namespace innet::mobility

#endif  // INNET_MOBILITY_PERTURBATION_H_
