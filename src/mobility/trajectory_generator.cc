#include "mobility/trajectory_generator.h"

#include <algorithm>

#include "graph/shortest_path.h"
#include "graph/weighted_adjacency.h"
#include "spatial/kdtree.h"
#include "util/logging.h"

namespace innet::mobility {

std::vector<Trajectory> GenerateTrajectories(const graph::PlanarGraph& graph,
                                             const TrajectoryOptions& options,
                                             util::Rng& rng) {
  INNET_CHECK(graph.NumNodes() >= 2);
  graph::WeightedAdjacency adjacency = graph::EuclideanAdjacency(graph);

  // Hotspots and their neighborhoods.
  spatial::KdTree junction_index(graph.positions());
  std::vector<std::vector<size_t>> hotspot_pools;
  for (size_t h = 0; h < options.num_hotspots; ++h) {
    graph::NodeId center =
        static_cast<graph::NodeId>(rng.UniformIndex(graph.NumNodes()));
    hotspot_pools.push_back(junction_index.KNearest(
        graph.Position(center),
        std::min(options.hotspot_spread, graph.NumNodes())));
  }

  auto draw_endpoint = [&]() -> graph::NodeId {
    if (!hotspot_pools.empty() && rng.Bernoulli(options.hotspot_bias)) {
      const std::vector<size_t>& pool =
          hotspot_pools[rng.UniformIndex(hotspot_pools.size())];
      return static_cast<graph::NodeId>(pool[rng.UniformIndex(pool.size())]);
    }
    return static_cast<graph::NodeId>(rng.UniformIndex(graph.NumNodes()));
  };

  // Gateway entry machinery (⋆v_ext): nearest-gateway lookup for prepending
  // the drive-in leg.
  std::vector<graph::NodeId> gateways = GatewayJunctions(graph);
  std::vector<geometry::Point> gateway_positions;
  gateway_positions.reserve(gateways.size());
  for (graph::NodeId g : gateways) {
    gateway_positions.push_back(graph.Position(g));
  }
  spatial::KdTree gateway_index(gateway_positions);

  std::vector<Trajectory> trajectories;
  trajectories.reserve(options.num_trajectories);
  while (trajectories.size() < options.num_trajectories) {
    graph::NodeId origin = draw_endpoint();
    graph::NodeId destination = draw_endpoint();
    if (origin == destination) continue;
    std::optional<graph::Path> path =
        graph::ShortestPath(adjacency, origin, destination);
    if (!path.has_value() || path->nodes.size() < 2) continue;

    double speed = std::max(1.0, rng.Normal(options.speed_mean,
                                            options.speed_stddev));
    std::vector<graph::NodeId> nodes;
    std::vector<graph::EdgeId> edges;
    if (options.enter_from_boundary && origin != destination) {
      // Drive in from the gateway nearest to the trip origin.
      graph::NodeId gateway =
          gateways[gateway_index.NearestNeighbor(graph.Position(origin))];
      if (gateway != origin) {
        std::optional<graph::Path> entry =
            graph::ShortestPath(adjacency, gateway, origin);
        if (!entry.has_value()) continue;
        nodes = entry->nodes;
        edges = entry->edges;
      }
    }
    if (nodes.empty()) {
      nodes = path->nodes;
      edges = path->edges;
    } else {
      // Concatenate entry leg + trip (entry ends at the trip origin).
      nodes.insert(nodes.end(), path->nodes.begin() + 1, path->nodes.end());
      edges.insert(edges.end(), path->edges.begin(), path->edges.end());
    }

    Trajectory trajectory;
    trajectory.nodes = std::move(nodes);
    trajectory.times.resize(trajectory.nodes.size());
    trajectory.times[0] = rng.Uniform(0.0, 0.8 * options.horizon);
    for (size_t i = 0; i + 1 < trajectory.nodes.size(); ++i) {
      double leg = graph.EdgeLength(edges[i]) / speed;
      trajectory.times[i + 1] = trajectory.times[i] + std::max(leg, 1e-3);
    }
    trajectories.push_back(std::move(trajectory));
  }
  return trajectories;
}

}  // namespace innet::mobility
