// Metric and trace exporters (docs/OBSERVABILITY.md).
//
// Two metric formats:
//   - Prometheus text exposition format: `# HELP` / `# TYPE` comments,
//     `name value` samples, histogram `_bucket{le="..."}` / `_sum` /
//     `_count` series — scrapeable by any Prometheus-compatible collector.
//   - JSON lines: one self-describing JSON object per metric, for ad-hoc
//     jq/pandas consumption.
// Traces export as JSON lines: one object per sampled query carrying its
// stage breakdown and annotations.
#ifndef INNET_OBS_EXPORT_H_
#define INNET_OBS_EXPORT_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace innet::obs {

/// Prometheus text exposition format, metrics in name order.
void WritePrometheus(const MetricsRegistry& registry, std::ostream& out);

/// One JSON object per metric per line, e.g.
///   {"type":"counter","name":"innet_cache_hits","value":42}
void WriteMetricsJsonLines(const MetricsRegistry& registry,
                           std::ostream& out);

/// One JSON object per trace per line:
///   {"query":3,"total_micros":12.5,
///    "stages":[{"name":"boundary_resolution","start_micros":0.1,
///               "micros":7.9,"depth":0},...],
///    "cache_hit":1,...}
void WriteTracesJsonLines(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    std::ostream& out);

/// Writes `registry` to `path`; a ".json"/".jsonl" extension selects JSON
/// lines, anything else the Prometheus text format. Returns false (and
/// logs) when the file cannot be written.
bool ExportMetricsToFile(const MetricsRegistry& registry,
                         const std::string& path);

/// Writes traces as JSON lines to `path`. Returns false (and logs) on
/// failure.
bool ExportTracesToFile(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    const std::string& path);

/// Chrome trace-event format (the JSON array variant): one complete
/// ("ph":"X") event per stage span plus one per whole query, timestamps
/// and durations in microseconds, the query id as the tid so each query
/// renders as its own track. Loads directly in chrome://tracing and
/// Perfetto's legacy importer.
void WriteTracesChromeJson(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    std::ostream& out);

/// Writes the Chrome trace-event array to `path`. Returns false (and
/// logs) on failure.
bool ExportTracesChromeToFile(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    const std::string& path);

/// Escapes a string for embedding inside a JSON string literal.
std::string JsonEscape(const std::string& text);

/// Appends `value` as a JSON number; non-finite values become `null`
/// (JSON has no literal for them), so consumers see an explicit hole
/// instead of a parse error. Shared with the /varz telemetry endpoint.
void JsonAppendNumber(std::string* out, double value);

/// Maps an arbitrary metric name onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every invalid character becomes `_`, and a
/// leading digit gains a `_` prefix. The exporters apply this at write
/// time so registry names with reserved characters still produce a valid
/// exposition.
std::string PrometheusSanitizeName(const std::string& name);

/// Escapes a label VALUE for the exposition format: backslash, double
/// quote, and newline are escaped per the Prometheus text-format spec.
std::string PrometheusEscapeLabel(const std::string& value);

/// Escapes HELP text: backslash and newline (HELP lines are
/// newline-terminated, so a raw newline would truncate the help and
/// corrupt the next sample).
std::string PrometheusEscapeHelp(const std::string& help);

}  // namespace innet::obs

#endif  // INNET_OBS_EXPORT_H_
