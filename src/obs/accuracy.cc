#include "obs/accuracy.h"

#include <cmath>
#include <string>

#include "obs/query_cost.h"
#include "util/logging.h"

namespace innet::obs {

namespace {

// Signed relative error buckets: symmetric around 0, finer near the small
// errors the paper's headline claims live in (|err| <= ~14%).
std::vector<double> RelErrorBounds() {
  return {-1.0,  -0.5,  -0.25, -0.1, -0.05, -0.02, -0.01, -0.005, 0.0,
          0.005, 0.01,  0.02,  0.05, 0.1,   0.25,  0.5,   1.0};
}

// Dead space is a fraction of the query region; overshoot (upper bounds)
// can exceed 1 on tiny regions, caught by the +inf bucket.
std::vector<double> DeadSpaceBounds() {
  return {0.0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

MetricsRegistry& Resolve(MetricsRegistry* registry) {
  return registry != nullptr ? *registry : MetricsRegistry::Global();
}

}  // namespace

AccuracyMonitor::AccuracyMonitor(const AccuracyMonitorOptions& options)
    : options_(options) {
  INNET_CHECK(options_.shadow_every >= 1);
  MetricsRegistry& registry = Resolve(options_.registry);
  comparisons_ = &registry.GetCounter(
      "innet_shadow_checks",
      "Sampled answers shadow-executed against the exact unsampled path");
  rel_error_ = &registry.GetHistogram(
      "innet_accuracy_rel_error", RelErrorBounds(),
      "Signed relative error of sampled answers vs the exact count");
  for (size_t d = 0; d < kDeciles; ++d) {
    rel_error_by_decile_[d] = &registry.GetHistogram(
        "innet_accuracy_rel_error_decile_" + std::to_string(d),
        RelErrorBounds(),
        "Signed relative error, region-size decile " + std::to_string(d));
  }
  deadspace_ = &registry.GetHistogram(
      "innet_deadspace_fraction", DeadSpaceBounds(),
      "Dead-space area of resolved regions as a fraction of the query "
      "region");
  interval_width_ = &registry.GetHistogram(
      "innet_interval_width", Histogram::ExponentialBounds(1.0, 2.0, 14),
      "Width of degraded-mode count intervals (0 excluded; point answers "
      "observe nothing)");
}

double AccuracyMonitor::SignedRelativeError(double exact, double approx) {
  if (exact == 0.0) {
    if (approx == 0.0) return 0.0;
    return approx > 0.0 ? 1.0 : -1.0;
  }
  return (approx - exact) / std::abs(exact);
}

void AccuracyMonitor::RecordComparison(double approx, double exact,
                                       size_t region_cells,
                                       double deadspace_fraction,
                                       double interval_width) {
  double signed_error = SignedRelativeError(exact, approx);
  comparisons_->Increment();
  rel_error_->Observe(signed_error);
  // Shared bucketing with the query digest table (obs/query_cost.h), so
  // `/queryz` deciles and these histograms agree by construction.
  size_t decile = RegionSizeDecile(region_cells, options_.total_cells);
  rel_error_by_decile_[decile]->Observe(signed_error);
  deadspace_->Observe(deadspace_fraction);
  if (interval_width > 0.0) interval_width_->Observe(interval_width);

  std::lock_guard<std::mutex> lock(mutex_);
  ++count_;
  abs_error_sum_ += std::abs(signed_error);
  signed_error_sum_ += signed_error;
}

uint64_t AccuracyMonitor::Comparisons() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double AccuracyMonitor::MeanAbsRelError() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : abs_error_sum_ / static_cast<double>(count_);
}

double AccuracyMonitor::MeanSignedRelError() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : signed_error_sum_ / static_cast<double>(count_);
}

DriftDetector::DriftDetector(const DriftDetectorOptions& options)
    : options_(options) {
  INNET_CHECK(options_.window >= 1);
  INNET_CHECK(options_.min_observations >= 1);
  MetricsRegistry& registry = Resolve(options_.registry);
  alarm_ = &registry.GetGauge(
      "innet_model_drift_alarm",
      "1 while a learned count model's rolling residual exceeds the pinned "
      "drift threshold");
  residual_ = &registry.GetGauge(
      "innet_model_drift_residual",
      "Rolling mean relative residual of learned count-model predictions");
}

void DriftDetector::Observe(double predicted, double observed) {
  double denom = std::abs(observed) > 1.0 ? std::abs(observed) : 1.0;
  double residual = std::abs(predicted - observed) / denom;
  window_.push_back(residual);
  window_sum_ += residual;
  if (window_.size() > options_.window) {
    window_sum_ -= window_.front();
    window_.pop_front();
  }
  ++observations_;

  double rolling = RollingResidual();
  residual_->Set(rolling);
  bool over = observations_ >= options_.min_observations &&
              window_.size() >= options_.min_observations &&
              rolling > options_.threshold;
  if (over && !alarmed_) fired_ = true;
  alarmed_ = over;
  alarm_->Set(alarmed_ ? 1.0 : 0.0);
}

double DriftDetector::RollingResidual() const {
  if (window_.empty()) return 0.0;
  return window_sum_ / static_cast<double>(window_.size());
}

}  // namespace innet::obs
