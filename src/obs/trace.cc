#include "obs/trace.h"

#include <algorithm>

namespace innet::obs {

Span::Span(QueryTrace* trace, const char* stage) : trace_(trace) {
  if (trace_ == nullptr) return;
  index_ = trace_->stages_.size();
  TraceStage record;
  record.name = stage;
  record.start_micros = trace_->timer_.ElapsedMicros();
  record.depth = trace_->depth_++;
  trace_->stages_.push_back(std::move(record));
}

Span::~Span() {
  if (trace_ == nullptr) return;
  // Start and end both read the trace's clock, so sibling/parent spans
  // nest consistently: a child's [start, start+elapsed] lies inside its
  // parent's.
  double now = trace_->timer_.ElapsedMicros();
  TraceStage& record = trace_->stages_[index_];
  record.elapsed_micros = now - record.start_micros;
  --trace_->depth_;
  trace_->total_micros_ = std::max(trace_->total_micros_, now);
}

Tracer::Tracer(const TracerOptions& options) : options_(options) {}

std::unique_ptr<QueryTrace> Tracer::StartQuery() {
  uint64_t seq = started_.fetch_add(1, std::memory_order_relaxed);
  if (options_.sample_every == 0 || options_.ring_capacity == 0 ||
      seq % options_.sample_every != 0) {
    return nullptr;
  }
  sampled_.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<QueryTrace>(seq);
}

void Tracer::Finish(std::unique_ptr<QueryTrace> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

std::vector<std::unique_ptr<QueryTrace>> Tracer::SnapshotRing() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::unique_ptr<QueryTrace>> out;
  out.reserve(ring_.size());
  for (const std::unique_ptr<QueryTrace>& trace : ring_) {
    out.push_back(std::make_unique<QueryTrace>(*trace));
  }
  return out;
}

std::vector<std::unique_ptr<QueryTrace>> Tracer::Drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::unique_ptr<QueryTrace>> out;
  out.reserve(ring_.size());
  for (std::unique_ptr<QueryTrace>& trace : ring_) {
    out.push_back(std::move(trace));
  }
  ring_.clear();
  return out;
}

}  // namespace innet::obs
