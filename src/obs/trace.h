// Scoped per-query trace spans (docs/OBSERVABILITY.md).
//
// A QueryTrace records the stage breakdown of one query — boundary
// resolution, cache lookup, form integration, degraded rerouting, dispatch
// — as (name, start offset, duration, nesting depth) records plus numeric
// annotations (estimate, cache_hit, ...). Traces are sampled: the Tracer
// hands out a trace for 1 of every `sample_every` queries and keeps the
// most recent `ring_capacity` finished traces in a ring buffer.
//
// Recording is single-threaded per trace: each query owns its trace for
// the duration of its evaluation (worker threads never share one), so
// Span/Annotate need no synchronization. Only Finish() and Drain() touch
// the shared ring and are locked.
#ifndef INNET_OBS_TRACE_H_
#define INNET_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace innet::obs {

/// One completed (or in-flight) span inside a query trace.
struct TraceStage {
  std::string name;
  /// Offset of the span start from the trace start.
  double start_micros = 0.0;
  double elapsed_micros = 0.0;
  /// 0 for top-level spans, +1 per enclosing live span.
  int depth = 0;
};

/// Stage record of one sampled query. Created by Tracer::StartQuery.
class QueryTrace {
 public:
  explicit QueryTrace(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }
  const std::vector<TraceStage>& stages() const { return stages_; }
  const std::vector<std::pair<std::string, double>>& annotations() const {
    return annotations_;
  }

  /// Attaches a numeric fact to the trace (estimate, cache_hit, ...).
  void Annotate(const std::string& key, double value) {
    annotations_.emplace_back(key, value);
  }

  /// Total time from StartQuery to the last finished span.
  double TotalMicros() const { return total_micros_; }

 private:
  friend class Span;
  friend class Tracer;

  uint64_t id_;
  util::Timer timer_;
  int depth_ = 0;
  double total_micros_ = 0.0;
  std::vector<TraceStage> stages_;
  std::vector<std::pair<std::string, double>> annotations_;
};

/// RAII stage span. A null trace makes every operation a no-op, so call
/// sites stay unconditional:
///
///   obs::Span span(trace, "boundary_resolution");   // trace may be null
class Span {
 public:
  Span(QueryTrace* trace, const char* stage);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  QueryTrace* trace_;
  size_t index_ = 0;
};

/// Trace sampling and retention knobs.
struct TracerOptions {
  /// Finished traces retained (oldest evicted first).
  size_t ring_capacity = 256;
  /// Sample 1 of every N queries; 0 disables tracing entirely.
  uint64_t sample_every = 1;
};

/// Hands out sampled QueryTraces and retains finished ones.
class Tracer {
 public:
  explicit Tracer(const TracerOptions& options);

  /// Returns a trace for sampled queries, nullptr otherwise. Thread-safe.
  std::unique_ptr<QueryTrace> StartQuery();

  /// Publishes a finished trace into the ring. Null traces are ignored, so
  /// `tracer.Finish(std::move(trace))` is safe on the unsampled path.
  void Finish(std::unique_ptr<QueryTrace> trace);

  /// Removes and returns every retained trace, oldest first.
  std::vector<std::unique_ptr<QueryTrace>> Drain();

  /// Deep-copies the retained traces, oldest first, without draining — the
  /// /traces telemetry endpoint reads the ring while queries keep
  /// finishing into it.
  std::vector<std::unique_ptr<QueryTrace>> SnapshotRing() const;

  uint64_t Started() const {
    return started_.load(std::memory_order_relaxed);
  }
  uint64_t Sampled() const {
    return sampled_.load(std::memory_order_relaxed);
  }

 private:
  TracerOptions options_;
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> sampled_{0};
  mutable std::mutex mutex_;
  std::deque<std::unique_ptr<QueryTrace>> ring_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_TRACE_H_
