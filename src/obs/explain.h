// Per-query answer provenance (docs/OBSERVABILITY.md §"Accuracy & EXPLAIN").
//
// An ExplainRecord captures HOW one range query was answered: which sampled
// faces were unioned into the resolved region, how many boundary sensor
// edges were integrated, the dead-space gap between the query region and
// the face union, which store family produced the counts (exact tracking
// forms vs learned count models and their raw-buffer split), whether the
// boundary cache served the resolution, and the degraded-mode interval
// when faults widened the answer.
//
// The record is plain data with deterministic serialization: every field is
// derived from the frozen deployment and the query alone (no wall-clock
// members), so two runs — serial or 8-worker, cache-cold or cache-warm —
// produce byte-identical JSON for the same query. The assembling layers
// live above obs (core::SampledQueryProcessor / UnsampledQueryProcessor
// fill the resolution fields, runtime::BatchQueryEngine the cache fields),
// keeping obs dependency-free below util.
#ifndef INNET_OBS_EXPLAIN_H_
#define INNET_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace innet::obs {

/// Provenance of one answered range query. Fields default to the empty /
/// zero state so partially assembled records (e.g. a missed query) still
/// serialize cleanly.
struct ExplainRecord {
  /// Count semantics ("static" / "transient") and region approximation
  /// ("lower" / "upper"; "exact" on the unsampled path).
  std::string kind;
  std::string bound;
  /// Which processor produced the answer: "sampled", "unsampled", or
  /// "degraded" (fault-rerouted sampled path).
  std::string path;

  /// Resolved G̃ faces unioned into the answer region, ascending. Empty for
  /// a miss and for the unsampled path (which has no sampled faces).
  std::vector<uint32_t> faces;

  /// Junction cells inside the query region Q_R, and covered by the
  /// resolved face union. Lower-bound regions satisfy resolved <= region,
  /// upper-bound regions resolved >= region.
  size_t region_cells = 0;
  size_t resolved_cells = 0;
  /// |resolved_cells - region_cells| / region_cells: the dead-space area
  /// the approximation introduces, as a fraction of the query region
  /// (uncovered cells for lower bounds, overshoot for upper bounds).
  double deadspace_fraction = 0.0;

  /// Boundary sensor edges integrated and distinct sensors contacted.
  size_t boundary_edges = 0;
  size_t boundary_sensors = 0;

  /// Store provenance: "exact" (tracking forms) or "learned" (count
  /// models), with the event split between modeled history and raw
  /// buffered events at answer time.
  std::string store;
  size_t store_modeled_events = 0;
  size_t store_raw_events = 0;

  /// Boundary-cache path (assembled by the batch engine; single-shot
  /// processors leave cache_used false).
  bool cache_used = false;
  bool cache_hit = false;

  /// Answer fields mirrored from QueryAnswer (timings excluded by design).
  bool missed = false;
  bool degraded = false;
  double answer = 0.0;
  double interval_lo = 0.0;
  double interval_hi = 0.0;
  /// Degraded-interval width from the faults layer; 0 for point answers.
  double interval_width = 0.0;
  size_t dead_boundary_edges = 0;
  size_t rerouted_faces = 0;

  /// One deterministic JSON object (no trailing newline). Keys are emitted
  /// in a fixed order; the CI explain-schema check relies on `faces`,
  /// `boundary_edges`, `deadspace_fraction`, `answer`, and `interval`
  /// (serialized as the two-element array [lo, hi]) being present.
  std::string ToJson() const;
};

}  // namespace innet::obs

#endif  // INNET_OBS_EXPLAIN_H_
