#include "obs/metrics.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace innet::obs {

namespace internal {

size_t ThreadCellIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

Counter::Counter(std::string name, std::string help)
    : name_(std::move(name)), help_(std::move(help)) {}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::CounterCell& cell : cells_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::CounterCell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Gauge::Gauge(std::string name, std::string help, std::string labels)
    : name_(std::move(name)), help_(std::move(help)),
      labels_(std::move(labels)) {}

void Gauge::Add(double delta) {
  double current = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds,
                     std::string help)
    : name_(std::move(name)), help_(std::move(help)),
      bounds_(std::move(bounds)) {
  INNET_CHECK(!bounds_.empty());
  INNET_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  cells_.reserve(internal::kMetricCells);
  for (size_t i = 0; i < internal::kMetricCells; ++i) {
    cells_.push_back(std::make_unique<Cell>(bounds_.size() + 1));
  }
}

void Histogram::Observe(double value) {
  size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  Cell& cell =
      *cells_[internal::ThreadCellIndex() & (internal::kMetricCells - 1)];
  cell.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  double sum = cell.sum.load(std::memory_order_relaxed);
  while (!cell.sum.compare_exchange_weak(sum, sum + value,
                                         std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Cell>& cell : cells_) {
    for (const std::atomic<uint64_t>& c : cell->counts) {
      total += c.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const std::unique_ptr<Cell>& cell : cells_) {
    total += cell->sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const std::unique_ptr<Cell>& cell : cells_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += cell->counts[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::Percentile(double q) const {
  INNET_CHECK(q >= 0.0 && q <= 1.0);
  return PercentileFromBucketCounts(bounds_, BucketCounts(), q);
}

double PercentileFromBucketCounts(const std::vector<double>& bounds,
                                  const std::vector<uint64_t>& counts,
                                  double q) {
  INNET_CHECK(q >= 0.0 && q <= 1.0);
  INNET_CHECK(counts.size() == bounds.size() + 1);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  double rank = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(cumulative + counts[i]) >= rank) {
      // The +inf overflow bucket has no finite width: any quantile landing
      // in it is only known to be >= the last finite bound. Report +inf
      // instead of inventing a value inside the final finite bucket.
      if (i == bounds.size()) {
        return std::numeric_limits<double>::infinity();
      }
      double upper = bounds[i];
      double lower = i == 0 ? std::min(0.0, upper) : bounds[i - 1];
      double frac = (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(counts[i]);
      frac = std::clamp(frac, 0.0, 1.0);
      return lower + frac * (upper - lower);
    }
    cumulative += counts[i];
  }
  return std::numeric_limits<double>::infinity();
}

void Histogram::Reset() {
  for (std::unique_ptr<Cell>& cell : cells_) {
    for (std::atomic<uint64_t>& c : cell->counts) {
      c.store(0, std::memory_order_relaxed);
    }
    cell->sum.store(0.0, std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  INNET_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::WarnOnHelpConflict(const std::string& name,
                                         const std::string& existing_help,
                                         const std::string& new_help) {
  if (new_help.empty() || new_help == existing_help) return;
  if (!help_conflicts_warned_.insert(name).second) return;
  INNET_LOG(WARN) << "metric \"" << name
                  << "\" re-registered with different help text; keeping "
                     "the first. first=\""
                  << existing_help << "\" ignored=\"" << new_help << "\"";
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  INNET_CHECK(gauges_.find(name) == gauges_.end());
  INNET_CHECK(histograms_.find(name) == histograms_.end());
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name, help)).first;
  } else {
    WarnOnHelpConflict(name, it->second->help(), help);
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  INNET_CHECK(counters_.find(name) == counters_.end());
  INNET_CHECK(histograms_.find(name) == histograms_.end());
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name, help)).first;
  } else {
    WarnOnHelpConflict(name, it->second->help(), help);
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGaugeWithLabels(const std::string& name,
                                           const std::string& labels,
                                           const std::string& help) {
  if (labels.empty()) return GetGauge(name, help);
  std::string key = name + "{" + labels + "}";
  std::lock_guard<std::mutex> lock(mutex_);
  INNET_CHECK(counters_.find(key) == counters_.end());
  INNET_CHECK(histograms_.find(key) == histograms_.end());
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    it = gauges_.emplace(key, std::make_unique<Gauge>(name, help, labels))
             .first;
  } else {
    WarnOnHelpConflict(key, it->second->help(), help);
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  INNET_CHECK(counters_.find(name) == counters_.end());
  INNET_CHECK(gauges_.find(name) == gauges_.end());
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(name,
                                                        std::move(bounds),
                                                        help))
             .first;
  } else {
    WarnOnHelpConflict(name, it->second->help(), help);
  }
  return *it->second;
}

std::vector<const Counter*> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Counter*> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) out.push_back(counter.get());
  return out;
}

std::vector<const Gauge*> MetricsRegistry::Gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Gauge*> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) out.push_back(gauge.get());
  return out;
}

std::vector<const Histogram*> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const Histogram*> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(histogram.get());
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace innet::obs
