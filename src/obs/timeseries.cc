#include "obs/timeseries.h"

#include <algorithm>

#include "util/logging.h"

namespace innet::obs {

TimeSeriesCollector::TimeSeriesCollector(MetricsRegistry& registry,
                                         const TimeSeriesOptions& options)
    : registry_(registry), options_(options),
      start_(std::chrono::steady_clock::now()) {
  INNET_CHECK(options_.window_slots >= 2);
  INNET_CHECK(options_.period_ms >= 1);
}

TimeSeriesCollector::~TimeSeriesCollector() { Stop(); }

void TimeSeriesCollector::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { RunLoop(); });
}

void TimeSeriesCollector::Stop() {
  running_.store(false, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void TimeSeriesCollector::RunLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    SampleNow();
    // Sleep in small slices so Stop() returns promptly even with a long
    // period configured.
    uint64_t remaining = options_.period_ms;
    while (remaining > 0 && running_.load(std::memory_order_relaxed)) {
      uint64_t slice = std::min<uint64_t>(remaining, 20);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining -= slice;
    }
  }
}

double TimeSeriesCollector::NowSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void TimeSeriesCollector::SampleNow() { SampleAt(NowSeconds()); }

void TimeSeriesCollector::SampleAt(double now_seconds) {
  std::vector<std::function<void(double)>> listeners;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Derived gauges refresh first so this tick's sample sees them.
    for (auto& [gauge, fn] : derived_) gauge->Set(fn(now_seconds));

    for (const Counter* counter : registry_.Counters()) {
      Ring& ring = rings_[counter->name()];
      TimeSeriesSample sample;
      sample.at_seconds = now_seconds;
      sample.value = static_cast<double>(counter->Value());
      ring.slots.push_back(std::move(sample));
      if (ring.slots.size() > options_.window_slots) {
        ring.slots.erase(ring.slots.begin());
      }
    }
    for (const Gauge* gauge : registry_.Gauges()) {
      // Label variants of one family share a base name; key the ring by
      // the full series identity so they do not clobber each other.
      std::string key = gauge->labels().empty()
                            ? gauge->name()
                            : gauge->name() + "{" + gauge->labels() + "}";
      Ring& ring = rings_[key];
      TimeSeriesSample sample;
      sample.at_seconds = now_seconds;
      sample.value = gauge->Value();
      ring.slots.push_back(std::move(sample));
      if (ring.slots.size() > options_.window_slots) {
        ring.slots.erase(ring.slots.begin());
      }
    }
    for (const Histogram* histogram : registry_.Histograms()) {
      Ring& ring = rings_[histogram->name()];
      if (ring.bounds.empty()) ring.bounds = histogram->UpperBounds();
      TimeSeriesSample sample;
      sample.at_seconds = now_seconds;
      sample.bucket_counts = histogram->BucketCounts();
      sample.value = histogram->Sum();
      sample.count = 0;
      for (uint64_t c : sample.bucket_counts) sample.count += c;
      ring.slots.push_back(std::move(sample));
      if (ring.slots.size() > options_.window_slots) {
        ring.slots.erase(ring.slots.begin());
      }
    }
    listeners = listeners_;
  }
  samples_taken_.fetch_add(1, std::memory_order_relaxed);
  // Listeners run unlocked: the SloEngine reads back through the public
  // accessors, which take the lock themselves.
  for (auto& listener : listeners) listener(now_seconds);
}

void TimeSeriesCollector::AddDerivedGauge(const std::string& name,
                                          const std::string& help,
                                          std::function<double(double)> fn) {
  Gauge& gauge = registry_.GetGauge(name, help);
  std::lock_guard<std::mutex> lock(mutex_);
  derived_.emplace_back(&gauge, std::move(fn));
}

void TimeSeriesCollector::AddSampleListener(
    std::function<void(double)> listener) {
  std::lock_guard<std::mutex> lock(mutex_);
  listeners_.push_back(std::move(listener));
}

std::vector<TimeSeriesSample> TimeSeriesCollector::Series(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(name);
  if (it == rings_.end()) return {};
  return it->second.slots;
}

bool TimeSeriesCollector::WindowEdges(const Ring& ring,
                                      double window_seconds,
                                      const TimeSeriesSample** oldest,
                                      const TimeSeriesSample** newest) const {
  if (ring.slots.size() < 2) return false;
  *newest = &ring.slots.back();
  double cutoff = (*newest)->at_seconds - window_seconds;
  const TimeSeriesSample* edge = nullptr;
  for (const TimeSeriesSample& sample : ring.slots) {
    if (sample.at_seconds >= cutoff) {
      edge = &sample;
      break;
    }
  }
  if (edge == nullptr || edge == *newest) {
    // Window narrower than one sampling period: fall back to the previous
    // slot so short windows still see the latest delta.
    edge = &ring.slots[ring.slots.size() - 2];
  }
  *oldest = edge;
  return true;
}

double TimeSeriesCollector::CounterRate(const std::string& name,
                                        double window_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(name);
  if (it == rings_.end()) return 0.0;
  const TimeSeriesSample* oldest = nullptr;
  const TimeSeriesSample* newest = nullptr;
  if (!WindowEdges(it->second, window_seconds, &oldest, &newest)) return 0.0;
  double dt = newest->at_seconds - oldest->at_seconds;
  if (dt <= 0.0) return 0.0;
  return (newest->value - oldest->value) / dt;
}

double TimeSeriesCollector::Last(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(name);
  if (it == rings_.end() || it->second.slots.empty()) return 0.0;
  return it->second.slots.back().value;
}

double TimeSeriesCollector::WindowedMax(const std::string& name,
                                        double window_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(name);
  if (it == rings_.end() || it->second.slots.empty()) return 0.0;
  double cutoff = it->second.slots.back().at_seconds - window_seconds;
  double max_value = 0.0;
  bool any = false;
  for (const TimeSeriesSample& sample : it->second.slots) {
    if (sample.at_seconds < cutoff) continue;
    max_value = any ? std::max(max_value, sample.value) : sample.value;
    any = true;
  }
  return any ? max_value : 0.0;
}

uint64_t TimeSeriesCollector::WindowedCount(const std::string& name,
                                            double window_seconds) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(name);
  if (it == rings_.end()) return 0;
  const TimeSeriesSample* oldest = nullptr;
  const TimeSeriesSample* newest = nullptr;
  if (!WindowEdges(it->second, window_seconds, &oldest, &newest)) return 0;
  return newest->count - oldest->count;
}

double TimeSeriesCollector::WindowedQuantile(const std::string& name,
                                             double window_seconds,
                                             double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rings_.find(name);
  if (it == rings_.end() || it->second.bounds.empty()) return 0.0;
  const Ring& ring = it->second;
  const TimeSeriesSample* oldest = nullptr;
  const TimeSeriesSample* newest = nullptr;
  if (!WindowEdges(ring, window_seconds, &oldest, &newest)) return 0.0;
  INNET_CHECK(newest->bucket_counts.size() == ring.bounds.size() + 1);
  INNET_CHECK(oldest->bucket_counts.size() == newest->bucket_counts.size());
  std::vector<uint64_t> deltas(newest->bucket_counts.size());
  for (size_t i = 0; i < deltas.size(); ++i) {
    deltas[i] = newest->bucket_counts[i] - oldest->bucket_counts[i];
  }
  return PercentileFromBucketCounts(ring.bounds, deltas, q);
}

std::vector<std::pair<std::string, double>>
TimeSeriesCollector::AllCounterRates(double window_seconds) const {
  std::vector<std::pair<std::string, double>> out;
  std::vector<std::string> names;
  for (const Counter* counter : registry_.Counters()) {
    names.push_back(counter->name());
  }
  for (const std::string& name : names) {
    out.emplace_back(name, CounterRate(name, window_seconds));
  }
  return out;
}

}  // namespace innet::obs
