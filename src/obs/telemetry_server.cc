#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/build_info.h"
#include "obs/export.h"
#include "obs/query_digest.h"
#include "obs/slo.h"
#include "obs/slowlog.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace innet::obs {

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

std::string HttpResponse(int status, const char* reason,
                         const char* content_type,
                         const std::string& body) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(status);
  out += " ";
  out += reason;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

/// Splits a raw query string ("limit=5&slow=1") into key/value pairs.
/// Keys without '=' get an empty value; empty segments are skipped.
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    const std::string& query_string) {
  std::vector<std::pair<std::string, std::string>> params;
  size_t pos = 0;
  while (pos <= query_string.size()) {
    size_t amp = query_string.find('&', pos);
    if (amp == std::string::npos) amp = query_string.size();
    if (amp > pos) {
      std::string token = query_string.substr(pos, amp - pos);
      size_t eq = token.find('=');
      if (eq == std::string::npos) {
        params.emplace_back(std::move(token), "");
      } else {
        params.emplace_back(token.substr(0, eq), token.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
  return params;
}

/// Parses a strictly-decimal non-negative integer ("0", "42"). False on
/// anything else — empty, signs, hex, trailing junk — which the handlers
/// turn into a 400.
bool ParseNonNegativeInt(const std::string& text, uint64_t* value) {
  if (text.empty() || text.size() > 18) return false;
  uint64_t parsed = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    parsed = parsed * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = parsed;
  return true;
}

/// Writes all of `data`, tolerating short writes. MSG_NOSIGNAL keeps a
/// scraper that hung up early from SIGPIPE-killing the process.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                     MSG_NOSIGNAL);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

TelemetryServer::TelemetryServer(MetricsRegistry& registry,
                                 const TelemetryServerOptions& options)
    : registry_(registry), options_(options) {
  // The scrape counter must exist before the first scrape renders, so the
  // first /metrics response already carries it (byte-compat contract).
  registry_.GetCounter("innet_telemetry_requests_total",
                       "HTTP requests served by the telemetry endpoint");
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::AddReadinessProbe(const std::string& name,
                                        std::function<bool()> probe) {
  std::lock_guard<std::mutex> lock(probes_mutex_);
  probes_.emplace_back(name, std::move(probe));
}

bool TelemetryServer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return true;

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    INNET_LOG(ERROR) << "telemetry: socket() failed: " << std::strerror(errno);
    running_.store(false);
    return false;
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    INNET_LOG(ERROR) << "telemetry: bad bind address "
                     << options_.bind_address;
    close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      listen(listen_fd_, 16) != 0) {
    INNET_LOG(ERROR) << "telemetry: cannot bind " << options_.bind_address
                     << ":" << options_.port << ": "
                     << std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return false;
  }

  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_.store(ntohs(addr.sin_port), std::memory_order_release);

  thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void TelemetryServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() wakes the blocking accept(); close() alone does not on all
  // platforms.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  port_.store(0, std::memory_order_release);
}

void TelemetryServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;
    }
    ServeConnection(fd);
    close(fd);
  }
}

void TelemetryServer::ServeConnection(int fd) {
  // A stalled or malicious client must not wedge the serial accept loop.
  struct timeval timeout;
  timeout.tv_sec = 2;
  timeout.tv_usec = 0;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string request;
  char buf[2048];
  while (request.size() < 16 * 1024 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
    // A bare GET line terminated by one newline is enough to route.
    if (request.find('\n') != std::string::npos &&
        request.compare(0, 4, "GET ") == 0) {
      break;
    }
  }
  if (request.empty()) return;
  SendAll(fd, HandleRequest(request));
}

std::string TelemetryServer::HandleRequest(const std::string& request) {
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  size_t line_end = request.find_first_of("\r\n");
  std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  size_t first_space = line.find(' ');
  size_t second_space =
      first_space == std::string::npos ? std::string::npos
                                       : line.find(' ', first_space + 1);
  if (first_space == std::string::npos ||
      second_space == std::string::npos || second_space <= first_space + 1) {
    return HttpResponse(400, "Bad Request", "text/plain",
                        "malformed request line\n");
  }
  std::string method = line.substr(0, first_space);
  std::string path =
      line.substr(first_space + 1, second_space - first_space - 1);
  std::string query_string;
  size_t query = path.find('?');
  if (query != std::string::npos) {
    query_string = path.substr(query + 1);
    path.resize(query);
  }
  if (method != "GET") {
    return HttpResponse(405, "Method Not Allowed", "text/plain",
                        "only GET is supported\n");
  }

  if (path == "/metrics") {
    // Count the scrape BEFORE rendering: the response then reports the
    // same value a local WritePrometheus would see right after, which is
    // what the byte-compat golden test compares.
    registry_.GetCounter("innet_telemetry_requests_total").Increment();
    return HttpResponse(200, "OK", "text/plain; version=0.0.4",
                        MetricsBody());
  }
  if (path == "/healthz") {
    return HttpResponse(200, "OK", "text/plain", "ok\n");
  }
  if (path == "/readyz") {
    return ReadyzResponse();
  }
  if (path == "/varz") {
    return HttpResponse(200, "OK", "application/json", VarzBody());
  }
  if (path == "/traces") {
    return TracesResponse(query_string);
  }
  if (path == "/queryz") {
    return QueryzResponse(query_string);
  }
  return HttpResponse(404, "Not Found", "text/plain",
                      "unknown path " + path + "\n");
}

std::string TelemetryServer::MetricsBody() {
  std::ostringstream out;
  WritePrometheus(registry_, out);
  return out.str();
}

std::string TelemetryServer::ReadyzResponse() {
  std::vector<std::pair<std::string, std::function<bool()>>> probes;
  {
    std::lock_guard<std::mutex> lock(probes_mutex_);
    probes = probes_;
  }
  std::string failing;
  for (auto& [name, probe] : probes) {
    if (!probe()) {
      failing += name;
      failing += "\n";
    }
  }
  if (failing.empty()) {
    return HttpResponse(200, "OK", "text/plain", "ready\n");
  }
  return HttpResponse(503, "Service Unavailable", "text/plain",
                      "not ready:\n" + failing);
}

std::string TelemetryServer::VarzBody() {
  std::string out = "{\"build\":{\"version\":\"";
  out += JsonEscape(BuildVersion());
  out += "\",\"git_sha\":\"";
  out += JsonEscape(BuildGitSha());
  out += "\",\"compiler\":\"";
  out += JsonEscape(BuildCompiler());
  out += "\",\"simd\":\"";
  out += JsonEscape(BuildSimd());
  out += "\"},\"uptime_seconds\":";
  JsonAppendNumber(&out, UptimeSeconds());

  out += ",\"counters\":{";
  bool first = true;
  for (const Counter* counter : registry_.Counters()) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(counter->name());
    out += "\":";
    out += std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const Gauge* gauge : registry_.Gauges()) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(gauge->labels().empty()
                          ? gauge->name()
                          : gauge->name() + "{" + gauge->labels() + "}");
    out += "\":";
    JsonAppendNumber(&out, gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const Histogram* histogram : registry_.Histograms()) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += JsonEscape(histogram->name());
    out += "\":{\"count\":";
    out += std::to_string(histogram->Count());
    out += ",\"sum\":";
    JsonAppendNumber(&out, histogram->Sum());
    out += ",\"p50\":";
    JsonAppendNumber(&out, histogram->Percentile(0.50));
    out += ",\"p95\":";
    JsonAppendNumber(&out, histogram->Percentile(0.95));
    out += "}";
  }
  out += "}";

  if (collector_ != nullptr) {
    out += ",\"rates_per_sec\":{";
    first = true;
    for (const auto& [name, rate] : collector_->AllCounterRates(10.0)) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += JsonEscape(name);
      out += "\":";
      JsonAppendNumber(&out, rate);
    }
    out += "},\"samples_taken\":";
    out += std::to_string(collector_->SamplesTaken());
  }
  if (digest_ != nullptr) {
    out += ",\"query_digest\":{\"recorded\":";
    out += std::to_string(digest_->TotalRecorded());
    out += ",\"digests\":";
    out += std::to_string(digest_->DistinctDigests());
    out += "}";
  }
  if (slowlog_ != nullptr) {
    out += ",\"slowlog\":{\"records\":";
    out += std::to_string(slowlog_->Records());
    out += ",\"suppressed\":";
    out += std::to_string(slowlog_->Suppressed());
    out += "}";
  }
  if (slo_ != nullptr) {
    out += ",\"slo_burning\":[";
    first = true;
    for (const std::string& name : slo_->Burning()) {
      if (!first) out += ",";
      first = false;
      out += "\"";
      out += JsonEscape(name);
      out += "\"";
    }
    out += "]";
  }
  out += "}\n";
  return out;
}

std::string TelemetryServer::TracesResponse(
    const std::string& query_string) {
  // Reject malformed parameters BEFORE touching the tracer: a bad limit
  // on an unattached server is still a client error, not an empty 200.
  bool chrome = false;
  uint64_t limit = 0;
  bool has_limit = false;
  for (const auto& [key, value] : ParseQueryParams(query_string)) {
    if (key == "limit") {
      if (!ParseNonNegativeInt(value, &limit)) {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "bad limit: expected a non-negative integer\n");
      }
      has_limit = true;
    } else if (key == "format") {
      if (value == "chrome") {
        chrome = true;
      } else if (value == "jsonl") {
        chrome = false;
      } else {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "bad format: expected chrome or jsonl\n");
      }
    }
    // Unknown parameters are ignored (standard HTTP leniency).
  }

  std::vector<std::unique_ptr<QueryTrace>> traces;
  if (tracer_ != nullptr) traces = tracer_->SnapshotRing();
  if (has_limit && traces.size() > limit) {
    // SnapshotRing is oldest-first; keep the most recent N.
    traces.erase(traces.begin(),
                 traces.end() - static_cast<ptrdiff_t>(limit));
  }
  std::ostringstream out;
  if (chrome) {
    WriteTracesChromeJson(traces, out);
  } else {
    WriteTracesJsonLines(traces, out);
  }
  return HttpResponse(200, "OK", "application/json", out.str());
}

std::string TelemetryServer::QueryzResponse(
    const std::string& query_string) {
  uint64_t limit = 20;
  bool slow = false;
  for (const auto& [key, value] : ParseQueryParams(query_string)) {
    if (key == "limit") {
      if (!ParseNonNegativeInt(value, &limit)) {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "bad limit: expected a non-negative integer\n");
      }
    } else if (key == "slow") {
      if (value == "1") {
        slow = true;
      } else if (value == "0" || value.empty()) {
        slow = false;
      } else {
        return HttpResponse(400, "Bad Request", "text/plain",
                            "bad slow: expected 0 or 1\n");
      }
    }
  }

  if (slow) {
    std::string body = "{\"slow\":[";
    if (slowlog_ != nullptr) {
      std::vector<std::string> records = slowlog_->RecentRecords();
      if (records.size() > limit) {
        records.erase(records.begin(),
                      records.end() - static_cast<ptrdiff_t>(limit));
      }
      bool first = true;
      for (const std::string& record : records) {
        if (!first) body += ",";
        first = false;
        body += "\n";
        body += record;
      }
    }
    body += "]}\n";
    return HttpResponse(200, "OK", "application/json", body);
  }

  if (digest_ == nullptr) {
    return HttpResponse(200, "OK", "application/json",
                        "{\"recorded\":0,\"digests\":0,\"top\":[]}\n");
  }
  return HttpResponse(200, "OK", "application/json",
                      digest_->ToJson(static_cast<size_t>(limit)) + "\n");
}

}  // namespace innet::obs
