#include "obs/explain.h"

#include <cmath>
#include <cstdio>

#include "obs/export.h"

namespace innet::obs {

namespace {

void AppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

void AppendKey(std::string* out, const char* key) {
  out->append(",\"");
  out->append(key);
  out->append("\":");
}

}  // namespace

std::string ExplainRecord::ToJson() const {
  std::string out = "{\"kind\":\"" + JsonEscape(kind) + "\"";
  AppendKey(&out, "bound");
  out += "\"" + JsonEscape(bound) + "\"";
  AppendKey(&out, "path");
  out += "\"" + JsonEscape(path) + "\"";

  AppendKey(&out, "faces");
  out += "[";
  for (size_t i = 0; i < faces.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(faces[i]);
  }
  out += "]";

  AppendKey(&out, "region_cells");
  out += std::to_string(region_cells);
  AppendKey(&out, "resolved_cells");
  out += std::to_string(resolved_cells);
  AppendKey(&out, "deadspace_fraction");
  AppendNumber(&out, deadspace_fraction);

  AppendKey(&out, "boundary_edges");
  out += std::to_string(boundary_edges);
  AppendKey(&out, "boundary_sensors");
  out += std::to_string(boundary_sensors);

  AppendKey(&out, "store");
  out += "\"" + JsonEscape(store) + "\"";
  AppendKey(&out, "store_modeled_events");
  out += std::to_string(store_modeled_events);
  AppendKey(&out, "store_raw_events");
  out += std::to_string(store_raw_events);

  AppendKey(&out, "cache_used");
  out += cache_used ? "true" : "false";
  AppendKey(&out, "cache_hit");
  out += cache_hit ? "true" : "false";

  AppendKey(&out, "missed");
  out += missed ? "true" : "false";
  AppendKey(&out, "degraded");
  out += degraded ? "true" : "false";
  AppendKey(&out, "answer");
  AppendNumber(&out, answer);
  AppendKey(&out, "interval");
  out += "[";
  AppendNumber(&out, interval_lo);
  out += ",";
  AppendNumber(&out, interval_hi);
  out += "]";
  AppendKey(&out, "interval_width");
  AppendNumber(&out, interval_width);
  AppendKey(&out, "dead_boundary_edges");
  out += std::to_string(dead_boundary_edges);
  AppendKey(&out, "rerouted_faces");
  out += std::to_string(rerouted_faces);
  out += "}";
  return out;
}

}  // namespace innet::obs
