#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/logging.h"

namespace innet::obs {

namespace {

std::string PrometheusNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

void WriteHeader(std::ostream& out, const std::string& name,
                 const std::string& help, const char* type) {
  if (!help.empty()) {
    out << "# HELP " << name << " " << PrometheusEscapeHelp(help) << "\n";
  }
  out << "# TYPE " << name << " " << type << "\n";
}

bool OpenForWrite(const std::string& path, std::ofstream* out) {
  out->open(path, std::ios::out | std::ios::trunc);
  if (!*out) {
    INNET_LOG(ERROR) << "cannot write " << path;
    return false;
  }
  return true;
}

}  // namespace

void JsonAppendNumber(std::string* out, double value) {
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out->append(buf);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusSanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += valid ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void WritePrometheus(const MetricsRegistry& registry, std::ostream& out) {
  for (const Counter* counter : registry.Counters()) {
    std::string name = PrometheusSanitizeName(counter->name());
    WriteHeader(out, name, counter->help(), "counter");
    out << name << " " << counter->Value() << "\n";
  }
  // Gauges are keyed `name{labels}`, so label variants of one family sort
  // adjacently; emit the HELP/TYPE header once per family, not per series.
  std::string previous_gauge;
  for (const Gauge* gauge : registry.Gauges()) {
    std::string name = PrometheusSanitizeName(gauge->name());
    if (name != previous_gauge) {
      WriteHeader(out, name, gauge->help(), "gauge");
      previous_gauge = name;
    }
    out << name;
    if (!gauge->labels().empty()) out << "{" << gauge->labels() << "}";
    out << " " << PrometheusNumber(gauge->Value()) << "\n";
  }
  for (const Histogram* histogram : registry.Histograms()) {
    std::string name = PrometheusSanitizeName(histogram->name());
    WriteHeader(out, name, histogram->help(), "histogram");
    std::vector<uint64_t> counts = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->UpperBounds();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out << name << "_bucket{le=\""
          << PrometheusEscapeLabel(PrometheusNumber(bounds[i])) << "\"} "
          << cumulative << "\n";
    }
    cumulative += counts.back();
    out << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    out << name << "_sum " << PrometheusNumber(histogram->Sum()) << "\n";
    out << name << "_count " << cumulative << "\n";
  }
}

void WriteMetricsJsonLines(const MetricsRegistry& registry,
                           std::ostream& out) {
  std::string line;
  for (const Counter* counter : registry.Counters()) {
    line.clear();
    line += "{\"type\":\"counter\",\"name\":\"";
    line += JsonEscape(counter->name());
    line += "\",\"value\":";
    line += std::to_string(counter->Value());
    line += "}";
    out << line << "\n";
  }
  for (const Gauge* gauge : registry.Gauges()) {
    line.clear();
    line += "{\"type\":\"gauge\",\"name\":\"";
    line += JsonEscape(gauge->name());
    line += "\"";
    if (!gauge->labels().empty()) {
      line += ",\"labels\":\"";
      line += JsonEscape(gauge->labels());
      line += "\"";
    }
    line += ",\"value\":";
    JsonAppendNumber(&line, gauge->Value());
    line += "}";
    out << line << "\n";
  }
  for (const Histogram* histogram : registry.Histograms()) {
    std::vector<uint64_t> counts = histogram->BucketCounts();
    const std::vector<double>& bounds = histogram->UpperBounds();
    line.clear();
    line += "{\"type\":\"histogram\",\"name\":\"";
    line += JsonEscape(histogram->name());
    line += "\",\"count\":";
    line += std::to_string(histogram->Count());
    line += ",\"sum\":";
    JsonAppendNumber(&line, histogram->Sum());
    line += ",\"p50\":";
    JsonAppendNumber(&line, histogram->Percentile(0.50));
    line += ",\"p95\":";
    JsonAppendNumber(&line, histogram->Percentile(0.95));
    line += ",\"buckets\":[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) line += ",";
      line += "{\"le\":";
      if (i < bounds.size()) {
        JsonAppendNumber(&line, bounds[i]);
      } else {
        line += "null";
      }
      line += ",\"count\":";
      line += std::to_string(counts[i]);
      line += "}";
    }
    line += "]}";
    out << line << "\n";
  }
}

void WriteTracesJsonLines(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    std::ostream& out) {
  std::string line;
  for (const std::unique_ptr<QueryTrace>& trace : traces) {
    if (trace == nullptr) continue;
    line.clear();
    line += "{\"query\":";
    line += std::to_string(trace->id());
    line += ",\"total_micros\":";
    JsonAppendNumber(&line, trace->TotalMicros());
    line += ",\"stages\":[";
    bool first = true;
    for (const TraceStage& stage : trace->stages()) {
      if (!first) line += ",";
      first = false;
      line += "{\"name\":\"";
      line += JsonEscape(stage.name);
      line += "\",\"start_micros\":";
      JsonAppendNumber(&line, stage.start_micros);
      line += ",\"micros\":";
      JsonAppendNumber(&line, stage.elapsed_micros);
      line += ",\"depth\":";
      line += std::to_string(stage.depth);
      line += "}";
    }
    line += "]";
    for (const auto& [key, value] : trace->annotations()) {
      line += ",\"";
      line += JsonEscape(key);
      line += "\":";
      JsonAppendNumber(&line, value);
    }
    line += "}";
    out << line << "\n";
  }
}

bool ExportMetricsToFile(const MetricsRegistry& registry,
                         const std::string& path) {
  std::ofstream out;
  if (!OpenForWrite(path, &out)) return false;
  bool json = path.size() >= 5 && (path.rfind(".json") == path.size() - 5 ||
                                   path.rfind(".jsonl") == path.size() - 6);
  if (json) {
    WriteMetricsJsonLines(registry, out);
  } else {
    WritePrometheus(registry, out);
  }
  return static_cast<bool>(out);
}

bool ExportTracesToFile(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    const std::string& path) {
  std::ofstream out;
  if (!OpenForWrite(path, &out)) return false;
  WriteTracesJsonLines(traces, out);
  return static_cast<bool>(out);
}

void WriteTracesChromeJson(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    std::ostream& out) {
  // Trace-event array format. Every event is "complete" (ph X): ts is the
  // span's start offset within its query and tid the query id, so the
  // viewer shows one track per query with stages nested by time. pid 0
  // groups everything under one process.
  out << "[";
  std::string line;
  bool first = true;
  for (const std::unique_ptr<QueryTrace>& trace : traces) {
    if (trace == nullptr) continue;
    line.clear();
    if (!first) line += ",";
    first = false;
    // Whole-query umbrella event carrying the annotations as args.
    line += "\n{\"name\":\"query\",\"cat\":\"query\",\"ph\":\"X\",\"ts\":0,"
            "\"dur\":";
    JsonAppendNumber(&line, trace->TotalMicros());
    line += ",\"pid\":0,\"tid\":";
    line += std::to_string(trace->id());
    line += ",\"args\":{";
    bool first_arg = true;
    for (const auto& [key, value] : trace->annotations()) {
      if (!first_arg) line += ",";
      first_arg = false;
      line += "\"";
      line += JsonEscape(key);
      line += "\":";
      JsonAppendNumber(&line, value);
    }
    line += "}}";
    for (const TraceStage& stage : trace->stages()) {
      line += ",\n{\"name\":\"";
      line += JsonEscape(stage.name);
      line += "\",\"cat\":\"query\",\"ph\":\"X\",\"ts\":";
      JsonAppendNumber(&line, stage.start_micros);
      line += ",\"dur\":";
      JsonAppendNumber(&line, stage.elapsed_micros);
      line += ",\"pid\":0,\"tid\":";
      line += std::to_string(trace->id());
      line += ",\"args\":{\"depth\":";
      line += std::to_string(stage.depth);
      line += "}}";
    }
    out << line;
  }
  out << "\n]\n";
}

bool ExportTracesChromeToFile(
    const std::vector<std::unique_ptr<QueryTrace>>& traces,
    const std::string& path) {
  std::ofstream out;
  if (!OpenForWrite(path, &out)) return false;
  WriteTracesChromeJson(traces, out);
  return static_cast<bool>(out);
}

}  // namespace innet::obs
