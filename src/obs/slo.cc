#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/export.h"
#include "util/logging.h"

namespace innet::obs {

namespace {

bool ParseSignal(const std::string& text, SloSignal* signal) {
  if (text == "p50") return *signal = SloSignal::kP50, true;
  if (text == "p95") return *signal = SloSignal::kP95, true;
  if (text == "p99") return *signal = SloSignal::kP99, true;
  if (text == "gauge") return *signal = SloSignal::kGauge, true;
  if (text == "rate") return *signal = SloSignal::kRate, true;
  return false;
}

bool ParseDouble(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

}  // namespace

bool ParseSloConfig(const std::string& text,
                    std::vector<SloObjective>* out) {
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string token;
    if (!(tokens >> token)) continue;  // blank or comment-only line
    if (token != "slo") {
      INNET_LOG(ERROR) << "slo config line " << line_number
                       << ": expected \"slo\", got \"" << token << "\"";
      return false;
    }
    SloObjective objective;
    bool ok = true;
    while (tokens >> token) {
      size_t eq = token.find('=');
      if (eq == std::string::npos) {
        ok = false;
        break;
      }
      std::string key = token.substr(0, eq);
      std::string value = token.substr(eq + 1);
      if (key == "name") {
        objective.name = value;
      } else if (key == "metric") {
        objective.metric = value;
      } else if (key == "signal") {
        ok = ParseSignal(value, &objective.signal);
      } else if (key == "threshold") {
        ok = ParseDouble(value, &objective.threshold);
      } else if (key == "short") {
        ok = ParseDouble(value, &objective.short_window_seconds);
      } else if (key == "long") {
        ok = ParseDouble(value, &objective.long_window_seconds);
      } else if (key == "below") {
        objective.below = value == "1" || value == "true";
      } else {
        ok = false;
      }
      if (!ok) break;
    }
    ok = ok && !objective.name.empty() && !objective.metric.empty() &&
         objective.short_window_seconds > 0.0 &&
         objective.long_window_seconds >= objective.short_window_seconds;
    if (!ok) {
      INNET_LOG(ERROR) << "slo config line " << line_number
                       << ": malformed objective: " << line;
      return false;
    }
    out->push_back(std::move(objective));
  }
  return true;
}

bool LoadSloConfigFile(const std::string& path,
                       std::vector<SloObjective>* out) {
  std::ifstream in(path);
  if (!in) {
    INNET_LOG(ERROR) << "cannot read slo config " << path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseSloConfig(text.str(), out);
}

SloEngine::SloEngine(MetricsRegistry& registry,
                     TimeSeriesCollector& collector,
                     std::vector<SloObjective> objectives)
    : collector_(collector) {
  states_.reserve(objectives.size());
  for (SloObjective& objective : objectives) {
    State state;
    std::string labels =
        "slo=\"" + PrometheusEscapeLabel(objective.name) + "\"";
    state.gauge = &registry.GetGaugeWithLabels(
        "innet_slo_burning", labels,
        "1 while the named SLO breaches both burn-rate windows");
    state.gauge->Set(0.0);
    state.objective = std::move(objective);
    states_.push_back(std::move(state));
  }
}

double SloEngine::Signal(const SloObjective& objective,
                         double window_seconds) const {
  switch (objective.signal) {
    case SloSignal::kP50:
      return collector_.WindowedQuantile(objective.metric, window_seconds,
                                         0.50);
    case SloSignal::kP95:
      return collector_.WindowedQuantile(objective.metric, window_seconds,
                                         0.95);
    case SloSignal::kP99:
      return collector_.WindowedQuantile(objective.metric, window_seconds,
                                         0.99);
    case SloSignal::kGauge:
      return collector_.WindowedMax(objective.metric, window_seconds);
    case SloSignal::kRate:
      return collector_.CounterRate(objective.metric, window_seconds);
  }
  return 0.0;
}

void SloEngine::Evaluate() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (State& state : states_) {
    const SloObjective& objective = state.objective;
    double short_signal = Signal(objective, objective.short_window_seconds);
    double long_signal = Signal(objective, objective.long_window_seconds);
    auto breaches = [&objective](double signal) {
      if (std::isnan(signal)) return false;
      return objective.below ? signal < objective.threshold
                             : signal > objective.threshold;
    };
    bool burning = breaches(short_signal) && breaches(long_signal);
    if (burning != state.burning) {
      state.burning = burning;
      state.gauge->Set(burning ? 1.0 : 0.0);
      INNET_LOG(WARN) << "slo " << objective.name
                      << (burning ? " BURNING" : " recovered")
                      << ": short=" << short_signal
                      << " long=" << long_signal
                      << " threshold=" << objective.threshold;
    }
  }
}

bool SloEngine::IsBurning(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const State& state : states_) {
    if (state.objective.name == name) return state.burning;
  }
  return false;
}

std::vector<std::string> SloEngine::Burning() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (const State& state : states_) {
    if (state.burning) out.push_back(state.objective.name);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace innet::obs
