// Declarative SLOs with multi-window burn-rate evaluation
// (docs/OBSERVABILITY.md §Live telemetry & SLOs).
//
// An objective names a metric, a signal derived from its rolling ring
// (windowed quantile, gauge level, or counter rate), a threshold, and two
// windows. Following the standard multi-window burn-rate recipe, an SLO is
// BURNING only when the signal breaches the threshold over BOTH the short
// window (the problem is happening now) and the long window (it is not a
// one-sample blip); it clears when both windows are back under. Each
// transition emits an INNET_LOG(WARN), and the current state latches into
// an `innet_slo_burning{slo="<name>"}` gauge so scrapes and file exports
// carry alert state without a separate alerting stack.
//
// Config format (one objective per line, '#' comments):
//   slo name=query_p95 metric=innet_query_latency_micros signal=p95
//       threshold=5000 short=5 long=30   (single line in the file)
// `short`/`long` are seconds. Signals: p50 | p95 | p99 | gauge | rate.
#ifndef INNET_OBS_SLO_H_
#define INNET_OBS_SLO_H_

#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace innet::obs {

enum class SloSignal { kP50, kP95, kP99, kGauge, kRate };

/// One declarative objective.
struct SloObjective {
  std::string name;    // label value in innet_slo_burning{slo="..."}
  std::string metric;  // registry metric the signal derives from
  SloSignal signal = SloSignal::kP95;
  /// Breach is `signal > threshold` (set `below=true` to invert).
  double threshold = 0.0;
  bool below = false;
  double short_window_seconds = 5.0;
  double long_window_seconds = 30.0;
};

/// Parses the config text above. Returns false (and logs ERROR with the
/// offending line) on malformed input; `out` then holds the objectives
/// parsed before the error.
bool ParseSloConfig(const std::string& text,
                    std::vector<SloObjective>* out);

/// Reads and parses `path`. Returns false on unreadable file or parse
/// error.
bool LoadSloConfigFile(const std::string& path,
                       std::vector<SloObjective>* out);

/// Evaluates objectives against a TimeSeriesCollector's rings.
class SloEngine {
 public:
  /// Registers one latched `innet_slo_burning{slo=...}` gauge per
  /// objective in the collector's registry (via `registry`).
  SloEngine(MetricsRegistry& registry, TimeSeriesCollector& collector,
            std::vector<SloObjective> objectives);

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  /// Evaluates every objective once. Call from a collector sample
  /// listener (`collector.AddSampleListener([&](double){ engine.Evaluate(); })`)
  /// or manually in tests after SampleNow().
  void Evaluate();

  /// True when the named objective is currently burning.
  bool IsBurning(const std::string& name) const;

  /// Burning objectives, name order; feeds /varz and /healthz detail.
  std::vector<std::string> Burning() const;

  size_t objective_count() const { return states_.size(); }

 private:
  struct State {
    SloObjective objective;
    Gauge* gauge = nullptr;  // latched innet_slo_burning series
    bool burning = false;
  };

  double Signal(const SloObjective& objective, double window_seconds) const;

  TimeSeriesCollector& collector_;
  mutable std::mutex mutex_;
  std::vector<State> states_;
};

}  // namespace innet::obs

#endif  // INNET_OBS_SLO_H_
